//! Hermetic, dependency-free subset of the [`proptest`] API.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]` header,
//! [`strategy::Strategy`] with [`strategy::Strategy::prop_map`], range and
//! tuple strategies, [`arbitrary::any`], `prop::collection::vec`, and the
//! [`prop_assert!`]/[`prop_assert_eq!`] macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the sampled inputs'
//!   case number; cases are generated from a fixed seed, so failures
//!   reproduce exactly across runs.
//! * Generation is direct sampling (no `ValueTree` indirection).
//!
//! [`proptest`]: https://crates.io/crates/proptest

pub mod test_runner {
    /// Per-test configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure — fails the whole test.
        Fail(String),
        /// Input rejected — skipped, does not count as a run case.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Deterministic generator behind every strategy (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded from the test name so every test walks its own stream
        /// but reruns see identical inputs.
        pub fn deterministic(test_name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
            for b in test_name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values (the workhorse combinator).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    macro_rules! impl_uint_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end as u64 - self.start as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_uint_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
                }
            }
        )*};
    }

    impl_int_range!(i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                    if v >= self.end { self.start } else { v }
                }
            }
        )*};
    }

    impl_float_range!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, sign-symmetric, spanning many magnitudes.
            let m = rng.unit_f64() * 2.0 - 1.0;
            let e = (rng.below(61) as i32) - 30;
            m * 2f64.powi(e)
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy with length in `len` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range in collection::vec");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The crate under its conventional prelude alias, for
    /// `prop::collection::vec(...)`-style paths.
    pub use crate as prop;
}

/// Fail the current case with an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let strategies = ($($strat,)+);
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut case: u32 = 0;
            let mut rejected: u32 = 0;
            while case < config.cases {
                let sampled = $crate::strategy::Strategy::sample(&strategies, &mut rng);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> = {
                    let ($($pat,)+) = sampled;
                    #[allow(clippy::redundant_closure_call)]
                    (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                };
                match outcome {
                    Ok(()) => case += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases.saturating_mul(16).max(256),
                            "too many rejected inputs in {}", stringify!($name)
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} of {} failed: {}",
                            case + 1, config.cases, msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let x = Strategy::sample(&(3usize..17), &mut rng);
            assert!((3..17).contains(&x));
            let f = Strategy::sample(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_in_bounds() {
        let mut rng = TestRng::deterministic("vecs");
        for _ in 0..200 {
            let v = Strategy::sample(&collection::vec(0u8..10, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u32..50, 0u32..50), c in 1usize..9) {
            prop_assert!(a < 50 && b < 50);
            prop_assert!((1..9).contains(&c));
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn prop_map_applies(x in (0u32..10).prop_map(|v| v * 2)) {
            prop_assert!(x % 2 == 0 && x < 20);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
