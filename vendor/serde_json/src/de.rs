//! Recursive-descent RFC 8259 parser into the vendored [`Value`] tree.

use crate::Error;
use serde::Value;

/// Parse one JSON document into a [`Value`]. Trailing whitespace is
/// allowed, trailing garbage is an error. Number mapping: a token with a
/// `.`/`e`/`E` parses as [`Value::Float`], a leading `-` as
/// [`Value::Int`], anything else as [`Value::UInt`] (falling back to
/// `Float` on overflow). The public, typed entry point is
/// [`crate::from_str`].
pub(crate) fn value_from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX holding a
                                // *low* surrogate must follow (anything else
                                // would underflow `lo - 0xDC00`).
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(ch) => out.push(ch),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Copy the run of plain bytes (including multi-byte
                    // UTF-8 sequences) up to the next quote or escape.
                    let start = self.pos - 1;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid utf-8 in string")),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if tok.contains(['.', 'e', 'E']) {
            tok.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else if let Some(stripped) = tok.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|_| tok.parse::<i64>().ok())
                .map(Value::Int)
                .map(Ok)
                .unwrap_or_else(|| {
                    tok.parse::<f64>()
                        .map(Value::Float)
                        .map_err(|_| self.err("invalid number"))
                })
        } else {
            match tok.parse::<u64>() {
                Ok(u) => Ok(Value::UInt(u)),
                Err(_) => tok
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| self.err("invalid number")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_string;

    fn from_str(s: &str) -> Result<Value, Error> {
        value_from_str(s)
    }

    #[test]
    fn scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("42").unwrap(), Value::UInt(42));
        assert_eq!(from_str("-7").unwrap(), Value::Int(-7));
        assert_eq!(from_str("1.5e2").unwrap(), Value::Float(150.0));
        assert_eq!(from_str(r#""a\nbA""#).unwrap(), Value::Str("a\nbA".into()));
    }

    #[test]
    fn compounds_and_roundtrip() {
        let v = from_str(r#"{"key":"s=1","rec":{"f":1.25,"n":[1,2,3],"ok":true,"none":null}}"#)
            .unwrap();
        let Value::Map(entries) = &v else {
            panic!("not a map")
        };
        assert_eq!(entries[0].0, "key");
        // Writer → parser round-trip is the contract the checkpoint
        // journal relies on.
        struct Raw(Value);
        impl serde::Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let text = to_string(&Raw(v.clone())).unwrap();
        assert_eq!(from_str(&text).unwrap(), v);
    }

    #[test]
    fn errors() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str(r#"{"a":1"#).is_err());
        assert!(from_str("[1,2,]").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str(r#"{"key":"v"#).is_err(), "truncated journal line");
        // Regression: a high surrogate followed by a non-low-surrogate
        // escape underflowed `lo - 0xDC00` instead of erroring.
        assert!(from_str(r#""\uD83D\uD83D""#).is_err());
        assert!(from_str(r#""\uD800A""#).is_err());
        assert!(
            from_str(r#""\uDC00""#).is_err(),
            "lone low surrogate is not a char"
        );
    }

    #[test]
    fn unicode_strings() {
        assert_eq!(
            from_str(r#""héllo — ε""#).unwrap(),
            Value::Str("héllo — ε".into())
        );
        assert_eq!(from_str(r#""😀""#).unwrap(), Value::Str("😀".into()));
    }
}
