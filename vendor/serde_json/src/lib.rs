//! Hermetic JSON *reader and writer* over the vendored [`serde`] data
//! model.
//!
//! Implements [`to_string`] / [`to_string_pretty`] and the typed
//! [`from_str`] — the only entry points the workspace uses. Output follows
//! RFC 8259: strings are escaped (`"`, `\`, control characters),
//! non-finite floats serialize as `null` (matching the real `serde_json`'s
//! lossy float handling in `Value`), and map key order is the struct's
//! declaration order. [`from_str`] parses any RFC 8259 document (numbers
//! with a fraction/exponent become [`Value::Float`], negative integers
//! [`Value::Int`], other integers [`Value::UInt`]) and lifts the tree into
//! any [`serde::Deserialize`] type; `from_str::<Value>` keeps the
//! value-level access the checkpoint journal replays rely on.

mod de;

use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

/// Parse a JSON document and decode it into `T` (use `T = Value` for raw
/// tree access). Both failure layers — malformed JSON and a well-formed
/// document of the wrong shape — surface as [`Error`].
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = de::value_from_str(s)?;
    T::from_value(&v).map_err(|e| Error::new(e.to_string()))
}

/// Serialization error. The writer itself is infallible, but the `Result`
/// return keeps call sites source-compatible with the real `serde_json`.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub(crate) fn new(msg: String) -> Self {
        Self(msg)
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                let mut s = format!("{f}");
                // `1` would re-parse as an integer; keep the float type
                // visible the way serde_json does ("1.0").
                if !s.contains(['.', 'e', 'E']) {
                    s.push_str(".0");
                }
                out.push_str(&s);
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => write_compound(out, '[', ']', items.len(), indent, depth, |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Map(entries) => {
            write_compound(out, '{', '}', entries.len(), indent, depth, |out, i| {
                let (k, val) = &entries[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    open: char,
    close: char,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_scalars_and_seqs() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string("a\"b\\c\nd").unwrap(), r#""a\"b\\c\nd""#);
        assert_eq!(to_string(&vec![1u8, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(to_string(&Vec::<u8>::new()).unwrap(), "[]");
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn typed_from_str_roundtrip() {
        // The derive pair is exercised end to end: struct with an optional
        // field, a newtype, and a fieldless enum, through the writer and
        // back through the typed reader.
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct Knob(u32);
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        enum Mode {
            Fast,
            Safe,
        }
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct Cfg {
            name: String,
            knob: Knob,
            mode: Mode,
            scale: f64,
            limit: Option<u64>,
        }
        let cfg = Cfg {
            name: "svc".into(),
            knob: Knob(42),
            mode: Mode::Safe,
            scale: 1.5,
            limit: None,
        };
        let text = to_string(&cfg).unwrap();
        assert_eq!(
            text,
            r#"{"name":"svc","knob":42,"mode":"Safe","scale":1.5,"limit":null}"#
        );
        assert_eq!(from_str::<Cfg>(&text).unwrap(), cfg);
        // Omitted Option field decodes as None; everything else is strict.
        let partial = r#"{"name":"svc","knob":1,"mode":"Fast","scale":2.0}"#;
        assert_eq!(from_str::<Cfg>(partial).unwrap().limit, None);
        let unknown = r#"{"name":"svc","knob":1,"mode":"Fast","scale":2.0,"z":0}"#;
        assert!(from_str::<Cfg>(unknown)
            .unwrap_err()
            .to_string()
            .contains("unknown field `z`"));
        let missing = r#"{"name":"svc","mode":"Fast","scale":2.0}"#;
        assert!(from_str::<Cfg>(missing)
            .unwrap_err()
            .to_string()
            .contains("missing field `knob`"));
        let wrong = r#"{"name":"svc","knob":"x","mode":"Fast","scale":2.0}"#;
        assert!(from_str::<Cfg>(wrong)
            .unwrap_err()
            .to_string()
            .contains("knob"));
        let variant = r#"{"name":"svc","knob":1,"mode":"Turbo","scale":2.0}"#;
        assert!(from_str::<Cfg>(variant)
            .unwrap_err()
            .to_string()
            .contains("unknown variant `Turbo`"));
    }

    #[test]
    fn pretty_map() {
        let v = Value::Map(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(false)])),
        ]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let s = to_string_pretty(&Raw(v)).unwrap();
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": [\n    false\n  ]\n}");
    }
}
