//! Derive macros for the hermetic `serde` subset.
//!
//! `syn`/`quote` are unavailable offline, so the input is parsed directly
//! from the raw [`proc_macro::TokenStream`]. Supported shapes — the only
//! ones this workspace derives on:
//!
//! * named-field structs → `Value::Map` in declaration order,
//! * tuple structs with one field (newtypes) → the inner value,
//! * tuple structs with several fields → `Value::Seq`,
//! * unit structs → `Value::Null`,
//! * enum unit variants → `Value::Str(variant_name)`,
//! * enum newtype variants → `Value::Map([(variant_name, inner)])` —
//!   the externally-tagged convention of upstream serde.
//!
//! `Deserialize` derives the exact mirror of each shape, so derived types
//! round-trip through `serde_json::to_string` / `from_str`. Struct
//! decoding is strict — unknown keys error, and a missing key is only
//! forgiven when the field type's `Deserialize::absent` supplies a value
//! (`Option` fields). Enum decoding is strict too: an unknown variant
//! name (string or map key) errors, and a tag map must carry exactly one
//! entry.
//!
//! Generic types, multi-field tuple variants and struct variants are
//! rejected with a compile error naming this file, so the remaining gap
//! is explicit rather than silent.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

/// One enum variant: unit (`Mode`) or newtype (`Mode(Inner)`).
struct Variant {
    name: String,
    newtype: bool,
}

struct Input {
    name: String,
    shape: Shape,
}

/// Skip one `#[...]` attribute (outer attributes precede the item and each
/// field). `idx` sits on the `#`.
fn skip_attr(tokens: &[TokenTree], mut idx: usize) -> usize {
    idx += 1; // '#'
    if matches!(&tokens[idx], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket) {
        idx += 1;
    }
    idx
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut idx = 0;

    let is_enum = loop {
        match tokens.get(idx) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => idx = skip_attr(&tokens, idx),
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                idx += 1;
                // `pub(crate)` and friends carry a parenthesized restriction.
                if matches!(tokens.get(idx), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    idx += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break false,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break true,
            other => return Err(format!("unexpected token before struct/enum: {other:?}")),
        }
    };
    idx += 1;

    let name = match tokens.get(idx) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    idx += 1;

    if matches!(tokens.get(idx), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde derive does not support generic type `{name}`"
        ));
    }

    let shape = match tokens.get(idx) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            if is_enum {
                Shape::Enum(parse_variants(&name, &body)?)
            } else {
                Shape::Named(parse_named_fields(&body))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && !is_enum => {
            Shape::Tuple(count_tuple_fields(
                &g.stream().into_iter().collect::<Vec<_>>(),
            ))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' && !is_enum => Shape::Unit,
        other => return Err(format!("unsupported item body for `{name}`: {other:?}")),
    };

    Ok(Input { name, shape })
}

/// Field names of a named-field struct body, in declaration order.
fn parse_named_fields(body: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut idx = 0;
    while idx < body.len() {
        match &body[idx] {
            TokenTree::Punct(p) if p.as_char() == '#' => idx = skip_attr(body, idx),
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                idx += 1;
                if matches!(body.get(idx), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    idx += 1;
                }
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                idx += 1;
                // Skip `: Type` up to the next top-level comma. Angle
                // brackets arrive as plain puncts, so track their depth to
                // ignore commas inside `Vec<(A, B)>`-style types.
                let mut angle: i32 = 0;
                while idx < body.len() {
                    match &body[idx] {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                            idx += 1;
                            break;
                        }
                        _ => {}
                    }
                    idx += 1;
                }
            }
            _ => idx += 1,
        }
    }
    fields
}

/// Number of fields in a tuple-struct body (top-level comma count + 1).
fn count_tuple_fields(body: &[TokenTree]) -> usize {
    let mut count = 1;
    let mut angle: i32 = 0;
    for (i, tok) in body.iter().enumerate() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            // A trailing comma does not introduce a field.
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 && i + 1 < body.len() => {
                count += 1
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(name: &str, body: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut idx = 0;
    while idx < body.len() {
        match &body[idx] {
            TokenTree::Punct(p) if p.as_char() == '#' => idx = skip_attr(body, idx),
            TokenTree::Ident(id) => {
                let vname = id.to_string();
                idx += 1;
                match body.get(idx) {
                    None => variants.push(Variant {
                        name: vname,
                        newtype: false,
                    }),
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                        variants.push(Variant {
                            name: vname,
                            newtype: false,
                        });
                        idx += 1;
                    }
                    // `= discriminant` runs to the next comma.
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                        variants.push(Variant {
                            name: vname,
                            newtype: false,
                        });
                        while idx < body.len()
                            && !matches!(&body[idx], TokenTree::Punct(p) if p.as_char() == ',')
                        {
                            idx += 1;
                        }
                        idx += 1;
                    }
                    // `Variant(Inner)` — a newtype variant. Multi-field
                    // tuple variants and struct variants stay rejected.
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        if count_tuple_fields(&inner) != 1 || inner.is_empty() {
                            return Err(format!(
                                "vendored serde derive only supports unit and newtype \
                                 variants; `{name}::{vname}` carries several fields"
                            ));
                        }
                        variants.push(Variant {
                            name: vname,
                            newtype: true,
                        });
                        idx += 1;
                        if matches!(body.get(idx), Some(TokenTree::Punct(p)) if p.as_char() == ',')
                        {
                            idx += 1;
                        }
                    }
                    Some(TokenTree::Group(_)) => {
                        return Err(format!(
                            "vendored serde derive only supports unit and newtype \
                             variants; `{name}::{vname}` is a struct variant"
                        ))
                    }
                    other => return Err(format!("unexpected token in enum `{name}`: {other:?}")),
                }
            }
            _ => idx += 1,
        }
    }
    Ok(variants)
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Named(fields) => {
            let entries = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Map(::std::vec![{entries}])")
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Shape::Tuple(n) => {
            let entries = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Seq(::std::vec![{entries}])")
        }
        Shape::Unit => "::serde::Value::Null".to_owned(),
        Shape::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    if v.newtype {
                        // Externally tagged: {"Variant": inner}.
                        format!(
                            "{name}::{vn}(__x) => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from({vn:?}),\
                                 ::serde::Serialize::to_value(__x))])"
                        )
                    } else {
                        format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?}))"
                        )
                    }
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        // Mirror of the Serialize shapes: map in declaration order back to
        // a named struct (strict: unknown keys are errors, missing keys
        // fall back to `Deserialize::absent`, i.e. only `Option` fields
        // may be omitted).
        Shape::Named(fields) => {
            let known_arms = fields
                .iter()
                .map(|f| format!("{f:?} => {{}}"))
                .collect::<Vec<_>>()
                .join(", ");
            let inits = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__field(__entries, {f:?}, {name:?})?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "let __entries = match __v {{\n\
                     ::serde::Value::Map(entries) => entries,\n\
                     other => return ::std::result::Result::Err(\n\
                         ::serde::DeError::expected(concat!(\"map for struct `\", {name:?}, \"`\"), other)),\n\
                 }};\n\
                 for (__k, _) in __entries.iter() {{\n\
                     match __k.as_str() {{\n\
                         {known_arms}{comma} __other => return ::std::result::Result::Err(\n\
                             ::serde::DeError::unknown_field(__other, {name:?})),\n\
                     }}\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})",
                comma = if known_arms.is_empty() { "" } else { "," },
            )
        }
        Shape::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
        ),
        Shape::Tuple(n) => {
            let inits = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(&__items[{i}])\n\
                             .map_err(|e| e.at_index({i}))?"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "let __items = match __v {{\n\
                     ::serde::Value::Seq(items) if items.len() == {n} => items,\n\
                     other => return ::std::result::Result::Err(\n\
                         ::serde::DeError::expected(concat!(\"{n}-element sequence for `\", {name:?}, \"`\"), other)),\n\
                 }};\n\
                 ::std::result::Result::Ok({name}({inits}))"
            )
        }
        Shape::Unit => format!(
            "match __v {{\n\
                 ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                 other => ::std::result::Result::Err(\n\
                     ::serde::DeError::expected(concat!(\"null for unit struct `\", {name:?}, \"`\"), other)),\n\
             }}"
        ),
        Shape::Enum(variants) => {
            let mut unit_arms = variants
                .iter()
                .filter(|v| !v.newtype)
                .map(|v| format!("{:?} => ::std::result::Result::Ok({name}::{}),", v.name, v.name))
                .collect::<Vec<_>>()
                .join(" ");
            unit_arms.push(' ');
            if variants.iter().all(|v| !v.newtype) {
                // Pure fieldless enum: the historical (and simplest) shape.
                format!(
                    "match __v {{\n\
                         ::serde::Value::Str(s) => match s.as_str() {{\n\
                             {unit_arms}\n\
                             other => ::std::result::Result::Err(\n\
                                 ::serde::DeError::unknown_variant(other, {name:?})),\n\
                         }},\n\
                         other => ::std::result::Result::Err(\n\
                             ::serde::DeError::expected(concat!(\"string for enum `\", {name:?}, \"`\"), other)),\n\
                     }}"
                )
            } else {
                // Mixed enum: unit variants arrive as strings, newtype
                // variants as single-entry `{"Variant": inner}` maps.
                let mut tag_arms = variants
                    .iter()
                    .filter(|v| v.newtype)
                    .map(|v| {
                        format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\n\
                                 ::serde::Deserialize::from_value(__inner)\n\
                                     .map_err(|e| e.in_field({vn:?}))?)),",
                            vn = v.name
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(" ");
                tag_arms.push(' ');
                format!(
                    "match __v {{\n\
                         ::serde::Value::Str(s) => match s.as_str() {{\n\
                             {unit_arms}\n\
                             other => ::std::result::Result::Err(\n\
                                 ::serde::DeError::unknown_variant(other, {name:?})),\n\
                         }},\n\
                         ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                             let (__tag, __inner) = &__entries[0];\n\
                             match __tag.as_str() {{\n\
                                 {tag_arms}\n\
                                 other => ::std::result::Result::Err(\n\
                                     ::serde::DeError::unknown_variant(other, {name:?})),\n\
                             }}\n\
                         }}\n\
                         other => ::std::result::Result::Err(\n\
                             ::serde::DeError::expected(\n\
                                 concat!(\"string or single-entry map for enum `\", {name:?}, \"`\"), other)),\n\
                     }}"
                )
            }
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value)\n\
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
