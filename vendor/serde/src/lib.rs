//! Hermetic, dependency-free subset of the [`serde`] API.
//!
//! Provides the [`Serialize`]/[`Deserialize`] traits and their derives for
//! offline builds. Both directions are tree-based: [`Serialize::to_value`]
//! lowers a value into the [`Value`] data model (which `serde_json`
//! renders), and [`Deserialize::from_value`] lifts a parsed [`Value`] tree
//! back into a typed value with structured [`DeError`]s (wrong shape,
//! missing field, unknown field/variant — each carrying the field path it
//! occurred under). The derives mirror each other: a
//! `#[derive(Serialize, Deserialize)]` struct round-trips through
//! `serde_json::to_string` / `serde_json::from_str`.
//!
//! Deliberate differences from the real crate: struct decoding rejects
//! unknown fields (the real `serde` ignores them unless
//! `deny_unknown_fields` is set — the service protocol built on this stub
//! wants strictness), and a missing field is only forgiven for `Option`
//! fields (via [`Deserialize::absent`]), the moral equivalent of
//! `#[serde(default)]` on options.
//!
//! [`serde`]: https://crates.io/crates/serde

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model serialization lowers into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Field order is preserved (matters for readable JSON output).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// A short shape description for error messages ("map", "string", …).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Types that can lower themselves into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// A typed-deserialization failure: what was expected, what was found, and
/// the field/index path it happened under (innermost first).
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(String);

impl DeError {
    /// A free-form error message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }

    /// `expected <what>, found <shape of v>`.
    pub fn expected(what: &str, got: &Value) -> Self {
        Self(format!("expected {what}, found {}", got.kind()))
    }

    /// A required field of `ty` is absent from the map.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        Self(format!("missing field `{field}` of `{ty}`"))
    }

    /// The map carries a key `ty` does not declare (decoding is strict).
    pub fn unknown_field(field: &str, ty: &str) -> Self {
        Self(format!("unknown field `{field}` of `{ty}`"))
    }

    /// The string names no variant of the fieldless enum `ty`.
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        Self(format!("unknown variant `{variant}` of `{ty}`"))
    }

    /// Prefix the error with the struct field it occurred in.
    pub fn in_field(self, field: &str) -> Self {
        Self(format!("{field}: {}", self.0))
    }

    /// Prefix the error with the sequence index it occurred at.
    pub fn at_index(self, index: usize) -> Self {
        Self(format!("[{index}]: {}", self.0))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can lift themselves out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Decode a value from a parsed tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// The value a struct field of this type takes when its key is absent
    /// from the map: `None` makes the field required (the derive reports a
    /// missing-field error), `Some(default)` supplies the default.
    /// `Option<T>` overrides this to `Some(None)`, so optional fields may
    /// simply be omitted.
    fn absent() -> Option<Self> {
        None
    }
}

/// Derive-internal helper: pull field `name` of struct `ty` out of a map's
/// entries, falling back to [`Deserialize::absent`] when the key is
/// missing. First occurrence wins on duplicate keys, matching the
/// first-match semantics of value-level lookups elsewhere in the
/// workspace.
#[doc(hidden)]
pub fn __field<T: Deserialize>(
    entries: &[(String, Value)],
    name: &str,
    ty: &str,
) -> Result<T, DeError> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| e.in_field(name)),
        None => T::absent().ok_or_else(|| DeError::missing_field(name, ty)),
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    /// A [`Value`] lowers to itself, so parsed trees (e.g. replayed
    /// checkpoint-journal records) can be re-serialized verbatim.
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl Deserialize for Value {
    /// A [`Value`] lifts to itself, keeping value-level
    /// `serde_json::from_str` (checkpoint journals, ad-hoc inspection)
    /// working through the typed entry point.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::expected(stringify!($t), v)),
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::expected(stringify!($t), v)),
                    other => Err(DeError::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}
impl_de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    /// Accepts integer tokens too: the JSON writer renders a fractionless
    /// float as `1.0`, but hand-written requests may say `1`.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => {
                let mut chars = s.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(DeError::custom(format!(
                        "expected single-character string, found {s:?}"
                    ))),
                }
            }
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    /// An omitted `Option` field is `None` (the derive consults this for
    /// missing keys).
    fn absent() -> Option<Self> {
        Some(None)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items
                .iter()
                .enumerate()
                .map(|(i, item)| T::from_value(item).map_err(|e| e.at_index(i)))
                .collect(),
            other => Err(DeError::expected("sequence", other)),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected {N} elements, found {len}")))
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == 2 => Ok((
                A::from_value(&items[0]).map_err(|e| e.at_index(0))?,
                B::from_value(&items[1]).map_err(|e| e.at_index(1))?,
            )),
            other => Err(DeError::expected("2-element sequence", other)),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == 3 => Ok((
                A::from_value(&items[0]).map_err(|e| e.at_index(0))?,
                B::from_value(&items[1]).map_err(|e| e.at_index(1))?,
                C::from_value(&items[2]).map_err(|e| e.at_index(2))?,
            )),
            other => Err(DeError::expected("3-element sequence", other)),
        }
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| {
                    V::from_value(val)
                        .map(|decoded| (k.clone(), decoded))
                        .map_err(|e| e.in_field(k))
                })
                .collect(),
            other => Err(DeError::expected("map", other)),
        }
    }
}

#[cfg(test)]
mod de_tests {
    use super::*;

    #[test]
    fn scalars_lift() {
        assert_eq!(bool::from_value(&Value::Bool(true)), Ok(true));
        assert_eq!(u8::from_value(&Value::UInt(7)), Ok(7));
        assert_eq!(i64::from_value(&Value::Int(-7)), Ok(-7));
        assert_eq!(u32::from_value(&Value::Int(12)), Ok(12));
        assert_eq!(f64::from_value(&Value::UInt(2)), Ok(2.0));
        assert_eq!(String::from_value(&Value::Str("x".into())), Ok("x".into()));
        assert_eq!(char::from_value(&Value::Str("ε".into())), Ok('ε'));
    }

    #[test]
    fn out_of_range_ints_error() {
        assert!(u8::from_value(&Value::UInt(256)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
        assert!(i8::from_value(&Value::UInt(200)).is_err());
        assert!(u8::from_value(&Value::Float(3.5)).is_err());
    }

    #[test]
    fn containers_lift() {
        let v = Value::Seq(vec![Value::UInt(1), Value::UInt(2)]);
        assert_eq!(Vec::<u8>::from_value(&v), Ok(vec![1, 2]));
        assert_eq!(<[u8; 2]>::from_value(&v), Ok([1, 2]));
        assert!(<[u8; 3]>::from_value(&v).is_err());
        assert_eq!(<(u8, u8)>::from_value(&v), Ok((1, 2)));
        let m = Value::Map(vec![("a".into(), Value::UInt(1))]);
        let tree = std::collections::BTreeMap::<String, u8>::from_value(&m).unwrap();
        assert_eq!(tree["a"], 1);
    }

    #[test]
    fn options_absent_and_null() {
        assert_eq!(Option::<u8>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u8>::from_value(&Value::UInt(3)), Ok(Some(3)));
        assert_eq!(Option::<u8>::absent(), Some(None));
        assert_eq!(u8::absent(), None);
    }

    #[test]
    fn errors_carry_paths() {
        let v = Value::Seq(vec![Value::UInt(1), Value::Str("x".into())]);
        let err = Vec::<u8>::from_value(&v).unwrap_err();
        assert_eq!(err.to_string(), "[1]: expected u8, found string");
        let entries = vec![("a".into(), Value::Str("x".into()))];
        let err = __field::<u8>(&entries, "a", "T").unwrap_err();
        assert_eq!(err.to_string(), "a: expected u8, found string");
        let err = __field::<u8>(&entries, "b", "T").unwrap_err();
        assert_eq!(err.to_string(), "missing field `b` of `T`");
    }
}
