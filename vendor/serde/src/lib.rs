//! Hermetic, dependency-free subset of the [`serde`] API.
//!
//! Provides the [`Serialize`]/[`Deserialize`] traits and their derives for
//! offline builds. Serialization is tree-based: [`Serialize::to_value`]
//! lowers a value into the [`Value`] data model, which `serde_json` renders.
//! `Deserialize` is a marker trait — nothing in this workspace parses JSON
//! back in yet; the derive emits an empty impl so `#[derive(Deserialize)]`
//! stays source-compatible with the real crate.
//!
//! [`serde`]: https://crates.io/crates/serde

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model serialization lowers into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Field order is preserved (matters for readable JSON output).
    Map(Vec<(String, Value)>),
}

/// Types that can lower themselves into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Marker for types the derive declares deserializable.
pub trait Deserialize: Sized {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    /// A [`Value`] lowers to itself, so parsed trees (e.g. replayed
    /// checkpoint-journal records) can be re-serialized verbatim.
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}
