//! Hermetic, dependency-free subset of the [`rand`] 0.8 API.
//!
//! The workspace builds in offline environments, so instead of the crates.io
//! `rand` this stand-in provides exactly the surface the repository uses:
//! [`Rng::gen_range`] over half-open and inclusive integer/float ranges,
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], and a deterministic
//! [`rngs::StdRng`]. The generator is SplitMix64 + xorshift finalization —
//! statistically fine for workload generation and property tests, not
//! cryptographic.
//!
//! [`rand`]: https://crates.io/crates/rand

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// A uniform sample of a full-range value.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types a full-range sample exists for (the `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (deterministic across platforms).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Map a raw word to `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that admit uniform single-value sampling.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Multiply-shift bounded sampling; bias is < 2^-64 per draw,
                // far below what the generators and tests can resolve.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + hi
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range in gen_range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                start + hi
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range in gen_range");
                start + (end - start) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64 stream).
    ///
    /// Named after `rand::rngs::StdRng` for drop-in compatibility; the
    /// stream differs from the real crate's ChaCha12, which only matters if
    /// exact sequences were recorded elsewhere.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix so nearby seeds diverge immediately.
            let mut rng = StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            };
            rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..=5);
            assert!(y <= 5);
            let f = rng.gen_range(0.5f64..4.0);
            assert!((0.5..4.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0 - f64::EPSILON)));
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
