//! Hermetic, dependency-free subset of the [`rand`] 0.8 API.
//!
//! The workspace builds in offline environments, so instead of the crates.io
//! `rand` this stand-in provides exactly the surface the repository uses:
//! [`Rng::gen_range`] over half-open and inclusive integer/float ranges,
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], and a deterministic
//! [`rngs::StdRng`]. The generator is SplitMix64 + xorshift finalization —
//! statistically fine for workload generation and property tests, not
//! cryptographic.
//!
//! [`rand`]: https://crates.io/crates/rand

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// A uniform sample of a full-range value.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types a full-range sample exists for (the `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (deterministic across platforms).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Map a raw word to `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Distributions sampled with an external generator (the `rand` 0.8
/// `Distribution` trait, minus the iterator sugar).
pub trait Distribution<T> {
    /// Draw one sample using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

pub mod distributions {
    //! Concrete distributions.

    use super::{unit_f64, Distribution, RngCore};

    /// Exponential distribution with rate `lambda` (mean `1 / lambda`),
    /// sampled by inversion: `-ln(1 - U) / lambda` for `U` uniform in
    /// `[0, 1)`.
    ///
    /// Inversion keeps the draw a pure function of one generator word,
    /// which the failure-trace sampling relies on: a trace is replayable
    /// from its stream seed alone. Samples are finite (the largest draw is
    /// `-ln(2^-53) / lambda ≈ 36.74 / lambda`) and non-negative.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Exp {
        lambda: f64,
    }

    impl Exp {
        /// An exponential with rate `lambda`, which must be finite and
        /// strictly positive.
        pub fn new(lambda: f64) -> Self {
            assert!(
                lambda.is_finite() && lambda > 0.0,
                "Exp rate must be finite and > 0, got {lambda}"
            );
            Self { lambda }
        }

        /// The rate parameter.
        pub fn lambda(&self) -> f64 {
            self.lambda
        }
    }

    impl Distribution<f64> for Exp {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            let u = unit_f64(rng.next_u64());
            -(1.0 - u).ln() / self.lambda
        }
    }
}

/// Ranges that admit uniform single-value sampling.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Multiply-shift bounded sampling; bias is < 2^-64 per draw,
                // far below what the generators and tests can resolve.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + hi
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range in gen_range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                start + hi
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range in gen_range");
                start + (end - start) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64 stream).
    ///
    /// Named after `rand::rngs::StdRng` for drop-in compatibility; the
    /// stream differs from the real crate's ChaCha12, which only matters if
    /// exact sequences were recorded elsewhere.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix so nearby seeds diverge immediately.
            let mut rng = StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            };
            rng.next_u64();
            rng
        }
    }

    /// The SplitMix64 finalizer on its own: a 64-bit avalanche mix.
    fn mix64(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// Deterministically derive stream `stream` of the generator family
        /// seeded by `seed` — SplitMix64-style stream splitting.
        ///
        /// Each `(seed, stream)` pair yields a statistically independent
        /// sequence, and the derivation is a pure function of the two words:
        /// no draws from any parent generator are consumed, so splitting is
        /// order-free and safe to do from many threads/shards at once. The
        /// stream index is salted and avalanche-mixed before being folded
        /// into the seed so that consecutive stream indices (the common
        /// case: one stream per work item) land in unrelated states.
        ///
        /// The exact sequences are pinned by golden tests; changing this
        /// derivation invalidates every recorded failure trace.
        pub fn from_seed_and_stream(seed: u64, stream: u64) -> Self {
            let salt = mix64(stream ^ 0x6A09_E667_F3BC_C909);
            let mut rng = StdRng {
                state: mix64(seed).wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            };
            rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..=5);
            assert!(y <= 5);
            let f = rng.gen_range(0.5f64..4.0);
            assert!((0.5..4.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0 - f64::EPSILON)));
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    // ------------------------------------------------------------------
    // Golden values. These pin the exact output of the stream-splitting
    // derivation and the exponential sampler: recorded failure traces are
    // keyed by (seed, stream), so a vendor upgrade that reshuffles either
    // sequence silently invalidates every SLO report. If one of these
    // fails, the generator changed — do not re-bless without bumping the
    // campaign signature scheme.
    // ------------------------------------------------------------------

    use super::distributions::Exp;
    use super::{Distribution, RngCore};

    #[test]
    fn golden_stream_split_sequences() {
        let draws = |seed, stream| {
            let mut r = StdRng::from_seed_and_stream(seed, stream);
            [r.next_u64(), r.next_u64(), r.next_u64(), r.next_u64()]
        };
        assert_eq!(
            draws(0xB10B_5EED, 0),
            [
                0xC994_CC63_AADE_3A8A,
                0xC707_F7FA_85E0_7D02,
                0x09A3_22C1_11AA_B9B7,
                0xCE2B_BFEB_7252_AFEC,
            ]
        );
        assert_eq!(
            draws(0xB10B_5EED, 1),
            [
                0x5AAA_8334_E562_0523,
                0x787D_CF38_47E2_C9A4,
                0x2A65_8396_721B_FC49,
                0xF574_987C_EDEB_89E1,
            ]
        );
        assert_eq!(
            draws(7, 42),
            [
                0x7CE0_BCD9_7586_C94D,
                0xB19F_BF3A_5132_7EB0,
                0xF0A7_FAE5_0055_1383,
                0x124C_B14C_51D9_DA8D,
            ]
        );
    }

    #[test]
    fn golden_exponential_bits() {
        // Compared as IEEE-754 bit patterns: the contract is bit-identity,
        // not approximate equality.
        let exp = Exp::new(0.5);
        let mut r = StdRng::from_seed_and_stream(1, 2);
        let bits: Vec<u64> = (0..4).map(|_| exp.sample(&mut r).to_bits()).collect();
        assert_eq!(
            bits,
            vec![
                0x4005_24FC_B0BE_0C6F, // ≈ 2.643060
                0x3F8F_2C4B_C384_280C, // ≈ 0.015221
                0x4023_E85C_111F_649B, // ≈ 9.953827
                0x3FF1_619C_1A9D_1313, // ≈ 1.086331
            ]
        );
    }

    #[test]
    fn split_streams_are_independent_and_order_free() {
        // Same (seed, stream) twice → identical; different stream → new
        // sequence; derivation consumes nothing from any parent state.
        let seq = |seed, stream| {
            let mut r = StdRng::from_seed_and_stream(seed, stream);
            (0..16).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(seq(9, 3), seq(9, 3));
        assert_ne!(seq(9, 3), seq(9, 4));
        assert_ne!(seq(9, 3), seq(10, 3));
        // Streams don't collide with the plain seeded generator either.
        let mut plain = StdRng::seed_from_u64(9);
        let plain_seq: Vec<u64> = (0..16).map(|_| plain.next_u64()).collect();
        assert_ne!(seq(9, 0), plain_seq);
    }

    #[test]
    fn exponential_sampler_shape() {
        let exp = Exp::new(2.0);
        let mut r = StdRng::from_seed_and_stream(0xDEAD_BEEF, 17);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = exp.sample(&mut r);
            assert!(x.is_finite() && x >= 0.0);
            sum += x;
        }
        let mean = sum / n as f64;
        // Mean of Exp(2) is 0.5; the sampler should land close.
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }
}
