//! Hermetic, dependency-free subset of the [`criterion`] benchmarking API.
//!
//! Real wall-clock measurement with warm-up, calibrated batching, and
//! multiple samples — but none of the statistics machinery, plotting, or
//! result persistence of the real crate. Reported numbers are the median
//! and min/max of the per-sample means, printed to stderr in a
//! `group/bench: median ns/iter (min .. max)` line per benchmark.
//!
//! ## Machine-readable output
//!
//! When the `CRITERION_JSON` environment variable names a file, every
//! completed benchmark is also collected and [`Criterion::final_summary`]
//! writes them as a single JSON document (`{"schema": "ltf-bench-v1",
//! "entries": [{"name", "median_ns", "min_ns", "max_ns"}, ...]}`) — the
//! format consumed by the repository's `bench-gate` regression check.
//!
//! The collection is per-process and the write is an overwrite, so point
//! `CRITERION_JSON` at **one bench target** (`cargo bench --bench <name>`):
//! a bare `cargo bench` runs each target as its own process and only the
//! last target's results would survive in the file.
//!
//! [`criterion`]: https://crates.io/crates/criterion

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Benchmarks completed so far, pending a `CRITERION_JSON` flush:
/// `(id, median, min, max)` in ns/iter.
static JSON_RESULTS: Mutex<Vec<(String, f64, f64, f64)>> = Mutex::new(Vec::new());

/// Minimal JSON string escaping for benchmark ids.
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn write_json_summary(path: &std::path::Path) -> std::io::Result<()> {
    let rows = JSON_RESULTS.lock().unwrap();
    let mut out = String::from("{\n  \"schema\": \"ltf-bench-v1\",\n  \"entries\": [\n");
    for (i, (id, median, min, max)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {median:.1}, \"min_ns\": {min:.1}, \"max_ns\": {max:.1}}}{comma}\n",
            json_escape(id)
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

pub use std::hint::black_box;

/// Benchmark driver. Construct with [`Criterion::default`], adjust with the
/// builder methods, then open groups via [`Criterion::benchmark_group`].
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark (each sample is many iterations).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Time spent running the closure before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Measurement budget; iterations per sample are calibrated to fit.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for source compatibility; the harness arguments cargo
    /// passes (`--bench`, filters) are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// End-of-run hook. The real crate prints its aggregate report here;
    /// this shim reported each bench to stderr as it finished, so the only
    /// work left is flushing the JSON summary when `CRITERION_JSON` asks
    /// for one.
    pub fn final_summary(&mut self) {
        if let Some(path) = std::env::var_os("CRITERION_JSON") {
            let path = std::path::PathBuf::from(path);
            if let Err(e) = write_json_summary(&path) {
                eprintln!("CRITERION_JSON: failed to write {}: {e}", path.display());
            }
        }
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let settings = self.clone();
        run_benchmark(&settings, &id.to_string(), f);
        self
    }
}

/// A named set of benchmarks sharing the parent [`Criterion`] settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let settings = self.criterion.clone();
        run_benchmark(&settings, &format!("{}/{}", self.name, id), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// A `function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Handed to the benchmark closure; call [`Bencher::iter`] with the kernel.
pub struct Bencher<'a> {
    settings: &'a Criterion,
    samples_ns: Vec<f64>,
}

impl Bencher<'_> {
    /// Measure `f`: warm up, calibrate iterations per sample, then record
    /// `sample_size` timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, also yielding a first time-per-iteration estimate.
        let warm_up = self.settings.warm_up_time;
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < warm_up {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Iterations per sample so all samples fit the measurement budget.
        let budget = self.settings.measurement_time.as_secs_f64();
        let per_sample = budget / self.settings.sample_size as f64;
        let iters = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        self.samples_ns.clear();
        for _ in 0..self.settings.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / iters as f64;
            self.samples_ns.push(ns);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(settings: &Criterion, id: &str, mut f: F) {
    let mut bencher = Bencher {
        settings,
        samples_ns: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples_ns.is_empty() {
        eprintln!("{id}: no measurement (closure never called iter)");
        return;
    }
    let mut s = bencher.samples_ns;
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = s[s.len() / 2];
    eprintln!(
        "{id}: {} ns/iter (min {} .. max {})",
        fmt_ns(median),
        fmt_ns(s[0]),
        fmt_ns(s[s.len() - 1])
    );
    if std::env::var_os("CRITERION_JSON").is_some() {
        JSON_RESULTS
            .lock()
            .unwrap()
            .push((id.to_string(), median, s[0], s[s.len() - 1]));
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2}M", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}k", ns / 1e3)
    } else {
        format!("{ns:.1}")
    }
}

/// Collect benchmark functions under a group name (source-compat shim; the
/// functions run sequentially).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .configure_from_args()
    }

    #[test]
    fn group_benches_run() {
        let mut c = quick();
        let mut group = c.benchmark_group("test");
        let mut ran = false;
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = quick();
        let mut group = c.benchmark_group("params");
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("double", 21), &21u64, |b, &n| {
            b.iter(|| n * 2);
            seen = n;
        });
        group.finish();
        assert_eq!(seen, 21);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a/b"), "a/b");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn json_summary_shape() {
        JSON_RESULTS
            .lock()
            .unwrap()
            .push(("shape/test/1".into(), 1234.5, 1000.0, 2000.0));
        let path = std::env::temp_dir().join("criterion_shim_json_summary_test.json");
        write_json_summary(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(text.contains("\"schema\": \"ltf-bench-v1\""));
        assert!(text.contains("\"name\": \"shape/test/1\""));
        assert!(text.contains("\"median_ns\": 1234.5"));
        assert!(text.trim_end().ends_with('}'));
    }
}
