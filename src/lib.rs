//! # ltf-sched
//!
//! A from-scratch Rust implementation of
//! *"Optimizing the Latency of Streaming Applications under Throughput and
//! Reliability Constraints"* (Anne Benoit, Mourad Hakem, Yves Robert,
//! 2009): the **LTF** and **R-LTF** heuristics that map a streaming
//! workflow DAG — actively replicated to survive `ε` processor failures —
//! onto a heterogeneous platform under the bi-directional one-port model,
//! meeting a prescribed throughput while minimizing the pipeline latency
//! `L = (2S − 1)/T`.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`graph`] — the weighted DAG application model and workload
//!   generators (`ltf-graph`);
//! * [`platform`] — heterogeneous processors and one-port links
//!   (`ltf-platform`);
//! * [`schedule`] — replicated schedule representation, pipeline stages,
//!   validation, and the crash-failure analyses (`ltf-schedule`);
//! * [`core`] — the LTF / R-LTF algorithms and the objective-space
//!   searches (`ltf-core`);
//! * [`baselines`] — task-parallel, data-parallel, and throughput-first
//!   comparison strategies (`ltf-baselines`);
//! * [`sim`] — discrete-event pipelined-execution simulation with crash
//!   injection (`ltf-sim`);
//! * [`experiments`] — the paper's full evaluation harness
//!   (`ltf-experiments`).
//!
//! ## Quickstart
//!
//! ```
//! use ltf_sched::core::{rltf_schedule, AlgoConfig};
//! use ltf_sched::graph::GraphBuilder;
//! use ltf_sched::platform::Platform;
//! use ltf_sched::schedule::validate;
//!
//! // A 3-task video pipeline: capture -> encode -> publish.
//! let mut b = GraphBuilder::new();
//! let capture = b.add_named_task("capture", 4.0);
//! let encode = b.add_named_task("encode", 9.0);
//! let publish = b.add_named_task("publish", 3.0);
//! b.add_edge(capture, encode, 2.0);
//! b.add_edge(encode, publish, 1.0);
//! let g = b.build().unwrap();
//!
//! // Four identical processors; survive any single failure (ε = 1)
//! // while emitting a frame every 10 time units.
//! let p = Platform::homogeneous(4, 1.0, 0.5);
//! let cfg = AlgoConfig::with_throughput(1, 0.1);
//! let sched = rltf_schedule(&g, &p, &cfg).unwrap();
//!
//! validate(&g, &p, &sched).unwrap();
//! // Tasks cannot pair up within Δ = 10 (4+9, 9+3 > 10): three stages,
//! // one per task, latency (2·3 − 1)·10 = 50.
//! assert!(sched.latency_upper_bound() <= 50.0);
//! ```

pub use ltf_baselines as baselines;
pub use ltf_core as core;
pub use ltf_experiments as experiments;
pub use ltf_graph as graph;
pub use ltf_platform as platform;
pub use ltf_schedule as schedule;
pub use ltf_sim as sim;
