//! # ltf-sched
//!
//! A from-scratch Rust implementation of
//! *"Optimizing the Latency of Streaming Applications under Throughput and
//! Reliability Constraints"* (Anne Benoit, Mourad Hakem, Yves Robert,
//! 2009): the **LTF** and **R-LTF** heuristics that map a streaming
//! workflow DAG — actively replicated to survive `ε` processor failures —
//! onto a heterogeneous platform under the bi-directional one-port model,
//! meeting a prescribed throughput while minimizing the pipeline latency
//! `L = (2S − 1)/T`.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`graph`] — the weighted DAG application model and workload
//!   generators (`ltf-graph`);
//! * [`platform`] — heterogeneous processors and one-port links
//!   (`ltf-platform`);
//! * [`schedule`] — replicated schedule representation, pipeline stages,
//!   validation, and the crash-failure analyses (`ltf-schedule`);
//! * [`core`] — the LTF / R-LTF algorithms and the objective-space
//!   searches (`ltf-core`);
//! * [`baselines`] — task-parallel, data-parallel, and throughput-first
//!   comparison strategies (`ltf-baselines`);
//! * [`sim`] — discrete-event pipelined-execution simulation with crash
//!   injection (`ltf-sim`);
//! * [`faultlab`] — stochastic failure campaigns: crash-trace sampling,
//!   replay, and SLO distribution reporting (`ltf-faultlab`);
//! * [`experiments`] — the paper's full evaluation harness
//!   (`ltf-experiments`).
//!
//! ## Quickstart
//!
//! Every strategy — LTF, R-LTF, the fault-free reference and the
//! baselines — is a [`core::Heuristic`] dispatched by name through a
//! [`core::Solver`] session ([`baselines::full_solver`] registers the
//! whole family):
//!
//! ```
//! use ltf_sched::baselines::full_solver;
//! use ltf_sched::core::AlgoConfig;
//! use ltf_sched::graph::GraphBuilder;
//! use ltf_sched::platform::Platform;
//! use ltf_sched::schedule::validate;
//!
//! // A 3-task video pipeline: capture -> encode -> publish.
//! let mut b = GraphBuilder::new();
//! let capture = b.add_named_task("capture", 4.0);
//! let encode = b.add_named_task("encode", 9.0);
//! let publish = b.add_named_task("publish", 3.0);
//! b.add_edge(capture, encode, 2.0);
//! b.add_edge(encode, publish, 1.0);
//! let g = b.build().unwrap();
//!
//! // Four identical processors; survive any single failure (ε = 1)
//! // while emitting a frame every 10 time units.
//! let p = Platform::homogeneous(4, 1.0, 0.5);
//! let solver = full_solver(&g, &p);
//! let cfg = AlgoConfig::with_throughput(1, 0.1);
//! let sol = solver.solve("rltf", &cfg).unwrap();
//!
//! validate(&g, &p, &sol.schedule).unwrap();
//! // Tasks cannot pair up within Δ = 10 (4+9, 9+3 > 10): three stages,
//! // one per task, latency (2·3 − 1)·10 = 50.
//! assert!(sol.metrics.latency_upper_bound <= 50.0);
//! assert_eq!(sol.metrics.stages, 3);
//!
//! // The baselines answer the same calls: HEFT (ε = 0) at a frame
//! // every 16 units makespan-schedules the whole chain.
//! let sol = solver.solve("heft", &AlgoConfig::with_throughput(0, 1.0 / 16.0)).unwrap();
//! assert_eq!(sol.metrics.epsilon, 0);
//! ```

pub use ltf_baselines as baselines;
pub use ltf_core as core;
pub use ltf_experiments as experiments;
pub use ltf_faultlab as faultlab;
pub use ltf_graph as graph;
pub use ltf_platform as platform;
pub use ltf_schedule as schedule;
pub use ltf_sim as sim;
