//! Differential tests: each of the three single-objective searches is
//! recovered (within bisection tolerance) as an extreme point of the
//! enumerated Pareto front on the paper's worked examples. The enumerator
//! drives the same period bisection per (ε, prefix) cell, so the front
//! must contain — or dominate — every single-objective optimum.

use ltf_sched::core::search::pareto::{pareto_front, ParetoOptions};
use ltf_sched::core::search::{max_epsilon, min_period, min_processors, SearchOptions};
use ltf_sched::core::Rltf;
use ltf_sched::graph::generate::{fig1_diamond, fig2_workflow_variant};
use ltf_sched::platform::Platform;

const TOL: f64 = 1e-6;

fn worked_examples() -> Vec<(&'static str, ltf_sched::graph::TaskGraph, Platform)> {
    vec![
        ("fig1", fig1_diamond(), Platform::fig1_platform()),
        (
            "fig2-variant",
            fig2_workflow_variant(),
            Platform::homogeneous(8, 1.0, 1.0),
        ),
    ]
}

#[test]
fn min_period_is_an_extreme_point_of_the_front() {
    for (label, g, p) in worked_examples() {
        let front = pareto_front(&g, &p, &Rltf, &ParetoOptions::default());
        for eps in 0..3u8 {
            let opts = SearchOptions {
                epsilon: eps,
                ..Default::default()
            };
            let Some((t_star, _)) = min_period(&g, &p, &Rltf, &opts) else {
                continue;
            };
            // Some front point offers ≥ this ε at a period no worse than
            // the single-objective optimum (the full-prefix cell probed
            // exactly that bisection; pruning only keeps dominators).
            let best = front
                .iter()
                .filter(|pt| pt.objectives.epsilon >= eps)
                .map(|pt| pt.objectives.period)
                .fold(f64::INFINITY, f64::min);
            assert!(
                best <= t_star * (1.0 + TOL),
                "{label} ε={eps}: front's best period {best} vs min_period {t_star}"
            );
        }
    }
}

#[test]
fn max_epsilon_is_an_extreme_point_of_the_front() {
    for (label, g, p, period) in [
        ("fig1", fig1_diamond(), Platform::fig1_platform(), 30.0),
        (
            "fig2-variant",
            fig2_workflow_variant(),
            Platform::homogeneous(8, 1.0, 1.0),
            20.0,
        ),
    ] {
        let front = pareto_front(&g, &p, &Rltf, &ParetoOptions::default());
        let Some((eps_star, _)) = max_epsilon(&g, &p, &Rltf, period, None, 0xC0FFEE) else {
            continue;
        };
        // Some front point reaches ε* at a period no worse than the one
        // max_epsilon was asked about.
        let best = front
            .iter()
            .filter(|pt| pt.objectives.period <= period * (1.0 + TOL))
            .map(|pt| pt.objectives.epsilon)
            .max();
        assert!(
            best >= Some(eps_star),
            "{label}: front's best ε {best:?} at Δ≤{period} vs max_epsilon {eps_star}"
        );
    }
}

#[test]
fn min_processors_is_an_extreme_point_of_the_front() {
    for (label, g, p, period) in [
        ("fig1", fig1_diamond(), Platform::fig1_platform(), 30.0),
        (
            "fig2-variant",
            fig2_workflow_variant(),
            Platform::homogeneous(8, 1.0, 1.0),
            20.0,
        ),
    ] {
        let front = pareto_front(&g, &p, &Rltf, &ParetoOptions::default());
        for eps in 0..2u8 {
            let Some((m_star, witness)) = min_processors(&g, &p, &Rltf, eps, period, 0xC0FFEE)
            else {
                continue;
            };
            // Some front point matches (ε, Δ) within no more processors
            // than the single-objective optimum uses.
            let best = front
                .iter()
                .filter(|pt| {
                    pt.objectives.epsilon >= eps && pt.objectives.period <= period * (1.0 + TOL)
                })
                .map(|pt| pt.objectives.procs)
                .min();
            assert!(
                best.is_some_and(|b| b <= m_star.max(witness.procs_used())),
                "{label} ε={eps}: front's best procs {best:?} vs min_processors {m_star}"
            );
        }
    }
}
