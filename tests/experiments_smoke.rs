//! End-to-end smoke of the evaluation harness: a miniature granularity
//! sweep must produce every panel with the paper's qualitative shape.

use ltf_sched::experiments::figures::{feasibility, panel, sweep, Panel, SweepConfig};
use ltf_sched::experiments::scaling::{scaling_sweep, ScalingConfig};

fn tiny() -> SweepConfig {
    SweepConfig {
        graphs_per_point: 6,
        granularities: vec![0.4, 1.2, 2.0],
        crash_draws: 3,
        threads: 8,
        seed: 0xFEED,
        ..Default::default()
    }
}

#[test]
fn sweep_panels_complete_and_ordered() {
    let data = sweep(1, 1, &tiny());
    // All three algorithms on all points.
    for (_, recs) in &data.by_granularity {
        assert_eq!(recs.len(), 18); // 6 seeds × {R-LTF, LTF, FF}
    }

    let bounds = panel(&data, Panel::Bounds);
    assert_eq!(bounds.series.len(), 4);
    for s in &bounds.series {
        assert_eq!(s.points.len(), 3, "missing points in {}", s.name);
    }
    // UpperBound ≥ 0-crash per algorithm.
    for algo in 0..2 {
        let zero = &bounds.series[algo * 2];
        let ub = &bounds.series[algo * 2 + 1];
        for (a, b) in zero.points.iter().zip(&ub.points) {
            assert!(a.mean <= b.mean + 1e-9, "{}: bound below 0-crash", ub.name);
        }
    }
    // R-LTF at or below LTF on the guaranteed bound (the paper's headline).
    for (r, l) in bounds.series[1].points.iter().zip(&bounds.series[3].points) {
        assert!(r.mean <= l.mean + 1e-9, "R-LTF above LTF at g = {}", r.x);
    }

    let crashes = panel(&data, Panel::Crashes);
    for algo in 0..2 {
        let zero = &crashes.series[algo * 2];
        let with = &crashes.series[algo * 2 + 1];
        for (a, b) in zero.points.iter().zip(&with.points) {
            assert!(b.mean + 1e-9 >= a.mean, "crash latency below 0-crash");
        }
    }

    let overhead = panel(&data, Panel::Overhead);
    for s in &overhead.series {
        for pt in &s.points {
            assert!(pt.mean >= -1e-9, "negative overhead in {}", s.name);
        }
    }

    let feas = feasibility(&data);
    for s in &feas.series {
        for pt in &s.points {
            assert!((0.0..=100.0).contains(&pt.mean));
        }
    }
}

#[test]
fn sweep_is_deterministic() {
    let a = sweep(1, 1, &tiny());
    let b = sweep(1, 1, &tiny());
    let pa = panel(&a, Panel::Bounds);
    let pb = panel(&b, Panel::Bounds);
    for (sa, sb) in pa.series.iter().zip(&pb.series) {
        for (x, y) in sa.points.iter().zip(&sb.points) {
            assert_eq!(x.mean, y.mean);
            assert_eq!(x.n, y.n);
        }
    }
}

#[test]
fn csv_render_roundtrip() {
    let data = sweep(1, 1, &tiny());
    let fig = panel(&data, Panel::Bounds);
    let csv = fig.to_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 4); // header + 3 granularities
    assert!(lines[0].starts_with("x,R-LTF With 0 Crash"));
    let ascii = ltf_sched::experiments::ascii::render(&fig, 60, 16);
    assert!(ascii.contains("Granularity"));
}

#[test]
fn scaling_sweep_runs() {
    let cfg = ScalingConfig {
        task_counts: vec![20, 40],
        proc_counts: vec![8],
        epsilons: vec![0, 1],
        reps: 2,
        threads: 8,
        ..Default::default()
    };
    let pts = scaling_sweep(&cfg);
    assert_eq!(pts.len(), 10); // 2 algos × (2 + 1 + 2)
    for p in &pts {
        assert!(p.micros > 0.0);
    }
}
