//! End-to-end reproduction of the paper's §1 motivating example (Fig. 1):
//! all three execution scenarios on the 4-task diamond.

use ltf_sched::baselines::{data_parallel, task_parallel};
use ltf_sched::core::{AlgoConfig, Heuristic, PreparedInstance, Rltf};
use ltf_sched::graph::generate::fig1_diamond;
use ltf_sched::platform::Platform;
use ltf_sched::schedule::validate;

#[test]
fn task_parallelism_matches_paper() {
    let g = fig1_diamond();
    let p = Platform::fig1_platform();
    let out = task_parallel(&g, &p, 1);
    // Paper: L = 39 and T = 1/39.
    assert!((out.latency - 39.0).abs() < 1e-9, "L = {}", out.latency);
    assert!((out.throughput - 1.0 / 39.0).abs() < 1e-12);
    // Two disjoint mirror lanes.
    assert_eq!(out.lanes.len(), 2);
    let mut all: Vec<_> = out.lanes.concat();
    all.sort();
    all.dedup();
    assert_eq!(all.len(), 4, "lanes must be disjoint");
}

#[test]
fn data_parallelism_matches_paper() {
    let g = fig1_diamond();
    let p = Platform::fig1_platform();
    let out = data_parallel(&g, &p, 1);
    // Paper: maximum throughput 2/40 = 1/20 in the absence of failures.
    assert!((out.throughput_optimistic - 0.05).abs() < 1e-12);
    // Guaranteed rate is bounded by the slow members (period 60 each).
    assert!((out.throughput_guaranteed - 1.0 / 30.0).abs() < 1e-12);
    assert_eq!(out.latency, 40.0);
}

#[test]
fn pipelined_execution_matches_paper() {
    let g = fig1_diamond();
    let p = Platform::fig1_platform();
    // Paper: period 30 (stage {t1,t3} on a fast processor: load 20; stage
    // {t2,t4} on a slow one: load 30), S = 2, L = 90.
    let cfg = AlgoConfig::new(1, 30.0);
    let s = Rltf
        .schedule(&PreparedInstance::new(&g, &p), &cfg)
        .expect("pipelined mapping at T = 1/30");
    validate(&g, &p, &s).expect("valid");
    assert_eq!(s.num_stages(), 2, "paper's S = 2");
    assert!(
        (s.latency_upper_bound() - 90.0).abs() < 1e-9,
        "paper's L = 90"
    );
    // Each task is replicated once and copies sit on distinct processors.
    assert_eq!(s.replicas_per_task(), 2);
}

#[test]
fn pipelined_beats_task_parallel_throughput_and_loses_latency() {
    // The trade-off the example illustrates.
    let g = fig1_diamond();
    let p = Platform::fig1_platform();
    let tp = task_parallel(&g, &p, 1);
    let cfg = AlgoConfig::new(1, 30.0);
    let s = Rltf.schedule(&PreparedInstance::new(&g, &p), &cfg).unwrap();
    assert!(
        1.0 / s.period() > tp.throughput,
        "pipelining raises throughput"
    );
    assert!(
        s.latency_upper_bound() > tp.latency,
        "pipelining pays with latency"
    );
}
