//! Differential tests for the `Solver`/`Heuristic` API redesign: every
//! registered heuristic, dispatched by name through the registry, must
//! reproduce its legacy entry point bit for bit — same hosts, identical
//! times, same stages, same source structure, same message set — on the
//! paper's worked examples and on random layered graphs.
//!
//! The strategies whose legacy entry points return strategy-specific
//! outcome types (HEFT/ETF makespan schedules, the task-/data-parallel
//! outcomes) are compared field by field against those outcomes instead.

// The legacy side of every comparison goes through the deprecated shims
// on purpose.
#![allow(deprecated)]

use ltf_sched::baselines::{self, full_solver};
use ltf_sched::core::search::{self, SearchOptions};
use ltf_sched::core::{
    fault_free_reference, ltf_schedule, rltf_schedule, AlgoConfig, Rltf, ScheduleError, Solver,
};
use ltf_sched::experiments::workload::{gen_instance, PaperWorkload};
use ltf_sched::graph::generate::{fig1_diamond, fig2_workflow, fig2_workflow_variant};
use ltf_sched::graph::TaskGraph;
use ltf_sched::platform::{Platform, ProcId};
use ltf_sched::schedule::{validate, ReplicaId, Schedule};

fn assert_identical(a: &Schedule, b: &Schedule, ctx: &str) {
    assert_eq!(a.epsilon(), b.epsilon(), "{ctx}: epsilon");
    assert_eq!(a.period(), b.period(), "{ctx}: period");
    assert_eq!(a.num_stages(), b.num_stages(), "{ctx}: stage count");
    for r in a.replicas() {
        assert_eq!(a.proc(r), b.proc(r), "{ctx}: host of {r}");
        assert_eq!(a.start(r), b.start(r), "{ctx}: start of {r}");
        assert_eq!(a.finish(r), b.finish(r), "{ctx}: finish of {r}");
        assert_eq!(a.stage(r), b.stage(r), "{ctx}: stage of {r}");
        assert_eq!(a.sources(r), b.sources(r), "{ctx}: sources of {r}");
    }
    assert_eq!(a.comm_events(), b.comm_events(), "{ctx}: comm events");
}

/// Solver dispatch vs legacy free function, both sides of feasibility.
fn compare_core(
    solver: &Solver<'_>,
    name: &str,
    cfg: &AlgoConfig,
    legacy: Result<Schedule, ScheduleError>,
    ctx: &str,
) {
    match (solver.solve(name, cfg), legacy) {
        (Ok(sol), Ok(b)) => {
            assert_eq!(sol.heuristic, name, "{ctx}: canonical name");
            assert_identical(&sol.schedule, &b, ctx);
            validate(solver.graph(), solver.platform(), &sol.schedule)
                .unwrap_or_else(|v| panic!("{ctx}: invalid schedule: {v:?}"));
        }
        (Err(d), Err(e)) => assert_eq!(d.error, e, "{ctx}: error kind"),
        (a, b) => panic!(
            "{ctx}: feasibility disagreement (solver {:?}, legacy {:?})",
            a.map(|s| s.metrics.stages),
            b.map(|s| s.num_stages())
        ),
    }
}

/// All seven-plus strategies on one instance at (ε, Δ) — the paper trio
/// against their legacy free functions, the baselines against their
/// legacy outcome types.
fn compare_all(g: &TaskGraph, p: &Platform, epsilon: u8, period: f64, seed: u64, ctx: &str) {
    let solver = full_solver(g, p);
    let cfg = AlgoConfig::new(epsilon, period).seeded(seed);

    compare_core(
        &solver,
        "ltf",
        &cfg,
        ltf_schedule(g, p, &cfg),
        &format!("{ctx}/ltf"),
    );
    compare_core(
        &solver,
        "rltf",
        &cfg,
        rltf_schedule(g, p, &cfg),
        &format!("{ctx}/rltf"),
    );
    compare_core(
        &solver,
        "fault-free",
        &cfg,
        fault_free_reference(g, p, period, seed),
        &format!("{ctx}/fault-free"),
    );

    // Baselines: single-copy strategies run at ε = 0.
    let cfg0 = AlgoConfig::new(0, period).seeded(seed);

    if let Ok(sol) = solver.solve("throughput-first", &cfg0) {
        let legacy = baselines::throughput_first(g, p, period).expect("legacy agrees feasible");
        assert_identical(&sol.schedule, &legacy, &format!("{ctx}/throughput-first"));
    } else {
        assert!(
            baselines::throughput_first(g, p, period).is_err(),
            "{ctx}/throughput-first: legacy disagrees on feasibility"
        );
    }

    let procs: Vec<ProcId> = p.procs().collect();
    for (name, legacy) in [
        ("heft", baselines::heft(g, p, &procs)),
        ("etf", baselines::etf(g, p, &procs)),
    ] {
        if let Ok(sol) = solver.solve(name, &cfg0) {
            for t in g.tasks() {
                let r = ReplicaId::new(t, 0);
                assert_eq!(
                    sol.schedule.proc(r),
                    legacy.proc_of[t.index()],
                    "{ctx}/{name}"
                );
                assert_eq!(
                    sol.schedule.start(r),
                    legacy.start[t.index()],
                    "{ctx}/{name}"
                );
                assert_eq!(
                    sol.schedule.finish(r),
                    legacy.finish[t.index()],
                    "{ctx}/{name}"
                );
            }
            assert_eq!(
                sol.schedule.comm_count(),
                legacy.comms.len(),
                "{ctx}/{name}"
            );
            validate(g, p, &sol.schedule)
                .unwrap_or_else(|v| panic!("{ctx}/{name}: invalid: {v:?}"));
        }
    }

    if p.num_procs() > epsilon as usize {
        if let Ok(sol) = solver.solve("task-parallel", &cfg) {
            let legacy = baselines::task_parallel(g, p, epsilon);
            for (k, ls) in legacy.lane_schedules.iter().enumerate() {
                for t in g.tasks() {
                    let r = ReplicaId::new(t, k as u8);
                    assert_eq!(sol.schedule.proc(r), ls.proc_of[t.index()], "{ctx}/tp");
                    assert_eq!(sol.schedule.start(r), ls.start[t.index()], "{ctx}/tp");
                    assert_eq!(sol.schedule.finish(r), ls.finish[t.index()], "{ctx}/tp");
                }
            }
            validate(g, p, &sol.schedule).unwrap_or_else(|v| panic!("{ctx}/tp: invalid: {v:?}"));
        }
        if let Ok(sol) = solver.solve("data-parallel", &cfg) {
            let legacy = baselines::data_parallel(g, p, epsilon);
            for (k, &u) in legacy.groups[0].iter().enumerate() {
                for t in g.tasks() {
                    assert_eq!(sol.schedule.proc(ReplicaId::new(t, k as u8)), u, "{ctx}/dp");
                }
            }
            validate(g, p, &sol.schedule).unwrap_or_else(|v| panic!("{ctx}/dp: invalid: {v:?}"));
        }
    }
}

#[test]
fn solver_matches_legacy_on_worked_examples() {
    // Fig. 1 diamond at the paper's period.
    let g = fig1_diamond();
    let p = Platform::fig1_platform();
    compare_all(&g, &p, 1, 30.0, 7, "fig1 eps1");
    compare_all(&g, &p, 0, 40.0, 7, "fig1 eps0");
    compare_all(&g, &p, 1, 60.0, 7, "fig1 slack");

    // Fig. 2: reconstruction and variant, m = 8 and 10 (the period where
    // R-LTF fails on the reconstruction with m = 8 — the diagnostics and
    // the legacy error must agree).
    for (label, g) in [
        ("fig2", fig2_workflow()),
        ("fig2v", fig2_workflow_variant()),
    ] {
        for m in [8usize, 10] {
            let p = Platform::homogeneous(m, 1.0, 1.0);
            compare_all(&g, &p, 1, 20.0, 11, &format!("{label} m{m}"));
        }
    }
}

#[test]
fn solver_matches_legacy_on_random_layered_graphs() {
    for eps in [0u8, 1, 3] {
        for seed in 0..4u64 {
            let wl = PaperWorkload {
                tasks: (40, 70),
                epsilon: eps,
                granularity: 1.0,
                ..Default::default()
            };
            let inst = gen_instance(&wl, 0x50D1FF ^ (seed << 8) ^ ((eps as u64) << 32));
            let ctx = format!("layered eps={eps} seed={seed}");
            compare_all(&inst.graph, &inst.platform, eps, inst.period, seed, &ctx);
            // A generous period exercises the baselines' feasible side.
            compare_all(
                &inst.graph,
                &inst.platform,
                eps,
                inst.period * 8.0,
                seed,
                &format!("{ctx} slack"),
            );
        }
    }
}

#[test]
fn searches_accept_any_heuristic_including_baselines() {
    let g = fig1_diamond();
    let p = Platform::fig1_platform();
    let opts = SearchOptions::default();

    // R-LTF through the new signature equals the deprecated shim.
    let new = search::min_period(&g, &p, &Rltf, &opts).expect("feasible");
    let old = {
        let old_opts = search::MinPeriodOptions::default();
        search::min_period_kind(&g, &p, &old_opts).expect("feasible")
    };
    assert_eq!(new.0, old.0, "min_period period");
    assert_identical(&new.1, &old.1, "min_period witness");

    // A baseline as the search oracle: throughput-first (ε = 0).
    let (t_tf, sched) = search::min_period(&g, &p, &baselines::ThroughputFirst, &opts)
        .expect("throughput-first brackets a period");
    validate(&g, &p, &sched).expect("valid");
    assert!(t_tf >= new.0 - 1e-9, "greedy cannot beat R-LTF's period");

    // HEFT as the min-processors oracle. The witness schedule lives on
    // the winning platform *prefix*, so validate against that.
    let (m, sched) = search::min_processors(&g, &p, &baselines::Heft, 0, 60.0, 1)
        .expect("heft schedules the diamond at Δ=60");
    assert!(m >= 1 && m <= p.num_procs());
    validate(&g, &p.prefix(m), &sched).expect("valid");

    // max_epsilon over task-parallel: lanes shrink until infeasible.
    let got = search::max_epsilon(&g, &p, &baselines::TaskParallel, 60.0, None, 1);
    if let Some((eps, sched)) = got {
        assert!(eps >= 1, "two lanes fit at Δ=60");
        validate(&g, &p, &sched).expect("valid");
    }
}

#[test]
fn every_registered_name_dispatches() {
    let g = fig1_diamond();
    let p = Platform::fig1_platform();
    let solver = full_solver(&g, &p);
    assert_eq!(solver.names().len(), 8, "3 built-ins + 5 baselines");
    // ε = 0 with a generous period: every strategy must produce a valid
    // schedule through the registry.
    let cfg = AlgoConfig::new(0, 200.0).seeded(1);
    for name in solver.names() {
        let sol = solver
            .solve(name, &cfg)
            .unwrap_or_else(|d| panic!("{name} infeasible at slack period: {d}"));
        validate(&g, &p, &sol.schedule).unwrap_or_else(|v| panic!("{name}: {v:?}"));
        assert_eq!(sol.heuristic, name);
    }
}
