//! Structural validity and fault-tolerance guarantees across graph shapes,
//! replication degrees, and both heuristics.

use ltf_sched::core::{AlgoConfig, AlgoKind, PreparedInstance};
use ltf_sched::graph::generate::{
    fork_join, in_tree, layered, out_tree, pipeline, series_parallel, LayeredConfig,
    SeriesParallelConfig,
};
use ltf_sched::graph::TaskGraph;
use ltf_sched::platform::Platform;
use ltf_sched::schedule::{failures, validate, CrashSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn shapes(rng: &mut StdRng) -> Vec<(String, TaskGraph)> {
    vec![
        ("pipeline".into(), pipeline(12, 1.5, 2.0)),
        ("fork_join".into(), fork_join(6, 1.0, 1.5)),
        ("out_tree".into(), out_tree(3, 2, 1.0, 1.0)),
        ("in_tree".into(), in_tree(3, 2, 1.0, 1.0)),
        (
            "layered".into(),
            layered(
                &LayeredConfig {
                    tasks: 28,
                    exec_range: (0.5, 2.0),
                    volume_range: (1.0, 4.0),
                    ..Default::default()
                },
                rng,
            ),
        ),
        (
            "series_parallel".into(),
            series_parallel(
                &SeriesParallelConfig {
                    tasks: 24,
                    exec_range: (0.5, 2.0),
                    volume_range: (1.0, 4.0),
                    ..Default::default()
                },
                rng,
            ),
        ),
    ]
}

#[test]
fn schedules_validate_across_shapes_and_epsilons() {
    let m = 10;
    let p = Platform::homogeneous(m, 1.0, 0.2);
    let mut rng = StdRng::seed_from_u64(11);
    let period = 14.0;
    let mut checked = 0;
    for (name, g) in shapes(&mut rng) {
        for eps in [0u8, 1, 2] {
            for kind in [AlgoKind::Ltf, AlgoKind::Rltf] {
                let cfg = AlgoConfig::new(eps, period).seeded(3);
                let Ok(s) = kind
                    .heuristic()
                    .schedule(&PreparedInstance::new(&g, &p), &cfg)
                else {
                    continue; // infeasibility is legitimate; validity is not optional
                };
                validate(&g, &p, &s)
                    .unwrap_or_else(|v| panic!("{kind} on {name} (ε={eps}) invalid: {v:?}"));
                assert!(s.achieved_throughput() + 1e-12 >= 1.0 / period);
                assert_eq!(s.replicas_per_task(), eps as usize + 1);
                checked += 1;
            }
        }
    }
    assert!(checked >= 24, "only {checked} feasible combinations");
}

#[test]
fn exhaustive_crash_tolerance_eps1_and_eps2() {
    let m = 10;
    let p = Platform::homogeneous(m, 1.0, 0.1);
    let mut rng = StdRng::seed_from_u64(23);
    for (name, g) in shapes(&mut rng) {
        for eps in [1u8, 2] {
            for kind in [AlgoKind::Ltf, AlgoKind::Rltf] {
                let cfg = AlgoConfig::new(eps, 16.0).seeded(9);
                let Ok(s) = kind
                    .heuristic()
                    .schedule(&PreparedInstance::new(&g, &p), &cfg)
                else {
                    continue;
                };
                assert!(
                    failures::tolerates_all_crashes(&g, &s, m, eps as usize),
                    "{kind} on {name} (ε={eps}) loses an output under some \
                     {eps}-crash pattern"
                );
            }
        }
    }
}

#[test]
fn effective_latency_monotone_in_crashes() {
    // Killing more processors can only push the delivered latency up
    // (while the pattern is survived at all).
    let p = Platform::homogeneous(8, 1.0, 0.1);
    let mut rng = StdRng::seed_from_u64(5);
    let g = layered(
        &LayeredConfig {
            tasks: 24,
            exec_range: (0.5, 1.5),
            volume_range: (1.0, 3.0),
            ..Default::default()
        },
        &mut rng,
    );
    let cfg = AlgoConfig::new(2, 14.0).seeded(1);
    let s = AlgoKind::Rltf
        .heuristic()
        .schedule(&PreparedInstance::new(&g, &p), &cfg)
        .expect("feasible");
    let l0 = failures::effective_latency(&g, &s, &CrashSet::empty(8)).unwrap();
    for single in failures::all_crash_sets(8, 1) {
        let l1 = failures::effective_latency(&g, &s, &single).unwrap();
        assert!(l1 + 1e-9 >= l0);
        let first = single.procs()[0];
        for second in 0..8u16 {
            if single.contains(ltf_sched::platform::ProcId(second)) {
                continue;
            }
            let pair = CrashSet::from_procs(&[first, ltf_sched::platform::ProcId(second)], 8);
            let l2 = failures::effective_latency(&g, &s, &pair).unwrap();
            assert!(l2 + 1e-9 >= l1, "latency shrank when adding a crash");
        }
    }
    // Everything stays below the guaranteed bound.
    let ub = s.latency_upper_bound();
    for pair in failures::all_crash_sets(8, 2) {
        let l = failures::effective_latency(&g, &s, &pair).unwrap();
        assert!(l <= ub + 1e-9);
    }
}

#[test]
fn one_to_one_keeps_comm_budget_on_series_parallel() {
    // The paper's §4.2 remark: on series-parallel graphs without
    // throughput pressure, R-LTF needs at most e(ε+1) messages.
    let p = Platform::homogeneous(12, 1.0, 0.05);
    let mut rng = StdRng::seed_from_u64(31);
    for eps in [1u8, 2, 3] {
        let g = series_parallel(
            &SeriesParallelConfig {
                tasks: 20,
                exec_range: (0.5, 1.0),
                volume_range: (0.5, 1.0),
                ..Default::default()
            },
            &mut rng,
        );
        let cfg = AlgoConfig::new(eps, 1000.0).seeded(2); // no pressure
        let s = AlgoKind::Rltf
            .heuristic()
            .schedule(&PreparedInstance::new(&g, &p), &cfg)
            .expect("feasible");
        let budget = g.num_edges() * (eps as usize + 1);
        assert!(
            s.comm_count() <= budget,
            "ε={eps}: {} messages exceed e(ε+1) = {budget}",
            s.comm_count()
        );
    }
}

#[test]
fn failure_modes_reported_cleanly() {
    let g = pipeline(4, 10.0, 1.0);
    // ε+1 > m.
    let p = Platform::homogeneous(2, 1.0, 1.0);
    let cfg = AlgoConfig::new(3, 100.0);
    assert!(matches!(
        AlgoKind::Rltf
            .heuristic()
            .schedule(&PreparedInstance::new(&g, &p), &cfg),
        Err(ltf_sched::core::ScheduleError::TooFewProcessors { .. })
    ));
    // Period too small for the biggest task.
    let p = Platform::homogeneous(4, 1.0, 1.0);
    let cfg = AlgoConfig::new(0, 5.0);
    assert!(matches!(
        AlgoKind::Ltf
            .heuristic()
            .schedule(&PreparedInstance::new(&g, &p), &cfg),
        Err(ltf_sched::core::ScheduleError::Infeasible { .. })
    ));
    // Bad period.
    let cfg = AlgoConfig::new(0, f64::NAN);
    assert!(matches!(
        AlgoKind::Ltf
            .heuristic()
            .schedule(&PreparedInstance::new(&g, &p), &cfg),
        Err(ltf_sched::core::ScheduleError::BadConfig(_))
    ));
}
