//! Differential tests for the incremental placement engine.
//!
//! The production path compares R-LTF's task-level modes through an undo
//! journal (rollback + replay); the retained reference path re-runs the
//! pre-incremental speculation control flow built on whole-engine
//! snapshots. Over seeded random instances spanning both heuristics,
//! replication degrees and graph families, the two paths must produce
//! *identical* schedules — same hosts, bit-identical times, same stages,
//! same source structure, same message set — or fail with the same error.
//!
//! Scope note: both paths share the overlay probe, the bucketed interval
//! index and the stage fast path, so these tests isolate the
//! journal/rollback/replay machinery. The shared layers are differentially
//! pinned against naive recomputation by the property tests
//! (`ltf-schedule/tests/interval_index_props.rs`,
//! `ltf-core/tests/prio_props.rs`) and by the debug assertion in
//! `Schedule::with_stages`, which is active throughout this suite.

// This suite deliberately drives the deprecated free-function shims: they
// must stay bit-identical to the Solver path until they are removed.
#![allow(deprecated)]

use ltf_sched::core::{
    schedule_with, schedule_with_reference, AlgoConfig, AlgoKind, PreparedInstance,
};
use ltf_sched::experiments::workload::{gen_instance, PaperWorkload};
use ltf_sched::graph::generate::{series_parallel, SeriesParallelConfig};
use ltf_sched::platform::Platform;
use ltf_sched::schedule::Schedule;

fn assert_identical(a: &Schedule, b: &Schedule, ctx: &str) {
    assert_eq!(a.epsilon(), b.epsilon(), "{ctx}: epsilon");
    assert_eq!(a.period(), b.period(), "{ctx}: period");
    assert_eq!(a.num_stages(), b.num_stages(), "{ctx}: stage count");
    for r in a.replicas() {
        assert_eq!(a.proc(r), b.proc(r), "{ctx}: host of {r}");
        assert_eq!(a.start(r), b.start(r), "{ctx}: start of {r}");
        assert_eq!(a.finish(r), b.finish(r), "{ctx}: finish of {r}");
        assert_eq!(a.stage(r), b.stage(r), "{ctx}: stage of {r}");
        assert_eq!(a.sources(r), b.sources(r), "{ctx}: sources of {r}");
    }
    assert_eq!(a.comm_events(), b.comm_events(), "{ctx}: comm events");
}

fn compare_paths(
    kind: AlgoKind,
    g: &ltf_sched::graph::TaskGraph,
    p: &Platform,
    cfg: &AlgoConfig,
    ctx: &str,
) {
    let inc = schedule_with(kind, g, p, cfg);
    let refr = schedule_with_reference(kind, g, p, cfg);
    match (inc, refr) {
        (Ok(a), Ok(b)) => assert_identical(&a, &b, ctx),
        (Err(ea), Err(eb)) => assert_eq!(ea, eb, "{ctx}: error kind"),
        (a, b) => panic!(
            "{ctx}: feasibility disagreement (incremental {:?}, reference {:?})",
            a.map(|s| s.num_stages()),
            b.map(|s| s.num_stages())
        ),
    }
}

#[test]
fn incremental_matches_reference_on_paper_workloads() {
    for eps in [0u8, 1, 3] {
        for seed in 0..4u64 {
            let wl = PaperWorkload {
                tasks: (40, 60),
                epsilon: eps,
                granularity: 1.0,
                ..Default::default()
            };
            let inst = gen_instance(&wl, 0xD1FF ^ (seed << 8) ^ ((eps as u64) << 32));
            for kind in [AlgoKind::Ltf, AlgoKind::Rltf] {
                let cfg = AlgoConfig::new(eps, inst.period).seeded(seed);
                let ctx = format!("{kind} eps={eps} seed={seed}");
                compare_paths(kind, &inst.graph, &inst.platform, &cfg, &ctx);
            }
        }
    }
}

#[test]
fn incremental_matches_reference_on_series_parallel() {
    use rand::{rngs::StdRng, SeedableRng};
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(0x5EED ^ seed);
        let g = series_parallel(&SeriesParallelConfig::default(), &mut rng);
        let p = Platform::homogeneous(12, 1.0, 0.01);
        // Generous period: total work over a third of the machines.
        let period = g.total_exec() / 4.0;
        for eps in [0u8, 1] {
            for kind in [AlgoKind::Ltf, AlgoKind::Rltf] {
                let cfg = AlgoConfig::new(eps, period).seeded(seed);
                let ctx = format!("SP {kind} eps={eps} seed={seed}");
                compare_paths(kind, &g, &p, &cfg, &ctx);
            }
        }
    }
}

/// The paper's worked examples: the Fig. 1 diamond on its heterogeneous
/// 3-processor platform and the Fig. 2 workflow reconstruction on 8
/// homogeneous processors — including the feasibility edge the fig2
/// variant sits on. Small enough that a single misplaced message shows up
/// as a direct field mismatch.
#[test]
fn incremental_matches_reference_on_worked_examples() {
    use ltf_sched::graph::generate::{fig1_diamond, fig2_workflow_variant};

    let g1 = fig1_diamond();
    let p1 = Platform::fig1_platform();
    for eps in [0u8, 1] {
        for period in [20.0, 30.0, 60.0] {
            for kind in [AlgoKind::Ltf, AlgoKind::Rltf] {
                let cfg = AlgoConfig::new(eps, period).seeded(7);
                let ctx = format!("fig1 {kind} eps={eps} T=1/{period}");
                compare_paths(kind, &g1, &p1, &cfg, &ctx);
            }
        }
    }

    let g2 = fig2_workflow_variant();
    let p2 = Platform::homogeneous(8, 1.0, 1.0);
    for eps in [0u8, 1] {
        for period in [20.0, 40.0] {
            for kind in [AlgoKind::Ltf, AlgoKind::Rltf] {
                let cfg = AlgoConfig::new(eps, period).seeded(7);
                let ctx = format!("fig2v {kind} eps={eps} T=1/{period}");
                compare_paths(kind, &g2, &p2, &cfg, &ctx);
            }
        }
    }
}

/// Random layered DAGs (the paper's §5 workload family) across the full
/// replication range, exercising deep rollback/replay chains: ε = 3 means
/// four copies per task and heavy receive-from-all fall-backs.
#[test]
fn incremental_matches_reference_on_layered_graphs() {
    use ltf_sched::graph::generate::{layered, LayeredConfig};
    use rand::{rngs::StdRng, SeedableRng};

    for eps in [0u8, 1, 3] {
        for seed in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(0x1A7E ^ (seed << 4) ^ ((eps as u64) << 32));
            let g = layered(&LayeredConfig::with_tasks(60), &mut rng);
            let p = Platform::homogeneous(16, 1.0, 0.005);
            // Scale headroom with replication: each task runs ε+1 times.
            let period = g.total_exec() * (eps as f64 + 1.0) / 8.0;
            for kind in [AlgoKind::Ltf, AlgoKind::Rltf] {
                let cfg = AlgoConfig::new(eps, period).seeded(seed);
                let ctx = format!("layered {kind} eps={eps} seed={seed}");
                compare_paths(kind, &g, &p, &cfg, &ctx);
            }
        }
    }
}

/// Infeasible configurations must fail identically through both paths.
#[test]
fn incremental_matches_reference_on_infeasible_periods() {
    let wl = PaperWorkload {
        tasks: (30, 30),
        epsilon: 1,
        granularity: 1.0,
        ..Default::default()
    };
    let inst = gen_instance(&wl, 0xBAD);
    for kind in [AlgoKind::Ltf, AlgoKind::Rltf] {
        // A period far below the workload's calibrated one is infeasible.
        let cfg = AlgoConfig::new(1, inst.period / 50.0).seeded(3);
        let ctx = format!("infeasible {kind}");
        compare_paths(kind, &inst.graph, &inst.platform, &cfg, &ctx);
    }
}

/// The search-oriented prepared instance must be a pure cache: scheduling
/// through it equals the one-shot entry points.
#[test]
fn prepared_instance_matches_one_shot() {
    let wl = PaperWorkload {
        tasks: (50, 50),
        epsilon: 1,
        granularity: 1.0,
        ..Default::default()
    };
    let inst = gen_instance(&wl, 0xCAC4E);
    let prep = PreparedInstance::new(&inst.graph, &inst.platform);
    for kind in [AlgoKind::Ltf, AlgoKind::Rltf] {
        // Several periods, as the binary searches would probe.
        for factor in [1.0, 1.5, 3.0] {
            let cfg = AlgoConfig::new(1, inst.period * factor).seeded(9);
            let a = prep.schedule(kind, &cfg);
            let b = schedule_with(kind, &inst.graph, &inst.platform, &cfg);
            match (a, b) {
                (Ok(a), Ok(b)) => assert_identical(&a, &b, &format!("prepared {kind} x{factor}")),
                (Err(ea), Err(eb)) => assert_eq!(ea, eb),
                _ => panic!("prepared-instance feasibility disagreement"),
            }
        }
    }
}
