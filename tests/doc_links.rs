//! Docs-link check: every relative markdown link in the repo's
//! documentation must resolve to an existing file. A renamed doc or a
//! typo'd path fails this test (and the CI docs job) instead of shipping
//! a dangling reference.

use std::path::{Path, PathBuf};

/// The documentation set under the link contract: every `.md` at the
/// repo root, everything under `docs/`, and the vendor README.
fn doc_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    // PAPER.md / PAPERS.md / SNIPPETS.md are generated research-reference
    // dumps (they carry links into documents not vendored here), not part
    // of the maintained docs layer.
    let generated = ["PAPER.md", "PAPERS.md", "SNIPPETS.md"];
    for entry in std::fs::read_dir(root).expect("read repo root") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.extension().is_some_and(|e| e == "md") && !generated.contains(&name) {
            files.push(path);
        }
    }
    let mut stack = vec![root.join("docs")];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("read docs dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "md") {
                files.push(path);
            }
        }
    }
    files.push(root.join("vendor/README.md"));
    files.sort();
    files
}

/// Extract the targets of inline markdown links `[text](target)`.
/// Absolute URLs and pure-anchor links are out of scope; `#anchor`
/// suffixes on relative targets are stripped.
fn relative_link_targets(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(found) = text[i..].find("](") {
        let start = i + found + 2;
        let Some(len) = text[start..].find(')') else {
            break;
        };
        i = start + len + 1;
        let target = &text[start..start + len];
        let target = target.split('#').next().unwrap_or("");
        if target.is_empty()
            || target.starts_with("http://")
            || target.starts_with("https://")
            || target.starts_with("mailto:")
        {
            continue;
        }
        out.push(target.to_string());
    }
    out
}

#[test]
fn all_relative_doc_links_resolve() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut dangling = Vec::new();
    let mut checked = 0usize;
    for file in doc_files(root) {
        let text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
        let dir = file.parent().expect("doc file has a parent");
        for target in relative_link_targets(&text) {
            checked += 1;
            if !dir.join(&target).exists() {
                dangling.push(format!(
                    "{} -> {target}",
                    file.strip_prefix(root).unwrap_or(&file).display()
                ));
            }
        }
    }
    assert!(
        dangling.is_empty(),
        "dangling relative links:\n  {}",
        dangling.join("\n  ")
    );
    // The contract is only meaningful if the scan actually sees the
    // cross-references added with the docs layer.
    assert!(
        checked >= 10,
        "expected the doc set to contain at least 10 relative links, saw {checked}"
    );
}

#[test]
fn the_documented_entry_points_exist() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for path in [
        "ARCHITECTURE.md",
        "docs/protocol.md",
        "docs/campaign-spec.md",
        "docs/examples/worked.json",
        "docs/examples/workload-small.json",
    ] {
        assert!(root.join(path).exists(), "{path} is missing");
    }
    // README links all three docs — the acceptance criterion for the
    // docs layer — so a future rename cannot silently orphan them.
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap();
    for needle in [
        "ARCHITECTURE.md",
        "docs/protocol.md",
        "docs/campaign-spec.md",
    ] {
        assert!(
            readme.contains(needle),
            "README.md no longer links {needle}"
        );
    }
}
