//! Cross-validation of the three latency views: the closed-form bound
//! `L = (2S − 1)/T`, the effective-stage failure analysis, and the two
//! simulator disciplines.

use ltf_sched::core::{AlgoConfig, AlgoKind, PreparedInstance};
use ltf_sched::graph::generate::{layered, LayeredConfig};
use ltf_sched::platform::Platform;
use ltf_sched::schedule::{failures, CrashSet};
use ltf_sched::sim::{asap, synchronous, AsapConfig, SynchronousConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload(seed: u64) -> ltf_sched::graph::TaskGraph {
    layered(
        &LayeredConfig {
            tasks: 26,
            exec_range: (0.5, 2.0),
            volume_range: (1.0, 4.0),
            ..Default::default()
        },
        &mut StdRng::seed_from_u64(seed),
    )
}

#[test]
fn synchronous_simulation_equals_effective_latency() {
    let m = 10;
    let p = Platform::homogeneous(m, 1.0, 0.2);
    for seed in 0..4u64 {
        let g = workload(seed);
        for kind in [AlgoKind::Ltf, AlgoKind::Rltf] {
            let cfg = AlgoConfig::new(1, 15.0).seeded(seed);
            let Ok(s) = kind
                .heuristic()
                .schedule(&PreparedInstance::new(&g, &p), &cfg)
            else {
                continue;
            };
            // No crash: simulator latency = analytic effective latency.
            let run = synchronous(&g, &s, &SynchronousConfig::new(7));
            let l0 = failures::effective_latency(&g, &s, &CrashSet::empty(m)).unwrap();
            for l in &run.item_latency {
                assert_eq!(*l, Some(l0));
            }
            assert!(l0 <= s.latency_upper_bound() + 1e-9);

            // Every single crash: agreement again.
            for crash in failures::all_crash_sets(m, 1) {
                let want = failures::effective_latency(&g, &s, &crash);
                let run = synchronous(&g, &s, &SynchronousConfig::with_crash(3, crash));
                match want {
                    Some(l) => {
                        assert_eq!(run.produced(), 3);
                        assert_eq!(run.item_latency[0], Some(l));
                        assert!(l <= s.latency_upper_bound() + 1e-9);
                    }
                    None => assert_eq!(run.produced(), 0),
                }
            }
        }
    }
}

#[test]
fn asap_never_slower_than_synchronous() {
    let m = 10;
    let p = Platform::homogeneous(m, 1.0, 0.2);
    for seed in 0..4u64 {
        let g = workload(seed + 10);
        let cfg = AlgoConfig::new(1, 15.0).seeded(seed);
        let Ok(s) = AlgoKind::Rltf
            .heuristic()
            .schedule(&PreparedInstance::new(&g, &p), &cfg)
        else {
            continue;
        };
        let items = 12;
        let sync = synchronous(&g, &s, &SynchronousConfig::new(items));
        let fast = asap(&g, &s, &AsapConfig::new(items));
        assert_eq!(fast.produced(), items);
        for (a, b) in fast.item_latency.iter().zip(&sync.item_latency) {
            assert!(
                a.unwrap() <= b.unwrap() + 1e-9,
                "ASAP {a:?} slower than synchronous {b:?}"
            );
        }
    }
}

#[test]
fn asap_sustains_the_period() {
    let m = 10;
    let p = Platform::homogeneous(m, 1.0, 0.2);
    let g = workload(42);
    let cfg = AlgoConfig::new(1, 15.0).seeded(0);
    let s = AlgoKind::Rltf
        .heuristic()
        .schedule(&PreparedInstance::new(&g, &p), &cfg)
        .expect("feasible");
    let run = asap(&g, &s, &AsapConfig::new(60));
    assert_eq!(run.produced(), 60);
    // Throughput keeps up with the admission rate in steady state.
    let period = run.achieved_period().unwrap();
    assert!(
        period <= 15.0 + 1e-6,
        "achieved period {period} exceeds Δ = 15"
    );
}

#[test]
fn asap_single_crash_from_start_loses_nothing() {
    let m = 10;
    let p = Platform::homogeneous(m, 1.0, 0.2);
    let g = workload(43);
    let cfg = AlgoConfig::new(1, 15.0).seeded(0);
    let s = AlgoKind::Rltf
        .heuristic()
        .schedule(&PreparedInstance::new(&g, &p), &cfg)
        .expect("feasible");
    for crash in failures::all_crash_sets(m, 1) {
        let run = asap(&g, &s, &AsapConfig::with_crash(8, crash, 0.0));
        assert_eq!(run.produced(), 8, "a single crash must be masked");
    }
}
