//! Differential tests for the layered communication model.
//!
//! The `CommModel` refactor split the platform's communication view in two:
//! `Uniform` (the paper's flattened bottleneck-delay matrix) and
//! `Contended` (routes stay first-class and messages reserve every physical
//! link they traverse). Two families of guarantees are pinned here:
//!
//! * **Uniform is bit-identical to the pre-refactor code.** A topology
//!   lowered with `CommMode::Uniform` must schedule exactly like the same
//!   topology eagerly flattened by `into_platform` and run through the
//!   frozen `schedule_with_reference` oracle — same hosts, bit-identical
//!   times, same stages, same message set, or the same error. Checked on
//!   the paper's worked examples and on seeded layered graphs at
//!   ε ∈ {0, 1, 3}.
//!
//! * **Contention never helps.** Link reservation only constrains the
//!   placement engine: on the pinned instances a `Contended` run is never
//!   feasible where `Uniform` fails, and never achieves a lower latency
//!   bound at the same period. (For a greedy heuristic this is not a
//!   theorem over all instances — divergent early placements could luck
//!   out — so the suite pins fixed seeds; the per-probe monotonicity that
//!   *is* a theorem is unit-tested in `ltf-core`.)

// The free-function shims stay the entry point here on purpose: they are
// pinned bit-identical to the Solver path by `solver_differential.rs`, and
// they keep this suite's call sites symmetric with the frozen oracle's.
#![allow(deprecated)]

use ltf_sched::core::{schedule_with, schedule_with_reference, AlgoConfig, AlgoKind};
use ltf_sched::graph::generate::{fig1_diamond, fig2_workflow, layered, LayeredConfig};
use ltf_sched::graph::TaskGraph;
use ltf_sched::platform::{CommMode, Platform, Topology};
use ltf_sched::schedule::Schedule;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn assert_identical(a: &Schedule, b: &Schedule, ctx: &str) {
    assert_eq!(a.epsilon(), b.epsilon(), "{ctx}: epsilon");
    assert_eq!(a.period(), b.period(), "{ctx}: period");
    assert_eq!(a.num_stages(), b.num_stages(), "{ctx}: stage count");
    for r in a.replicas() {
        assert_eq!(a.proc(r), b.proc(r), "{ctx}: host of {r}");
        assert_eq!(a.start(r), b.start(r), "{ctx}: start of {r}");
        assert_eq!(a.finish(r), b.finish(r), "{ctx}: finish of {r}");
        assert_eq!(a.stage(r), b.stage(r), "{ctx}: stage of {r}");
        assert_eq!(a.sources(r), b.sources(r), "{ctx}: sources of {r}");
    }
    assert_eq!(a.comm_events(), b.comm_events(), "{ctx}: comm events");
}

/// Production solver on the `Uniform`-mode lowering vs the frozen reference
/// oracle on the eager flattening. Also cross-checks that the two lowerings
/// agree on every matrix entry — the routed table's (bottleneck, hops)
/// tie-break must never change a bottleneck value.
fn pin_uniform(mk: &dyn Fn() -> Topology, g: &TaskGraph, cfg: &AlgoConfig, ctx: &str) {
    let flat = mk().into_platform().expect("connected topology");
    let routed = mk()
        .into_platform_with(CommMode::Uniform)
        .expect("connected topology");
    assert!(!routed.is_contended(), "{ctx}: Uniform keeps no links");
    for k in flat.procs() {
        for h in flat.procs() {
            assert_eq!(
                flat.unit_delay(k, h).to_bits(),
                routed.unit_delay(k, h).to_bits(),
                "{ctx}: delay {k}->{h}"
            );
        }
    }
    for kind in [AlgoKind::Ltf, AlgoKind::Rltf] {
        let prod = schedule_with(kind, g, &routed, cfg);
        let oracle = schedule_with_reference(kind, g, &flat, cfg);
        match (prod, oracle) {
            (Ok(a), Ok(b)) => assert_identical(&a, &b, &format!("{ctx}/{kind:?}")),
            (Err(ea), Err(eb)) => assert_eq!(ea, eb, "{ctx}/{kind:?}: error kind"),
            (a, b) => panic!(
                "{ctx}/{kind:?}: feasibility disagreement (production {:?}, reference {:?})",
                a.map(|s| s.num_stages()),
                b.map(|s| s.num_stages())
            ),
        }
    }
}

/// On one instance, compare a `Contended` run against the `Uniform` run.
/// Feasibility is strictly monotone (link reservation only removes
/// placements, so contended-feasible ⇒ uniform-feasible — enforced here by
/// panic). Latency is monotone per *probe* but not per *run*: a constrained
/// early placement can steer the greedy heuristic into a luckier basin, so
/// the rare instances where contended ends up with a lower latency bound
/// are returned for the caller to pin instead of asserted away.
///
/// Returns `(both_feasible, contended_beat_uniform)`.
fn check_monotone(
    kind: AlgoKind,
    g: &TaskGraph,
    uniform: &Platform,
    contended: &Platform,
    cfg: &AlgoConfig,
    ctx: &str,
) -> (bool, bool) {
    let u = schedule_with(kind, g, uniform, cfg);
    let c = schedule_with(kind, g, contended, cfg);
    match (&u, &c) {
        (Err(_), Ok(_)) => panic!("{ctx}: contended feasible where uniform failed"),
        (Ok(us), Ok(cs)) => (
            true,
            cs.latency_upper_bound() < us.latency_upper_bound() - 1e-9,
        ),
        _ => (false, false),
    }
}

fn chain4() -> Topology {
    Topology::chain(vec![1.0, 1.0, 1.0, 1.0], 0.5)
}

fn star5() -> Topology {
    Topology::star(vec![2.0, 1.0, 1.0, 1.0, 1.0], 0.4)
}

fn hetero_mesh() -> Topology {
    // A 5-processor partial mesh with two speed classes and a delay spread:
    // routes genuinely differ in hop count, so the minimax tie-break is
    // exercised beyond the chain/star specials.
    Topology::new(vec![2.0, 1.5, 1.0, 1.0, 0.5])
        .link(0, 1, 0.2)
        .link(1, 2, 0.4)
        .link(2, 3, 0.3)
        .link(3, 4, 0.6)
        .link(0, 4, 0.5)
        .link(1, 3, 0.7)
}

#[test]
fn uniform_matches_reference_on_worked_examples() {
    let fig1 = fig1_diamond();
    let fig2 = fig2_workflow();
    for eps in [0u8, 1] {
        for period in [6.0, 9.0, 20.0] {
            let cfg = AlgoConfig::new(eps, period);
            pin_uniform(
                &chain4,
                &fig1,
                &cfg,
                &format!("fig1/chain4 eps={eps} T={period}"),
            );
            pin_uniform(
                &star5,
                &fig1,
                &cfg,
                &format!("fig1/star5 eps={eps} T={period}"),
            );
            pin_uniform(
                &chain4,
                &fig2,
                &cfg,
                &format!("fig2/chain4 eps={eps} T={period}"),
            );
            pin_uniform(
                &hetero_mesh,
                &fig2,
                &cfg,
                &format!("fig2/mesh eps={eps} T={period}"),
            );
        }
    }
}

#[test]
fn uniform_matches_reference_on_seeded_layered_graphs() {
    for seed in 0u64..6 {
        let mut rng = StdRng::seed_from_u64(0xC0DE ^ (seed << 8));
        let g = layered(&LayeredConfig::with_tasks(24 + 4 * seed as usize), &mut rng);
        for eps in [0u8, 1, 3] {
            // Period scaled to the work so the sweep crosses the
            // feasibility boundary: matching Err kinds are as load-bearing
            // as matching schedules.
            let base = g.total_exec() * (eps as f64 + 1.0) / 5.0;
            for factor in [0.9, 1.6, 3.0] {
                let cfg = AlgoConfig::new(eps, base * factor).seeded(seed);
                let ctx = format!("layered seed={seed} eps={eps} f={factor}");
                pin_uniform(&hetero_mesh, &g, &cfg, &ctx);
                pin_uniform(&star5, &g, &cfg, &format!("{ctx} star"));
            }
        }
    }
}

#[test]
fn contended_never_beats_uniform_on_pinned_instances() {
    // The combos where the constrained run happens to land in a better
    // greedy basin (see `check_monotone`). Every one is LTF at the loosest
    // period, where the placement order has the most slack to diverge.
    // Pinned exactly: a change that grows OR shrinks this set is a
    // behavioral change that must be looked at, not absorbed.
    const EXPECTED_DIVERGENT: &[&str] = &[
        "chain4 seed=1 eps=0 f=2.5 Ltf",
        "chain4 seed=2 eps=0 f=2.5 Ltf",
        "chain4 seed=2 eps=1 f=2.5 Ltf",
        "star5 seed=0 eps=0 f=2.5 Ltf",
        "star5 seed=1 eps=0 f=2.5 Ltf",
    ];
    let mut compared = 0usize;
    let mut divergent: Vec<String> = Vec::new();
    for (name, mk) in [
        ("chain4", &chain4 as &dyn Fn() -> Topology),
        ("star5", &star5),
        ("mesh", &hetero_mesh),
    ] {
        let uniform = mk().into_platform_with(CommMode::Uniform).unwrap();
        let contended = mk().into_contended_platform().unwrap();
        for seed in 0u64..4 {
            let mut rng = StdRng::seed_from_u64(0xFACE ^ (seed << 6));
            let g = layered(&LayeredConfig::with_tasks(20 + 6 * seed as usize), &mut rng);
            for eps in [0u8, 1, 3] {
                let base = g.total_exec() * (eps as f64 + 1.0) / 4.0;
                for factor in [1.2, 2.5] {
                    let cfg = AlgoConfig::new(eps, base * factor).seeded(seed);
                    for kind in [AlgoKind::Ltf, AlgoKind::Rltf] {
                        let ctx = format!("{name} seed={seed} eps={eps} f={factor} {kind:?}");
                        let (both, beat) =
                            check_monotone(kind, &g, &uniform, &contended, &cfg, &ctx);
                        if both {
                            compared += 1;
                        }
                        if beat {
                            divergent.push(ctx);
                        }
                    }
                }
            }
        }
    }
    assert!(
        compared >= 20,
        "sweep too vacuous: only {compared} feasible pairs"
    );
    assert_eq!(divergent, EXPECTED_DIVERGENT, "greedy divergence set moved");
}

/// The headline example for the contended model: an instance where link
/// reservation changes the *chosen* schedule, and for the better along the
/// link axis. Under `Uniform` the engine only sees endpoint ports, packs
/// aggressively onto the chain's far processors, and drives the hottest
/// physical link to ~145% of the period — a schedule the wire could not
/// actually sustain. Under `Contended` the same heuristic places
/// differently and keeps every link under ~89%.
#[test]
fn contended_changes_schedule_and_lowers_link_utilization() {
    let uniform = chain4().into_platform_with(CommMode::Uniform).unwrap();
    let contended = chain4().into_contended_platform().unwrap();
    let mut rng = StdRng::seed_from_u64(0xFACE ^ (4 << 6));
    let g = layered(&LayeredConfig::with_tasks(20 + 6 * 4), &mut rng);
    let cfg = AlgoConfig::new(1, g.total_exec() * 2.0 / 4.0 * 1.2).seeded(4);

    let us = schedule_with(AlgoKind::Ltf, &g, &uniform, &cfg).expect("uniform feasible");
    let cs = schedule_with(AlgoKind::Ltf, &g, &contended, &cfg).expect("contended feasible");

    // Matrix platforms have no link identity to measure against…
    assert_eq!(us.max_link_utilization(&uniform), None);
    // …so both schedules are measured on the routed platform's links.
    let uu = us.max_link_utilization(&contended).unwrap();
    let cu = cs.max_link_utilization(&contended).unwrap();
    assert!(
        us.replicas().any(|r| us.proc(r) != cs.proc(r)),
        "contention must change at least one placement"
    );
    assert!(uu > 1.0, "uniform overloads a physical link (got {uu})");
    assert!(
        cu <= 1.0 + 1e-9,
        "contended respects link capacity (got {cu})"
    );
    assert!(cu < uu - 1e-9, "strictly lower peak link utilization");
}

#[test]
fn contended_worked_examples_stay_monotone() {
    let fig1 = fig1_diamond();
    let fig2 = fig2_workflow();
    let mut compared = 0usize;
    for (name, mk) in [
        ("chain4", &chain4 as &dyn Fn() -> Topology),
        ("star5", &star5),
    ] {
        let uniform = mk().into_platform_with(CommMode::Uniform).unwrap();
        let contended = mk().into_contended_platform().unwrap();
        for (gname, g) in [("fig1", &fig1), ("fig2", &fig2)] {
            for eps in [0u8, 1] {
                for period in [7.0, 12.0, 25.0, 40.0] {
                    let cfg = AlgoConfig::new(eps, period);
                    for kind in [AlgoKind::Ltf, AlgoKind::Rltf] {
                        let ctx = format!("{name}/{gname} eps={eps} T={period} {kind:?}");
                        let (both, beat) =
                            check_monotone(kind, g, &uniform, &contended, &cfg, &ctx);
                        if both {
                            compared += 1;
                        }
                        // On the small worked examples the greedy basins
                        // coincide: monotonicity holds outright.
                        assert!(!beat, "{ctx}: contended beat uniform");
                    }
                }
            }
        }
    }
    assert!(compared >= 10, "only {compared} feasible pairs");
}
