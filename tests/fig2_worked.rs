//! End-to-end reproduction of the paper's §4.3 worked example (Fig. 2).
//!
//! The archived report's graph drawing is unrecoverable (DESIGN.md §2.10):
//! on the text-pinned reconstruction the claimed R-LTF outcome is
//! arithmetically unreachable, so the paper's exact claims are verified on
//! the one-weight variant (`E(t2) = 3`), and the reconstruction's actual
//! behaviour is locked in by regression assertions.

use ltf_sched::core::{AlgoConfig, Heuristic, Ltf, PreparedInstance, Rltf};
use ltf_sched::graph::generate::{fig2_workflow, fig2_workflow_variant};
use ltf_sched::platform::Platform;
use ltf_sched::schedule::{failures, validate};

fn cfg() -> AlgoConfig {
    AlgoConfig::with_throughput(1, 0.05) // ε = 1, period 20
}

#[test]
fn variant_rltf_three_stages_latency_100_on_8_procs() {
    // The paper's headline: R-LTF reaches 3 stages / L = 100 with m = 8.
    let g = fig2_workflow_variant();
    let p = Platform::homogeneous(8, 1.0, 1.0);
    let s = Rltf
        .schedule(&PreparedInstance::new(&g, &p), &cfg())
        .expect("R-LTF schedules the variant");
    validate(&g, &p, &s).expect("valid");
    assert_eq!(s.num_stages(), 3);
    assert!((s.latency_upper_bound() - 100.0).abs() < 1e-9);
    // And it genuinely survives any single crash.
    assert!(failures::tolerates_all_crashes(&g, &s, 8, 1));
}

#[test]
fn variant_ltf_four_stages_latency_140() {
    // The paper's LTF contrast: finish-time greed costs one stage (L=140).
    let g = fig2_workflow_variant();
    let p = Platform::homogeneous(8, 1.0, 1.0);
    let s = Ltf
        .schedule(&PreparedInstance::new(&g, &p), &cfg())
        .expect("LTF schedules the variant");
    validate(&g, &p, &s).expect("valid");
    assert_eq!(s.num_stages(), 4);
    assert!((s.latency_upper_bound() - 140.0).abs() < 1e-9);
}

#[test]
fn variant_rltf_uses_one_to_one_comm_budget() {
    // Pure one-to-one pairing: e·(ε+1) = 8·2 = 16 messages at most; the
    // Rule-1 merges make half of them local (8 cross-processor).
    let g = fig2_workflow_variant();
    let p = Platform::homogeneous(8, 1.0, 1.0);
    let s = Rltf
        .schedule(&PreparedInstance::new(&g, &p), &cfg())
        .unwrap();
    assert!(
        s.comm_count() <= g.num_edges() * 2,
        "comms {} exceed e(ε+1)",
        s.comm_count()
    );
}

#[test]
fn reconstruction_regression() {
    // Locked-in behaviour on the text-pinned reconstruction: LTF schedules
    // it on 8 processors (5 stages); R-LTF's clustering paints itself into
    // a corner and fails — the mirror image of the paper's claim, caused
    // by the reconstruction's infeasible stage-2 cluster (22 > Δ).
    let g = fig2_workflow();
    let p8 = Platform::homogeneous(8, 1.0, 1.0);
    let ltf = Ltf
        .schedule(&PreparedInstance::new(&g, &p8), &cfg())
        .expect("LTF succeeds on m=8");
    validate(&g, &p8, &ltf).expect("valid");
    assert!(ltf.num_stages() >= 4);
    assert!(
        Rltf.schedule(&PreparedInstance::new(&g, &p8), &cfg())
            .is_err(),
        "R-LTF fails on m=8"
    );

    // With two more processors both succeed; R-LTF gets back under LTF.
    let p10 = Platform::homogeneous(10, 1.0, 1.0);
    let ltf10 = Ltf
        .schedule(&PreparedInstance::new(&g, &p10), &cfg())
        .expect("LTF m=10");
    let rltf10 = Rltf
        .schedule(&PreparedInstance::new(&g, &p10), &cfg())
        .expect("R-LTF m=10");
    validate(&g, &p10, &rltf10).expect("valid");
    assert!(rltf10.num_stages() <= ltf10.num_stages());
    assert!(
        (rltf10.latency_upper_bound() - 140.0).abs() < 1e-9,
        "S = 4 → L = 140"
    );
}

#[test]
fn both_algorithms_respect_throughput_constraint() {
    let g = fig2_workflow_variant();
    let p = Platform::homogeneous(8, 1.0, 1.0);
    for s in [
        Ltf.schedule(&PreparedInstance::new(&g, &p), &cfg())
            .unwrap(),
        Rltf.schedule(&PreparedInstance::new(&g, &p), &cfg())
            .unwrap(),
    ] {
        assert!(s.achieved_throughput() + 1e-12 >= 0.05);
        for u in p.procs() {
            assert!(s.sigma(u) <= 20.0 + 1e-9);
            assert!(s.cin(u) <= 20.0 + 1e-9);
            assert!(s.cout(u) <= 20.0 + 1e-9);
        }
    }
}
