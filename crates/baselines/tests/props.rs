//! Property-based tests for the baseline schedulers.

use ltf_baselines::{data_parallel, etf, heft, task_parallel, throughput_first};
use ltf_graph::generate::{layered, LayeredConfig};
use ltf_graph::levels::{bottom_levels, Weights};
use ltf_graph::TaskGraph;
use ltf_platform::{HeterogeneousConfig, Platform, ProcId};
use ltf_schedule::validate;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_workload() -> impl Strategy<Value = (TaskGraph, Platform)> {
    (4usize..26, 2usize..8, any::<u64>()).prop_map(|(v, m, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = layered(
            &LayeredConfig {
                tasks: v,
                exec_range: (0.5, 2.0),
                volume_range: (0.2, 1.0),
                ..Default::default()
            },
            &mut rng,
        );
        let p = HeterogeneousConfig {
            procs: m,
            speed_range: (0.5, 2.0),
            delay_range: (0.05, 0.3),
            symmetric: true,
        }
        .build(&mut rng);
        (g, p)
    })
}

fn check_makespan_schedule(
    g: &TaskGraph,
    p: &Platform,
    s: &ltf_baselines::MakespanSchedule,
) -> Result<(), TestCaseError> {
    // Precedence with communication gaps.
    for eid in g.edge_ids() {
        let e = g.edge(eid);
        let gap = if s.proc(e.src) == s.proc(e.dst) {
            0.0
        } else {
            p.comm_time(e.volume, s.proc(e.src), s.proc(e.dst))
        };
        prop_assert!(
            s.start[e.dst.index()] + 1e-9 >= s.finish[e.src.index()] + gap,
            "precedence violated on {} -> {}",
            e.src,
            e.dst
        );
    }
    // Per-processor serialization.
    for u in p.procs() {
        let mut spans: Vec<(f64, f64)> = g
            .tasks()
            .filter(|t| s.proc(*t) == u)
            .map(|t| (s.start[t.index()], s.finish[t.index()]))
            .collect();
        spans.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in spans.windows(2) {
            prop_assert!(w[0].1 <= w[1].0 + 1e-9, "overlap on {u}");
        }
    }
    // Exec times honour processor speeds.
    for t in g.tasks() {
        let want = p.exec_time(g.exec(t), s.proc(t));
        prop_assert!((s.finish[t.index()] - s.start[t.index()] - want).abs() < 1e-9);
    }
    // Makespan sandwiched between the critical path on the fastest
    // processor and the fully serial slowest execution.
    let w = Weights::new(
        g.tasks().map(|t| g.exec(t) / p.max_speed()).collect(),
        vec![0.0; g.num_edges()],
    );
    let cp = g
        .entries()
        .iter()
        .map(|t| bottom_levels(g, &w)[t.index()])
        .fold(0.0f64, f64::max);
    prop_assert!(s.makespan + 1e-9 >= cp, "below the critical-path bound");
    let serial = g.total_exec() / p.min_speed();
    prop_assert!(s.makespan <= serial + 1e-6, "worse than fully serial");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn heft_and_etf_produce_legal_schedules((g, p) in arb_workload()) {
        let procs: Vec<ProcId> = p.procs().collect();
        check_makespan_schedule(&g, &p, &heft(&g, &p, &procs))?;
        check_makespan_schedule(&g, &p, &etf(&g, &p, &procs))?;
    }

    #[test]
    fn task_parallel_lanes_disjoint_and_consistent((g, p) in arb_workload()) {
        let eps = 1u8.min((p.num_procs() - 1) as u8);
        let out = task_parallel(&g, &p, eps);
        let mut seen = std::collections::HashSet::new();
        for lane in &out.lanes {
            for u in lane {
                prop_assert!(seen.insert(*u), "processor in two lanes");
            }
        }
        prop_assert!(out.latency <= 1.0 / out.throughput + 1e-9);
        for s in &out.lane_schedules {
            check_makespan_schedule(&g, &p, s)?;
        }
    }

    #[test]
    fn data_parallel_throughput_bounds((g, p) in arb_workload()) {
        let out = data_parallel(&g, &p, 1.min((p.num_procs() - 1) as u8));
        prop_assert!(out.throughput_guaranteed <= out.throughput_optimistic + 1e-12);
        // Aggregate rate cannot beat total speed / total work.
        let cap: f64 = p.procs().map(|u| p.speed(u)).sum::<f64>() / g.total_exec();
        prop_assert!(out.throughput_optimistic <= cap + 1e-9);
    }

    #[test]
    fn throughput_first_valid_when_feasible((g, p) in arb_workload()) {
        // Generous period: must succeed and validate.
        let period = 2.0 * g.total_exec() / p.min_speed();
        match throughput_first(&g, &p, period) {
            Ok(s) => {
                prop_assert!(validate(&g, &p, &s).is_ok());
                prop_assert!(s.achieved_throughput() + 1e-12 >= 1.0 / period);
            }
            Err(e) => prop_assert!(false, "generous period infeasible: {e}"),
        }
    }
}
