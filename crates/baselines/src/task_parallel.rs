//! Task parallelism (Fig. 1(b)): list-schedule the whole DAG per data set
//! and repeat serially for the stream, with `ε+1` replica lanes.
//!
//! The platform is dealt into `ε+1` disjoint processor *lanes* by
//! descending speed (lane `k` receives the processors ranked
//! `k, k+(ε+1), k+2(ε+1), …` — for the Fig. 1 platform this yields the
//! paper's mirror lanes `{P1, P2}` and `{P3, P4}`). Every lane executes
//! every data set with a HEFT list schedule; a new data set starts only
//! when the previous one finished (no pipelining), so the sustainable
//! throughput is `1 / max_lane_makespan` and — in the absence of failures —
//! the latency is the fastest lane's makespan.

use crate::makespan::{heft, MakespanSchedule};
use ltf_graph::TaskGraph;
use ltf_platform::{Platform, ProcId};

/// Outcome of the task-parallel strategy.
#[derive(Debug, Clone)]
pub struct TaskParallelOutcome {
    /// Processor lanes (lane `k` hosts replica `k` of every task).
    pub lanes: Vec<Vec<ProcId>>,
    /// Per-lane list schedule.
    pub lane_schedules: Vec<MakespanSchedule>,
    /// Latency in the absence of failures: the fastest lane's makespan.
    pub latency: f64,
    /// Sustainable throughput with active replication: every lane must
    /// finish every item, so `1 / max_lane_makespan`.
    pub throughput: f64,
}

/// Run the task-parallel baseline with fault-tolerance degree `epsilon`.
///
/// # Panics
/// If `m < ε + 1` (not enough processors for disjoint lanes).
pub fn task_parallel(g: &TaskGraph, p: &Platform, epsilon: u8) -> TaskParallelOutcome {
    let nrep = epsilon as usize + 1;
    assert!(
        p.num_procs() >= nrep,
        "need at least ε+1 processors for disjoint replica lanes"
    );
    let by_speed = p.procs_by_speed_desc();
    let mut lanes: Vec<Vec<ProcId>> = vec![Vec::new(); nrep];
    for (i, u) in by_speed.into_iter().enumerate() {
        lanes[i % nrep].push(u);
    }
    let lane_schedules: Vec<MakespanSchedule> = lanes.iter().map(|lane| heft(g, p, lane)).collect();
    let latency = lane_schedules
        .iter()
        .map(|s| s.makespan)
        .fold(f64::INFINITY, f64::min);
    let worst = lane_schedules
        .iter()
        .map(|s| s.makespan)
        .fold(0.0f64, f64::max);
    TaskParallelOutcome {
        lanes,
        lane_schedules,
        latency,
        throughput: 1.0 / worst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltf_graph::generate::fig1_diamond;

    #[test]
    fn fig1b_reproduced() {
        let g = fig1_diamond();
        let p = Platform::fig1_platform();
        let out = task_parallel(&g, &p, 1);
        // Mirror lanes {P1, P2} and {P3, P4}; both reach the paper's L=39.
        assert_eq!(out.lanes.len(), 2);
        assert_eq!(out.lanes[0], vec![ProcId(0), ProcId(1)]);
        assert_eq!(out.lanes[1], vec![ProcId(2), ProcId(3)]);
        assert!((out.latency - 39.0).abs() < 1e-9, "latency {}", out.latency);
        assert!(
            (out.throughput - 1.0 / 39.0).abs() < 1e-12,
            "throughput {}",
            out.throughput
        );
    }

    #[test]
    fn no_replication_uses_all_procs() {
        let g = fig1_diamond();
        let p = Platform::fig1_platform();
        let out = task_parallel(&g, &p, 0);
        assert_eq!(out.lanes.len(), 1);
        assert_eq!(out.lanes[0].len(), 4);
        // With all four processors the list schedule does at least as well
        // as the two-processor lane.
        assert!(out.latency <= 39.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "ε+1")]
    fn too_few_procs_panics() {
        let g = fig1_diamond();
        let p = Platform::homogeneous(1, 1.0, 1.0);
        task_parallel(&g, &p, 1);
    }
}
