//! Contention-aware makespan list scheduling (HEFT and ETF).
//!
//! Both schedulers assign every task exactly once (no replication) to a
//! subset of the platform's processors, minimizing the schedule length of
//! one data set. Communications respect the bi-directional one-port model:
//! a message occupies the sender's send port and the receiver's receive
//! port; port reservations use earliest-gap insertion.

use ltf_graph::{levels, EdgeId, TaskGraph, TaskId, Weights};
use ltf_platform::{AverageWeightsInput, Platform, ProcId};
use ltf_schedule::intervals::earliest_common_fit;
use ltf_schedule::IntervalSet;

/// Port reservations `(edge, source proc, start, end)` required by a
/// placement.
type PlannedComms = Vec<(EdgeId, ProcId, f64, f64)>;

/// One scheduled cross-processor message of a [`MakespanSchedule`]. The
/// endpoint processors are recoverable from the edge's tasks and
/// [`MakespanSchedule::proc_of`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MakespanComm {
    /// The application edge whose data is carried.
    pub edge: EdgeId,
    /// Transfer start time.
    pub start: f64,
    /// Transfer end time (`finish - start = volume · d`).
    pub finish: f64,
}

/// A single-copy (non-replicated) timed mapping of the whole graph.
#[derive(Debug, Clone)]
pub struct MakespanSchedule {
    /// Host of each task.
    pub proc_of: Vec<ProcId>,
    /// Start time of each task.
    pub start: Vec<f64>,
    /// Finish time of each task.
    pub finish: Vec<f64>,
    /// Schedule length (latest finish).
    pub makespan: f64,
    /// All scheduled cross-processor messages (one-port reservations).
    pub comms: Vec<MakespanComm>,
}

impl MakespanSchedule {
    /// Host of `t`.
    pub fn proc(&self, t: TaskId) -> ProcId {
        self.proc_of[t.index()]
    }
}

struct MapState<'a> {
    g: &'a TaskGraph,
    p: &'a Platform,
    procs: Vec<ProcId>,
    proc_of: Vec<ProcId>,
    start: Vec<f64>,
    finish: Vec<f64>,
    placed: Vec<bool>,
    cpu: Vec<IntervalSet>,
    send: Vec<IntervalSet>,
    recv: Vec<IntervalSet>,
    comms: Vec<MakespanComm>,
}

impl<'a> MapState<'a> {
    fn new(g: &'a TaskGraph, p: &'a Platform, procs: &[ProcId]) -> Self {
        let m = p.num_procs();
        Self {
            g,
            p,
            procs: procs.to_vec(),
            proc_of: vec![ProcId(0); g.num_tasks()],
            start: vec![0.0; g.num_tasks()],
            finish: vec![0.0; g.num_tasks()],
            placed: vec![false; g.num_tasks()],
            cpu: vec![IntervalSet::new(); m],
            send: vec![IntervalSet::new(); m],
            recv: vec![IntervalSet::new(); m],
            comms: Vec::new(),
        }
    }

    /// Earliest start/finish of `t` on `u`, with the port reservations the
    /// placement would need. Returns `(start, finish, comms)`.
    fn eft(&self, t: TaskId, u: ProcId) -> (f64, f64, PlannedComms) {
        let mut ready = 0.0f64;
        let mut recv_scratch: Option<IntervalSet> = None;
        let mut send_scratch: Vec<Option<IntervalSet>> = vec![None; self.p.num_procs()];
        let mut comms = Vec::new();
        // Deterministic order: by producer finish time.
        let mut preds: Vec<_> = self.g.pred_edges(t).to_vec();
        preds.sort_by(|a, b| {
            let fa = self.finish[self.g.edge(*a).src.index()];
            let fb = self.finish[self.g.edge(*b).src.index()];
            fa.partial_cmp(&fb).unwrap().then(a.cmp(b))
        });
        for eid in preds {
            let e = self.g.edge(eid);
            debug_assert!(self.placed[e.src.index()]);
            let h = self.proc_of[e.src.index()];
            if h == u {
                ready = ready.max(self.finish[e.src.index()]);
                continue;
            }
            let dur = self.p.comm_time(e.volume, h, u);
            if dur <= ltf_schedule::EPS {
                ready = ready.max(self.finish[e.src.index()]);
                continue;
            }
            let hs = send_scratch[h.index()].get_or_insert_with(|| self.send[h.index()].clone());
            let rs = recv_scratch.get_or_insert_with(|| self.recv[u.index()].clone());
            let st = earliest_common_fit(hs, rs, self.finish[e.src.index()], dur);
            hs.insert(st, st + dur);
            rs.insert(st, st + dur);
            comms.push((eid, h, st, st + dur));
            ready = ready.max(st + dur);
        }
        let exec = self.p.exec_time(self.g.exec(t), u);
        let start = self.cpu[u.index()].next_fit(ready, exec);
        (start, start + exec, comms)
    }

    fn commit(
        &mut self,
        t: TaskId,
        u: ProcId,
        start: f64,
        finish: f64,
        comms: &[(EdgeId, ProcId, f64, f64)],
    ) {
        self.placed[t.index()] = true;
        self.proc_of[t.index()] = u;
        self.start[t.index()] = start;
        self.finish[t.index()] = finish;
        self.cpu[u.index()].insert(start, finish);
        for &(edge, h, s, f) in comms {
            self.send[h.index()].insert(s, f);
            self.recv[u.index()].insert(s, f);
            self.comms.push(MakespanComm {
                edge,
                start: s,
                finish: f,
            });
        }
    }

    fn into_schedule(self) -> MakespanSchedule {
        let makespan = self.finish.iter().copied().fold(0.0, f64::max);
        MakespanSchedule {
            proc_of: self.proc_of,
            start: self.start,
            finish: self.finish,
            makespan,
            comms: self.comms,
        }
    }
}

/// HEFT: tasks ordered by decreasing upward rank (platform-averaged bottom
/// level), each mapped to the processor (within `procs`) with the earliest
/// insertion-based finish time.
pub fn heft(g: &TaskGraph, p: &Platform, procs: &[ProcId]) -> MakespanSchedule {
    assert!(!procs.is_empty());
    let exec: Vec<f64> = g.tasks().map(|t| g.exec(t)).collect();
    let volume: Vec<f64> = g.edge_ids().map(|e| g.edge(e).volume).collect();
    let avg = p.average_weights(&AverageWeightsInput {
        exec: &exec,
        volume: &volume,
    });
    let w = Weights::new(avg.node, avg.edge);
    let rank = levels::bottom_levels(g, &w);
    // Priority scheduling loop: always map the ready task with the highest
    // upward rank (equivalent to HEFT's rank-sorted order, but robust to
    // zero-weight rank ties that could break topological feasibility).
    let mut st = MapState::new(g, p, procs);
    let mut indeg: Vec<usize> = g.tasks().map(|t| g.in_degree(t)).collect();
    let mut ready: Vec<TaskId> = g.entries().to_vec();
    while !ready.is_empty() {
        // Highest rank first.
        let mut best = 0usize;
        for i in 1..ready.len() {
            if rank[ready[i].index()] > rank[ready[best].index()] {
                best = i;
            }
        }
        let t = ready.swap_remove(best);
        let mut chosen: Option<(ProcId, f64, f64, PlannedComms)> = None;
        for &u in &st.procs {
            let (s, f, comms) = st.eft(t, u);
            if chosen.as_ref().is_none_or(|c| f < c.2) {
                chosen = Some((u, s, f, comms));
            }
        }
        let (u, s, f, comms) = chosen.expect("non-empty processor set");
        st.commit(t, u, s, f, &comms);
        for succ in g.succs(t) {
            indeg[succ.index()] -= 1;
            if indeg[succ.index()] == 0 {
                ready.push(succ);
            }
        }
    }
    st.into_schedule()
}

/// ETF (Hwang et al.): among all (ready task, processor) pairs, schedule
/// the one with the earliest start time, breaking ties by higher upward
/// rank.
pub fn etf(g: &TaskGraph, p: &Platform, procs: &[ProcId]) -> MakespanSchedule {
    assert!(!procs.is_empty());
    let exec: Vec<f64> = g.tasks().map(|t| g.exec(t)).collect();
    let volume: Vec<f64> = g.edge_ids().map(|e| g.edge(e).volume).collect();
    let avg = p.average_weights(&AverageWeightsInput {
        exec: &exec,
        volume: &volume,
    });
    let w = Weights::new(avg.node, avg.edge);
    let rank = levels::bottom_levels(g, &w);

    let mut st = MapState::new(g, p, procs);
    let mut indeg: Vec<usize> = g.tasks().map(|t| g.in_degree(t)).collect();
    let mut ready: Vec<TaskId> = g.entries().to_vec();
    while !ready.is_empty() {
        let mut chosen: Option<(usize, ProcId, f64, f64, PlannedComms)> = None;
        for (i, &t) in ready.iter().enumerate() {
            for &u in &st.procs {
                let (s, f, comms) = st.eft(t, u);
                let better = match &chosen {
                    None => true,
                    Some((bi, _, bs, _, _)) => {
                        s < *bs - ltf_schedule::EPS
                            || ((s - *bs).abs() <= ltf_schedule::EPS
                                && rank[t.index()] > rank[ready[*bi].index()])
                    }
                };
                if better {
                    chosen = Some((i, u, s, f, comms));
                }
            }
        }
        let (i, u, s, f, comms) = chosen.expect("non-empty ready set");
        let t = ready.swap_remove(i);
        st.commit(t, u, s, f, &comms);
        for succ in g.succs(t) {
            indeg[succ.index()] -= 1;
            if indeg[succ.index()] == 0 {
                ready.push(succ);
            }
        }
    }
    st.into_schedule()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltf_graph::generate::fig1_diamond;

    fn all_procs(p: &Platform) -> Vec<ProcId> {
        p.procs().collect()
    }

    #[test]
    fn heft_chain_on_fastest_proc() {
        let g = ltf_graph::generate::pipeline(4, 10.0, 1.0);
        let p = Platform::fig1_platform();
        let s = heft(&g, &p, &all_procs(&p));
        // Chain stays on a fast processor: 4 × 10/1.5.
        assert!((s.makespan - 4.0 * 10.0 / 1.5).abs() < 1e-9);
        let u = s.proc(TaskId(0));
        assert!(g.tasks().all(|t| s.proc(t) == u));
    }

    #[test]
    fn heft_fig1_lane_reproduces_paper_value() {
        // Fig. 1(b): on the lane {P1 (s=1.5), P2 (s=1)} the list schedule
        // of the diamond finishes at 39.
        let g = fig1_diamond();
        let p = Platform::fig1_platform();
        let s = heft(&g, &p, &[ProcId(0), ProcId(1)]);
        assert!((s.makespan - 39.0).abs() < 1e-9, "makespan {}", s.makespan);
    }

    #[test]
    fn heft_respects_precedence() {
        let g = fig1_diamond();
        let p = Platform::fig1_platform();
        let s = heft(&g, &p, &all_procs(&p));
        for eid in g.edge_ids() {
            let e = g.edge(eid);
            let gap = if s.proc(e.src) == s.proc(e.dst) {
                0.0
            } else {
                p.comm_time(e.volume, s.proc(e.src), s.proc(e.dst))
            };
            assert!(
                s.start[e.dst.index()] + 1e-9 >= s.finish[e.src.index()] + gap,
                "edge {} -> {} violated",
                e.src,
                e.dst
            );
        }
    }

    #[test]
    fn etf_terminates_and_orders() {
        let g = fig1_diamond();
        let p = Platform::fig1_platform();
        let s = etf(&g, &p, &all_procs(&p));
        assert!(s.makespan > 0.0);
        // ETF is usually no better than HEFT on this graph but must be a
        // valid schedule.
        for eid in g.edge_ids() {
            let e = g.edge(eid);
            assert!(
                s.finish[e.src.index()] <= s.start[e.dst.index()] + 1e-9
                    || s.proc(e.src) != s.proc(e.dst)
            );
        }
    }

    #[test]
    fn single_proc_subset_serializes() {
        let g = fig1_diamond();
        let p = Platform::fig1_platform();
        let s = heft(&g, &p, &[ProcId(1)]);
        // All on P2 (speed 1): 4 × 15.
        assert!((s.makespan - 60.0).abs() < 1e-9);
    }
}
