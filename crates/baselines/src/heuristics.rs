//! [`Heuristic`] adapters: every baseline strategy as a real
//! [`Schedule`]-emitting plugin for the [`Solver`] registry.
//!
//! The legacy entry points of this crate return strategy-specific outcome
//! types ([`MakespanSchedule`], [`crate::TaskParallelOutcome`],
//! [`crate::DataParallelOutcome`]); the adapters here
//! project each strategy into the pipelined single-item schedule model so
//! it can be dispatched, validated, simulated and searched over exactly
//! like LTF/R-LTF:
//!
//! * [`Heft`] / [`Etf`] — the contention-aware makespan list schedules
//!   over the whole platform, run once per data set (ε = 0 only);
//! * [`TaskParallel`] — Fig. 1(b): `ε+1` disjoint HEFT lanes, each
//!   executing every data set;
//! * [`DataParallel`] — Fig. 1(c): whole graph per processor. The
//!   round-robin stream scaling is not expressible in the single-item
//!   model, so the adapter emits the schedule of the *fastest replica
//!   group* (the one achieving the legacy outcome's latency); the legacy
//!   [`data_parallel()`](crate::data_parallel()) outcome remains the
//!   stream-level analysis;
//! * [`ThroughputFirst`] — the greedy stage partitioning, which already
//!   emits a [`Schedule`].
//!
//! All adapters check condition (1) — per-processor compute and port
//! loads within the period — and fail with
//! [`ScheduleError::Overloaded`] naming the violating processor, or
//! [`ScheduleError::Unsupported`] when asked for a replication degree the
//! strategy cannot express.
//!
//! ```
//! use ltf_baselines::full_solver;
//! use ltf_core::AlgoConfig;
//! use ltf_graph::generate::fig1_diamond;
//! use ltf_platform::Platform;
//!
//! let g = fig1_diamond();
//! let p = Platform::fig1_platform();
//! let solver = full_solver(&g, &p); // ltf, rltf, fault-free + 5 baselines
//! let sol = solver.solve("task-parallel", &AlgoConfig::new(1, 39.0)).unwrap();
//! assert_eq!(sol.metrics.epsilon, 1);
//! ```

use crate::makespan::{self, MakespanSchedule};
use crate::throughput_first;
use ltf_core::{AlgoConfig, Heuristic, PreparedInstance, ScheduleError, Solver};
use ltf_graph::TaskGraph;
use ltf_platform::{Platform, ProcId};
use ltf_schedule::{CommEvent, ReplicaId, Schedule, ScheduleData, SourceChoice, EPS};

/// The same period validation the core driver applies: a NaN, infinite
/// or non-positive period is a configuration error, never a feasible
/// mapping (the `load > period + EPS` overload checks are vacuously
/// false for NaN/+inf and must not be reached).
fn require_valid_period(cfg: &AlgoConfig) -> Result<(), ScheduleError> {
    if !(cfg.period.is_finite() && cfg.period > 0.0) {
        return Err(ScheduleError::BadConfig(format!(
            "period must be positive, got {}",
            cfg.period
        )));
    }
    Ok(())
}

/// Reject replication for single-copy strategies.
fn require_epsilon_zero(strategy: &str, cfg: &AlgoConfig) -> Result<(), ScheduleError> {
    require_valid_period(cfg)?;
    if cfg.epsilon != 0 {
        return Err(ScheduleError::Unsupported(format!(
            "{strategy} does not replicate; requested ε = {} (use ε = 0)",
            cfg.epsilon
        )));
    }
    Ok(())
}

/// Condition (1): every processor's cycle time fits the period.
fn check_condition1(p: &Platform, sched: Schedule) -> Result<Schedule, ScheduleError> {
    for u in p.procs() {
        let load = sched.cycle_time(u);
        if load > sched.period() + EPS {
            return Err(ScheduleError::Overloaded {
                proc: u,
                load,
                capacity: sched.period(),
            });
        }
    }
    Ok(sched)
}

/// Project a single-copy makespan schedule into the ε = 0 pipelined model.
fn single_copy_schedule(
    g: &TaskGraph,
    p: &Platform,
    ms: &MakespanSchedule,
    period: f64,
) -> Schedule {
    let sources: Vec<Vec<SourceChoice>> = g
        .tasks()
        .map(|t| {
            g.pred_edges(t)
                .iter()
                .map(|&e| SourceChoice::one(e, 0))
                .collect()
        })
        .collect();
    let comm_events: Vec<CommEvent> = ms
        .comms
        .iter()
        .map(|c| {
            let e = g.edge(c.edge);
            CommEvent {
                edge: c.edge,
                src: ReplicaId::new(e.src, 0),
                dst: ReplicaId::new(e.dst, 0),
                src_proc: ms.proc_of[e.src.index()],
                dst_proc: ms.proc_of[e.dst.index()],
                start: c.start,
                finish: c.finish,
            }
        })
        .collect();
    Schedule::new(
        g,
        p,
        ScheduleData {
            epsilon: 0,
            period,
            proc_of: ms.proc_of.clone(),
            start: ms.start.clone(),
            finish: ms.finish.clone(),
            sources,
            comm_events,
        },
    )
}

/// Combine per-lane makespan schedules (disjoint processor sets, lane `k`
/// hosting copy `k` of every task) into one replicated schedule.
fn lanes_schedule(
    g: &TaskGraph,
    p: &Platform,
    lane_schedules: &[MakespanSchedule],
    period: f64,
) -> Schedule {
    let nrep = lane_schedules.len();
    let epsilon = (nrep - 1) as u8;
    let v = g.num_tasks();
    let n = v * nrep;
    let mut proc_of = vec![ProcId(0); n];
    let mut start = vec![0.0f64; n];
    let mut finish = vec![0.0f64; n];
    let mut sources: Vec<Vec<SourceChoice>> = vec![Vec::new(); n];
    let mut comm_events = Vec::new();
    for (k, ls) in lane_schedules.iter().enumerate() {
        for t in g.tasks() {
            let r = ReplicaId::new(t, k as u8).dense(nrep);
            proc_of[r] = ls.proc_of[t.index()];
            start[r] = ls.start[t.index()];
            finish[r] = ls.finish[t.index()];
            sources[r] = g
                .pred_edges(t)
                .iter()
                .map(|&e| SourceChoice::one(e, k as u8))
                .collect();
        }
        for c in &ls.comms {
            let e = g.edge(c.edge);
            comm_events.push(CommEvent {
                edge: c.edge,
                src: ReplicaId::new(e.src, k as u8),
                dst: ReplicaId::new(e.dst, k as u8),
                src_proc: ls.proc_of[e.src.index()],
                dst_proc: ls.proc_of[e.dst.index()],
                start: c.start,
                finish: c.finish,
            });
        }
    }
    Schedule::new(
        g,
        p,
        ScheduleData {
            epsilon,
            period,
            proc_of,
            start,
            finish,
            sources,
            comm_events,
        },
    )
}

/// **HEFT** over the whole platform (ε = 0): upward-rank list scheduling
/// with insertion-based earliest finish time, run once per data set. The
/// *task parallelism* scenario of Fig. 1(b) without replication.
#[derive(Debug, Clone, Copy, Default)]
pub struct Heft;

impl Heuristic for Heft {
    fn name(&self) -> &'static str {
        "heft"
    }

    fn schedule(
        &self,
        inst: &PreparedInstance<'_>,
        cfg: &AlgoConfig,
    ) -> Result<Schedule, ScheduleError> {
        require_epsilon_zero("heft", cfg)?;
        let (g, p) = (inst.graph(), inst.platform());
        let procs: Vec<ProcId> = p.procs().collect();
        let ms = makespan::heft(g, p, &procs);
        check_condition1(p, single_copy_schedule(g, p, &ms, cfg.period))
    }
}

/// **ETF** over the whole platform (ε = 0): earliest-start-first list
/// scheduling under the one-port model, run once per data set.
#[derive(Debug, Clone, Copy, Default)]
pub struct Etf;

impl Heuristic for Etf {
    fn name(&self) -> &'static str {
        "etf"
    }

    fn schedule(
        &self,
        inst: &PreparedInstance<'_>,
        cfg: &AlgoConfig,
    ) -> Result<Schedule, ScheduleError> {
        require_epsilon_zero("etf", cfg)?;
        let (g, p) = (inst.graph(), inst.platform());
        let procs: Vec<ProcId> = p.procs().collect();
        let ms = makespan::etf(g, p, &procs);
        check_condition1(p, single_copy_schedule(g, p, &ms, cfg.period))
    }
}

/// **Task parallelism** (Fig. 1(b)): the platform is dealt into `ε+1`
/// disjoint lanes by descending speed; every lane list-schedules (HEFT)
/// the whole DAG per data set. Copy `k` of every task lives on lane `k`.
#[derive(Debug, Clone, Copy, Default)]
pub struct TaskParallel;

impl Heuristic for TaskParallel {
    fn name(&self) -> &'static str {
        "task-parallel"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["task_parallel"]
    }

    fn schedule(
        &self,
        inst: &PreparedInstance<'_>,
        cfg: &AlgoConfig,
    ) -> Result<Schedule, ScheduleError> {
        require_valid_period(cfg)?;
        let (g, p) = (inst.graph(), inst.platform());
        let nrep = cfg.replicas();
        if p.num_procs() < nrep {
            return Err(ScheduleError::TooFewProcessors {
                needed: nrep,
                available: p.num_procs(),
            });
        }
        let out = crate::task_parallel(g, p, cfg.epsilon);
        check_condition1(p, lanes_schedule(g, p, &out.lane_schedules, cfg.period))
    }
}

/// **Data parallelism** (Fig. 1(c)): whole graph on single processors.
/// The adapter schedules the *fastest replica group* of the legacy
/// dealing — copy `k` of every task runs sequentially (topological
/// order) on group member `k` — because the single-item pipelined model
/// cannot express the round-robin throughput multiplication over groups.
#[derive(Debug, Clone, Copy, Default)]
pub struct DataParallel;

impl Heuristic for DataParallel {
    fn name(&self) -> &'static str {
        "data-parallel"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["data_parallel"]
    }

    fn schedule(
        &self,
        inst: &PreparedInstance<'_>,
        cfg: &AlgoConfig,
    ) -> Result<Schedule, ScheduleError> {
        require_valid_period(cfg)?;
        let (g, p) = (inst.graph(), inst.platform());
        let nrep = cfg.replicas();
        if p.num_procs() < nrep {
            return Err(ScheduleError::TooFewProcessors {
                needed: nrep,
                available: p.num_procs(),
            });
        }
        let out = crate::data_parallel(g, p, cfg.epsilon);
        // Group 0 holds the overall fastest processor, so it attains the
        // legacy outcome's (fastest-member) latency.
        let group = &out.groups[0];
        let order = g.topo_order();
        let v = g.num_tasks();
        let n = v * nrep;
        let mut proc_of = vec![ProcId(0); n];
        let mut start = vec![0.0f64; n];
        let mut finish = vec![0.0f64; n];
        let mut sources: Vec<Vec<SourceChoice>> = vec![Vec::new(); n];
        for (k, &u) in group.iter().enumerate() {
            let mut clock = 0.0f64;
            for &t in order {
                let r = ReplicaId::new(t, k as u8).dense(nrep);
                let exec = p.exec_time(g.exec(t), u);
                proc_of[r] = u;
                start[r] = clock;
                finish[r] = clock + exec;
                clock += exec;
                sources[r] = g
                    .pred_edges(t)
                    .iter()
                    .map(|&e| SourceChoice::one(e, k as u8))
                    .collect();
            }
            if clock > cfg.period + EPS {
                return Err(ScheduleError::Overloaded {
                    proc: u,
                    load: clock,
                    capacity: cfg.period,
                });
            }
        }
        Ok(Schedule::new(
            g,
            p,
            ScheduleData {
                epsilon: cfg.epsilon,
                period: cfg.period,
                proc_of,
                start,
                finish,
                sources,
                comm_events: Vec::new(),
            },
        ))
    }
}

/// **Throughput-first** greedy stage partitioning (§3 related work
/// flavour): satisfies the throughput constraint first-fit with no
/// replication and no latency objective.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThroughputFirst;

impl Heuristic for ThroughputFirst {
    fn name(&self) -> &'static str {
        "throughput-first"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["throughput_first"]
    }

    fn schedule(
        &self,
        inst: &PreparedInstance<'_>,
        cfg: &AlgoConfig,
    ) -> Result<Schedule, ScheduleError> {
        require_epsilon_zero("throughput-first", cfg)?;
        throughput_first(inst.graph(), inst.platform(), cfg.period).map_err(|e| {
            ScheduleError::Infeasible {
                task: e.task,
                copy: 0,
            }
        })
    }
}

/// All baseline strategies as boxed [`Heuristic`] plugins, in canonical
/// order: `heft`, `etf`, `task-parallel`, `data-parallel`,
/// `throughput-first`.
pub fn heuristics() -> Vec<Box<dyn Heuristic>> {
    vec![
        Box::new(Heft),
        Box::new(Etf),
        Box::new(TaskParallel),
        Box::new(DataParallel),
        Box::new(ThroughputFirst),
    ]
}

/// Register every baseline strategy on an existing [`Solver`] session.
pub fn register_baselines(solver: &mut Solver<'_>) {
    for h in heuristics() {
        solver.register(h);
    }
}

/// A [`Solver`] session with the full strategy family registered: the
/// paper's `ltf`, `rltf` and `fault-free` plus the five baselines.
pub fn full_solver<'a>(g: &'a TaskGraph, p: &'a Platform) -> Solver<'a> {
    let mut solver = Solver::builtin(g, p);
    register_baselines(&mut solver);
    solver
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltf_graph::generate::fig1_diamond;
    use ltf_schedule::validate;

    fn fig1() -> (TaskGraph, Platform) {
        (fig1_diamond(), Platform::fig1_platform())
    }

    #[test]
    fn full_solver_registers_eight_names() {
        let (g, p) = fig1();
        let solver = full_solver(&g, &p);
        assert_eq!(
            solver.names(),
            vec![
                "ltf",
                "rltf",
                "fault-free",
                "heft",
                "etf",
                "task-parallel",
                "data-parallel",
                "throughput-first",
            ]
        );
    }

    #[test]
    fn heft_adapter_emits_valid_schedule() {
        let (g, p) = fig1();
        let solver = full_solver(&g, &p);
        let sol = solver.solve("heft", &AlgoConfig::new(0, 40.0)).unwrap();
        validate(&g, &p, &sol.schedule).expect("valid");
        assert_eq!(sol.metrics.epsilon, 0);
        // Makespan list schedule over the full platform: every task done
        // within the HEFT makespan.
        assert!(sol.metrics.achieved_throughput >= 1.0 / 40.0 - 1e-12);
    }

    #[test]
    fn heft_adapter_rejects_replication() {
        let (g, p) = fig1();
        let solver = full_solver(&g, &p);
        let err = solver.solve("heft", &AlgoConfig::new(1, 40.0)).unwrap_err();
        assert!(matches!(err.error, ScheduleError::Unsupported(_)));
    }

    #[test]
    fn task_parallel_adapter_matches_legacy_lanes() {
        let (g, p) = fig1();
        let solver = full_solver(&g, &p);
        // Paper Fig. 1(b): both mirror lanes reach makespan 39.
        let sol = solver
            .solve("task-parallel", &AlgoConfig::new(1, 39.0))
            .unwrap();
        validate(&g, &p, &sol.schedule).expect("valid");
        let legacy = crate::task_parallel(&g, &p, 1);
        for (k, ls) in legacy.lane_schedules.iter().enumerate() {
            for t in g.tasks() {
                let r = ReplicaId::new(t, k as u8);
                assert_eq!(sol.schedule.proc(r), ls.proc_of[t.index()]);
                assert_eq!(sol.schedule.start(r), ls.start[t.index()]);
                assert_eq!(sol.schedule.finish(r), ls.finish[t.index()]);
            }
        }
        // Condition (1) is per-processor load, not lane makespan: the
        // busiest lane processor carries 30 time units, so Δ = 25 fails.
        let err = solver
            .solve("task-parallel", &AlgoConfig::new(1, 25.0))
            .unwrap_err();
        assert!(matches!(err.error, ScheduleError::Overloaded { .. }));
    }

    #[test]
    fn data_parallel_adapter_matches_legacy_group() {
        let (g, p) = fig1();
        let solver = full_solver(&g, &p);
        // Fig. 1(c): fastest group finishes the whole graph in 40, the
        // slow member needs 60 — feasible from Δ = 60 up.
        let sol = solver
            .solve("data-parallel", &AlgoConfig::new(1, 60.0))
            .unwrap();
        validate(&g, &p, &sol.schedule).expect("valid");
        assert_eq!(sol.metrics.stages, 1);
        assert_eq!(sol.metrics.comm_count, 0);
        let legacy = crate::data_parallel(&g, &p, 1);
        for (k, &u) in legacy.groups[0].iter().enumerate() {
            for t in g.tasks() {
                assert_eq!(sol.schedule.proc(ReplicaId::new(t, k as u8)), u);
            }
        }
        let err = solver
            .solve("data-parallel", &AlgoConfig::new(1, 50.0))
            .unwrap_err();
        assert!(matches!(err.error, ScheduleError::Overloaded { .. }));
    }

    #[test]
    fn throughput_first_adapter_matches_legacy() {
        let (g, p) = fig1();
        let solver = full_solver(&g, &p);
        let sol = solver
            .solve("throughput-first", &AlgoConfig::new(0, 30.0))
            .unwrap();
        let legacy = throughput_first(&g, &p, 30.0).unwrap();
        assert_eq!(sol.metrics.stages, legacy.num_stages());
        for r in legacy.replicas() {
            assert_eq!(sol.schedule.proc(r), legacy.proc(r));
            assert_eq!(sol.schedule.start(r), legacy.start(r));
        }
    }

    #[test]
    fn too_few_processors_is_typed() {
        let g = fig1_diamond();
        let p = Platform::homogeneous(1, 1.0, 1.0);
        let solver = full_solver(&g, &p);
        for name in ["task-parallel", "data-parallel"] {
            let err = solver.solve(name, &AlgoConfig::new(1, 100.0)).unwrap_err();
            assert!(
                matches!(err.error, ScheduleError::TooFewProcessors { .. }),
                "{name}: {err}"
            );
        }
    }

    #[test]
    fn bad_periods_rejected_like_core() {
        // NaN/∞/non-positive periods must be BadConfig, not a vacuous
        // pass through the `load > period` overload checks.
        let (g, p) = fig1();
        let solver = full_solver(&g, &p);
        for period in [f64::NAN, f64::INFINITY, 0.0, -3.0] {
            for name in solver.names() {
                let eps = u8::from(matches!(name, "task-parallel" | "data-parallel"));
                let err = solver
                    .solve(name, &AlgoConfig::new(eps, period))
                    .unwrap_err();
                assert!(
                    matches!(err.error, ScheduleError::BadConfig(_)),
                    "{name} at Δ={period}: {err}"
                );
            }
        }
    }
}
