//! Greedy throughput-first stage partitioning (related-work comparator).
//!
//! In the spirit of the §3 heuristics (Hary–Özgüner's pre-clustering, TDA's
//! top-down stage partitioning): walk the graph in topological priority
//! order and place each task, without replication, on a processor that
//! keeps every per-period load within `Δ` — preferring a processor that
//! already hosts one of its predecessors (saving the communication), then
//! the least-loaded feasible one. No attempt is made to bound the pipeline
//! stage count, which is exactly the deficiency R-LTF addresses; the
//! emitted [`Schedule`] makes the comparison measurable.

use ltf_graph::{levels, TaskGraph, TaskId, Weights};
use ltf_platform::{AverageWeightsInput, Platform, ProcId};
use ltf_schedule::intervals::earliest_common_fit;
use ltf_schedule::{CommEvent, IntervalSet, ReplicaId, Schedule, ScheduleData, SourceChoice, EPS};

/// Error: some task cannot be placed without violating the period.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Infeasible {
    /// The task that could not be placed.
    pub task: TaskId,
}

impl std::fmt::Display for Infeasible {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "throughput-first baseline cannot place {}", self.task)
    }
}

impl std::error::Error for Infeasible {}

/// Map the graph without replication under period `period`.
pub fn throughput_first(g: &TaskGraph, p: &Platform, period: f64) -> Result<Schedule, Infeasible> {
    assert!(period.is_finite() && period > 0.0);
    let m = p.num_procs();
    let v = g.num_tasks();

    let exec: Vec<f64> = g.tasks().map(|t| g.exec(t)).collect();
    let volume: Vec<f64> = g.edge_ids().map(|e| g.edge(e).volume).collect();
    let avg = p.average_weights(&AverageWeightsInput {
        exec: &exec,
        volume: &volume,
    });
    let w = Weights::new(avg.node, avg.edge);
    let prio = levels::priorities(g, &w);

    let mut proc_of = vec![ProcId(0); v];
    let mut start = vec![0.0f64; v];
    let mut finish = vec![0.0f64; v];
    let mut placed = vec![false; v];
    let mut sigma = vec![0.0f64; m];
    let mut cin = vec![0.0f64; m];
    let mut cout = vec![0.0f64; m];
    let mut cpu = vec![IntervalSet::new(); m];
    let mut send = vec![IntervalSet::new(); m];
    let mut recv = vec![IntervalSet::new(); m];
    let mut comm_events = Vec::new();

    let mut indeg: Vec<usize> = g.tasks().map(|t| g.in_degree(t)).collect();
    let mut ready: Vec<TaskId> = g.entries().to_vec();

    while !ready.is_empty() {
        // Highest priority ready task.
        let mut best = 0usize;
        for i in 1..ready.len() {
            if prio[ready[i].index()] > prio[ready[best].index()] {
                best = i;
            }
        }
        let t = ready.swap_remove(best);

        // Candidate order: predecessor hosts first (cheapest), then all
        // processors by ascending compute load.
        let mut cands: Vec<ProcId> = g.preds(t).map(|pr| proc_of[pr.index()]).collect();
        let mut rest: Vec<ProcId> = p.procs().collect();
        rest.sort_by(|a, b| sigma[a.index()].partial_cmp(&sigma[b.index()]).unwrap());
        cands.extend(rest);

        let mut done = false;
        for u in cands {
            if placed[t.index()] {
                break;
            }
            let exec_t = p.exec_time(g.exec(t), u);
            if sigma[u.index()] + exec_t > period + EPS {
                continue;
            }
            // Tentative port reservations for the incoming messages.
            let mut recv_scratch = recv[u.index()].clone();
            let mut send_scratch: Vec<Option<IntervalSet>> = vec![None; m];
            let mut planned = Vec::new();
            let mut cin_add = 0.0;
            let mut cout_add = vec![0.0f64; m];
            let mut ready_at = 0.0f64;
            let mut ok = true;
            for &eid in g.pred_edges(t) {
                let e = g.edge(eid);
                let h = proc_of[e.src.index()];
                if h == u {
                    ready_at = ready_at.max(finish[e.src.index()]);
                    continue;
                }
                let dur = p.comm_time(e.volume, h, u);
                if dur <= EPS {
                    ready_at = ready_at.max(finish[e.src.index()]);
                    continue;
                }
                let hs = send_scratch[h.index()].get_or_insert_with(|| send[h.index()].clone());
                let st = earliest_common_fit(hs, &recv_scratch, finish[e.src.index()], dur);
                hs.insert(st, st + dur);
                recv_scratch.insert(st, st + dur);
                cin_add += dur;
                cout_add[h.index()] += dur;
                if cout[h.index()] + cout_add[h.index()] > period + EPS {
                    ok = false;
                    break;
                }
                planned.push((eid, e.src, h, st, dur));
                ready_at = ready_at.max(st + dur);
            }
            if !ok || cin[u.index()] + cin_add > period + EPS {
                continue;
            }
            let s = cpu[u.index()].next_fit(ready_at, exec_t);
            // Commit.
            placed[t.index()] = true;
            proc_of[t.index()] = u;
            start[t.index()] = s;
            finish[t.index()] = s + exec_t;
            sigma[u.index()] += exec_t;
            cpu[u.index()].insert(s, s + exec_t);
            cin[u.index()] += cin_add;
            for (eid, src, h, st, dur) in planned {
                send[h.index()].insert(st, st + dur);
                recv[u.index()].insert(st, st + dur);
                cout[h.index()] += dur;
                comm_events.push(CommEvent {
                    edge: eid,
                    src: ReplicaId::new(src, 0),
                    dst: ReplicaId::new(t, 0),
                    src_proc: h,
                    dst_proc: u,
                    start: st,
                    finish: st + dur,
                });
            }
            done = true;
        }
        if !done {
            return Err(Infeasible { task: t });
        }
        for s in g.succs(t) {
            indeg[s.index()] -= 1;
            if indeg[s.index()] == 0 {
                ready.push(s);
            }
        }
    }

    let sources: Vec<Vec<SourceChoice>> = g
        .tasks()
        .map(|t| {
            g.pred_edges(t)
                .iter()
                .map(|&e| SourceChoice::one(e, 0))
                .collect()
        })
        .collect();
    Ok(Schedule::new(
        g,
        p,
        ScheduleData {
            epsilon: 0,
            period,
            proc_of,
            start,
            finish,
            sources,
            comm_events,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltf_graph::generate::{fig1_diamond, pipeline};
    use ltf_schedule::validate;

    #[test]
    fn produces_valid_schedule() {
        let g = fig1_diamond();
        let p = Platform::fig1_platform();
        let s = throughput_first(&g, &p, 30.0).expect("feasible");
        validate(&g, &p, &s).expect("valid");
        assert!(s.achieved_throughput() + 1e-12 >= 1.0 / 30.0);
    }

    #[test]
    fn colocates_when_period_allows() {
        // Period large enough for the whole chain on one processor.
        let g = pipeline(4, 5.0, 1.0);
        let p = Platform::homogeneous(3, 1.0, 1.0);
        let s = throughput_first(&g, &p, 100.0).expect("feasible");
        assert_eq!(s.num_stages(), 1);
        assert_eq!(s.comm_count(), 0);
    }

    #[test]
    fn splits_into_stages_when_tight() {
        let g = pipeline(4, 5.0, 1.0);
        let p = Platform::homogeneous(4, 1.0, 1.0);
        // Period 5: one task per processor.
        let s = throughput_first(&g, &p, 5.0).expect("feasible");
        validate(&g, &p, &s).expect("valid");
        assert_eq!(s.num_stages(), 4);
        assert_eq!(s.procs_used(), 4);
    }

    #[test]
    fn infeasible_reported() {
        let g = pipeline(4, 10.0, 1.0);
        let p = Platform::homogeneous(2, 1.0, 1.0);
        // Period 12 fits one task per proc (10), but 4 tasks on 2 procs
        // need 20 per proc: infeasible.
        assert!(throughput_first(&g, &p, 12.0).is_err());
    }
}
