//! Data parallelism (Fig. 1(c)): the whole graph on single processors,
//! consecutive data sets dealt round-robin to replica groups.
//!
//! Processors are dealt by descending speed into `⌊m/(ε+1)⌋` groups of
//! `ε+1` members. Each incoming data set goes to one group (round-robin);
//! all group members execute the complete task graph on it (active
//! replication). As the paper notes, this assumes consecutive data sets
//! are independent — an assumption the pipelined model does not make.
//!
//! Two throughput figures are reported: the *optimistic* one counts, per
//! group, the fastest member (in the absence of failures the result is
//! taken from it; the paper's `T = 2/40 = 1/20` on Fig. 1), and the
//! *guaranteed* one counts the slowest member (active replication must
//! keep every copy current for the failure guarantee to persist).

use ltf_graph::TaskGraph;
use ltf_platform::{Platform, ProcId};

/// Outcome of the data-parallel strategy.
#[derive(Debug, Clone)]
pub struct DataParallelOutcome {
    /// Replica groups of `ε+1` processors; items are dealt round-robin.
    pub groups: Vec<Vec<ProcId>>,
    /// Whole-graph execution time on each group's fastest member.
    pub group_fast_time: Vec<f64>,
    /// Whole-graph execution time on each group's slowest member.
    pub group_slow_time: Vec<f64>,
    /// `Σ_groups 1 / fast_time` — the paper's "maximum throughput in the
    /// absence of failures".
    pub throughput_optimistic: f64,
    /// `Σ_groups 1 / slow_time` — sustainable with every replica current.
    pub throughput_guaranteed: f64,
    /// Latency of a data set in the absence of failures (fastest member of
    /// the fastest group).
    pub latency: f64,
}

/// Run the data-parallel baseline with fault-tolerance degree `epsilon`.
/// Left-over processors (`m mod (ε+1)`) stay idle.
///
/// # Panics
/// If `m < ε + 1`.
pub fn data_parallel(g: &TaskGraph, p: &Platform, epsilon: u8) -> DataParallelOutcome {
    let nrep = epsilon as usize + 1;
    assert!(p.num_procs() >= nrep, "need at least ε+1 processors");
    let n_groups = p.num_procs() / nrep;
    let by_speed = p.procs_by_speed_desc();
    let mut groups: Vec<Vec<ProcId>> = vec![Vec::new(); n_groups];
    for (i, u) in by_speed.into_iter().take(n_groups * nrep).enumerate() {
        groups[i % n_groups].push(u);
    }
    let total = g.total_exec();
    let time_on = |u: ProcId| total / p.speed(u);
    let group_fast_time: Vec<f64> = groups
        .iter()
        .map(|grp| {
            grp.iter()
                .map(|&u| time_on(u))
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    let group_slow_time: Vec<f64> = groups
        .iter()
        .map(|grp| grp.iter().map(|&u| time_on(u)).fold(0.0f64, f64::max))
        .collect();
    DataParallelOutcome {
        throughput_optimistic: group_fast_time.iter().map(|t| 1.0 / t).sum(),
        throughput_guaranteed: group_slow_time.iter().map(|t| 1.0 / t).sum(),
        latency: group_fast_time
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min),
        groups,
        group_fast_time,
        group_slow_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltf_graph::generate::fig1_diamond;

    #[test]
    fn fig1c_reproduced() {
        let g = fig1_diamond();
        let p = Platform::fig1_platform();
        let out = data_parallel(&g, &p, 1);
        // Two groups, each {fast (1.5), slow (1)}: fast time 40, slow 60.
        assert_eq!(out.groups.len(), 2);
        assert_eq!(out.group_fast_time, vec![40.0, 40.0]);
        assert_eq!(out.group_slow_time, vec![60.0, 60.0]);
        // The paper's "maximum throughput" 2/40 = 1/20.
        assert!((out.throughput_optimistic - 0.05).abs() < 1e-12);
        assert!((out.throughput_guaranteed - 2.0 / 60.0).abs() < 1e-12);
        assert_eq!(out.latency, 40.0);
    }

    #[test]
    fn no_replication_one_proc_groups() {
        let g = fig1_diamond();
        let p = Platform::fig1_platform();
        let out = data_parallel(&g, &p, 0);
        assert_eq!(out.groups.len(), 4);
        // 2 fast + 2 slow processors: 2/40 + 2/60.
        let expect = 2.0 / 40.0 + 2.0 / 60.0;
        assert!((out.throughput_optimistic - expect).abs() < 1e-12);
        assert_eq!(out.throughput_optimistic, out.throughput_guaranteed);
    }

    #[test]
    fn leftover_procs_idle() {
        let g = fig1_diamond();
        let p = Platform::homogeneous(5, 1.0, 1.0);
        let out = data_parallel(&g, &p, 1);
        assert_eq!(out.groups.len(), 2);
        let used: usize = out.groups.iter().map(|g| g.len()).sum();
        assert_eq!(used, 4);
    }
}
