//! Baseline mapping strategies.
//!
//! These implement the execution scenarios the paper's §1 contrasts with
//! pipelined execution (Fig. 1), plus related-work-flavoured comparators:
//!
//! * [`makespan`] — contention-aware makespan list scheduling: HEFT-style
//!   (upward ranks, insertion-based earliest finish time) and ETF
//!   (earliest-start-first), both under the one-port model. These drive
//!   the *task parallelism* scenario.
//! * [`task_parallel()`](task_parallel()) — Fig. 1(b): the whole DAG list-scheduled per data
//!   set and repeated serially, with `ε+1` replica lanes on disjoint
//!   processor groups.
//! * [`data_parallel()`](data_parallel()) — Fig. 1(c): the whole graph on single processors,
//!   items dealt round-robin to `ε+1`-sized replica groups.
//! * [`throughput_first()`](throughput_first()) — a greedy stage-partitioning heuristic in the
//!   spirit of the related work (§3: Hary–Özgüner pre-clustering, TDA):
//!   it satisfies the throughput constraint first-fit with no replication
//!   and no latency objective, providing an ε = 0 comparator that emits a
//!   real [`ltf_schedule::Schedule`].

//!
//! Every strategy is also available as a [`ltf_core::Heuristic`] plugin
//! (module [`heuristics`]): [`full_solver`] builds a
//! [`ltf_core::Solver`] session with the paper's algorithms *and* all
//! baselines registered, dispatchable by name.

pub mod data_parallel;
pub mod heuristics;
pub mod makespan;
pub mod task_parallel;
pub mod throughput_first;

pub use crate::data_parallel::{data_parallel, DataParallelOutcome};
pub use crate::heuristics::{
    full_solver, register_baselines, DataParallel, Etf, Heft, TaskParallel, ThroughputFirst,
};
pub use crate::makespan::{etf, heft, MakespanComm, MakespanSchedule};
pub use crate::task_parallel::{task_parallel, TaskParallelOutcome};
pub use crate::throughput_first::throughput_first;
