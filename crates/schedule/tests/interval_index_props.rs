//! Property tests for the bucketed interval index and its probe-time
//! overlays: after arbitrary probe/commit/undo sequences, the overlay
//! machinery must agree with naive clone-and-insert recomputation, and the
//! committed state must match a from-scratch rebuild.

use ltf_schedule::intervals::earliest_common_fit;
use ltf_schedule::{BusyTimeline, IntervalIndex, IntervalSet, OverlayDelta};
use proptest::prelude::*;

const BUCKETS: usize = 4;

/// One probe: a burst of reservations on one bucket, optionally committed.
#[derive(Debug, Clone)]
struct ProbeOp {
    bucket: usize,
    ready: f64,
    durs: Vec<f64>,
    commit: bool,
}

fn probe_ops() -> impl Strategy<Value = Vec<ProbeOp>> {
    prop::collection::vec(
        (
            0usize..BUCKETS,
            0.0f64..40.0,
            prop::collection::vec(0.1f64..4.0, 1..4),
            any::<bool>(),
        )
            .prop_map(|(bucket, ready, durs, commit)| ProbeOp {
                bucket,
                ready,
                durs,
                commit,
            }),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The overlay evaluation of a probe (base bucket + growing delta)
    /// lands every reservation exactly where the naive clone-and-insert
    /// evaluation does, commits mutate both representations identically,
    /// and abandoned probes leave no trace.
    #[test]
    fn overlay_probe_equals_clone_probe(ops in probe_ops()) {
        let mut idx = IntervalIndex::new(BUCKETS);
        let mut naive: Vec<IntervalSet> = vec![IntervalSet::new(); BUCKETS];

        for op in ops {
            // Naive: clone the committed set, insert as we go.
            let mut clone = naive[op.bucket].clone();
            let mut naive_starts = Vec::new();
            let mut ready = op.ready;
            for &dur in &op.durs {
                let t = clone.next_fit(ready, dur);
                clone.insert(t, t + dur);
                naive_starts.push(t);
                ready = t; // later messages never start before earlier ones
            }

            // Overlay: same queries against base + delta, no clone.
            let mut delta = OverlayDelta::new();
            let mut overlay_starts = Vec::new();
            let mut ready = op.ready;
            for &dur in &op.durs {
                let t = idx.overlay(op.bucket, &delta).next_fit(ready, dur);
                delta.insert(t, t + dur);
                overlay_starts.push(t);
                ready = t;
            }
            prop_assert_eq!(&overlay_starts, &naive_starts);

            if op.commit {
                for (&t, &dur) in overlay_starts.iter().zip(&op.durs) {
                    idx.insert(op.bucket, t, t + dur);
                    naive[op.bucket].insert(t, t + dur);
                }
            }
            // An abandoned probe needs no cleanup: the delta simply drops.
        }

        for (u, expect) in naive.iter().enumerate() {
            prop_assert_eq!(idx.bucket(u).intervals(), expect.intervals());
        }
    }

    /// Committing a probe's reservations and then removing them in
    /// reverse order restores each bucket to its exact prior contents
    /// (the undo-log invariant). Earlier committed groups stay in place,
    /// so undo is exercised against populated buckets.
    #[test]
    fn remove_in_reverse_restores_state(ops in probe_ops()) {
        let mut idx = IntervalIndex::new(BUCKETS);

        for op in &ops {
            let snapshot: Vec<Vec<(f64, f64)>> =
                (0..BUCKETS).map(|u| idx.bucket(u).intervals().to_vec()).collect();
            let mut delta = OverlayDelta::new();
            let mut ready = op.ready;
            let mut group = Vec::new();
            for &dur in &op.durs {
                let t = idx.overlay(op.bucket, &delta).next_fit(ready, dur);
                delta.insert(t, t + dur);
                group.push((t, t + dur));
                ready = t;
            }
            for &(s, e) in &group {
                idx.insert(op.bucket, s, e);
            }
            if op.commit {
                continue; // this group stays committed for later ops
            }
            // Speculative group: unwind it and verify exact restoration.
            for &(s, e) in group.iter().rev() {
                idx.remove(op.bucket, s, e);
            }
            for (u, expect) in snapshot.iter().enumerate() {
                prop_assert_eq!(idx.bucket(u).intervals(), &expect[..]);
            }
        }
    }

    /// Cross-timeline co-reservation: the generic common fit over two
    /// overlays equals the common fit over the two materialized sets.
    #[test]
    fn overlay_common_fit_equals_materialized(
        base_a in prop::collection::vec((0.0f64..30.0, 0.2f64..2.0), 0..8),
        base_b in prop::collection::vec((0.0f64..30.0, 0.2f64..2.0), 0..8),
        add_a in prop::collection::vec((0.0f64..30.0, 0.2f64..2.0), 0..4),
        add_b in prop::collection::vec((0.0f64..30.0, 0.2f64..2.0), 0..4),
        ready in 0.0f64..35.0,
        dur in 0.1f64..3.0,
    ) {
        let fill = |reqs: &[(f64, f64)]| {
            let mut s = IntervalSet::new();
            for &(start, len) in reqs {
                let t = s.next_fit(start, len);
                s.insert(t, t + len);
            }
            s
        };
        let a = fill(&base_a);
        let b = fill(&base_b);
        let mut da = OverlayDelta::new();
        let mut db = OverlayDelta::new();
        let mut ma = a.clone();
        let mut mb = b.clone();
        for &(start, len) in &add_a {
            let t = ma.next_fit(start, len);
            ma.insert(t, t + len);
            da.insert(t, t + len);
        }
        for &(start, len) in &add_b {
            let t = mb.next_fit(start, len);
            mb.insert(t, t + len);
            db.insert(t, t + len);
        }

        let idx_a = {
            let mut i = IntervalIndex::new(1);
            for &(s, e) in a.intervals() {
                i.insert(0, s, e);
            }
            i
        };
        let va = idx_a.overlay(0, &da);
        let vb = ltf_schedule::OverlayView::new(&b, db.intervals());
        let got = earliest_common_fit(&va, &vb, ready, dur);
        let want = earliest_common_fit(&ma, &mb, ready, dur);
        prop_assert_eq!(got, want);
        // And the result is genuinely free in both merged timelines.
        prop_assert!(ma.is_free(got, got + dur));
        prop_assert!(mb.is_free(got, got + dur));
        prop_assert!(got + 1e-12 >= ready);
        // Overlay view answers plain fits identically too.
        prop_assert_eq!(
            BusyTimeline::next_fit(&va, ready, dur),
            ma.next_fit(ready, dur)
        );
    }
}
