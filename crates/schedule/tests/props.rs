//! Property-based tests on intervals, crash sets, and stage analyses.

use ltf_platform::ProcId;
use ltf_schedule::failures::{all_crash_sets, sample_crash_set};
use ltf_schedule::intervals::earliest_common_fit;
use ltf_schedule::{CrashSet, IntervalSet};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn interval_insertions_never_overlap(
        reqs in prop::collection::vec((0.0f64..50.0, 0.1f64..5.0), 1..40)
    ) {
        let mut s = IntervalSet::new();
        let mut placed = Vec::new();
        for (ready, dur) in reqs {
            let t = s.next_fit(ready, dur);
            prop_assert!(t + 1e-12 >= ready);
            prop_assert!(s.is_free(t, t + dur));
            s.insert(t, t + dur);
            placed.push((t, t + dur));
        }
        // Pairwise disjoint.
        placed.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in placed.windows(2) {
            prop_assert!(w[0].1 <= w[1].0 + 1e-6);
        }
        //

        // Total busy time equals the sum of durations.
        let total: f64 = placed.iter().map(|(a, b)| b - a).sum();
        prop_assert!((s.total() - total).abs() < 1e-6);
    }

    #[test]
    fn next_fit_returns_first_gap(
        busy in prop::collection::vec((0.0f64..40.0, 0.2f64..3.0), 0..12),
        ready in 0.0f64..45.0,
        dur in 0.1f64..4.0,
    ) {
        let mut s = IntervalSet::new();
        for (start, len) in busy {
            let t = s.next_fit(start, len);
            s.insert(t, t + len);
        }
        let t = s.next_fit(ready, dur);
        prop_assert!(s.is_free(t, t + dur));
        // Minimality on a grid: no earlier admissible start at 0.05
        // resolution (up to the EPS slack used by the set).
        let mut probe = ready;
        while probe < t - 1e-6 {
            prop_assert!(!s.is_free(probe, probe + dur + 1e-5));
            probe += 0.05;
        }
    }

    #[test]
    fn common_fit_is_free_in_both(
        busy_a in prop::collection::vec((0.0f64..30.0, 0.2f64..2.0), 0..10),
        busy_b in prop::collection::vec((0.0f64..30.0, 0.2f64..2.0), 0..10),
        ready in 0.0f64..35.0,
        dur in 0.1f64..3.0,
    ) {
        let mut a = IntervalSet::new();
        for (start, len) in busy_a {
            let t = a.next_fit(start, len);
            a.insert(t, t + len);
        }
        let mut b = IntervalSet::new();
        for (start, len) in busy_b {
            let t = b.next_fit(start, len);
            b.insert(t, t + len);
        }
        let t = earliest_common_fit(&a, &b, ready, dur);
        prop_assert!(t + 1e-12 >= ready);
        prop_assert!(a.is_free(t, t + dur));
        prop_assert!(b.is_free(t, t + dur));
    }

    #[test]
    fn crash_set_roundtrip(m in 1usize..40, picks in prop::collection::vec(0u16..40, 0..12)) {
        let procs: Vec<ProcId> = picks.into_iter().filter(|p| (*p as usize) < m).map(ProcId).collect();
        let cs = CrashSet::from_procs(&procs, m);
        let mut expect: Vec<ProcId> = procs.clone();
        expect.sort();
        expect.dedup();
        prop_assert_eq!(cs.procs(), expect.clone());
        prop_assert_eq!(cs.len(), expect.len());
        for u in 0..m as u16 {
            prop_assert_eq!(cs.contains(ProcId(u)), expect.contains(&ProcId(u)));
        }
    }

    #[test]
    fn sampled_crash_sets_have_exact_size(m in 1usize..30, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let c = rng.gen_range(0..=m);
        let cs = sample_crash_set(m, c, &mut |b| rng.gen_range(0..b));
        prop_assert_eq!(cs.len(), c);
    }

    #[test]
    fn crash_enumeration_counts(m in 1usize..10, c in 0usize..4) {
        let count = all_crash_sets(m, c).count();
        // C(m, c)
        let expect = if c > m { 0 } else {
            (0..c).fold(1usize, |acc, i| acc * (m - i) / (i + 1))
        };
        prop_assert_eq!(count, expect);
    }
}
