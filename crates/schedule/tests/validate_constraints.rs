//! Integration tests: `validate()` must reject throughput-infeasible
//! mappings (condition (1) of the paper: `Σ_u ≤ Δ`, `C^I_u ≤ Δ`,
//! `C^O_u ≤ Δ`) and over-/under-replicated schedules, across the
//! fault-tolerance degrees ε ∈ {0, 1, 3} the paper evaluates.

use ltf_graph::{GraphBuilder, TaskGraph};
use ltf_platform::{Platform, ProcId};
use ltf_schedule::comm::CommEvent;
use ltf_schedule::replica::{ReplicaId, SourceChoice};
use ltf_schedule::schedule::ScheduleData;
use ltf_schedule::{validate, Schedule, Violation};

const EPSILONS: [u8; 3] = [0, 1, 3];

/// A hand-built, *correct* ε-replicated pipelined schedule of the 2-task
/// chain `t0 → t1` (exec 1.0 each, volume `vol`) on `2(ε+1)` unit-speed
/// processors with unit link delay: copy `k` of `t0` runs on `P_k`, copy
/// `k` of `t1` on `P_{nrep+k}`, fed one-to-one.
fn chain_schedule(epsilon: u8, vol: f64, period: f64) -> (TaskGraph, Platform, ScheduleData) {
    let mut b = GraphBuilder::new();
    let t0 = b.add_task(1.0);
    let t1 = b.add_task(1.0);
    let e = b.add_edge(t0, t1, vol);
    let g = b.build().unwrap();

    let nrep = epsilon as usize + 1;
    let p = Platform::homogeneous(2 * nrep, 1.0, 1.0);
    let comm = vol; // vol · d with d = 1

    let mut data = ScheduleData {
        epsilon,
        period,
        proc_of: Vec::new(),
        start: Vec::new(),
        finish: Vec::new(),
        sources: Vec::new(),
        comm_events: Vec::new(),
    };
    // Dense replica order is task-major: all copies of t0, then of t1.
    for k in 0..nrep {
        data.proc_of.push(ProcId(k as u16));
        data.start.push(0.0);
        data.finish.push(1.0);
        data.sources.push(vec![]);
    }
    for k in 0..nrep {
        data.proc_of.push(ProcId((nrep + k) as u16));
        data.start.push(1.0 + comm);
        data.finish.push(2.0 + comm);
        data.sources.push(vec![SourceChoice::one(e, k as u8)]);
        data.comm_events.push(CommEvent {
            edge: e,
            src: ReplicaId::new(t0, k as u8),
            dst: ReplicaId::new(t1, k as u8),
            src_proc: ProcId(k as u16),
            dst_proc: ProcId((nrep + k) as u16),
            start: 1.0,
            finish: 1.0 + comm,
        });
    }
    (g, p, data)
}

fn build(g: &TaskGraph, p: &Platform, data: ScheduleData) -> Schedule {
    Schedule::new(g, p, data)
}

#[test]
fn baseline_chain_schedules_validate_for_all_epsilons() {
    for eps in EPSILONS {
        let (g, p, data) = chain_schedule(eps, 3.0, 10.0);
        let s = build(&g, &p, data);
        assert_eq!(validate(&g, &p, &s), Ok(()), "ε = {eps} baseline");
        assert_eq!(s.num_stages(), 2);
        assert_eq!(s.comm_count(), eps as usize + 1);
    }
}

#[test]
fn compute_overload_rejected_for_all_epsilons() {
    // Period 0.5 < E(t)/s = 1.0: condition (1)'s Σ_u ≤ Δ fails on every
    // processor hosting a replica. Zero-volume edge keeps the ports quiet
    // so the compute violation is isolated.
    for eps in EPSILONS {
        let (g, p, mut data) = chain_schedule(eps, 0.0, 0.5);
        // With vol = 0 the messages are zero-length; drop them and feed
        // co-located-style timing (arrival = producer finish).
        data.comm_events.clear();
        let nrep = eps as usize + 1;
        for k in 0..nrep {
            data.start[nrep + k] = 1.0;
            data.finish[nrep + k] = 2.0;
        }
        let s = build(&g, &p, data);
        let errs =
            validate(&g, &p, &s).expect_err(&format!("ε = {eps}: overload must be rejected"));
        assert!(
            errs.iter()
                .any(|v| matches!(v, Violation::ComputeOverload { .. })),
            "ε = {eps}: expected ComputeOverload, got {errs:?}"
        );
        assert!(
            !errs.iter().any(|v| matches!(
                v,
                Violation::InputOverload { .. } | Violation::OutputOverload { .. }
            )),
            "ε = {eps}: ports should be quiet with vol = 0, got {errs:?}"
        );
    }
}

#[test]
fn port_overload_rejected_for_all_epsilons() {
    // Exec 1.0 fits the period 3.0, but the message takes vol · d = 5.0 >
    // Δ: condition (1)'s C^O_u ≤ Δ fails at senders, C^I_u ≤ Δ at
    // receivers, while compute loads stay legal.
    for eps in EPSILONS {
        let (g, p, data) = chain_schedule(eps, 5.0, 3.0);
        let s = build(&g, &p, data);
        let errs =
            validate(&g, &p, &s).expect_err(&format!("ε = {eps}: port overload must be rejected"));
        assert!(
            errs.iter()
                .any(|v| matches!(v, Violation::OutputOverload { .. })),
            "ε = {eps}: expected OutputOverload, got {errs:?}"
        );
        assert!(
            errs.iter()
                .any(|v| matches!(v, Violation::InputOverload { .. })),
            "ε = {eps}: expected InputOverload, got {errs:?}"
        );
        assert!(
            !errs
                .iter()
                .any(|v| matches!(v, Violation::ComputeOverload { .. })),
            "ε = {eps}: compute fits the period, got {errs:?}"
        );
    }
}

#[test]
fn under_replication_rejected() {
    // Two copies of t0 on the same processor: one crash kills both, so the
    // schedule only survives ε−1 failures. Only expressible for ε ≥ 1.
    for eps in EPSILONS.into_iter().filter(|&e| e >= 1) {
        let (g, p, mut data) = chain_schedule(eps, 3.0, 10.0);
        data.proc_of[1] = data.proc_of[0];
        // Keep the comm event's recorded endpoint consistent with the
        // (now colliding) placement so the collision is the only defect.
        data.comm_events[1].src_proc = data.proc_of[0];
        let s = build(&g, &p, data);
        let errs =
            validate(&g, &p, &s).expect_err(&format!("ε = {eps}: collision must be rejected"));
        assert!(
            errs.iter()
                .any(|v| matches!(v, Violation::ReplicaCollision { .. })),
            "ε = {eps}: expected ReplicaCollision, got {errs:?}"
        );
    }
}

#[test]
#[should_panic(expected = "proc_of size")]
fn structurally_under_replicated_data_is_refused() {
    // Claiming ε = 1 while shipping single-copy arrays cannot even be
    // assembled into a Schedule.
    let (g, p, mut data) = chain_schedule(0, 3.0, 10.0);
    data.epsilon = 1;
    let _ = build(&g, &p, data);
}

#[test]
fn over_replication_rejected() {
    // A source choice referencing copy ε+1 claims more replicas than the
    // schedule carries.
    for eps in EPSILONS {
        let nrep = eps as usize + 1;
        let (g, p, mut data) = chain_schedule(eps, 3.0, 10.0);
        data.sources[nrep][0].sources.push(eps + 1);
        let s = build(&g, &p, data);
        let errs =
            validate(&g, &p, &s).expect_err(&format!("ε = {eps}: bad copy must be rejected"));
        assert!(
            errs.iter()
                .any(|v| matches!(v, Violation::BadSourceCopy { copy, .. } if *copy == eps + 1)),
            "ε = {eps}: expected BadSourceCopy, got {errs:?}"
        );
    }
}

#[test]
fn overloads_reported_per_processor() {
    // Every loaded processor is reported, not just the first: with ε = 1
    // the period-0.5 chain overloads all four hosts.
    let (g, p, mut data) = chain_schedule(1, 0.0, 0.5);
    data.comm_events.clear();
    for k in 0..2 {
        data.start[2 + k] = 1.0;
        data.finish[2 + k] = 2.0;
    }
    let s = build(&g, &p, data);
    let errs = validate(&g, &p, &s).unwrap_err();
    let overloaded: std::collections::BTreeSet<u16> = errs
        .iter()
        .filter_map(|v| match v {
            Violation::ComputeOverload { proc, .. } => Some(proc.0),
            _ => None,
        })
        .collect();
    assert_eq!(overloaded.into_iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
}
