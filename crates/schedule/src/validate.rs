//! Structural schedule validation.
//!
//! A schedule is *valid* when it satisfies every rule the paper's framework
//! imposes:
//!
//! 1. replica placement: each task's `ε+1` copies sit on pairwise distinct
//!    processors (a single crash may not take out two copies);
//! 2. throughput (condition (1)): per processor, `Σ_u ≤ Δ`, `C^I_u ≤ Δ`,
//!    `C^O_u ≤ Δ`;
//! 3. communication structure: every non-entry replica has at least one
//!    recorded source per in-edge; every cross-processor source pair has
//!    exactly one scheduled message of the right duration; co-located pairs
//!    have none;
//! 4. causality: a message starts after its producer finishes and arrives
//!    before its consumer starts; a replica runs for `E(t)/s_u`;
//! 5. one-port: messages sharing a send port or a receive port never
//!    overlap; replicas sharing a processor never overlap;
//! 6. stage consistency: entry replicas are in stage 1 and every recorded
//!    communication crosses at most one stage boundary (the stored stages
//!    are recomputed by construction, so this is a defensive check).

use crate::replica::ReplicaId;
use crate::schedule::Schedule;
use crate::{IntervalSet, EPS};
use ltf_graph::{TaskGraph, TaskId};
use ltf_platform::{Platform, ProcId};
use std::collections::HashMap;

/// One validation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// Two replicas of `task` share processor `proc`.
    ReplicaCollision { task: TaskId, proc: ProcId },
    /// `Σ_u` exceeds the period.
    ComputeOverload { proc: ProcId, sigma: f64 },
    /// `C^I_u` exceeds the period.
    InputOverload { proc: ProcId, cin: f64 },
    /// `C^O_u` exceeds the period.
    OutputOverload { proc: ProcId, cout: f64 },
    /// A replica has no (or an incomplete) source record for an in-edge.
    MissingSource { replica: ReplicaId },
    /// A source refers to a copy number ≥ ε+1.
    BadSourceCopy { replica: ReplicaId, copy: u8 },
    /// A cross-processor source pair has no scheduled message.
    MissingCommEvent { dst: ReplicaId, src: ReplicaId },
    /// A scheduled message does not correspond to any source pair, is
    /// co-located, or duplicates another.
    SpuriousCommEvent { dst: ReplicaId, src: ReplicaId },
    /// Message duration differs from `vol · d_kh`.
    WrongCommDuration { dst: ReplicaId, src: ReplicaId },
    /// Message starts before its producer finishes.
    CommBeforeSourceFinish { dst: ReplicaId, src: ReplicaId },
    /// Message arrives after its consumer starts.
    ArrivalAfterStart { dst: ReplicaId, src: ReplicaId },
    /// Replica runtime differs from `E(t)/s_u`.
    WrongExecTime { replica: ReplicaId },
    /// Non-finite time encountered.
    NonFiniteTime { replica: ReplicaId },
    /// Two messages overlap on a send or receive port.
    PortOverlap { proc: ProcId, send: bool },
    /// Two replicas overlap on the same processor.
    ComputeOverlap { proc: ProcId },
    /// Stage numbering violates the η rule.
    StageInconsistent { replica: ReplicaId },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::ReplicaCollision { task, proc } => {
                write!(f, "two replicas of {task} share {proc}")
            }
            Violation::ComputeOverload { proc, sigma } => {
                write!(f, "{proc} compute load {sigma:.4} exceeds period")
            }
            Violation::InputOverload { proc, cin } => {
                write!(f, "{proc} input comm {cin:.4} exceeds period")
            }
            Violation::OutputOverload { proc, cout } => {
                write!(f, "{proc} output comm {cout:.4} exceeds period")
            }
            Violation::MissingSource { replica } => {
                write!(f, "{replica} lacks a source for some in-edge")
            }
            Violation::BadSourceCopy { replica, copy } => {
                write!(f, "{replica} references non-existent source copy {copy}")
            }
            Violation::MissingCommEvent { dst, src } => {
                write!(f, "no message scheduled for {src} -> {dst}")
            }
            Violation::SpuriousCommEvent { dst, src } => {
                write!(f, "unexpected message {src} -> {dst}")
            }
            Violation::WrongCommDuration { dst, src } => {
                write!(f, "message {src} -> {dst} has wrong duration")
            }
            Violation::CommBeforeSourceFinish { dst, src } => {
                write!(f, "message {src} -> {dst} starts before producer ends")
            }
            Violation::ArrivalAfterStart { dst, src } => {
                write!(f, "message {src} -> {dst} arrives after consumer starts")
            }
            Violation::WrongExecTime { replica } => {
                write!(f, "{replica} runtime differs from E/s")
            }
            Violation::NonFiniteTime { replica } => write!(f, "{replica} has non-finite times"),
            Violation::PortOverlap { proc, send } => {
                let port = if *send { "send" } else { "receive" };
                write!(f, "{proc} {port} port has overlapping messages")
            }
            Violation::ComputeOverlap { proc } => {
                write!(f, "{proc} executes two replicas simultaneously")
            }
            Violation::StageInconsistent { replica } => {
                write!(f, "{replica} stage violates the η rule")
            }
        }
    }
}

/// Validate `sched` against the graph and platform. Returns all violations
/// found (empty ⇒ `Ok`).
pub fn validate(g: &TaskGraph, p: &Platform, sched: &Schedule) -> Result<(), Vec<Violation>> {
    let mut out = Vec::new();
    let nrep = sched.replicas_per_task();
    let period = sched.period();

    // 1. Replica placement.
    for t in g.tasks() {
        let mut seen: Vec<ProcId> = Vec::with_capacity(nrep);
        for copy in 0..nrep {
            let u = sched.proc(ReplicaId::new(t, copy as u8));
            if seen.contains(&u) {
                out.push(Violation::ReplicaCollision { task: t, proc: u });
            }
            seen.push(u);
        }
    }

    // 2. Throughput condition.
    for u in p.procs() {
        if sched.sigma(u) > period + EPS {
            out.push(Violation::ComputeOverload {
                proc: u,
                sigma: sched.sigma(u),
            });
        }
        if sched.cin(u) > period + EPS {
            out.push(Violation::InputOverload {
                proc: u,
                cin: sched.cin(u),
            });
        }
        if sched.cout(u) > period + EPS {
            out.push(Violation::OutputOverload {
                proc: u,
                cout: sched.cout(u),
            });
        }
    }

    // Index events by (dst replica, src replica, edge).
    let mut by_pair: HashMap<(usize, usize, u32), usize> = HashMap::new();
    for (i, ev) in sched.comm_events().iter().enumerate() {
        let key = (ev.dst.dense(nrep), ev.src.dense(nrep), ev.edge.0);
        if by_pair.insert(key, i).is_some() {
            out.push(Violation::SpuriousCommEvent {
                dst: ev.dst,
                src: ev.src,
            });
        }
        if ev.src_proc == ev.dst_proc {
            out.push(Violation::SpuriousCommEvent {
                dst: ev.dst,
                src: ev.src,
            });
        }
        if sched.proc(ev.src) != ev.src_proc || sched.proc(ev.dst) != ev.dst_proc {
            out.push(Violation::SpuriousCommEvent {
                dst: ev.dst,
                src: ev.src,
            });
        }
    }
    let mut matched = vec![false; sched.comm_events().len()];

    // 3 & 4. Source structure, causality, exec times.
    for t in g.tasks() {
        for copy in 0..nrep {
            let r = ReplicaId::new(t, copy as u8);
            let u = sched.proc(r);
            let (rs, rf) = (sched.start(r), sched.finish(r));
            if !rs.is_finite() || !rf.is_finite() {
                out.push(Violation::NonFiniteTime { replica: r });
                continue;
            }
            let want = p.exec_time(g.exec(t), u);
            if (rf - rs - want).abs() > EPS {
                out.push(Violation::WrongExecTime { replica: r });
            }

            // Every in-edge must be covered by a non-empty source choice.
            let choices = sched.sources(r);
            for &eid in g.pred_edges(t) {
                let choice = choices.iter().find(|c| c.edge == eid);
                match choice {
                    None => out.push(Violation::MissingSource { replica: r }),
                    Some(c) if c.sources.is_empty() => {
                        out.push(Violation::MissingSource { replica: r })
                    }
                    Some(c) => {
                        let pred = g.edge(eid).src;
                        for &sc in &c.sources {
                            if sc as usize >= nrep {
                                out.push(Violation::BadSourceCopy {
                                    replica: r,
                                    copy: sc,
                                });
                                continue;
                            }
                            let src = ReplicaId::new(pred, sc);
                            let h = sched.proc(src);
                            if h == u {
                                // Co-located: data ready when producer ends.
                                if sched.finish(src) > rs + EPS {
                                    out.push(Violation::ArrivalAfterStart { dst: r, src });
                                }
                                continue;
                            }
                            match by_pair.get(&(r.dense(nrep), src.dense(nrep), eid.0)) {
                                None => out.push(Violation::MissingCommEvent { dst: r, src }),
                                Some(&i) => {
                                    matched[i] = true;
                                    let ev = sched.comm_events()[i];
                                    let want = p.comm_time(g.edge(eid).volume, h, u);
                                    if (ev.duration() - want).abs() > EPS {
                                        out.push(Violation::WrongCommDuration { dst: r, src });
                                    }
                                    if ev.start < sched.finish(src) - EPS {
                                        out.push(Violation::CommBeforeSourceFinish { dst: r, src });
                                    }
                                    if ev.finish > rs + EPS {
                                        out.push(Violation::ArrivalAfterStart { dst: r, src });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    for (i, ev) in sched.comm_events().iter().enumerate() {
        if !matched[i] {
            out.push(Violation::SpuriousCommEvent {
                dst: ev.dst,
                src: ev.src,
            });
        }
    }

    // 5. One-port serialization and compute serialization.
    let m = p.num_procs();
    let mut send: Vec<IntervalSet> = vec![IntervalSet::new(); m];
    let mut recv: Vec<IntervalSet> = vec![IntervalSet::new(); m];
    for ev in sched.comm_events() {
        if ev.duration() <= EPS {
            continue;
        }
        if !send[ev.src_proc.index()].is_free(ev.start, ev.finish) {
            out.push(Violation::PortOverlap {
                proc: ev.src_proc,
                send: true,
            });
        } else {
            send[ev.src_proc.index()].insert(ev.start, ev.finish);
        }
        if !recv[ev.dst_proc.index()].is_free(ev.start, ev.finish) {
            out.push(Violation::PortOverlap {
                proc: ev.dst_proc,
                send: false,
            });
        } else {
            recv[ev.dst_proc.index()].insert(ev.start, ev.finish);
        }
    }
    for u in p.procs() {
        let mut cpu = IntervalSet::new();
        let mut reps = sched.replicas_on(u);
        reps.sort_by(|a, b| sched.start(*a).partial_cmp(&sched.start(*b)).unwrap());
        for r in reps {
            let (s, f) = (sched.start(r), sched.finish(r));
            if f - s <= EPS {
                continue;
            }
            if !cpu.is_free(s, f) {
                out.push(Violation::ComputeOverlap { proc: u });
            } else {
                cpu.insert(s, f);
            }
        }
    }

    // 6. Stage consistency (defensive: stages are recomputed at build time).
    for t in g.tasks() {
        for copy in 0..nrep {
            let r = ReplicaId::new(t, copy as u8);
            let stage = sched.stage(r);
            if g.in_degree(t) == 0 {
                if stage != 1 {
                    out.push(Violation::StageInconsistent { replica: r });
                }
                continue;
            }
            let mut want = 1u32;
            for choice in sched.sources(r) {
                let pred = g.edge(choice.edge).src;
                for &sc in &choice.sources {
                    if sc as usize >= nrep {
                        continue;
                    }
                    let src = ReplicaId::new(pred, sc);
                    let eta = u32::from(sched.proc(src) != sched.proc(r));
                    want = want.max(sched.stage(src) + eta);
                }
            }
            if stage != want {
                out.push(Violation::StageInconsistent { replica: r });
            }
        }
    }

    if out.is_empty() {
        Ok(())
    } else {
        Err(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommEvent;
    use crate::replica::SourceChoice;
    use crate::schedule::ScheduleData;
    use ltf_graph::GraphBuilder;

    /// A correct ε=1 schedule of a 2-task chain on 4 processors:
    /// copy k of each task on its own processor pair, one-to-one comms.
    fn good_schedule() -> (TaskGraph, Platform, Schedule) {
        let mut b = GraphBuilder::new();
        let t0 = b.add_task(4.0);
        let t1 = b.add_task(2.0);
        let e = b.add_edge(t0, t1, 3.0);
        let g = b.build().unwrap();
        let p = Platform::homogeneous(4, 1.0, 1.0);
        let r00 = ReplicaId::new(t0, 0);
        let r01 = ReplicaId::new(t0, 1);
        let r10 = ReplicaId::new(t1, 0);
        let r11 = ReplicaId::new(t1, 1);
        let data = ScheduleData {
            epsilon: 1,
            period: 10.0,
            proc_of: vec![ProcId(0), ProcId(1), ProcId(2), ProcId(3)],
            start: vec![0.0, 0.0, 7.0, 7.0],
            finish: vec![4.0, 4.0, 9.0, 9.0],
            sources: vec![
                vec![],
                vec![],
                vec![SourceChoice::one(e, 0)],
                vec![SourceChoice::one(e, 1)],
            ],
            comm_events: vec![
                CommEvent {
                    edge: e,
                    src: r00,
                    dst: r10,
                    src_proc: ProcId(0),
                    dst_proc: ProcId(2),
                    start: 4.0,
                    finish: 7.0,
                },
                CommEvent {
                    edge: e,
                    src: r01,
                    dst: r11,
                    src_proc: ProcId(1),
                    dst_proc: ProcId(3),
                    start: 4.0,
                    finish: 7.0,
                },
            ],
        };
        let s = Schedule::new(&g, &p, data);
        (g, p, s)
    }

    #[test]
    fn good_schedule_validates() {
        let (g, p, s) = good_schedule();
        assert_eq!(validate(&g, &p, &s), Ok(()));
        assert_eq!(s.num_stages(), 2);
        assert_eq!(s.comm_count(), 2);
    }

    fn rebuild_with(g: &TaskGraph, p: &Platform, f: impl FnOnce(&mut ScheduleData)) -> Schedule {
        let (_, _, s) = good_schedule();
        let mut data = ScheduleData {
            epsilon: s.epsilon(),
            period: s.period(),
            proc_of: s.replicas().map(|r| s.proc(r)).collect(),
            start: s.replicas().map(|r| s.start(r)).collect(),
            finish: s.replicas().map(|r| s.finish(r)).collect(),
            sources: s.replicas().map(|r| s.sources(r).to_vec()).collect(),
            comm_events: s.comm_events().to_vec(),
        };
        f(&mut data);
        Schedule::new(g, p, data)
    }

    #[test]
    fn replica_collision_detected() {
        let (g, p, _) = good_schedule();
        let s = rebuild_with(&g, &p, |d| {
            d.proc_of[1] = ProcId(0); // t0^2 joins t0^1 on P1
        });
        let errs = validate(&g, &p, &s).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, Violation::ReplicaCollision { .. })));
    }

    #[test]
    fn compute_overload_detected() {
        let (g, p, _) = good_schedule();
        let s = rebuild_with(&g, &p, |d| {
            d.period = 3.0; // t0 takes 4 > 3
        });
        let errs = validate(&g, &p, &s).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, Violation::ComputeOverload { .. })));
    }

    #[test]
    fn io_overload_detected() {
        let (g, p, _) = good_schedule();
        let s = rebuild_with(&g, &p, |d| {
            d.period = 2.5; // message takes 3 > 2.5 (and compute too)
        });
        let errs = validate(&g, &p, &s).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, Violation::InputOverload { .. })));
        assert!(errs
            .iter()
            .any(|v| matches!(v, Violation::OutputOverload { .. })));
    }

    #[test]
    fn missing_source_detected() {
        let (g, p, _) = good_schedule();
        let s = rebuild_with(&g, &p, |d| {
            d.sources[2].clear();
        });
        let errs = validate(&g, &p, &s).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, Violation::MissingSource { .. })));
    }

    #[test]
    fn missing_comm_event_detected() {
        let (g, p, _) = good_schedule();
        let s = rebuild_with(&g, &p, |d| {
            d.comm_events.pop();
        });
        let errs = validate(&g, &p, &s).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, Violation::MissingCommEvent { .. })));
    }

    #[test]
    fn wrong_duration_detected() {
        let (g, p, _) = good_schedule();
        let s = rebuild_with(&g, &p, |d| {
            d.comm_events[0].finish = 6.0; // should be 7.0 (duration 3)
        });
        let errs = validate(&g, &p, &s).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, Violation::WrongCommDuration { .. })));
    }

    #[test]
    fn causality_violations_detected() {
        let (g, p, _) = good_schedule();
        // Message starts before producer finishes.
        let s = rebuild_with(&g, &p, |d| {
            d.comm_events[0].start = 3.0;
            d.comm_events[0].finish = 6.0;
        });
        let errs = validate(&g, &p, &s).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, Violation::CommBeforeSourceFinish { .. })));
        // Consumer starts before arrival.
        let s = rebuild_with(&g, &p, |d| {
            d.start[2] = 5.0;
            d.finish[2] = 7.0;
        });
        let errs = validate(&g, &p, &s).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, Violation::ArrivalAfterStart { .. })));
    }

    #[test]
    fn wrong_exec_time_detected() {
        let (g, p, _) = good_schedule();
        let s = rebuild_with(&g, &p, |d| {
            d.finish[0] = 5.0; // exec should be 4
        });
        let errs = validate(&g, &p, &s).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, Violation::WrongExecTime { .. })));
    }

    #[test]
    fn port_overlap_detected() {
        let (g, p, _) = good_schedule();
        // Route both messages through the same send port at the same time.
        let s = rebuild_with(&g, &p, |d| {
            d.proc_of[1] = ProcId(0); // also triggers ReplicaCollision
            d.comm_events[1].src_proc = ProcId(0);
        });
        let errs = validate(&g, &p, &s).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, Violation::PortOverlap { send: true, .. })));
    }

    #[test]
    fn compute_overlap_detected() {
        let (g, p, _) = good_schedule();
        let s = rebuild_with(&g, &p, |d| {
            // Put t1^1 on P1 overlapping t0^1's execution window, with a
            // co-located source so no comm event is expected...
            d.proc_of[2] = ProcId(0);
            d.start[2] = 2.0;
            d.finish[2] = 4.0;
            d.comm_events.remove(0);
        });
        let errs = validate(&g, &p, &s).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, Violation::ComputeOverlap { .. })));
    }

    #[test]
    fn spurious_event_detected() {
        let (g, p, _) = good_schedule();
        let s = rebuild_with(&g, &p, |d| {
            // Cross pairing: claim t1^1 receives from t0^2 as well, without
            // recording the source.
            let mut ev = d.comm_events[0];
            ev.src = ReplicaId::new(ltf_graph::TaskId(0), 1);
            ev.src_proc = ProcId(1);
            d.comm_events.push(ev);
        });
        let errs = validate(&g, &p, &s).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, Violation::SpuriousCommEvent { .. })));
    }
}
