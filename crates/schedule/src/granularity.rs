//! Graph/platform granularity `g(G, P)` (paper §2).
//!
//! The granularity is the ratio of the sum of the *slowest* computation
//! times of each task (`E(t) / min_u s_u`) to the sum of the *slowest*
//! communication times along each edge (`vol(e) · max_{k≠h} d_kh`).
//! Small granularity (< 1) means communication-dominated workloads; the
//! paper sweeps `g` from 0.2 to 2.0.

use ltf_graph::TaskGraph;
use ltf_platform::Platform;

/// Granularity `g(G, P)`. Returns `f64::INFINITY` for graphs with no
/// (non-zero-volume) edges.
pub fn granularity(g: &TaskGraph, p: &Platform) -> f64 {
    let comp: f64 = g.tasks().map(|t| p.slowest_exec_time(g.exec(t))).sum();
    let comm: f64 = g
        .edge_ids()
        .map(|e| p.slowest_comm_time(g.edge(e).volume))
        .sum();
    if comm == 0.0 {
        f64::INFINITY
    } else {
        comp / comm
    }
}

/// Multiplicative factor to apply to every task execution time so that the
/// granularity becomes exactly `target`. Returns `None` when the graph has
/// no communication (granularity undefined) or no computation.
pub fn granularity_scale_factor(g: &TaskGraph, p: &Platform, target: f64) -> Option<f64> {
    assert!(target.is_finite() && target > 0.0, "bad target granularity");
    let current = granularity(g, p);
    if !current.is_finite() || current == 0.0 {
        return None;
    }
    Some(target / current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltf_graph::GraphBuilder;

    fn simple() -> TaskGraph {
        let mut b = GraphBuilder::new();
        let t0 = b.add_task(10.0);
        let t1 = b.add_task(20.0);
        b.add_edge(t0, t1, 5.0);
        b.build().unwrap()
    }

    #[test]
    fn computed_from_slowest_resources() {
        let g = simple();
        // min speed 0.5 -> slowest comp = (10+20)/0.5 = 60.
        // max delay 2.0 -> slowest comm = 5*2 = 10.
        let p = Platform::from_parts(vec![0.5, 1.0], vec![0.0, 2.0, 1.0, 0.0]);
        assert_eq!(granularity(&g, &p), 6.0);
    }

    #[test]
    fn no_edges_is_infinite() {
        let mut b = GraphBuilder::new();
        b.add_task(1.0);
        let g = b.build().unwrap();
        let p = Platform::homogeneous(2, 1.0, 1.0);
        assert_eq!(granularity(&g, &p), f64::INFINITY);
    }

    #[test]
    fn scaling_hits_target_exactly() {
        let mut g = simple();
        let p = Platform::homogeneous(3, 1.0, 1.0);
        for target in [0.2, 0.6, 1.0, 2.0] {
            let f = granularity_scale_factor(&g, &p, target).unwrap();
            let mut scaled = g.clone();
            scaled.scale_exec_times(f);
            let got = granularity(&scaled, &p);
            assert!((got - target).abs() < 1e-12, "target {target}, got {got}");
        }
        // Original graph untouched by the probe above.
        g.scale_exec_times(1.0);
        assert_eq!(granularity(&g, &p), 6.0);
    }

    #[test]
    fn scale_factor_none_without_comm() {
        let mut b = GraphBuilder::new();
        b.add_task(1.0);
        let g = b.build().unwrap();
        let p = Platform::homogeneous(2, 1.0, 1.0);
        assert!(granularity_scale_factor(&g, &p, 1.0).is_none());
    }
}
