//! Scheduled inter-processor communication events.

use crate::replica::ReplicaId;
use ltf_graph::EdgeId;
use ltf_platform::ProcId;
use serde::{Deserialize, Serialize};

/// One scheduled message: replica `src` (on `src_proc`) sends the data of
/// `edge` to replica `dst` (on `dst_proc`) during `[start, finish)` of the
/// iteration timeline.
///
/// Under the bi-directional one-port model the event occupies the *send
/// port* of `src_proc` and the *receive port* of `dst_proc` for its whole
/// duration. Co-located transfers (`src_proc == dst_proc`) are free and are
/// never materialized as events.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommEvent {
    /// The application edge whose data is carried.
    pub edge: EdgeId,
    /// Sending replica.
    pub src: ReplicaId,
    /// Receiving replica.
    pub dst: ReplicaId,
    /// Processor hosting `src`.
    pub src_proc: ProcId,
    /// Processor hosting `dst`.
    pub dst_proc: ProcId,
    /// Start time on the iteration timeline.
    pub start: f64,
    /// End time; `finish - start = volume · d_kh`.
    pub finish: f64,
}

impl CommEvent {
    /// Message duration.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.finish - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltf_graph::TaskId;

    #[test]
    fn duration() {
        let ev = CommEvent {
            edge: EdgeId(0),
            src: ReplicaId::new(TaskId(0), 0),
            dst: ReplicaId::new(TaskId(1), 1),
            src_proc: ProcId(0),
            dst_proc: ProcId(1),
            start: 3.0,
            finish: 7.5,
        };
        assert_eq!(ev.duration(), 4.5);
    }
}
