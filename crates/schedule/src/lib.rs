//! Replicated pipelined schedule representation and analysis.
//!
//! This crate defines the *output* format shared by every scheduling
//! algorithm in the workspace and the analyses the paper performs on it:
//!
//! * [`Schedule`] — placement of the `ε+1` replicas of every task onto
//!   processors, the replica-level communication structure (which copy of a
//!   predecessor feeds which copy of a successor), scheduled communication
//!   events, and the per-processor compute/IO loads `Σ_u`, `C^I_u`, `C^O_u`
//!   of paper §4.
//! * [`stages`] — pipeline stage numbers `S(t^(N))` (§4: stages record
//!   processor changes along dependence paths) and the latency
//!   `L = (2S − 1)/T`.
//! * [`failures`] — the fail-silent/fail-stop processor crash model:
//!   which replicas stay alive under a crash set, the effective latency of
//!   an execution with `c` crashes, and exhaustive ε-crash validity checks.
//! * [`validate()`](validate()) — a structural validator: replica placement rules,
//!   throughput constraints, one-port serialization, causality and stage
//!   consistency. Every algorithm's output is run through it in tests.
//! * [`granularity()`](granularity()) — the graph/platform granularity `g(G, P)` of §2.
//! * [`intervals`] — busy-interval bookkeeping with gap insertion, used by
//!   the schedulers (`ltf-core`) and the simulator (`ltf-sim`) to enforce
//!   the one-port model.
//! * [`export`] — ASCII Gantt charts and JSON-friendly schedule summaries.

pub mod comm;
pub mod export;
pub mod failures;
pub mod granularity;
pub mod intervals;
pub mod replica;
pub mod schedule;
pub mod stages;
pub mod validate;

pub use crate::comm::CommEvent;
pub use crate::failures::CrashSet;
pub use crate::granularity::granularity;
pub use crate::intervals::{BusyTimeline, IntervalIndex, IntervalSet, OverlayDelta, OverlayView};
pub use crate::replica::{ReplicaId, SourceChoice};
pub use crate::schedule::{Schedule, ScheduleData};
pub use crate::validate::{validate, Violation};

/// Absolute tolerance used in feasibility and validation comparisons.
pub const EPS: f64 = 1e-6;
