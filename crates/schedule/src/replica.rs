//! Task replicas and their communication sources.
//!
//! With fault-tolerance degree `ε`, each task `t` is replicated into
//! `B(t) = {t^(1), …, t^(ε+1)}` (paper §2); all copies are always executed
//! (active replication). [`ReplicaId`] names one copy; [`SourceChoice`]
//! records, for one in-edge of one replica, which copies of the predecessor
//! task are scheduled to feed it.

use ltf_graph::{EdgeId, TaskId};
use serde::{Deserialize, Serialize};

/// One replica (copy) of a task: `copy` ranges over `0..=ε`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReplicaId {
    /// The replicated task.
    pub task: TaskId,
    /// Copy number, `0..=ε` (the paper's superscript `(N)` minus one).
    pub copy: u8,
}

impl ReplicaId {
    /// Construct a replica id.
    pub fn new(task: TaskId, copy: u8) -> Self {
        Self { task, copy }
    }

    /// Dense index of this replica given `nrep = ε + 1` copies per task.
    #[inline]
    pub fn dense(self, nrep: usize) -> usize {
        self.task.index() * nrep + self.copy as usize
    }

    /// Inverse of [`ReplicaId::dense`].
    #[inline]
    pub fn from_dense(idx: usize, nrep: usize) -> Self {
        Self {
            task: TaskId((idx / nrep) as u32),
            copy: (idx % nrep) as u8,
        }
    }
}

impl std::fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // 1-based copy superscript, as in the paper's t3^(2).
        write!(f, "{}^({})", self.task, self.copy + 1)
    }
}

/// The replicas of a predecessor task feeding one replica along one edge.
///
/// A one-to-one mapped replica has exactly one source copy; a fallback
/// (receive-from-all) replica lists every copy of the predecessor. An empty
/// source list is invalid for a non-entry task and is rejected by
/// [`crate::validate()`](crate::validate()).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceChoice {
    /// The in-edge this choice covers.
    pub edge: EdgeId,
    /// Copy numbers of the predecessor task that send along `edge`.
    pub sources: Vec<u8>,
}

impl SourceChoice {
    /// Single-source (one-to-one) choice.
    pub fn one(edge: EdgeId, copy: u8) -> Self {
        Self {
            edge,
            sources: vec![copy],
        }
    }

    /// Receive-from-all choice over `nrep` copies.
    pub fn all(edge: EdgeId, nrep: u8) -> Self {
        Self {
            edge,
            sources: (0..nrep).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_roundtrip() {
        let nrep = 4;
        for task in 0..5u32 {
            for copy in 0..nrep as u8 {
                let r = ReplicaId::new(TaskId(task), copy);
                assert_eq!(ReplicaId::from_dense(r.dense(nrep), nrep), r);
            }
        }
    }

    #[test]
    fn dense_is_contiguous() {
        let nrep = 2;
        let mut seen = [false; 6];
        for task in 0..3u32 {
            for copy in 0..2u8 {
                seen[ReplicaId::new(TaskId(task), copy).dense(nrep)] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn display_uses_paper_convention() {
        assert_eq!(ReplicaId::new(TaskId(2), 1).to_string(), "t2^(2)");
    }

    #[test]
    fn source_choice_constructors() {
        let c = SourceChoice::one(EdgeId(3), 1);
        assert_eq!(c.sources, vec![1]);
        let a = SourceChoice::all(EdgeId(3), 3);
        assert_eq!(a.sources, vec![0, 1, 2]);
    }
}
