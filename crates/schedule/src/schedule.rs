//! The schedule structure produced by every mapping algorithm.

use crate::comm::CommEvent;
use crate::replica::{ReplicaId, SourceChoice};
use crate::stages;
use ltf_graph::TaskGraph;
use ltf_platform::{Platform, ProcId};
use serde::{Deserialize, Serialize};

/// Raw algorithm output, consumed by [`Schedule::new`].
///
/// All per-replica vectors are indexed densely by
/// [`ReplicaId::dense`] with `nrep = ε + 1`.
///
/// This is also the full-fidelity *wire form* of a schedule: a
/// [`Schedule`] round-trips as `to_data` → JSON → [`Schedule::new`]
/// (the derived quantities — stages, loads — are recomputed on arrival).
/// Decoded data from an untrusted source must pass
/// [`ScheduleData::validate_shape`] before being handed to the panicking
/// constructor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleData {
    /// Fault-tolerance degree ε (each task has `ε + 1` replicas).
    pub epsilon: u8,
    /// Iteration period `Δ = 1/T`.
    pub period: f64,
    /// Host processor of each replica.
    pub proc_of: Vec<ProcId>,
    /// Start time of each replica on the iteration timeline.
    pub start: Vec<f64>,
    /// Finish time of each replica on the iteration timeline.
    pub finish: Vec<f64>,
    /// For each replica, one [`SourceChoice`] per in-edge of its task.
    pub sources: Vec<Vec<SourceChoice>>,
    /// All scheduled inter-processor messages.
    pub comm_events: Vec<CommEvent>,
}

impl ScheduleData {
    /// Check that this (possibly hostile, e.g. freshly deserialized) data
    /// is shape-consistent with `g` and `p`, so that [`Schedule::new`]
    /// cannot panic and every later index access is in bounds. Semantic
    /// validity (precedence, ports, throughput) is the job of
    /// [`crate::validate()`](crate::validate()) on the built schedule.
    pub fn validate_shape(&self, g: &TaskGraph, p: &Platform) -> Result<(), String> {
        let nrep = self.epsilon as usize + 1;
        let n = g.num_tasks() * nrep;
        if !(self.period.is_finite() && self.period > 0.0) {
            return Err(format!("bad period {}", self.period));
        }
        for (what, len) in [
            ("proc_of", self.proc_of.len()),
            ("start", self.start.len()),
            ("finish", self.finish.len()),
            ("sources", self.sources.len()),
        ] {
            if len != n {
                return Err(format!("{what} has {len} entries, expected {n}"));
            }
        }
        let m = p.num_procs();
        if let Some(u) = self.proc_of.iter().find(|u| u.index() >= m) {
            return Err(format!(
                "replica placed on {u}, platform has {m} processors"
            ));
        }
        if let Some(x) = self
            .start
            .iter()
            .chain(self.finish.iter())
            .find(|x| !x.is_finite())
        {
            return Err(format!("non-finite replica time {x}"));
        }
        let e = g.num_edges();
        for (r, choices) in self.sources.iter().enumerate() {
            let task = ReplicaId::from_dense(r, nrep).task;
            if choices.len() != g.in_degree(task) {
                return Err(format!(
                    "replica {} has {} source choices, task has in-degree {}",
                    ReplicaId::from_dense(r, nrep),
                    choices.len(),
                    g.in_degree(task)
                ));
            }
            for c in choices {
                if c.edge.index() >= e {
                    return Err(format!("source choice references unknown edge {}", c.edge));
                }
                if let Some(&copy) = c.sources.iter().find(|&&copy| copy as usize >= nrep) {
                    return Err(format!(
                        "source copy {copy} out of range (ε = {})",
                        self.epsilon
                    ));
                }
            }
        }
        for ev in &self.comm_events {
            if ev.edge.index() >= e
                || ev.src.dense(nrep) >= n
                || ev.dst.dense(nrep) >= n
                || ev.src_proc.index() >= m
                || ev.dst_proc.index() >= m
            {
                return Err(format!("comm event {ev:?} references out-of-range ids"));
            }
            if !(ev.start.is_finite() && ev.finish.is_finite() && ev.finish >= ev.start) {
                return Err(format!("comm event {ev:?} has an invalid time window"));
            }
        }
        Ok(())
    }
}

/// A complete replicated pipelined schedule.
///
/// Immutable once built; analyses that need the application graph or the
/// platform take them as parameters (the schedule stores only indices).
#[derive(Debug, Clone)]
pub struct Schedule {
    epsilon: u8,
    period: f64,
    nrep: usize,
    num_tasks: usize,
    proc_of: Vec<ProcId>,
    start: Vec<f64>,
    finish: Vec<f64>,
    sources: Vec<Vec<SourceChoice>>,
    comm_events: Vec<CommEvent>,
    /// Guaranteed (worst-source) pipeline stage of each replica.
    stage: Vec<u32>,
    /// Total number of pipeline stages `S = max stage`.
    num_stages: u32,
    /// Per-processor compute load `Σ_u`.
    sigma: Vec<f64>,
    /// Per-processor input communication cycle time `C^I_u`.
    cin: Vec<f64>,
    /// Per-processor output communication cycle time `C^O_u`.
    cout: Vec<f64>,
}

impl Schedule {
    /// Assemble a schedule: computes pipeline stages from the recorded
    /// source structure and re-derives the per-processor loads from the
    /// placements and communication events.
    ///
    /// # Panics
    /// If vector sizes are inconsistent with `g`/`ε`.
    pub fn new(g: &TaskGraph, p: &Platform, data: ScheduleData) -> Self {
        Self::build(g, p, data, None)
    }

    /// Assemble a schedule from an algorithm that already maintains the
    /// guaranteed (worst-source) stage vector incrementally — the forward
    /// placement engine tracks it per commit — skipping the topological
    /// recomputation of [`Schedule::new`]. Debug builds verify the
    /// provided stages against the recomputation.
    ///
    /// # Panics
    /// If vector sizes are inconsistent with `g`/`ε`.
    pub fn with_stages(g: &TaskGraph, p: &Platform, data: ScheduleData, stage: Vec<u32>) -> Self {
        Self::build(g, p, data, Some(stage))
    }

    fn build(g: &TaskGraph, p: &Platform, data: ScheduleData, stage: Option<Vec<u32>>) -> Self {
        let nrep = data.epsilon as usize + 1;
        let n = g.num_tasks() * nrep;
        assert_eq!(data.proc_of.len(), n, "proc_of size");
        assert_eq!(data.start.len(), n, "start size");
        assert_eq!(data.finish.len(), n, "finish size");
        assert_eq!(data.sources.len(), n, "sources size");
        assert!(data.period.is_finite() && data.period > 0.0, "bad period");

        let stage = match stage {
            Some(s) => {
                assert_eq!(s.len(), n, "stage size");
                debug_assert_eq!(
                    s,
                    stages::guaranteed_stages(g, nrep, &data.proc_of, &data.sources),
                    "provided stages disagree with recomputation"
                );
                s
            }
            None => stages::guaranteed_stages(g, nrep, &data.proc_of, &data.sources),
        };
        let num_stages = stage.iter().copied().max().unwrap_or(1);

        let m = p.num_procs();
        let mut sigma = vec![0.0; m];
        for t in g.tasks() {
            for copy in 0..nrep {
                let r = ReplicaId::new(t, copy as u8).dense(nrep);
                let u = data.proc_of[r];
                sigma[u.index()] += p.exec_time(g.exec(t), u);
            }
        }
        let mut cin = vec![0.0; m];
        let mut cout = vec![0.0; m];
        for ev in &data.comm_events {
            cout[ev.src_proc.index()] += ev.duration();
            cin[ev.dst_proc.index()] += ev.duration();
        }

        Self {
            epsilon: data.epsilon,
            period: data.period,
            nrep,
            num_tasks: g.num_tasks(),
            proc_of: data.proc_of,
            start: data.start,
            finish: data.finish,
            sources: data.sources,
            comm_events: data.comm_events,
            stage,
            num_stages,
            sigma,
            cin,
            cout,
        }
    }

    /// Extract the raw [`ScheduleData`] this schedule was built from —
    /// the inverse of [`Schedule::new`], used to put a schedule on the
    /// wire. Derived state (stages, loads) is dropped and recomputed by
    /// the receiving constructor.
    pub fn to_data(&self) -> ScheduleData {
        ScheduleData {
            epsilon: self.epsilon,
            period: self.period,
            proc_of: self.proc_of.clone(),
            start: self.start.clone(),
            finish: self.finish.clone(),
            sources: self.sources.clone(),
            comm_events: self.comm_events.clone(),
        }
    }

    /// Fault-tolerance degree ε.
    #[inline]
    pub fn epsilon(&self) -> u8 {
        self.epsilon
    }

    /// Number of replicas per task, `ε + 1`.
    #[inline]
    pub fn replicas_per_task(&self) -> usize {
        self.nrep
    }

    /// Number of tasks of the scheduled graph.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.num_tasks
    }

    /// Iteration period `Δ`.
    #[inline]
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Throughput `T = 1/Δ`.
    #[inline]
    pub fn throughput(&self) -> f64 {
        1.0 / self.period
    }

    /// All replicas of all tasks.
    pub fn replicas(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        let nrep = self.nrep;
        (0..self.num_tasks * nrep).map(move |i| ReplicaId::from_dense(i, nrep))
    }

    /// Host processor of a replica.
    #[inline]
    pub fn proc(&self, r: ReplicaId) -> ProcId {
        self.proc_of[r.dense(self.nrep)]
    }

    /// Start time of a replica on the iteration timeline.
    #[inline]
    pub fn start(&self, r: ReplicaId) -> f64 {
        self.start[r.dense(self.nrep)]
    }

    /// Finish time of a replica on the iteration timeline.
    #[inline]
    pub fn finish(&self, r: ReplicaId) -> f64 {
        self.finish[r.dense(self.nrep)]
    }

    /// Guaranteed pipeline stage `S(t^(N))` of a replica (1-based).
    #[inline]
    pub fn stage(&self, r: ReplicaId) -> u32 {
        self.stage[r.dense(self.nrep)]
    }

    /// Source choices (one per in-edge) of a replica.
    #[inline]
    pub fn sources(&self, r: ReplicaId) -> &[SourceChoice] {
        &self.sources[r.dense(self.nrep)]
    }

    /// Total number of pipeline stages `S`.
    #[inline]
    pub fn num_stages(&self) -> u32 {
        self.num_stages
    }

    /// Guaranteed pipeline latency `L = (2S − 1) · Δ` (paper §4,
    /// borrowing the stage model of Hary & Özgüner). This is the
    /// "UpperBound" series of the paper's figures: it holds whichever ≤ ε
    /// processors fail.
    pub fn latency_upper_bound(&self) -> f64 {
        (2.0 * self.num_stages as f64 - 1.0) * self.period
    }

    /// All scheduled inter-processor messages.
    #[inline]
    pub fn comm_events(&self) -> &[CommEvent] {
        &self.comm_events
    }

    /// Number of inter-processor messages per data set (the replication
    /// communication overhead the one-to-one mapping minimizes).
    pub fn comm_count(&self) -> usize {
        self.comm_events.len()
    }

    /// Peak per-link utilization `max_l (busy_l / Δ)` under the platform's
    /// routed communication model: every message charges its duration to
    /// each physical link on its route (circuit-style, matching the
    /// engine's per-link capacity accounting). `None` when the platform
    /// keeps no route table — matrix platforms have no link identity to
    /// measure against.
    pub fn max_link_utilization(&self, p: &Platform) -> Option<f64> {
        let table = p.comm().route_table()?;
        let mut load = vec![0.0f64; table.num_links()];
        for ev in &self.comm_events {
            for &l in table.route(ev.src_proc, ev.dst_proc).links() {
                load[l.index()] += ev.duration();
            }
        }
        Some(load.iter().fold(0.0f64, |a, &x| a.max(x)) / self.period)
    }

    /// Compute load `Σ_u` of a processor per iteration.
    #[inline]
    pub fn sigma(&self, u: ProcId) -> f64 {
        self.sigma[u.index()]
    }

    /// Input communication cycle time `C^I_u` per iteration.
    #[inline]
    pub fn cin(&self, u: ProcId) -> f64 {
        self.cin[u.index()]
    }

    /// Output communication cycle time `C^O_u` per iteration.
    #[inline]
    pub fn cout(&self, u: ProcId) -> f64 {
        self.cout[u.index()]
    }

    /// Cycle time `∆_u = max(Σ_u, C^I_u, C^O_u)` of a processor (paper §4,
    /// with the I/O cycle split per port direction).
    pub fn cycle_time(&self, u: ProcId) -> f64 {
        self.sigma[u.index()]
            .max(self.cin[u.index()])
            .max(self.cout[u.index()])
    }

    /// The throughput actually achievable by this mapping,
    /// `1 / max_u ∆_u` (≥ the requested throughput when the schedule
    /// respects condition (1)).
    pub fn achieved_throughput(&self) -> f64 {
        let mut worst = 0.0f64;
        for u in 0..self.sigma.len() {
            worst = worst.max(self.cycle_time(ProcId(u as u16)));
        }
        if worst == 0.0 {
            f64::INFINITY
        } else {
            1.0 / worst
        }
    }

    /// Processor utilization `U_u = T · Σ_u ∈ [0, 1]`.
    pub fn utilization(&self, u: ProcId) -> f64 {
        self.sigma[u.index()] / self.period
    }

    /// Number of distinct processors used by at least one replica.
    pub fn procs_used(&self) -> usize {
        let mut used = vec![false; self.sigma.len()];
        for &u in &self.proc_of {
            used[u.index()] = true;
        }
        used.iter().filter(|&&b| b).count()
    }

    /// Replicas hosted on processor `u`, in start-time order.
    pub fn replicas_on(&self, u: ProcId) -> Vec<ReplicaId> {
        let mut reps: Vec<ReplicaId> = self.replicas().filter(|r| self.proc(*r) == u).collect();
        reps.sort_by(|a, b| {
            self.start(*a)
                .partial_cmp(&self.start(*b))
                .expect("finite times")
        });
        reps
    }

    /// Pretty-print a per-processor summary (used by examples).
    pub fn describe(&self, g: &TaskGraph, p: &Platform) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(
            s,
            "schedule: ε={} Δ={:.3} S={} L≤{:.3} comms={}",
            self.epsilon,
            self.period,
            self.num_stages,
            self.latency_upper_bound(),
            self.comm_count()
        )
        .unwrap();
        for u in p.procs() {
            let reps = self.replicas_on(u);
            if reps.is_empty() {
                continue;
            }
            let names: Vec<String> = reps
                .iter()
                .map(|r| format!("{}^({})[s{}]", g.name(r.task), r.copy + 1, self.stage(*r)))
                .collect();
            writeln!(
                s,
                "  {}: Σ={:.2} Cin={:.2} Cout={:.2}  {}",
                u,
                self.sigma(u),
                self.cin(u),
                self.cout(u),
                names.join(" ")
            )
            .unwrap();
        }
        s
    }

    /// Internal: dense processor slice for analyses in sibling modules.
    #[inline]
    pub(crate) fn proc_slice(&self) -> &[ProcId] {
        &self.proc_of
    }

    /// Internal: dense source slice for analyses in sibling modules.
    #[inline]
    pub(crate) fn sources_slice(&self) -> &[Vec<SourceChoice>] {
        &self.sources
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltf_graph::GraphBuilder;

    /// Two-task chain, ε = 0, both tasks on P1, no comms.
    fn tiny_colocated() -> (TaskGraph, Platform, Schedule) {
        let mut b = GraphBuilder::new();
        let t0 = b.add_task(4.0);
        let t1 = b.add_task(6.0);
        let e = b.add_edge(t0, t1, 2.0);
        let g = b.build().unwrap();
        let p = Platform::homogeneous(2, 2.0, 1.0);
        let data = ScheduleData {
            epsilon: 0,
            period: 10.0,
            proc_of: vec![ProcId(0), ProcId(0)],
            start: vec![0.0, 2.0],
            finish: vec![2.0, 5.0],
            sources: vec![vec![], vec![SourceChoice::one(e, 0)]],
            comm_events: vec![],
        };
        let s = Schedule::new(&g, &p, data);
        (g, p, s)
    }

    #[test]
    fn colocated_single_stage() {
        let (_, _, s) = tiny_colocated();
        assert_eq!(s.num_stages(), 1);
        assert_eq!(s.latency_upper_bound(), 10.0);
        assert_eq!(s.sigma(ProcId(0)), 5.0); // (4+6)/2
        assert_eq!(s.sigma(ProcId(1)), 0.0);
        assert_eq!(s.cin(ProcId(0)), 0.0);
        assert_eq!(s.comm_count(), 0);
        assert_eq!(s.procs_used(), 1);
        assert_eq!(s.utilization(ProcId(0)), 0.5);
        assert_eq!(s.achieved_throughput(), 1.0 / 5.0);
        assert_eq!(s.throughput(), 0.1);
    }

    #[test]
    fn cross_proc_two_stages() {
        let mut b = GraphBuilder::new();
        let t0 = b.add_task(4.0);
        let t1 = b.add_task(6.0);
        let e = b.add_edge(t0, t1, 2.0);
        let g = b.build().unwrap();
        let p = Platform::homogeneous(2, 1.0, 1.0);
        let r0 = ReplicaId::new(t0, 0);
        let r1 = ReplicaId::new(t1, 0);
        let data = ScheduleData {
            epsilon: 0,
            period: 10.0,
            proc_of: vec![ProcId(0), ProcId(1)],
            start: vec![0.0, 6.0],
            finish: vec![4.0, 12.0],
            sources: vec![vec![], vec![SourceChoice::one(e, 0)]],
            comm_events: vec![CommEvent {
                edge: e,
                src: r0,
                dst: r1,
                src_proc: ProcId(0),
                dst_proc: ProcId(1),
                start: 4.0,
                finish: 6.0,
            }],
        };
        let s = Schedule::new(&g, &p, data);
        assert_eq!(s.num_stages(), 2);
        assert_eq!(s.stage(r0), 1);
        assert_eq!(s.stage(r1), 2);
        assert_eq!(s.latency_upper_bound(), 30.0);
        assert_eq!(s.cout(ProcId(0)), 2.0);
        assert_eq!(s.cin(ProcId(1)), 2.0);
        assert_eq!(s.cycle_time(ProcId(0)), 4.0);
        assert_eq!(s.comm_count(), 1);
        assert_eq!(s.procs_used(), 2);
    }

    #[test]
    fn replicas_on_sorted_by_start() {
        let (_, _, s) = tiny_colocated();
        let reps = s.replicas_on(ProcId(0));
        assert_eq!(reps.len(), 2);
        assert!(s.start(reps[0]) <= s.start(reps[1]));
    }

    #[test]
    fn describe_mentions_processors() {
        let (g, p, s) = tiny_colocated();
        let text = s.describe(&g, &p);
        assert!(text.contains("P1"));
        assert!(text.contains("S=1"));
    }
}
