//! Processor failure model: crash sets and schedule-level failure analysis.
//!
//! The paper targets ε arbitrary *fail-silent* (a faulty processor produces
//! no output) and *fail-stop* (no recovery) processor failures. A
//! [`CrashSet`] is the set of processors that fail during an execution; the
//! analyses here answer (a) what latency the pipeline achieves given a
//! crash set and (b) whether a schedule really tolerates *every* crash
//! pattern of a given size.

use self::rand_like::RngLike;
use crate::schedule::Schedule;
use crate::stages;
use ltf_graph::TaskGraph;
use ltf_platform::ProcId;

/// A set of crashed processors over a platform of `m` processors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashSet {
    bits: Vec<u64>,
    m: usize,
    count: usize,
}

impl CrashSet {
    /// No failures.
    pub fn empty(m: usize) -> Self {
        Self {
            bits: vec![0; m.div_ceil(64)],
            m,
            count: 0,
        }
    }

    /// Crash set from explicit processor ids.
    pub fn from_procs(procs: &[ProcId], m: usize) -> Self {
        let mut s = Self::empty(m);
        for &p in procs {
            s.insert(p);
        }
        s
    }

    /// Mark `p` as crashed (idempotent).
    pub fn insert(&mut self, p: ProcId) {
        assert!(p.index() < self.m, "processor out of range");
        let w = p.index() / 64;
        let b = 1u64 << (p.index() % 64);
        if self.bits[w] & b == 0 {
            self.bits[w] |= b;
            self.count += 1;
        }
    }

    /// `true` iff `p` crashed.
    #[inline]
    pub fn contains(&self, p: ProcId) -> bool {
        self.bits[p.index() / 64] >> (p.index() % 64) & 1 == 1
    }

    /// Number of crashed processors `c`.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` when no processor crashed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Platform size this set was built for.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.m
    }

    /// The crashed processors in increasing id order.
    pub fn procs(&self) -> Vec<ProcId> {
        (0..self.m as u16)
            .map(ProcId)
            .filter(|p| self.contains(*p))
            .collect()
    }
}

/// Minimal abstraction over a random source so this crate does not depend
/// on a specific `rand` version (only used for crash sampling).
mod rand_like {
    /// Anything that yields uniform integers below a bound.
    pub trait RngLike {
        /// Uniform value in `0..bound`.
        fn below(&mut self, bound: usize) -> usize;
    }

    impl<F: FnMut(usize) -> usize> RngLike for F {
        fn below(&mut self, bound: usize) -> usize {
            self(bound)
        }
    }
}

pub use self::rand_like::RngLike as CrashRng;

/// Sample `c` distinct crashed processors uniformly from `0..m`
/// (paper §5: "processors that fail during the schedule process are chosen
/// uniformly"). `rng` is any `FnMut(usize) -> usize` returning a uniform
/// value below its argument, e.g. `|b| rand::Rng::gen_range(&mut r, 0..b)`.
pub fn sample_crash_set<R: RngLike>(m: usize, c: usize, rng: &mut R) -> CrashSet {
    assert!(c <= m, "cannot crash more processors than exist");
    // Partial Fisher-Yates over processor ids.
    let mut ids: Vec<u16> = (0..m as u16).collect();
    let mut out = CrashSet::empty(m);
    for i in 0..c {
        let j = i + rng.below(m - i);
        ids.swap(i, j);
        out.insert(ProcId(ids[i]));
    }
    out
}

/// Iterate over all `C(m, c)` crash sets of exactly `c` processors.
pub fn all_crash_sets(m: usize, c: usize) -> impl Iterator<Item = CrashSet> {
    Combinations::new(m, c).map(move |combo| {
        let procs: Vec<ProcId> = combo.iter().map(|&i| ProcId(i as u16)).collect();
        CrashSet::from_procs(&procs, m)
    })
}

struct Combinations {
    m: usize,
    c: usize,
    cur: Vec<usize>,
    done: bool,
}

impl Combinations {
    fn new(m: usize, c: usize) -> Self {
        Self {
            m,
            c,
            cur: (0..c).collect(),
            done: c > m,
        }
    }
}

impl Iterator for Combinations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let out = self.cur.clone();
        // Advance to the next combination in lexicographic order.
        let mut i = self.c;
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            if self.cur[i] < self.m - (self.c - i) {
                self.cur[i] += 1;
                for j in i + 1..self.c {
                    self.cur[j] = self.cur[j - 1] + 1;
                }
                break;
            }
        }
        Some(out)
    }
}

/// Effective latency of `sched` when the processors in `crash` fail:
/// `(2 S_eff − 1) · Δ` with the best-alive-source stage count, or `None`
/// if some stream output cannot be produced (crash pattern not tolerated).
pub fn effective_latency(g: &TaskGraph, sched: &Schedule, crash: &CrashSet) -> Option<f64> {
    let s = effective_stage_count(g, sched, crash)?;
    Some(stages::latency_for_stages(s, sched.period()))
}

/// Effective stage count under a crash set (see
/// [`stages::effective_stage_count`]).
pub fn effective_stage_count(g: &TaskGraph, sched: &Schedule, crash: &CrashSet) -> Option<u32> {
    stages::effective_stage_count(
        g,
        sched.replicas_per_task(),
        sched.proc_slice(),
        sched.sources_slice(),
        crash,
    )
}

/// Exhaustively verify that `sched` produces all stream outputs under
/// *every* crash set of exactly `c` processors. `O(C(m, c))` stage
/// analyses — intended for tests and small `c`.
pub fn tolerates_all_crashes(g: &TaskGraph, sched: &Schedule, m: usize, c: usize) -> bool {
    all_crash_sets(m, c).all(|crash| effective_latency(g, sched, &crash).is_some())
}

/// The worst (largest) effective latency over every crash set of exactly
/// `c` processors, or `None` if some pattern is not tolerated.
pub fn worst_case_latency(g: &TaskGraph, sched: &Schedule, m: usize, c: usize) -> Option<f64> {
    let mut worst = 0.0f64;
    for crash in all_crash_sets(m, c) {
        worst = worst.max(effective_latency(g, sched, &crash)?);
    }
    Some(worst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_set_basics() {
        let mut s = CrashSet::empty(20);
        assert!(s.is_empty());
        s.insert(ProcId(3));
        s.insert(ProcId(19));
        s.insert(ProcId(3)); // idempotent
        assert_eq!(s.len(), 2);
        assert!(s.contains(ProcId(3)));
        assert!(!s.contains(ProcId(4)));
        assert_eq!(s.procs(), vec![ProcId(3), ProcId(19)]);
        assert_eq!(s.num_procs(), 20);
    }

    #[test]
    fn crash_set_large_platform() {
        let mut s = CrashSet::empty(130);
        s.insert(ProcId(127));
        s.insert(ProcId(128));
        assert!(s.contains(ProcId(128)));
        assert!(!s.contains(ProcId(129)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn combinations_count() {
        assert_eq!(all_crash_sets(5, 2).count(), 10);
        assert_eq!(all_crash_sets(20, 3).count(), 1140);
        assert_eq!(all_crash_sets(4, 0).count(), 1);
        assert_eq!(all_crash_sets(3, 3).count(), 1);
        assert_eq!(all_crash_sets(2, 3).count(), 0);
    }

    #[test]
    fn combinations_distinct_and_sized() {
        let sets: Vec<_> = all_crash_sets(6, 2).collect();
        assert_eq!(sets.len(), 15);
        for s in &sets {
            assert_eq!(s.len(), 2);
        }
        for i in 0..sets.len() {
            for j in i + 1..sets.len() {
                assert_ne!(sets[i], sets[j]);
            }
        }
    }

    #[test]
    fn sampling_produces_distinct_procs() {
        // Deterministic fake RNG: always picks 0 (first remaining).
        let mut rng = |_b: usize| 0usize;
        let s = sample_crash_set(10, 4, &mut rng);
        assert_eq!(s.len(), 4);
        assert_eq!(s.procs(), vec![ProcId(0), ProcId(1), ProcId(2), ProcId(3)]);
    }

    #[test]
    #[should_panic(expected = "cannot crash")]
    fn oversized_sample_panics() {
        let mut rng = |_b: usize| 0usize;
        sample_crash_set(3, 4, &mut rng);
    }
}
