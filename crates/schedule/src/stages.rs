//! Pipeline stage computation.
//!
//! Paper §4: entry replicas are in stage 1; for any other replica,
//! `S(t^(N)) = max { S(src) + η }` over the predecessor replicas *involved
//! in a communication with* `t^(N)`, where `η = 0` if the source shares the
//! processor and `η = 1` otherwise. The pipeline latency follows as
//! `L = (2S − 1)/T` (Hary & Özgüner's synchronous stage model: `S` compute
//! windows interleaved with `S − 1` communication windows, each of length
//! `Δ = 1/T`).
//!
//! Two stage notions coexist:
//!
//! * **guaranteed** ([`guaranteed_stages`]) — uses the *worst* recorded
//!   source per in-edge. This bounds the execution whichever replicas end
//!   up providing the data, i.e. under any tolerated failure pattern.
//! * **effective** ([`effective_stages`]) — uses the *best alive* source
//!   per in-edge for a given crash set; this is the latency actually
//!   observed in an execution where those processors failed (paper §5's
//!   "With c Crash" series, and "With 0 Crash" for the empty set).

use crate::failures::CrashSet;
use crate::replica::{ReplicaId, SourceChoice};
use ltf_graph::{TaskGraph, TaskId};
use ltf_platform::ProcId;

/// Guaranteed (worst-source) stage for every replica, densely indexed.
///
/// Replicas of entry tasks get stage 1. Replicas whose source lists are
/// empty on some in-edge are treated pessimistically as entry-like for that
/// edge (the validator rejects such schedules separately).
pub fn guaranteed_stages(
    g: &TaskGraph,
    nrep: usize,
    proc_of: &[ProcId],
    sources: &[Vec<SourceChoice>],
) -> Vec<u32> {
    let mut stage = vec![1u32; g.num_tasks() * nrep];
    for &t in g.topo_order() {
        for copy in 0..nrep {
            let r = ReplicaId::new(t, copy as u8).dense(nrep);
            let mut s = 1u32;
            for choice in &sources[r] {
                let pred = g.edge(choice.edge).src;
                for &src_copy in &choice.sources {
                    let src = ReplicaId::new(pred, src_copy).dense(nrep);
                    let eta = u32::from(proc_of[src] != proc_of[r]);
                    s = s.max(stage[src] + eta);
                }
            }
            stage[r] = s;
        }
    }
    stage
}

/// Outcome of the alive-replica analysis for one crash set.
#[derive(Debug, Clone)]
pub struct EffectiveStages {
    /// Whether each replica (dense index) produces its output: its host
    /// survives and every in-edge has at least one alive source.
    pub alive: Vec<bool>,
    /// Effective stage of each alive replica (meaningless when dead):
    /// per in-edge the *earliest alive* source is used.
    pub stage: Vec<u32>,
}

/// Alive-replica analysis under `crash` (paper §5: fail-silent/fail-stop
/// processors chosen before the execution).
pub fn effective_stages(
    g: &TaskGraph,
    nrep: usize,
    proc_of: &[ProcId],
    sources: &[Vec<SourceChoice>],
    crash: &CrashSet,
) -> EffectiveStages {
    let n = g.num_tasks() * nrep;
    let mut alive = vec![false; n];
    let mut stage = vec![u32::MAX; n];
    for &t in g.topo_order() {
        for copy in 0..nrep {
            let r = ReplicaId::new(t, copy as u8).dense(nrep);
            if crash.contains(proc_of[r]) {
                continue;
            }
            let mut ok = true;
            let mut s = 1u32;
            for choice in &sources[r] {
                let pred = g.edge(choice.edge).src;
                let mut best: Option<u32> = None;
                for &src_copy in &choice.sources {
                    let src = ReplicaId::new(pred, src_copy).dense(nrep);
                    if !alive[src] {
                        continue;
                    }
                    let eta = u32::from(proc_of[src] != proc_of[r]);
                    let cand = stage[src] + eta;
                    best = Some(best.map_or(cand, |b: u32| b.min(cand)));
                }
                match best {
                    Some(b) => s = s.max(b),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                alive[r] = true;
                stage[r] = s;
            }
        }
    }
    EffectiveStages { alive, stage }
}

/// Effective total stage count under `crash`: for every exit task take the
/// fastest alive replica, then the maximum over exit tasks (all stream
/// outputs must be produced). `None` when some exit task has no alive
/// replica — i.e. the crash pattern exceeded what the replication degree
/// protects against.
pub fn effective_stage_count(
    g: &TaskGraph,
    nrep: usize,
    proc_of: &[ProcId],
    sources: &[Vec<SourceChoice>],
    crash: &CrashSet,
) -> Option<u32> {
    let eff = effective_stages(g, nrep, proc_of, sources, crash);
    let mut total = 1u32;
    for &t in g.exits() {
        let best = best_alive_stage(t, nrep, &eff)?;
        total = total.max(best);
    }
    Some(total)
}

fn best_alive_stage(t: TaskId, nrep: usize, eff: &EffectiveStages) -> Option<u32> {
    (0..nrep)
        .filter_map(|copy| {
            let r = ReplicaId::new(t, copy as u8).dense(nrep);
            eff.alive[r].then_some(eff.stage[r])
        })
        .min()
}

/// Pipeline latency for a stage count: `L = (2S − 1) · Δ`.
#[inline]
pub fn latency_for_stages(stages: u32, period: f64) -> f64 {
    (2.0 * stages as f64 - 1.0) * period
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltf_graph::GraphBuilder;

    /// Chain t0 -> t1 -> t2, ε = 1 (2 copies). Copy 0 path fully on P1
    /// (stage 1 throughout); copy 1 hops P2 -> P3 -> P4.
    fn replicated_chain() -> (TaskGraph, Vec<ProcId>, Vec<Vec<SourceChoice>>) {
        let mut b = GraphBuilder::new();
        let t0 = b.add_task(1.0);
        let t1 = b.add_task(1.0);
        let t2 = b.add_task(1.0);
        let e01 = b.add_edge(t0, t1, 1.0);
        let e12 = b.add_edge(t1, t2, 1.0);
        let g = b.build().unwrap();
        let proc_of = vec![
            ProcId(0), // t0^1
            ProcId(1), // t0^2
            ProcId(0), // t1^1
            ProcId(2), // t1^2
            ProcId(0), // t2^1
            ProcId(3), // t2^2
        ];
        // One-to-one everywhere: copy k of each task feeds copy k of the next.
        let sources = vec![
            vec![],
            vec![],
            vec![SourceChoice::one(e01, 0)],
            vec![SourceChoice::one(e01, 1)],
            vec![SourceChoice::one(e12, 0)],
            vec![SourceChoice::one(e12, 1)],
        ];
        (g, proc_of, sources)
    }

    #[test]
    fn guaranteed_stage_counts() {
        let (g, proc_of, sources) = replicated_chain();
        let st = guaranteed_stages(&g, 2, &proc_of, &sources);
        // Copy 0 never changes processor: all stage 1.
        assert_eq!(st[0], 1);
        assert_eq!(st[2], 1);
        assert_eq!(st[4], 1);
        // Copy 1 changes processor at every hop: stages 1, 2, 3.
        assert_eq!(st[1], 1);
        assert_eq!(st[3], 2);
        assert_eq!(st[5], 3);
    }

    #[test]
    fn effective_no_crash_takes_fastest_exit_replica() {
        let (g, proc_of, sources) = replicated_chain();
        let s = effective_stage_count(&g, 2, &proc_of, &sources, &CrashSet::empty(4)).unwrap();
        // Exit t2's copies have stages {1, 3}: best alive = 1.
        assert_eq!(s, 1);
    }

    #[test]
    fn effective_with_crash_falls_back_to_surviving_copy() {
        let (g, proc_of, sources) = replicated_chain();
        // P1 hosts the whole fast copy: killing it leaves the 3-stage copy.
        let crash = CrashSet::from_procs(&[ProcId(0)], 4);
        let s = effective_stage_count(&g, 2, &proc_of, &sources, &crash).unwrap();
        assert_eq!(s, 3);
    }

    #[test]
    fn chain_kill_breaks_one_to_one_chain() {
        let (g, proc_of, sources) = replicated_chain();
        // Killing P3 starves t1^2 and hence t2^2; copy 1 chain dies but
        // copy 0 survives.
        let crash = CrashSet::from_procs(&[ProcId(2)], 4);
        let eff = effective_stages(&g, 2, &proc_of, &sources, &crash);
        assert!(eff.alive[0] && eff.alive[2] && eff.alive[4]);
        assert!(eff.alive[1]); // t0^2 itself runs on P2 which survives
        assert!(!eff.alive[3]); // t1^2 host crashed
        assert!(!eff.alive[5]); // starved: its only source is dead
        assert_eq!(
            effective_stage_count(&g, 2, &proc_of, &sources, &crash),
            Some(1)
        );
    }

    #[test]
    fn two_crashes_exceeding_replication_return_none() {
        let (g, proc_of, sources) = replicated_chain();
        // Kill both copies of the exit path: P1 (copy 0) and P4 (copy 1 exit).
        let crash = CrashSet::from_procs(&[ProcId(0), ProcId(3)], 4);
        assert_eq!(
            effective_stage_count(&g, 2, &proc_of, &sources, &crash),
            None
        );
    }

    #[test]
    fn receive_from_all_uses_best_alive_source() {
        // t0 (2 copies on P1, P2) -> t1 (copy 0 on P1, receive-from-all).
        let mut b = GraphBuilder::new();
        let t0 = b.add_task(1.0);
        let t1 = b.add_task(1.0);
        let e = b.add_edge(t0, t1, 1.0);
        let g = b.build().unwrap();
        let proc_of = vec![ProcId(0), ProcId(1), ProcId(0), ProcId(2)];
        let sources = vec![
            vec![],
            vec![],
            vec![SourceChoice::all(e, 2)],
            vec![SourceChoice::all(e, 2)],
        ];
        let st = guaranteed_stages(&g, 2, &proc_of, &sources);
        // Guaranteed: worst source is remote -> stage 2 even for the
        // co-located copy.
        assert_eq!(st[2], 2);
        assert_eq!(st[3], 2);
        // Effective with no crash: co-located source gives stage 1.
        let eff = effective_stages(&g, 2, &proc_of, &sources, &CrashSet::empty(3));
        assert_eq!(eff.stage[2], 1);
        assert_eq!(eff.stage[3], 2);
        // Kill P1: t1^1 dies with its host; t1^2 falls back to the remote
        // source that survives.
        let crash = CrashSet::from_procs(&[ProcId(0)], 3);
        let eff = effective_stages(&g, 2, &proc_of, &sources, &crash);
        assert!(!eff.alive[2]);
        assert!(eff.alive[3]);
        assert_eq!(eff.stage[3], 2);
    }

    #[test]
    fn latency_formula() {
        assert_eq!(latency_for_stages(1, 20.0), 20.0);
        assert_eq!(latency_for_stages(3, 20.0), 100.0);
        assert_eq!(latency_for_stages(4, 20.0), 140.0);
        assert_eq!(latency_for_stages(2, 30.0), 90.0); // Fig. 1(d)
    }
}
