//! Busy-interval sets with earliest-gap insertion.
//!
//! Used to serialize each processor's send port, receive port and compute
//! resource. Intervals are half-open `[start, end)`; zero-length intervals
//! are ignored. Insertion keeps the set sorted and non-overlapping.

use crate::EPS;

/// A sorted set of non-overlapping half-open busy intervals.
#[derive(Debug, Clone, Default)]
pub struct IntervalSet {
    ivs: Vec<(f64, f64)>,
}

impl IntervalSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of busy intervals.
    pub fn len(&self) -> usize {
        self.ivs.len()
    }

    /// `true` when no interval is recorded.
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    /// Total busy time.
    pub fn total(&self) -> f64 {
        self.ivs.iter().map(|(s, e)| e - s).sum()
    }

    /// The busy intervals, sorted by start.
    pub fn intervals(&self) -> &[(f64, f64)] {
        &self.ivs
    }

    /// `true` iff `[start, end)` does not intersect any busy interval
    /// (with `EPS` slack at the boundaries).
    pub fn is_free(&self, start: f64, end: f64) -> bool {
        if end - start <= EPS {
            return true;
        }
        // Binary search for the first interval ending after `start`.
        let i = self.ivs.partition_point(|&(_, e)| e <= start + EPS);
        match self.ivs.get(i) {
            Some(&(s, _)) => s + EPS >= end,
            None => true,
        }
    }

    /// Earliest `τ ≥ ready` such that `[τ, τ + dur)` is free.
    pub fn next_fit(&self, ready: f64, dur: f64) -> f64 {
        if dur <= EPS {
            return ready;
        }
        let mut t = ready;
        let mut i = self.ivs.partition_point(|&(_, e)| e <= t + EPS);
        loop {
            match self.ivs.get(i) {
                Some(&(s, e)) => {
                    if s + EPS >= t + dur {
                        return t;
                    }
                    t = t.max(e);
                    i += 1;
                }
                None => return t,
            }
        }
    }

    /// Insert a busy interval. Zero-length intervals are ignored.
    ///
    /// # Panics
    /// If the interval overlaps an existing one by more than `EPS`.
    pub fn insert(&mut self, start: f64, end: f64) {
        if end - start <= EPS {
            return;
        }
        debug_assert!(start.is_finite() && end.is_finite() && end > start);
        let i = self.ivs.partition_point(|&(s, _)| s < start);
        if i > 0 {
            let (_, pe) = self.ivs[i - 1];
            assert!(pe <= start + EPS, "overlap with previous interval");
        }
        if let Some(&(ns, _)) = self.ivs.get(i) {
            assert!(end <= ns + EPS, "overlap with next interval");
        }
        self.ivs.insert(i, (start, end));
    }
}

/// Earliest `τ ≥ ready` such that `[τ, τ + dur)` is simultaneously free in
/// both sets (used to co-reserve a send port and a receive port for one
/// message). Alternates `next_fit` queries until a fixpoint is reached.
pub fn earliest_common_fit(a: &IntervalSet, b: &IntervalSet, ready: f64, dur: f64) -> f64 {
    let mut t = ready;
    loop {
        let t1 = a.next_fit(t, dur);
        let t2 = b.next_fit(t1, dur);
        if (t2 - t1).abs() <= EPS {
            return t2;
        }
        t = t2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_fits_anywhere() {
        let s = IntervalSet::new();
        assert!(s.is_empty());
        assert_eq!(s.next_fit(5.0, 3.0), 5.0);
        assert!(s.is_free(0.0, 100.0));
        assert_eq!(s.total(), 0.0);
    }

    #[test]
    fn gap_insertion() {
        let mut s = IntervalSet::new();
        s.insert(0.0, 2.0);
        s.insert(5.0, 7.0);
        // Fits in the gap [2, 5).
        assert_eq!(s.next_fit(0.0, 3.0), 2.0);
        // Does not fit the gap: goes after the last interval.
        assert_eq!(s.next_fit(0.0, 4.0), 7.0);
        // Starting inside an interval pushes to its end.
        assert_eq!(s.next_fit(1.0, 1.0), 2.0);
        // Exact-fit gap.
        s.insert(2.0, 4.0);
        assert_eq!(s.next_fit(0.0, 1.0), 4.0);
        assert_eq!(s.total(), 6.0);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn is_free_checks() {
        let mut s = IntervalSet::new();
        s.insert(2.0, 4.0);
        assert!(s.is_free(0.0, 2.0));
        assert!(s.is_free(4.0, 10.0));
        assert!(!s.is_free(1.0, 3.0));
        assert!(!s.is_free(3.0, 5.0));
        assert!(!s.is_free(0.0, 10.0));
        // Zero-length always free.
        assert!(s.is_free(3.0, 3.0));
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_insert_panics() {
        let mut s = IntervalSet::new();
        s.insert(0.0, 2.0);
        s.insert(1.0, 3.0);
    }

    #[test]
    fn zero_length_ignored() {
        let mut s = IntervalSet::new();
        s.insert(1.0, 1.0);
        assert!(s.is_empty());
    }

    #[test]
    fn common_fit() {
        let mut a = IntervalSet::new();
        let mut b = IntervalSet::new();
        a.insert(0.0, 3.0);
        b.insert(4.0, 6.0);
        // dur 1: a free from 3, b busy [4,6) -> common at 3, ok (fits [3,4)).
        assert_eq!(earliest_common_fit(&a, &b, 0.0, 1.0), 3.0);
        // dur 2: a free from 3 but b blocks [4,6) -> 6.
        assert_eq!(earliest_common_fit(&a, &b, 0.0, 2.0), 6.0);
        // ready beyond everything.
        assert_eq!(earliest_common_fit(&a, &b, 10.0, 2.0), 10.0);
    }

    #[test]
    fn common_fit_interleaved() {
        let mut a = IntervalSet::new();
        let mut b = IntervalSet::new();
        // Alternating busy windows force several fixpoint iterations.
        a.insert(0.0, 1.0);
        a.insert(2.0, 3.0);
        a.insert(4.0, 5.0);
        b.insert(1.0, 2.0);
        b.insert(3.0, 4.0);
        assert_eq!(earliest_common_fit(&a, &b, 0.0, 1.0), 5.0);
    }
}
