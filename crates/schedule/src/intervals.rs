//! Busy-interval sets with earliest-gap insertion.
//!
//! Used to serialize each processor's send port, receive port and compute
//! resource. Intervals are half-open `[start, end)`; zero-length intervals
//! are ignored. Insertion keeps the set sorted and non-overlapping.
//!
//! Three layers serve the placement hot path:
//!
//! * [`IntervalSet`] — one sorted resource timeline with binary-searched
//!   gap queries ([`IntervalSet::next_fit`]) and exact removal
//!   ([`IntervalSet::remove`], the undo-log primitive).
//! * [`OverlayView`] — a *probe-time* view of a base set plus a small
//!   sorted delta of tentative reservations. Candidate evaluation works
//!   against the overlay without ever cloning the base set; committing is
//!   a plain insert, abandoning the probe is free.
//! * [`IntervalIndex`] — the per-processor bucket index: one
//!   [`IntervalSet`] per processor, addressed by processor index, so the
//!   engine keeps all CPU/send/receive timelines in one structure with
//!   overlay construction and undo-removal per bucket.

use crate::EPS;

/// Earliest `τ ≥ ready` such that `[τ, τ + dur)` fits the gap structure of
/// the sorted, non-overlapping interval slice `ivs`.
///
/// Shared by [`IntervalSet::next_fit`] and [`OverlayView`]'s delta scan so
/// both apply bit-identical `EPS` boundary rules.
fn next_fit_in(ivs: &[(f64, f64)], ready: f64, dur: f64) -> f64 {
    let mut t = ready;
    let mut i = ivs.partition_point(|&(_, e)| e <= t + EPS);
    loop {
        match ivs.get(i) {
            Some(&(s, e)) => {
                if s + EPS >= t + dur {
                    return t;
                }
                t = t.max(e);
                i += 1;
            }
            None => return t,
        }
    }
}

/// Insert `[start, end)` into a sorted, non-overlapping interval vector.
/// Shared by [`IntervalSet::insert`] and [`OverlayDelta::insert`] so both
/// enforce the same invariant with the same (hard) assert policy.
///
/// # Panics
/// If the interval overlaps an existing one by more than `EPS` — callers
/// derive the position from a prior fit query, so an overlap means the
/// fit query and the insertion disagree.
fn insert_sorted(ivs: &mut Vec<(f64, f64)>, start: f64, end: f64) {
    debug_assert!(start.is_finite() && end.is_finite() && end > start);
    let i = ivs.partition_point(|&(s, _)| s < start);
    if i > 0 {
        let (_, pe) = ivs[i - 1];
        assert!(pe <= start + EPS, "overlap with previous interval");
    }
    if let Some(&(ns, _)) = ivs.get(i) {
        assert!(end <= ns + EPS, "overlap with next interval");
    }
    ivs.insert(i, (start, end));
}

/// A resource timeline that can answer earliest-fit queries; implemented by
/// the plain [`IntervalSet`] and the probe-time [`OverlayView`], so
/// [`earliest_common_fit`] composes either form.
pub trait BusyTimeline {
    /// Earliest `τ ≥ ready` such that `[τ, τ + dur)` is free.
    fn next_fit(&self, ready: f64, dur: f64) -> f64;
}

/// A sorted set of non-overlapping half-open busy intervals.
#[derive(Debug, Clone, Default)]
pub struct IntervalSet {
    ivs: Vec<(f64, f64)>,
}

impl IntervalSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of busy intervals.
    pub fn len(&self) -> usize {
        self.ivs.len()
    }

    /// `true` when no interval is recorded.
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    /// Total busy time.
    pub fn total(&self) -> f64 {
        self.ivs.iter().map(|(s, e)| e - s).sum()
    }

    /// The busy intervals, sorted by start.
    pub fn intervals(&self) -> &[(f64, f64)] {
        &self.ivs
    }

    /// `true` iff `[start, end)` does not intersect any busy interval
    /// (with `EPS` slack at the boundaries).
    pub fn is_free(&self, start: f64, end: f64) -> bool {
        if end - start <= EPS {
            return true;
        }
        // Binary search for the first interval ending after `start`.
        let i = self.ivs.partition_point(|&(_, e)| e <= start + EPS);
        match self.ivs.get(i) {
            Some(&(s, _)) => s + EPS >= end,
            None => true,
        }
    }

    /// Earliest `τ ≥ ready` such that `[τ, τ + dur)` is free.
    pub fn next_fit(&self, ready: f64, dur: f64) -> f64 {
        if dur <= EPS {
            return ready;
        }
        next_fit_in(&self.ivs, ready, dur)
    }

    /// Insert a busy interval. Zero-length intervals are ignored.
    ///
    /// # Panics
    /// If the interval overlaps an existing one by more than `EPS`.
    pub fn insert(&mut self, start: f64, end: f64) {
        if end - start <= EPS {
            return;
        }
        insert_sorted(&mut self.ivs, start, end);
    }

    /// Remove the exact busy interval `[start, end)` previously inserted
    /// (the undo-log primitive). Zero-length intervals were never stored
    /// and are ignored.
    ///
    /// # Panics
    /// If no interval with these exact endpoints is present.
    pub fn remove(&mut self, start: f64, end: f64) {
        if end - start <= EPS {
            return;
        }
        let i = self.ivs.partition_point(|&(s, _)| s < start);
        // `insert` stored the exact bits, so equality search suffices; the
        // partition point lands on the first interval starting at `start`.
        match self.ivs.get(i) {
            Some(&(s, e)) if s == start && e == end => {
                self.ivs.remove(i);
            }
            _ => panic!("remove of interval [{start}, {end}) not present"),
        }
    }
}

impl BusyTimeline for IntervalSet {
    #[inline]
    fn next_fit(&self, ready: f64, dur: f64) -> f64 {
        IntervalSet::next_fit(self, ready, dur)
    }
}

/// Probe-time view of a base [`IntervalSet`] plus a small sorted delta of
/// tentative reservations (the candidate's own planned messages).
///
/// Fit queries see the union of base and delta without materializing it:
/// the placement engine evaluates every candidate processor against
/// overlays and only touches the base sets on commit, so abandoned probes
/// cost no clone and no cleanup.
#[derive(Debug, Clone, Copy)]
pub struct OverlayView<'a> {
    base: &'a IntervalSet,
    added: &'a [(f64, f64)],
}

impl<'a> OverlayView<'a> {
    /// View `base` with the tentative sorted reservations `added`.
    pub fn new(base: &'a IntervalSet, added: &'a [(f64, f64)]) -> Self {
        debug_assert!(added.windows(2).all(|w| w[0].1 <= w[1].0 + EPS));
        Self { base, added }
    }
}

impl BusyTimeline for OverlayView<'_> {
    /// Earliest fit in the union of base and delta: alternate per-layer
    /// fits until a common fixpoint, exactly the [`earliest_common_fit`]
    /// argument — the result is the least `τ` admissible to both layers,
    /// hence identical to a fit against the merged set.
    fn next_fit(&self, ready: f64, dur: f64) -> f64 {
        if dur <= EPS {
            return ready;
        }
        let mut t = ready;
        loop {
            let t1 = next_fit_in(self.base.intervals(), t, dur);
            let t2 = next_fit_in(self.added, t1, dur);
            if t2 == t1 {
                return t2;
            }
            t = t2;
        }
    }
}

/// A growable sorted delta of tentative reservations, paired with
/// [`OverlayView`] during probes.
#[derive(Debug, Clone, Default)]
pub struct OverlayDelta {
    ivs: Vec<(f64, f64)>,
}

impl OverlayDelta {
    /// Empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a tentative reservation. Zero-length reservations are
    /// ignored, mirroring [`IntervalSet::insert`].
    ///
    /// # Panics
    /// If the reservation overlaps an existing delta entry by more than
    /// `EPS` (same policy as [`IntervalSet::insert`]).
    pub fn insert(&mut self, start: f64, end: f64) {
        if end - start <= EPS {
            return;
        }
        insert_sorted(&mut self.ivs, start, end);
    }

    /// The tentative reservations, sorted by start.
    pub fn intervals(&self) -> &[(f64, f64)] {
        &self.ivs
    }

    /// Drop all tentative reservations (reuse between probes).
    pub fn clear(&mut self) {
        self.ivs.clear();
    }

    /// `true` when nothing is reserved.
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }
}

/// Earliest `τ ≥ ready` such that `[τ, τ + dur)` is simultaneously free in
/// both timelines (used to co-reserve a send port and a receive port for
/// one message). Alternates `next_fit` queries until a fixpoint is reached.
///
/// Generic over [`BusyTimeline`] so plain sets and probe-time overlays
/// compose: the fixpoint of monotone "next admissible point" operators is
/// the least common admissible point regardless of layering.
pub fn earliest_common_fit<A: BusyTimeline + ?Sized, B: BusyTimeline + ?Sized>(
    a: &A,
    b: &B,
    ready: f64,
    dur: f64,
) -> f64 {
    let mut t = ready;
    loop {
        let t1 = a.next_fit(t, dur);
        let t2 = b.next_fit(t1, dur);
        if (t2 - t1).abs() <= EPS {
            return t2;
        }
        t = t2;
    }
}

/// Per-processor bucket index over busy timelines: one [`IntervalSet`] per
/// processor, addressed by processor index.
///
/// The engine keeps three of these (CPU, send port, receive port). All
/// probe-phase queries go through [`IntervalIndex::overlay`]; commit and
/// undo mutate a single bucket via [`IntervalIndex::insert`] /
/// [`IntervalIndex::remove`].
#[derive(Debug, Clone, Default)]
pub struct IntervalIndex {
    buckets: Vec<IntervalSet>,
}

impl IntervalIndex {
    /// An index over `m` processors, all timelines empty.
    pub fn new(m: usize) -> Self {
        Self {
            buckets: vec![IntervalSet::new(); m],
        }
    }

    /// Number of buckets (processors).
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The timeline of processor `u`.
    #[inline]
    pub fn bucket(&self, u: usize) -> &IntervalSet {
        &self.buckets[u]
    }

    /// Probe-time view of processor `u` with tentative reservations.
    #[inline]
    pub fn overlay<'a>(&'a self, u: usize, delta: &'a OverlayDelta) -> OverlayView<'a> {
        OverlayView::new(&self.buckets[u], delta.intervals())
    }

    /// Commit a reservation on processor `u`.
    #[inline]
    pub fn insert(&mut self, u: usize, start: f64, end: f64) {
        self.buckets[u].insert(start, end);
    }

    /// Undo a reservation on processor `u` (exact endpoints).
    #[inline]
    pub fn remove(&mut self, u: usize, start: f64, end: f64) {
        self.buckets[u].remove(start, end);
    }

    /// Total busy time across all buckets (diagnostics).
    pub fn total(&self) -> f64 {
        self.buckets.iter().map(IntervalSet::total).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_fits_anywhere() {
        let s = IntervalSet::new();
        assert!(s.is_empty());
        assert_eq!(s.next_fit(5.0, 3.0), 5.0);
        assert!(s.is_free(0.0, 100.0));
        assert_eq!(s.total(), 0.0);
    }

    #[test]
    fn gap_insertion() {
        let mut s = IntervalSet::new();
        s.insert(0.0, 2.0);
        s.insert(5.0, 7.0);
        // Fits in the gap [2, 5).
        assert_eq!(s.next_fit(0.0, 3.0), 2.0);
        // Does not fit the gap: goes after the last interval.
        assert_eq!(s.next_fit(0.0, 4.0), 7.0);
        // Starting inside an interval pushes to its end.
        assert_eq!(s.next_fit(1.0, 1.0), 2.0);
        // Exact-fit gap.
        s.insert(2.0, 4.0);
        assert_eq!(s.next_fit(0.0, 1.0), 4.0);
        assert_eq!(s.total(), 6.0);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn is_free_checks() {
        let mut s = IntervalSet::new();
        s.insert(2.0, 4.0);
        assert!(s.is_free(0.0, 2.0));
        assert!(s.is_free(4.0, 10.0));
        assert!(!s.is_free(1.0, 3.0));
        assert!(!s.is_free(3.0, 5.0));
        assert!(!s.is_free(0.0, 10.0));
        // Zero-length always free.
        assert!(s.is_free(3.0, 3.0));
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_insert_panics() {
        let mut s = IntervalSet::new();
        s.insert(0.0, 2.0);
        s.insert(1.0, 3.0);
    }

    #[test]
    fn zero_length_ignored() {
        let mut s = IntervalSet::new();
        s.insert(1.0, 1.0);
        assert!(s.is_empty());
    }

    #[test]
    fn remove_restores_previous_state() {
        let mut s = IntervalSet::new();
        s.insert(0.0, 2.0);
        s.insert(5.0, 7.0);
        s.insert(2.0, 4.0);
        s.remove(2.0, 4.0);
        assert_eq!(s.intervals(), &[(0.0, 2.0), (5.0, 7.0)]);
        s.remove(0.0, 2.0);
        s.remove(5.0, 7.0);
        assert!(s.is_empty());
        // Zero-length removals are no-ops, like their insertions.
        s.remove(3.0, 3.0);
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn remove_missing_panics() {
        let mut s = IntervalSet::new();
        s.insert(0.0, 2.0);
        s.remove(0.0, 3.0);
    }

    #[test]
    fn common_fit() {
        let mut a = IntervalSet::new();
        let mut b = IntervalSet::new();
        a.insert(0.0, 3.0);
        b.insert(4.0, 6.0);
        // dur 1: a free from 3, b busy [4,6) -> common at 3, ok (fits [3,4)).
        assert_eq!(earliest_common_fit(&a, &b, 0.0, 1.0), 3.0);
        // dur 2: a free from 3 but b blocks [4,6) -> 6.
        assert_eq!(earliest_common_fit(&a, &b, 0.0, 2.0), 6.0);
        // ready beyond everything.
        assert_eq!(earliest_common_fit(&a, &b, 10.0, 2.0), 10.0);
    }

    #[test]
    fn common_fit_interleaved() {
        let mut a = IntervalSet::new();
        let mut b = IntervalSet::new();
        // Alternating busy windows force several fixpoint iterations.
        a.insert(0.0, 1.0);
        a.insert(2.0, 3.0);
        a.insert(4.0, 5.0);
        b.insert(1.0, 2.0);
        b.insert(3.0, 4.0);
        assert_eq!(earliest_common_fit(&a, &b, 0.0, 1.0), 5.0);
    }

    #[test]
    fn overlay_matches_materialized_set() {
        let mut base = IntervalSet::new();
        base.insert(0.0, 1.0);
        base.insert(4.0, 5.0);
        let mut delta = OverlayDelta::new();
        delta.insert(1.0, 2.0);
        delta.insert(6.0, 8.0);

        let mut merged = base.clone();
        for &(s, e) in delta.intervals() {
            merged.insert(s, e);
        }
        let overlay = OverlayView::new(&base, delta.intervals());
        for ready in [0.0, 0.5, 1.5, 3.0, 5.5, 9.0] {
            for dur in [0.5, 1.0, 2.0, 3.5] {
                assert_eq!(
                    BusyTimeline::next_fit(&overlay, ready, dur),
                    merged.next_fit(ready, dur),
                    "ready={ready} dur={dur}"
                );
            }
        }
    }

    #[test]
    fn overlay_common_fit_with_two_deltas() {
        // Send side busy via base, receive side busy via delta.
        let mut send = IntervalSet::new();
        send.insert(0.0, 2.0);
        let recv = IntervalSet::new();
        let empty = OverlayDelta::new();
        let mut recv_delta = OverlayDelta::new();
        recv_delta.insert(2.0, 4.0);

        let sv = OverlayView::new(&send, empty.intervals());
        let rv = OverlayView::new(&recv, recv_delta.intervals());
        assert_eq!(earliest_common_fit(&sv, &rv, 0.0, 1.0), 4.0);
    }

    #[test]
    fn overlay_delta_reuse() {
        let mut d = OverlayDelta::new();
        d.insert(0.0, 1.0);
        d.insert(1.0, 1.0); // zero-length ignored
        assert_eq!(d.intervals().len(), 1);
        d.clear();
        assert!(d.is_empty());
    }

    #[test]
    fn index_buckets_are_independent() {
        let mut idx = IntervalIndex::new(3);
        idx.insert(0, 0.0, 2.0);
        idx.insert(2, 1.0, 3.0);
        assert_eq!(idx.bucket(0).len(), 1);
        assert!(idx.bucket(1).is_empty());
        assert_eq!(idx.bucket(2).next_fit(0.5, 1.0), 3.0);
        assert_eq!(idx.total(), 4.0);
        idx.remove(0, 0.0, 2.0);
        assert!(idx.bucket(0).is_empty());
        assert_eq!(idx.num_buckets(), 3);
    }

    #[test]
    fn index_overlay_sees_delta() {
        let mut idx = IntervalIndex::new(2);
        idx.insert(1, 0.0, 1.0);
        let mut d = OverlayDelta::new();
        d.insert(1.0, 2.0);
        let v = idx.overlay(1, &d);
        assert_eq!(BusyTimeline::next_fit(&v, 0.0, 0.5), 2.0);
        // Bucket 0 unaffected.
        let empty = OverlayDelta::new();
        assert_eq!(
            BusyTimeline::next_fit(&idx.overlay(0, &empty), 0.0, 0.5),
            0.0
        );
    }
}
