//! Schedule export: ASCII Gantt charts and a JSON-friendly summary.

use crate::schedule::Schedule;
use ltf_graph::TaskGraph;
use ltf_platform::Platform;
use serde::{Deserialize, Serialize};

/// Render the within-iteration timeline as an ASCII Gantt chart, one row
/// per processor (compute occupancy) plus send/receive port rows for
/// processors with traffic. `width` columns cover `[0, horizon]`.
pub fn gantt(g: &TaskGraph, p: &Platform, sched: &Schedule, width: usize) -> String {
    use std::fmt::Write;
    let width = width.max(10);
    let horizon = sched
        .replicas()
        .map(|r| sched.finish(r))
        .chain(sched.comm_events().iter().map(|e| e.finish))
        .fold(sched.period(), f64::max);
    let col =
        |t: f64| -> usize { ((t / horizon) * width as f64).round().min(width as f64) as usize };

    let mut out = String::new();
    writeln!(
        out,
        "iteration timeline, horizon {horizon:.2} (Δ = {:.2}); one column ≈ {:.2}",
        sched.period(),
        horizon / width as f64
    )
    .unwrap();
    for u in p.procs() {
        let reps = sched.replicas_on(u);
        if reps.is_empty() {
            continue;
        }
        let mut row = vec![b'.'; width];
        for r in &reps {
            let (a, b) = (col(sched.start(*r)), col(sched.finish(*r)));
            let mark = (b'A' + (r.task.0 % 26) as u8) as char;
            for cell in row.iter_mut().take(b.max(a + 1)).skip(a) {
                *cell = mark as u8;
            }
        }
        writeln!(out, "{u:>4} |{}|", String::from_utf8_lossy(&row)).unwrap();

        let mut send = vec![b' '; width];
        let mut recv = vec![b' '; width];
        let mut any_send = false;
        let mut any_recv = false;
        for e in sched.comm_events() {
            let (a, b) = (col(e.start), col(e.finish));
            if e.src_proc == u {
                any_send = true;
                for cell in send.iter_mut().take(b.max(a + 1)).skip(a) {
                    *cell = b'>';
                }
            }
            if e.dst_proc == u {
                any_recv = true;
                for cell in recv.iter_mut().take(b.max(a + 1)).skip(a) {
                    *cell = b'<';
                }
            }
        }
        if any_send {
            writeln!(out, " out |{}|", String::from_utf8_lossy(&send)).unwrap();
        }
        if any_recv {
            writeln!(out, "  in |{}|", String::from_utf8_lossy(&recv)).unwrap();
        }
    }
    // Legend: letter -> task name (only for small graphs).
    if g.num_tasks() <= 26 {
        let names: Vec<String> = g
            .tasks()
            .map(|t| format!("{}={}", (b'A' + (t.0 % 26) as u8) as char, g.name(t)))
            .collect();
        writeln!(out, "legend: {}", names.join(" ")).unwrap();
    }
    out
}

/// Serializable schedule summary (placements, stages, loads, messages).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleSummary {
    /// Fault-tolerance degree.
    pub epsilon: u8,
    /// Iteration period `Δ`.
    pub period: f64,
    /// Pipeline stage count `S`.
    pub stages: u32,
    /// Guaranteed latency `(2S − 1)·Δ`.
    pub latency_upper_bound: f64,
    /// Inter-processor messages per data set.
    pub comm_count: usize,
    /// Replica placements.
    pub replicas: Vec<ReplicaSummary>,
    /// Per-processor loads.
    pub processors: Vec<ProcSummary>,
}

/// One replica's placement in the summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaSummary {
    /// Task name.
    pub task: String,
    /// Copy number (1-based, as in the paper).
    pub copy: u8,
    /// Host processor (0-based index).
    pub proc: u16,
    /// Pipeline stage.
    pub stage: u32,
    /// Start/finish on the iteration timeline.
    pub start: f64,
    /// See `start`.
    pub finish: f64,
}

/// One processor's loads in the summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcSummary {
    /// Processor index (0-based).
    pub proc: u16,
    /// Compute load `Σ_u`.
    pub sigma: f64,
    /// Input port load `C^I_u`.
    pub cin: f64,
    /// Output port load `C^O_u`.
    pub cout: f64,
}

/// Build the serializable summary of a schedule.
pub fn summarize(g: &TaskGraph, p: &Platform, sched: &Schedule) -> ScheduleSummary {
    ScheduleSummary {
        epsilon: sched.epsilon(),
        period: sched.period(),
        stages: sched.num_stages(),
        latency_upper_bound: sched.latency_upper_bound(),
        comm_count: sched.comm_count(),
        replicas: sched
            .replicas()
            .map(|r| ReplicaSummary {
                task: g.name(r.task).to_string(),
                copy: r.copy + 1,
                proc: sched.proc(r).0,
                stage: sched.stage(r),
                start: sched.start(r),
                finish: sched.finish(r),
            })
            .collect(),
        processors: p
            .procs()
            .map(|u| ProcSummary {
                proc: u.0,
                sigma: sched.sigma(u),
                cin: sched.cin(u),
                cout: sched.cout(u),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::SourceChoice;
    use crate::schedule::ScheduleData;
    use crate::CommEvent;
    use crate::ReplicaId;
    use ltf_graph::GraphBuilder;
    use ltf_platform::ProcId;

    fn sample() -> (TaskGraph, Platform, Schedule) {
        let mut b = GraphBuilder::new();
        let t0 = b.add_named_task("src", 4.0);
        let t1 = b.add_named_task("dst", 2.0);
        let e = b.add_edge(t0, t1, 3.0);
        let g = b.build().unwrap();
        let p = Platform::homogeneous(2, 1.0, 1.0);
        let data = ScheduleData {
            epsilon: 0,
            period: 10.0,
            proc_of: vec![ProcId(0), ProcId(1)],
            start: vec![0.0, 7.0],
            finish: vec![4.0, 9.0],
            sources: vec![vec![], vec![SourceChoice::one(e, 0)]],
            comm_events: vec![CommEvent {
                edge: e,
                src: ReplicaId::new(t0, 0),
                dst: ReplicaId::new(t1, 0),
                src_proc: ProcId(0),
                dst_proc: ProcId(1),
                start: 4.0,
                finish: 7.0,
            }],
        };
        let s = Schedule::new(&g, &p, data);
        (g, p, s)
    }

    #[test]
    fn gantt_shows_rows_and_ports() {
        let (g, p, s) = sample();
        let text = gantt(&g, &p, &s, 40);
        assert!(text.contains("P1 |"));
        assert!(text.contains("P2 |"));
        assert!(text.contains(" out |"));
        assert!(text.contains("  in |"));
        assert!(text.contains('>'));
        assert!(text.contains('<'));
        assert!(text.contains("legend: A=src B=dst"));
    }

    #[test]
    fn summary_roundtrips_to_json() {
        let (g, p, s) = sample();
        let sum = summarize(&g, &p, &s);
        assert_eq!(sum.stages, 2);
        assert_eq!(sum.replicas.len(), 2);
        assert_eq!(sum.processors.len(), 2);
        let json = serde_json::to_string(&sum).unwrap();
        assert!(json.contains("\"task\":\"src\""));
        assert!(json.contains("\"latency_upper_bound\":30.0"));
    }
}
