//! Platforms derived from physical topologies.
//!
//! Paper §2: "we do not need physical links between processor pairs, we may
//! have a switch, or even a path composed of several physical links to
//! interconnect `P_k` and `P_h`; in the latter case we would retain the
//! bandwidth of the slowest link in the path for the bandwidth of `l_kh`."
//!
//! [`Topology`] holds the physical links; [`Topology::into_platform`]
//! derives the fully-connected logical platform by routing every pair along
//! its *bottleneck-optimal* path — the path minimizing the maximum unit
//! delay (equivalently, maximizing the slowest link's bandwidth), computed
//! with a Dijkstra variant under the minimax metric.

use crate::comm::{CommMode, Link, LinkId, Route, RouteTable};
use crate::platform::Platform;

/// A physical interconnect: undirected links with unit message delays.
#[derive(Debug, Clone)]
pub struct Topology {
    speeds: Vec<f64>,
    /// `(a, b, unit_delay)` undirected physical links.
    links: Vec<(usize, usize, f64)>,
}

impl Topology {
    /// Start a topology over `speeds.len()` processors.
    pub fn new(speeds: Vec<f64>) -> Self {
        assert!(!speeds.is_empty());
        Self {
            speeds,
            links: Vec::new(),
        }
    }

    /// Add an undirected physical link with the given unit delay
    /// (`= 1/bandwidth`).
    ///
    /// # Panics
    /// On out-of-range endpoints, self-links, or non-positive delay.
    pub fn link(mut self, a: usize, b: usize, unit_delay: f64) -> Self {
        let m = self.speeds.len();
        assert!(a < m && b < m && a != b, "bad link endpoints");
        assert!(unit_delay.is_finite() && unit_delay > 0.0, "bad delay");
        self.links.push((a, b, unit_delay));
        self
    }

    /// Common shape: a linear chain `P1 - P2 - … - Pm` with uniform delay.
    pub fn chain(speeds: Vec<f64>, unit_delay: f64) -> Self {
        let m = speeds.len();
        let mut t = Self::new(speeds);
        for i in 0..m.saturating_sub(1) {
            t = t.link(i, i + 1, unit_delay);
        }
        t
    }

    /// Common shape: a star around a switch-like hub processor 0 (delay per
    /// spoke; the hub still computes).
    pub fn star(speeds: Vec<f64>, unit_delay: f64) -> Self {
        let m = speeds.len();
        let mut t = Self::new(speeds);
        for i in 1..m {
            t = t.link(0, i, unit_delay);
        }
        t
    }

    /// Derive the fully-connected logical platform: the effective unit
    /// delay between every pair is the minimax (bottleneck) path delay
    /// through the physical links.
    ///
    /// Returns `None` when the topology is disconnected (some pair has no
    /// path at all).
    pub fn into_platform(self) -> Option<Platform> {
        let m = self.speeds.len();
        let mut adj = vec![Vec::<(usize, f64)>::new(); m];
        for &(a, b, d) in &self.links {
            adj[a].push((b, d));
            adj[b].push((a, d));
        }
        let mut delays = vec![0.0f64; m * m];
        for src in 0..m {
            // Dijkstra under the minimax metric: dist[v] = the smallest
            // achievable "largest link delay" on a path src → v.
            let mut dist = vec![f64::INFINITY; m];
            dist[src] = 0.0;
            let mut done = vec![false; m];
            for _ in 0..m {
                let mut u = usize::MAX;
                let mut best = f64::INFINITY;
                for v in 0..m {
                    if !done[v] && dist[v] < best {
                        best = dist[v];
                        u = v;
                    }
                }
                if u == usize::MAX {
                    break;
                }
                done[u] = true;
                for &(v, d) in &adj[u] {
                    let cand = dist[u].max(d);
                    if cand < dist[v] {
                        dist[v] = cand;
                    }
                }
            }
            for (v, &dv) in dist.iter().enumerate() {
                if v != src {
                    if !dv.is_finite() {
                        return None;
                    }
                    delays[src * m + v] = dv;
                }
            }
        }
        Some(Platform::from_parts(self.speeds, delays))
    }

    /// Derive the logical platform while keeping link identity: the
    /// returned platform carries this topology's [`RouteTable`] and places
    /// communications under the chosen [`CommMode`]. With
    /// [`CommMode::Uniform`] the result schedules bit-identically to
    /// [`Topology::into_platform`]; with [`CommMode::Contended`] every
    /// transfer additionally reserves the physical links on its route.
    ///
    /// Returns `None` when the topology is disconnected.
    pub fn into_platform_with(self, mode: CommMode) -> Option<Platform> {
        let table = self.route_table()?;
        Some(Platform::routed(self.speeds, table, mode))
    }

    /// Shorthand for [`Topology::into_platform_with`] under
    /// [`CommMode::Contended`].
    pub fn into_contended_platform(self) -> Option<Platform> {
        self.into_platform_with(CommMode::Contended)
    }

    /// The physical links added so far, in declaration (`LinkId`) order.
    pub fn links(&self) -> &[(usize, usize, f64)] {
        &self.links
    }

    /// Processor speeds.
    pub fn speeds(&self) -> &[f64] {
        &self.speeds
    }

    /// Compute the per-pair route cache: for every ordered pair the
    /// bottleneck-optimal physical path (minimal largest link delay, ties
    /// broken by fewest hops, then smallest predecessor id — so the
    /// extracted paths are deterministic) and its effective delay.
    ///
    /// The effective delays agree exactly with the matrix
    /// [`Topology::into_platform`] computes: the hop/id tie-breaks only
    /// choose *which* optimal path is cached, never its bottleneck value.
    ///
    /// Returns `None` when some pair has no path at all.
    pub fn route_table(&self) -> Option<RouteTable> {
        let m = self.speeds.len();
        let mut adj = vec![Vec::<(usize, usize)>::new(); m];
        for (i, &(a, b, _)) in self.links.iter().enumerate() {
            adj[a].push((b, i));
            adj[b].push((a, i));
        }
        let links: Vec<Link> = self
            .links
            .iter()
            .map(|&(a, b, delay)| Link { a, b, delay })
            .collect();
        let mut routes = vec![Route::default(); m * m];
        let mut path = Vec::new();
        for src in 0..m {
            // Minimax Dijkstra under the lexicographic (bottleneck, hops)
            // metric, recording the parent link of each settled node.
            let mut bott = vec![f64::INFINITY; m];
            let mut hops = vec![usize::MAX; m];
            let mut parent: Vec<Option<(usize, usize)>> = vec![None; m];
            bott[src] = 0.0;
            hops[src] = 0;
            let mut done = vec![false; m];
            for _ in 0..m {
                let mut u = usize::MAX;
                for v in 0..m {
                    if !done[v]
                        && bott[v].is_finite()
                        && (u == usize::MAX || (bott[v], hops[v]) < (bott[u], hops[u]))
                    {
                        u = v;
                    }
                }
                if u == usize::MAX {
                    break;
                }
                done[u] = true;
                for &(v, link) in &adj[u] {
                    let d = self.links[link].2;
                    let cand = (bott[u].max(d), hops[u] + 1);
                    if cand < (bott[v], hops[v]) {
                        bott[v] = cand.0;
                        hops[v] = cand.1;
                        parent[v] = Some((u, link));
                    }
                }
            }
            for v in 0..m {
                if v == src {
                    continue;
                }
                if !bott[v].is_finite() {
                    return None;
                }
                path.clear();
                let mut cur = v;
                while let Some((pred, link)) = parent[cur] {
                    path.push(LinkId(link as u32));
                    cur = pred;
                }
                debug_assert_eq!(cur, src);
                path.reverse();
                routes[src * m + v] = Route::from_parts(path.clone(), bott[v]);
            }
        }
        Some(RouteTable::from_parts(m, links, routes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::ProcId;

    #[test]
    fn chain_bottleneck_delays() {
        // P1 -1- P2 -3- P3 -2- P4: effective delay = max along the chain.
        let t = Topology::new(vec![1.0; 4])
            .link(0, 1, 1.0)
            .link(1, 2, 3.0)
            .link(2, 3, 2.0);
        let p = t.into_platform().expect("connected");
        assert_eq!(p.unit_delay(ProcId(0), ProcId(1)), 1.0);
        assert_eq!(p.unit_delay(ProcId(0), ProcId(2)), 3.0);
        assert_eq!(p.unit_delay(ProcId(0), ProcId(3)), 3.0);
        assert_eq!(p.unit_delay(ProcId(2), ProcId(3)), 2.0);
        // Symmetric.
        assert_eq!(
            p.unit_delay(ProcId(3), ProcId(0)),
            p.unit_delay(ProcId(0), ProcId(3))
        );
    }

    #[test]
    fn redundant_path_takes_better_bottleneck() {
        // Two routes 0 → 2: direct slow link (5) vs two fast hops (2, 2).
        let t = Topology::new(vec![1.0; 3])
            .link(0, 2, 5.0)
            .link(0, 1, 2.0)
            .link(1, 2, 2.0);
        let p = t.into_platform().expect("connected");
        assert_eq!(p.unit_delay(ProcId(0), ProcId(2)), 2.0);
    }

    #[test]
    fn star_routes_through_hub() {
        let p = Topology::star(vec![1.0; 5], 0.5)
            .into_platform()
            .expect("connected");
        // Spoke to spoke goes through the hub: bottleneck is still 0.5.
        assert_eq!(p.unit_delay(ProcId(1), ProcId(4)), 0.5);
        assert_eq!(p.unit_delay(ProcId(0), ProcId(3)), 0.5);
    }

    #[test]
    fn disconnected_rejected() {
        let t = Topology::new(vec![1.0; 3]).link(0, 1, 1.0);
        assert!(t.into_platform().is_none());
    }

    #[test]
    fn chain_constructor() {
        let p = Topology::chain(vec![1.0, 2.0, 1.0], 0.25)
            .into_platform()
            .expect("connected");
        assert_eq!(p.unit_delay(ProcId(0), ProcId(2)), 0.25);
        assert_eq!(p.speed(ProcId(1)), 2.0);
    }

    #[test]
    fn route_table_extracts_paths() {
        let t = Topology::new(vec![1.0; 4])
            .link(0, 1, 1.0)
            .link(1, 2, 3.0)
            .link(2, 3, 2.0);
        let table = t.route_table().expect("connected");
        assert_eq!(table.num_links(), 3);
        let r = table.route(ProcId(0), ProcId(3));
        assert_eq!(r.links(), &[LinkId(0), LinkId(1), LinkId(2)]);
        assert_eq!(r.delay(), 3.0);
        assert_eq!(r.hops(), 3);
        // Reverse direction traverses the same links, reversed.
        let back = table.route(ProcId(3), ProcId(0));
        assert_eq!(back.links(), &[LinkId(2), LinkId(1), LinkId(0)]);
        // Self-routes are empty.
        assert!(table.route(ProcId(2), ProcId(2)).links().is_empty());
    }

    #[test]
    fn route_prefers_better_bottleneck_then_fewer_hops() {
        // 0 → 2: direct slow link (5) loses to two fast hops (2, 2).
        let t = Topology::new(vec![1.0; 3])
            .link(0, 2, 5.0)
            .link(0, 1, 2.0)
            .link(1, 2, 2.0);
        let table = t.route_table().expect("connected");
        assert_eq!(
            table.route(ProcId(0), ProcId(2)).links(),
            &[LinkId(1), LinkId(2)]
        );
        // Equal bottleneck: the direct hop wins over a detour.
        let t = Topology::new(vec![1.0; 3])
            .link(0, 2, 2.0)
            .link(0, 1, 2.0)
            .link(1, 2, 2.0);
        let table = t.route_table().expect("connected");
        assert_eq!(table.route(ProcId(0), ProcId(2)).links(), &[LinkId(0)]);
    }

    #[test]
    fn route_table_disconnected_rejected() {
        let t = Topology::new(vec![1.0; 3]).link(0, 1, 1.0);
        assert!(t.route_table().is_none());
        assert!(Topology::new(vec![1.0; 3])
            .link(0, 1, 1.0)
            .into_contended_platform()
            .is_none());
    }

    #[test]
    fn contended_platform_matches_uniform_matrix() {
        // The routed delay matrix is bit-identical to the flattened one.
        let build = || {
            Topology::new(vec![1.5, 1.0, 1.0, 2.0])
                .link(0, 1, 1.0)
                .link(1, 2, 3.0)
                .link(2, 3, 2.0)
                .link(0, 3, 7.0)
        };
        let flat = build().into_platform().expect("connected");
        let routed = build().into_contended_platform().expect("connected");
        assert!(routed.is_contended());
        assert_eq!(routed.num_links(), 4);
        for k in flat.procs() {
            for h in flat.procs() {
                assert_eq!(flat.unit_delay(k, h), routed.unit_delay(k, h));
            }
        }
        // Uniform-mode topology platform: same matrix, no links kept.
        let uni = build()
            .into_platform_with(CommMode::Uniform)
            .expect("connected");
        assert!(!uni.is_contended());
        assert_eq!(uni.num_links(), 0);
        assert_eq!(uni.unit_delay(ProcId(0), ProcId(3)), 3.0);
    }

    #[test]
    fn star_routes_two_hops_through_hub() {
        let p = Topology::star(vec![1.0; 4], 0.5)
            .into_contended_platform()
            .expect("connected");
        assert_eq!(p.route(ProcId(1), ProcId(3)).len(), 2);
        assert_eq!(p.route(ProcId(0), ProcId(2)).len(), 1);
        assert_eq!(p.link_delay(LinkId(0)), 0.5);
    }

    #[test]
    fn derived_platform_has_standard_invariants() {
        let p = Topology::chain(vec![1.0; 4], 0.2)
            .into_platform()
            .expect("connected");
        assert_eq!(p.num_procs(), 4);
        assert_eq!(p.max_delay(), 0.2);
        assert_eq!(p.unit_delay(ProcId(2), ProcId(2)), 0.0);
    }
}
