//! Platforms derived from physical topologies.
//!
//! Paper §2: "we do not need physical links between processor pairs, we may
//! have a switch, or even a path composed of several physical links to
//! interconnect `P_k` and `P_h`; in the latter case we would retain the
//! bandwidth of the slowest link in the path for the bandwidth of `l_kh`."
//!
//! [`Topology`] holds the physical links; [`Topology::into_platform`]
//! derives the fully-connected logical platform by routing every pair along
//! its *bottleneck-optimal* path — the path minimizing the maximum unit
//! delay (equivalently, maximizing the slowest link's bandwidth), computed
//! with a Dijkstra variant under the minimax metric.

use crate::platform::Platform;

/// A physical interconnect: undirected links with unit message delays.
#[derive(Debug, Clone)]
pub struct Topology {
    speeds: Vec<f64>,
    /// `(a, b, unit_delay)` undirected physical links.
    links: Vec<(usize, usize, f64)>,
}

impl Topology {
    /// Start a topology over `speeds.len()` processors.
    pub fn new(speeds: Vec<f64>) -> Self {
        assert!(!speeds.is_empty());
        Self {
            speeds,
            links: Vec::new(),
        }
    }

    /// Add an undirected physical link with the given unit delay
    /// (`= 1/bandwidth`).
    ///
    /// # Panics
    /// On out-of-range endpoints, self-links, or non-positive delay.
    pub fn link(mut self, a: usize, b: usize, unit_delay: f64) -> Self {
        let m = self.speeds.len();
        assert!(a < m && b < m && a != b, "bad link endpoints");
        assert!(unit_delay.is_finite() && unit_delay > 0.0, "bad delay");
        self.links.push((a, b, unit_delay));
        self
    }

    /// Common shape: a linear chain `P1 - P2 - … - Pm` with uniform delay.
    pub fn chain(speeds: Vec<f64>, unit_delay: f64) -> Self {
        let m = speeds.len();
        let mut t = Self::new(speeds);
        for i in 0..m.saturating_sub(1) {
            t = t.link(i, i + 1, unit_delay);
        }
        t
    }

    /// Common shape: a star around a switch-like hub processor 0 (delay per
    /// spoke; the hub still computes).
    pub fn star(speeds: Vec<f64>, unit_delay: f64) -> Self {
        let m = speeds.len();
        let mut t = Self::new(speeds);
        for i in 1..m {
            t = t.link(0, i, unit_delay);
        }
        t
    }

    /// Derive the fully-connected logical platform: the effective unit
    /// delay between every pair is the minimax (bottleneck) path delay
    /// through the physical links.
    ///
    /// Returns `None` when the topology is disconnected (some pair has no
    /// path at all).
    pub fn into_platform(self) -> Option<Platform> {
        let m = self.speeds.len();
        let mut adj = vec![Vec::<(usize, f64)>::new(); m];
        for &(a, b, d) in &self.links {
            adj[a].push((b, d));
            adj[b].push((a, d));
        }
        let mut delays = vec![0.0f64; m * m];
        for src in 0..m {
            // Dijkstra under the minimax metric: dist[v] = the smallest
            // achievable "largest link delay" on a path src → v.
            let mut dist = vec![f64::INFINITY; m];
            dist[src] = 0.0;
            let mut done = vec![false; m];
            for _ in 0..m {
                let mut u = usize::MAX;
                let mut best = f64::INFINITY;
                for v in 0..m {
                    if !done[v] && dist[v] < best {
                        best = dist[v];
                        u = v;
                    }
                }
                if u == usize::MAX {
                    break;
                }
                done[u] = true;
                for &(v, d) in &adj[u] {
                    let cand = dist[u].max(d);
                    if cand < dist[v] {
                        dist[v] = cand;
                    }
                }
            }
            for (v, &dv) in dist.iter().enumerate() {
                if v != src {
                    if !dv.is_finite() {
                        return None;
                    }
                    delays[src * m + v] = dv;
                }
            }
        }
        Some(Platform::from_parts(self.speeds, delays))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::ProcId;

    #[test]
    fn chain_bottleneck_delays() {
        // P1 -1- P2 -3- P3 -2- P4: effective delay = max along the chain.
        let t = Topology::new(vec![1.0; 4])
            .link(0, 1, 1.0)
            .link(1, 2, 3.0)
            .link(2, 3, 2.0);
        let p = t.into_platform().expect("connected");
        assert_eq!(p.unit_delay(ProcId(0), ProcId(1)), 1.0);
        assert_eq!(p.unit_delay(ProcId(0), ProcId(2)), 3.0);
        assert_eq!(p.unit_delay(ProcId(0), ProcId(3)), 3.0);
        assert_eq!(p.unit_delay(ProcId(2), ProcId(3)), 2.0);
        // Symmetric.
        assert_eq!(
            p.unit_delay(ProcId(3), ProcId(0)),
            p.unit_delay(ProcId(0), ProcId(3))
        );
    }

    #[test]
    fn redundant_path_takes_better_bottleneck() {
        // Two routes 0 → 2: direct slow link (5) vs two fast hops (2, 2).
        let t = Topology::new(vec![1.0; 3])
            .link(0, 2, 5.0)
            .link(0, 1, 2.0)
            .link(1, 2, 2.0);
        let p = t.into_platform().expect("connected");
        assert_eq!(p.unit_delay(ProcId(0), ProcId(2)), 2.0);
    }

    #[test]
    fn star_routes_through_hub() {
        let p = Topology::star(vec![1.0; 5], 0.5)
            .into_platform()
            .expect("connected");
        // Spoke to spoke goes through the hub: bottleneck is still 0.5.
        assert_eq!(p.unit_delay(ProcId(1), ProcId(4)), 0.5);
        assert_eq!(p.unit_delay(ProcId(0), ProcId(3)), 0.5);
    }

    #[test]
    fn disconnected_rejected() {
        let t = Topology::new(vec![1.0; 3]).link(0, 1, 1.0);
        assert!(t.into_platform().is_none());
    }

    #[test]
    fn chain_constructor() {
        let p = Topology::chain(vec![1.0, 2.0, 1.0], 0.25)
            .into_platform()
            .expect("connected");
        assert_eq!(p.unit_delay(ProcId(0), ProcId(2)), 0.25);
        assert_eq!(p.speed(ProcId(1)), 2.0);
    }

    #[test]
    fn derived_platform_has_standard_invariants() {
        let p = Topology::chain(vec![1.0; 4], 0.2)
            .into_platform()
            .expect("connected");
        assert_eq!(p.num_procs(), 4);
        assert_eq!(p.max_delay(), 0.2);
        assert_eq!(p.unit_delay(ProcId(2), ProcId(2)), 0.0);
    }
}
