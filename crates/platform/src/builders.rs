//! Random platform builders for experiments.

use crate::platform::Platform;
use rand::Rng;

/// Configuration for random heterogeneous platforms, following the paper's
/// §5: link unit delays drawn uniformly from `[0.5, 1]`; processor speeds
/// (not specified by the paper) default to the same heterogeneity band.
#[derive(Debug, Clone)]
pub struct HeterogeneousConfig {
    /// Number of processors (the paper uses `m = 20`).
    pub procs: usize,
    /// Processor speeds drawn uniformly from this range.
    pub speed_range: (f64, f64),
    /// Link unit delays drawn uniformly from this range (paper: `[0.5, 1]`).
    pub delay_range: (f64, f64),
    /// When `true`, `d_kh = d_hk` (symmetric links). The one-port model is
    /// bidirectional, so symmetric delays are the natural default.
    pub symmetric: bool,
}

impl Default for HeterogeneousConfig {
    fn default() -> Self {
        Self {
            procs: 20,
            speed_range: (0.5, 1.0),
            delay_range: (0.5, 1.0),
            symmetric: true,
        }
    }
}

impl HeterogeneousConfig {
    /// Build a random platform from this configuration.
    pub fn build<R: Rng>(&self, rng: &mut R) -> Platform {
        let m = self.procs;
        assert!(m >= 1);
        let sample = |rng: &mut R, (lo, hi): (f64, f64)| -> f64 {
            assert!(lo <= hi && lo > 0.0, "invalid range");
            if lo == hi {
                lo
            } else {
                rng.gen_range(lo..hi)
            }
        };
        let speeds: Vec<f64> = (0..m).map(|_| sample(rng, self.speed_range)).collect();
        let mut delays = vec![0.0; m * m];
        for k in 0..m {
            for h in 0..m {
                if k == h {
                    continue;
                }
                if self.symmetric && k > h {
                    delays[k * m + h] = delays[h * m + k];
                } else {
                    delays[k * m + h] = sample(rng, self.delay_range);
                }
            }
        }
        Platform::from_parts(speeds, delays)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::ProcId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranges_respected() {
        let cfg = HeterogeneousConfig::default();
        let p = cfg.build(&mut StdRng::seed_from_u64(42));
        assert_eq!(p.num_procs(), 20);
        for u in p.procs() {
            assert!((0.5..1.0).contains(&p.speed(u)));
        }
        for k in p.procs() {
            for h in p.procs() {
                if k != h {
                    assert!((0.5..1.0).contains(&p.unit_delay(k, h)));
                }
            }
        }
    }

    #[test]
    fn symmetric_delays() {
        let cfg = HeterogeneousConfig {
            procs: 6,
            ..Default::default()
        };
        let p = cfg.build(&mut StdRng::seed_from_u64(1));
        for k in p.procs() {
            for h in p.procs() {
                assert_eq!(p.unit_delay(k, h), p.unit_delay(h, k));
            }
        }
    }

    #[test]
    fn asymmetric_allowed() {
        let cfg = HeterogeneousConfig {
            procs: 8,
            symmetric: false,
            ..Default::default()
        };
        let p = cfg.build(&mut StdRng::seed_from_u64(2));
        let asym = p.procs().any(|k| {
            p.procs()
                .any(|h| k != h && p.unit_delay(k, h) != p.unit_delay(h, k))
        });
        assert!(asym, "expected at least one asymmetric pair");
    }

    #[test]
    fn deterministic() {
        let cfg = HeterogeneousConfig::default();
        let p1 = cfg.build(&mut StdRng::seed_from_u64(7));
        let p2 = cfg.build(&mut StdRng::seed_from_u64(7));
        for u in p1.procs() {
            assert_eq!(p1.speed(u), p2.speed(u));
        }
        assert_eq!(
            p1.unit_delay(ProcId(0), ProcId(1)),
            p2.unit_delay(ProcId(0), ProcId(1))
        );
    }
}
