//! Heterogeneous target platform model (paper §2).
//!
//! A platform is a set of `m` fully-interconnected processors
//! `P = {P1, …, Pm}` with speeds `s_u`. The link between `P_k` and `P_h`
//! has a *unit message delay* `d_kh` (the inverse of its bandwidth): sending
//! `vol` data units from `P_k` to `P_h` takes `vol · d_kh` time. Links may
//! be physical or routed paths; only the bottleneck bandwidth is retained.
//!
//! The communication architecture is the **bi-directional one-port model**
//! (Bhat, Raghavendra, Prasanna): at any time a processor is engaged in at
//! most one send and at most one receive, which may overlap with each other
//! and with (independent) computation. The *enforcement* of one-port
//! serialization lives in the scheduling and simulation crates; this crate
//! only describes the hardware.

pub mod builders;
pub mod comm;
pub mod platform;
pub mod topology;

pub use crate::builders::HeterogeneousConfig;
pub use crate::comm::{
    CommDispatch, CommMode, CommModel, Contended, Link, LinkId, Route, RouteTable, Uniform,
};
pub use crate::platform::{AverageWeights, AverageWeightsInput, Platform, ProcId};
pub use crate::topology::Topology;
