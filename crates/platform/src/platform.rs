//! The platform structure.

use crate::comm::{
    CommDispatch, CommMode, CommModel, Contended, Link, LinkId, RouteTable, Uniform,
};
use crate::topology::Topology;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Dense identifier of a processor, `0..m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcId(pub u16);

impl ProcId {
    /// The processor id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // 1-based in display to match the paper's P1..Pm convention.
        write!(f, "P{}", self.0 + 1)
    }
}

/// A fully-interconnected heterogeneous platform.
///
/// The logical view is always the `m × m` unit-delay matrix (the paper's
/// model). A platform built from a [`Topology`] under
/// [`CommMode::Contended`] additionally carries the routed
/// [`CommDispatch`]: the delay matrix still holds the bottleneck delays
/// (so every formula over `d_kh` is unchanged), but placement engines also
/// see the physical links behind each pair and reserve their capacity.
#[derive(Debug, Clone)]
pub struct Platform {
    speeds: Vec<f64>,
    /// Row-major `m × m` unit message delays; `delay[u][u] = 0`.
    delays: Vec<f64>,
    /// How placement engines model communication (uniform matrix by
    /// default; routed links for contended topology platforms).
    comm: CommDispatch,
}

impl serde::Serialize for Platform {
    /// Matrix platforms keep the historical `{"speeds", "delays"}` wire
    /// form bit-for-bit; routed (contended) platforms emit the
    /// `{"speeds", "topology"}` form instead, so link identity survives
    /// the round-trip.
    fn to_value(&self) -> serde::Value {
        let speeds = (
            String::from("speeds"),
            serde::Serialize::to_value(&self.speeds),
        );
        match self.comm.route_table() {
            None => serde::Value::Map(vec![
                speeds,
                (
                    String::from("delays"),
                    serde::Serialize::to_value(&self.delays),
                ),
            ]),
            Some(table) => {
                let links = table
                    .links()
                    .iter()
                    .map(|l| {
                        serde::Value::Seq(vec![
                            serde::Value::UInt(l.a as u64),
                            serde::Value::UInt(l.b as u64),
                            serde::Value::Float(l.delay),
                        ])
                    })
                    .collect();
                let topo = serde::Value::Map(vec![
                    (String::from("links"), serde::Value::Seq(links)),
                    (
                        String::from("model"),
                        serde::Serialize::to_value(&CommMode::Contended),
                    ),
                ]);
                serde::Value::Map(vec![speeds, (String::from("topology"), topo)])
            }
        }
    }
}

/// Decode the `"topology"` block of the wire form: physical links plus the
/// optional `"model"` tag (default [`CommMode::Contended`] — describing a
/// topology and then flattening it away is the exceptional case).
fn topology_from_value(speeds: Vec<f64>, v: &serde::Value) -> Result<Platform, serde::DeError> {
    let entries = match v {
        serde::Value::Map(entries) => entries,
        other => {
            return Err(serde::DeError::expected(
                "map for platform field `topology`",
                other,
            ))
        }
    };
    for (k, _) in entries.iter() {
        if k != "links" && k != "model" {
            return Err(serde::DeError::unknown_field(k, "topology"));
        }
    }
    let m = speeds.len();
    let mut topo = Topology::new(speeds);
    let links = match entries.iter().find(|(k, _)| k == "links") {
        Some((_, serde::Value::Seq(items))) => items,
        Some((_, other)) => {
            return Err(serde::DeError::expected(
                "sequence for topology field `links`",
                other,
            ))
        }
        None => return Err(serde::DeError::custom("topology is missing `links`")),
    };
    for (i, item) in links.iter().enumerate() {
        let triple = match item {
            serde::Value::Seq(t) if t.len() == 3 => t,
            other => {
                return Err(serde::DeError::expected(
                    "[from, to, delay] triple for a physical link",
                    other,
                ))
            }
        };
        let a: usize = serde::Deserialize::from_value(&triple[0]).map_err(|e| e.at_index(i))?;
        let b: usize = serde::Deserialize::from_value(&triple[1]).map_err(|e| e.at_index(i))?;
        let d: f64 = serde::Deserialize::from_value(&triple[2]).map_err(|e| e.at_index(i))?;
        if a >= m || b >= m {
            return Err(serde::DeError::custom(format!(
                "link {i} endpoint out of range for {m} processors"
            )));
        }
        if a == b {
            return Err(serde::DeError::custom(format!(
                "link {i} is a self-link on P{}",
                a + 1
            )));
        }
        if !d.is_finite() || d <= 0.0 {
            return Err(serde::DeError::custom(format!("link {i} delay is {d}")));
        }
        topo = topo.link(a, b, d);
    }
    let mode = match entries.iter().find(|(k, _)| k == "model") {
        Some((_, v)) => CommMode::from_value(v)?,
        None => CommMode::Contended,
    };
    topo.into_platform_with(mode)
        .ok_or_else(|| serde::DeError::custom("topology is disconnected"))
}

impl serde::Deserialize for Platform {
    /// Decode either wire form with full validation: the matrix form
    /// `{"speeds": [...], "delays": [...]}` or the topology form
    /// `{"speeds": [...], "topology": {"links": [[a, b, delay], ...],
    /// "model": "Uniform"|"Contended"}}`. Every invariant
    /// [`Platform::from_parts`] would *panic* on (size mismatch,
    /// non-positive speed, negative or non-zero diagonal delay) — and every
    /// topology defect (bad endpoints, self-links, non-positive link delay,
    /// disconnection) — comes back as a typed error instead, so a malformed
    /// service request can never take the process down.
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let entries = match v {
            serde::Value::Map(entries) => entries,
            other => return Err(serde::DeError::expected("map for struct `Platform`", other)),
        };
        for (k, _) in entries.iter() {
            if k != "speeds" && k != "delays" && k != "topology" {
                return Err(serde::DeError::unknown_field(k, "Platform"));
            }
        }
        let speeds: Vec<f64> = serde::__field(entries, "speeds", "Platform")?;
        let m = speeds.len();
        if m == 0 {
            return Err(serde::DeError::custom(
                "platform needs at least one processor",
            ));
        }
        if m > u16::MAX as usize {
            return Err(serde::DeError::custom("too many processors"));
        }
        for (i, &s) in speeds.iter().enumerate() {
            if !s.is_finite() || s <= 0.0 {
                return Err(serde::DeError::custom(format!(
                    "speed of P{} is {s}",
                    i + 1
                )));
            }
        }
        let has_delays = entries.iter().any(|(k, _)| k == "delays");
        let topology = entries.iter().find(|(k, _)| k == "topology");
        match (has_delays, topology) {
            (true, Some(_)) => {
                return Err(serde::DeError::custom(
                    "platform takes either `delays` or `topology`, not both",
                ))
            }
            (false, Some((_, t))) => return topology_from_value(speeds, t),
            (false, None) => {
                return Err(serde::DeError::custom(
                    "platform needs `delays` or `topology`",
                ))
            }
            (true, None) => {}
        }
        let delays: Vec<f64> = serde::__field(entries, "delays", "Platform")?;
        if delays.len() != m * m {
            return Err(serde::DeError::custom(format!(
                "delay matrix has {} entries, expected {m}x{m} = {}",
                delays.len(),
                m * m
            )));
        }
        for k in 0..m {
            for h in 0..m {
                let d = delays[k * m + h];
                if !d.is_finite() || d < 0.0 {
                    return Err(serde::DeError::custom(format!(
                        "delay P{}->P{} is {d}",
                        k + 1,
                        h + 1
                    )));
                }
                if k == h && d != 0.0 {
                    return Err(serde::DeError::custom(format!(
                        "self-delay of P{} must be zero",
                        k + 1
                    )));
                }
            }
        }
        Ok(Self {
            speeds,
            delays,
            comm: CommDispatch::default(),
        })
    }
}

impl Platform {
    /// Build from explicit speeds and a unit-delay matrix (row-major,
    /// `delays[k*m + h]` = unit delay from `P_k` to `P_h`).
    ///
    /// # Panics
    /// If sizes mismatch, any speed is ≤ 0, any delay is negative, or a
    /// diagonal delay is non-zero.
    pub fn from_parts(speeds: Vec<f64>, delays: Vec<f64>) -> Self {
        let m = speeds.len();
        assert!(m > 0, "platform needs at least one processor");
        assert!(m <= u16::MAX as usize, "too many processors");
        assert_eq!(delays.len(), m * m, "delay matrix size");
        for (i, &s) in speeds.iter().enumerate() {
            assert!(s.is_finite() && s > 0.0, "speed of P{} is {s}", i + 1);
        }
        for k in 0..m {
            for h in 0..m {
                let d = delays[k * m + h];
                assert!(
                    d.is_finite() && d >= 0.0,
                    "delay P{}->P{} is {d}",
                    k + 1,
                    h + 1
                );
                if k == h {
                    assert!(d == 0.0, "self-delay of P{} must be zero", k + 1);
                }
            }
        }
        Self {
            speeds,
            delays,
            comm: CommDispatch::default(),
        }
    }

    /// Build a routed platform from a topology's [`RouteTable`]: the delay
    /// matrix holds the effective (bottleneck) delay of every cached route,
    /// and under [`CommMode::Contended`] the comm model keeps the links.
    /// Crate-internal; reached through [`Topology::into_platform_with`].
    pub(crate) fn routed(speeds: Vec<f64>, table: RouteTable, mode: CommMode) -> Self {
        let m = speeds.len();
        debug_assert_eq!(table.num_procs(), m);
        let mut delays = vec![0.0f64; m * m];
        for k in 0..m {
            for h in 0..m {
                if k != h {
                    delays[k * m + h] = table.route(ProcId(k as u16), ProcId(h as u16)).delay();
                }
            }
        }
        let comm = match mode {
            CommMode::Uniform => CommDispatch::Uniform(Uniform),
            CommMode::Contended => CommDispatch::Contended(Contended::new(Arc::new(table))),
        };
        let mut p = Self::from_parts(speeds, delays);
        p.comm = comm;
        p
    }

    /// The communication model placement engines schedule messages through.
    #[inline]
    pub fn comm(&self) -> &CommDispatch {
        &self.comm
    }

    /// `true` when transfers reserve per-link capacity (routed contended
    /// platform).
    #[inline]
    pub fn is_contended(&self) -> bool {
        self.comm.is_contended()
    }

    /// Number of physical links the comm model reserves capacity on
    /// (0 for the uniform matrix model).
    #[inline]
    pub fn num_links(&self) -> usize {
        self.comm.num_links()
    }

    /// The physical links a `k → h` message traverses (empty for the
    /// uniform model or a co-located pair).
    #[inline]
    pub fn route(&self, k: ProcId, h: ProcId) -> &[LinkId] {
        self.comm.route(k, h)
    }

    /// Unit delay of one physical link of the routed model.
    #[inline]
    pub fn link_delay(&self, l: LinkId) -> f64 {
        self.comm.link_delay(l)
    }

    /// The physical links of the routed model, in `LinkId` order (empty
    /// for the uniform matrix model).
    pub fn topology_links(&self) -> &[Link] {
        self.comm.route_table().map_or(&[], RouteTable::links)
    }

    /// Fully homogeneous platform: `m` processors of speed `speed`, all
    /// links with unit delay `delay`.
    pub fn homogeneous(m: usize, speed: f64, delay: f64) -> Self {
        let mut delays = vec![delay; m * m];
        for u in 0..m {
            delays[u * m + u] = 0.0;
        }
        Self::from_parts(vec![speed; m], delays)
    }

    /// The 4-processor platform of the paper's Fig. 1 example:
    /// `s1 = s3 = 1.5`, `s2 = s4 = 1`, all links unit bandwidth.
    pub fn fig1_platform() -> Self {
        let speeds = vec![1.5, 1.0, 1.5, 1.0];
        let m = 4;
        let mut delays = vec![1.0; m * m];
        for u in 0..m {
            delays[u * m + u] = 0.0;
        }
        Self::from_parts(speeds, delays)
    }

    /// Number of processors `m`.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.speeds.len()
    }

    /// Iterator over processor ids `P1..Pm`.
    pub fn procs(&self) -> impl Iterator<Item = ProcId> + '_ {
        (0..self.num_procs() as u16).map(ProcId)
    }

    /// Speed `s_u` of processor `u`.
    #[inline]
    pub fn speed(&self, u: ProcId) -> f64 {
        self.speeds[u.index()]
    }

    /// Unit message delay of link `l_kh` (0 when `k == h`).
    #[inline]
    pub fn unit_delay(&self, k: ProcId, h: ProcId) -> f64 {
        self.delays[k.index() * self.num_procs() + h.index()]
    }

    /// Execution time of a task with reference cost `exec` on `u`:
    /// `exec / s_u`.
    #[inline]
    pub fn exec_time(&self, exec: f64, u: ProcId) -> f64 {
        exec / self.speeds[u.index()]
    }

    /// Communication time for `volume` data units from `k` to `h`
    /// (zero when co-located).
    #[inline]
    pub fn comm_time(&self, volume: f64, k: ProcId, h: ProcId) -> f64 {
        volume * self.unit_delay(k, h)
    }

    /// The slowest execution time of a reference cost over all processors:
    /// `exec / min_u s_u`. Used by the granularity `g(G, P)`.
    pub fn slowest_exec_time(&self, exec: f64) -> f64 {
        exec / self.min_speed()
    }

    /// The slowest communication time of a volume over all distinct pairs:
    /// `volume · max_{k≠h} d_kh`.
    pub fn slowest_comm_time(&self, volume: f64) -> f64 {
        volume * self.max_delay()
    }

    /// Minimum processor speed.
    pub fn min_speed(&self) -> f64 {
        self.speeds.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum processor speed.
    pub fn max_speed(&self) -> f64 {
        self.speeds.iter().copied().fold(0.0, f64::max)
    }

    /// Mean of `1/s_u` (the HEFT-style expected slowdown of a unit task).
    pub fn mean_inv_speed(&self) -> f64 {
        self.speeds.iter().map(|s| 1.0 / s).sum::<f64>() / self.num_procs() as f64
    }

    /// Maximum unit delay over distinct processor pairs (0 for `m = 1`).
    pub fn max_delay(&self) -> f64 {
        let m = self.num_procs();
        let mut best = 0.0f64;
        for k in 0..m {
            for h in 0..m {
                if k != h {
                    best = best.max(self.delays[k * m + h]);
                }
            }
        }
        best
    }

    /// Mean unit delay over distinct processor pairs (0 for `m = 1`).
    pub fn mean_delay(&self) -> f64 {
        let m = self.num_procs();
        if m < 2 {
            return 0.0;
        }
        let mut sum = 0.0;
        for k in 0..m {
            for h in 0..m {
                if k != h {
                    sum += self.delays[k * m + h];
                }
            }
        }
        sum / (m * (m - 1)) as f64
    }

    /// The fastest processor id (ties broken by lowest id).
    pub fn fastest_proc(&self) -> ProcId {
        let mut best = ProcId(0);
        for u in self.procs() {
            if self.speed(u) > self.speed(best) {
                best = u;
            }
        }
        best
    }

    /// Processor ids sorted by decreasing speed (stable for equal speeds).
    pub fn procs_by_speed_desc(&self) -> Vec<ProcId> {
        let mut ids: Vec<ProcId> = self.procs().collect();
        ids.sort_by(|a, b| {
            self.speed(*b)
                .partial_cmp(&self.speed(*a))
                .expect("speeds are finite")
                .then(a.0.cmp(&b.0))
        });
        ids
    }

    /// A sub-platform keeping only the first `m` processors (used by
    /// processor-count searches).
    ///
    /// A routed platform keeps its full route table: processors beyond the
    /// prefix no longer compute, but the physical links through them still
    /// forward traffic — shrinking the compute pool does not rewire the
    /// interconnect. The table is shared, so the prefix is cheap.
    pub fn prefix(&self, m: usize) -> Platform {
        assert!(m >= 1 && m <= self.num_procs());
        let old_m = self.num_procs();
        let speeds = self.speeds[..m].to_vec();
        let mut delays = vec![0.0; m * m];
        for k in 0..m {
            for h in 0..m {
                delays[k * m + h] = self.delays[k * old_m + h];
            }
        }
        let mut p = Platform::from_parts(speeds, delays);
        p.comm = self.comm.clone();
        p
    }

    /// HEFT-style averaged weights for priority computation: node weight
    /// `E(t) · mean(1/s)`, edge weight `vol · mean(delay)`.
    pub fn average_weights(&self, g: &AverageWeightsInput<'_>) -> AverageWeights {
        let inv = self.mean_inv_speed();
        let del = self.mean_delay();
        AverageWeights {
            node: g.exec.iter().map(|e| e * inv).collect(),
            edge: g.volume.iter().map(|v| v * del).collect(),
        }
    }
}

/// Borrowed task/edge reference costs for [`Platform::average_weights`].
pub struct AverageWeightsInput<'a> {
    /// Per-task reference execution costs.
    pub exec: &'a [f64],
    /// Per-edge data volumes.
    pub volume: &'a [f64],
}

/// Platform-averaged node/edge weights (HEFT-style).
#[derive(Debug, Clone)]
pub struct AverageWeights {
    /// `E(t) · mean_u(1/s_u)` per task.
    pub node: Vec<f64>,
    /// `vol(e) · mean_{k≠h}(d_kh)` per edge.
    pub edge: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_basics() {
        let p = Platform::homogeneous(4, 2.0, 0.5);
        assert_eq!(p.num_procs(), 4);
        assert_eq!(p.speed(ProcId(2)), 2.0);
        assert_eq!(p.unit_delay(ProcId(0), ProcId(1)), 0.5);
        assert_eq!(p.unit_delay(ProcId(3), ProcId(3)), 0.0);
        assert_eq!(p.exec_time(10.0, ProcId(0)), 5.0);
        assert_eq!(p.comm_time(10.0, ProcId(0), ProcId(1)), 5.0);
        assert_eq!(p.comm_time(10.0, ProcId(1), ProcId(1)), 0.0);
    }

    #[test]
    fn fig1_platform_shape() {
        let p = Platform::fig1_platform();
        assert_eq!(p.num_procs(), 4);
        assert_eq!(p.speed(ProcId(0)), 1.5);
        assert_eq!(p.speed(ProcId(1)), 1.0);
        assert_eq!(p.min_speed(), 1.0);
        assert_eq!(p.max_speed(), 1.5);
        assert_eq!(p.fastest_proc(), ProcId(0));
        // Unit bandwidth everywhere: a volume-2 message takes 2 time units.
        assert_eq!(p.comm_time(2.0, ProcId(0), ProcId(3)), 2.0);
    }

    #[test]
    fn aggregates() {
        let p = Platform::from_parts(vec![1.0, 2.0], vec![0.0, 0.25, 0.75, 0.0]);
        assert_eq!(p.min_speed(), 1.0);
        assert_eq!(p.mean_inv_speed(), 0.75);
        assert_eq!(p.max_delay(), 0.75);
        assert_eq!(p.mean_delay(), 0.5);
        assert_eq!(p.slowest_exec_time(4.0), 4.0);
        assert_eq!(p.slowest_comm_time(4.0), 3.0);
    }

    #[test]
    fn sorted_procs_and_prefix() {
        let m = 3;
        let mut delays = vec![0.8; m * m];
        for u in 0..m {
            delays[u * m + u] = 0.0;
        }
        let p = Platform::from_parts(vec![1.0, 3.0, 2.0], delays);
        assert_eq!(
            p.procs_by_speed_desc(),
            vec![ProcId(1), ProcId(2), ProcId(0)]
        );
        let q = p.prefix(2);
        assert_eq!(q.num_procs(), 2);
        assert_eq!(q.speed(ProcId(1)), 3.0);
        assert_eq!(q.unit_delay(ProcId(0), ProcId(1)), 0.8);
    }

    #[test]
    #[should_panic(expected = "speed")]
    fn zero_speed_rejected() {
        Platform::from_parts(vec![0.0], vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "self-delay")]
    fn nonzero_self_delay_rejected() {
        Platform::from_parts(vec![1.0, 1.0], vec![0.1, 0.5, 0.5, 0.0]);
    }

    #[test]
    fn average_weights() {
        let p = Platform::from_parts(vec![1.0, 2.0], vec![0.0, 0.5, 0.5, 0.0]);
        let exec = [10.0, 20.0];
        let volume = [4.0];
        let w = p.average_weights(&AverageWeightsInput {
            exec: &exec,
            volume: &volume,
        });
        assert_eq!(w.node, vec![7.5, 15.0]);
        assert_eq!(w.edge, vec![2.0]);
    }

    #[test]
    fn display() {
        assert_eq!(ProcId(0).to_string(), "P1");
        assert_eq!(ProcId(19).to_string(), "P20");
    }

    #[test]
    fn deserialize_roundtrip() {
        let p = Platform::from_parts(vec![1.0, 2.0], vec![0.0, 0.25, 0.75, 0.0]);
        let v = serde::Serialize::to_value(&p);
        let q = <Platform as Deserialize>::from_value(&v).unwrap();
        assert_eq!(q.speeds, p.speeds);
        assert_eq!(q.delays, p.delays);
    }

    #[test]
    fn contended_platform_roundtrips_topology_form() {
        let p = Topology::new(vec![1.0, 2.0, 1.0])
            .link(0, 1, 0.5)
            .link(1, 2, 1.5)
            .into_contended_platform()
            .expect("connected");
        let v = serde::Serialize::to_value(&p);
        // The topology form is emitted, not the matrix form.
        if let serde::Value::Map(entries) = &v {
            assert!(entries.iter().any(|(k, _)| k == "topology"));
            assert!(!entries.iter().any(|(k, _)| k == "delays"));
        } else {
            panic!("expected map");
        }
        let q = <Platform as Deserialize>::from_value(&v).unwrap();
        assert!(q.is_contended());
        assert_eq!(q.speeds, p.speeds);
        assert_eq!(q.delays, p.delays);
        assert_eq!(q.num_links(), 2);
        assert_eq!(q.route(ProcId(0), ProcId(2)), p.route(ProcId(0), ProcId(2)));
    }

    #[test]
    fn uniform_topology_form_flattens() {
        let v = serde::Value::Map(vec![
            (
                "speeds".into(),
                serde::Value::Seq(vec![serde::Value::Float(1.0), serde::Value::Float(1.0)]),
            ),
            (
                "topology".into(),
                serde::Value::Map(vec![
                    (
                        "links".into(),
                        serde::Value::Seq(vec![serde::Value::Seq(vec![
                            serde::Value::UInt(0),
                            serde::Value::UInt(1),
                            serde::Value::Float(2.0),
                        ])]),
                    ),
                    ("model".into(), serde::Value::Str("Uniform".into())),
                ]),
            ),
        ]);
        let p = <Platform as Deserialize>::from_value(&v).unwrap();
        assert!(!p.is_contended());
        assert_eq!(p.unit_delay(ProcId(0), ProcId(1)), 2.0);
        // Uniform platforms serialize in the matrix form.
        let back = serde::Serialize::to_value(&p);
        if let serde::Value::Map(entries) = &back {
            assert!(entries.iter().any(|(k, _)| k == "delays"));
        } else {
            panic!("expected map");
        }
    }

    #[test]
    fn deserialize_rejects_bad_topologies() {
        fn topo_value(links: Vec<serde::Value>, model: Option<&str>) -> serde::Value {
            let mut topo = vec![("links".to_string(), serde::Value::Seq(links))];
            if let Some(m) = model {
                topo.push(("model".to_string(), serde::Value::Str(m.into())));
            }
            serde::Value::Map(vec![
                (
                    "speeds".into(),
                    serde::Value::Seq(vec![
                        serde::Value::Float(1.0),
                        serde::Value::Float(1.0),
                        serde::Value::Float(1.0),
                    ]),
                ),
                ("topology".into(), serde::Value::Map(topo)),
            ])
        }
        let link = |a: u64, b: u64, d: f64| {
            serde::Value::Seq(vec![
                serde::Value::UInt(a),
                serde::Value::UInt(b),
                serde::Value::Float(d),
            ])
        };
        let err = |v: &serde::Value| {
            <Platform as Deserialize>::from_value(v)
                .unwrap_err()
                .to_string()
        };
        assert!(err(&topo_value(vec![link(0, 7, 1.0)], None)).contains("out of range"));
        assert!(err(&topo_value(vec![link(1, 1, 1.0)], None)).contains("self-link"));
        assert!(err(&topo_value(vec![link(0, 1, -2.0)], None)).contains("delay is -2"));
        assert!(err(&topo_value(vec![link(0, 1, 1.0)], None)).contains("disconnected"));
        assert!(err(&topo_value(
            vec![link(0, 1, 1.0), link(1, 2, 1.0)],
            Some("Turbo")
        ))
        .contains("unknown variant"));
        // Both forms at once, and neither form at all.
        let both = serde::Value::Map(vec![
            (
                "speeds".into(),
                serde::Value::Seq(vec![serde::Value::Float(1.0)]),
            ),
            (
                "delays".into(),
                serde::Value::Seq(vec![serde::Value::Float(0.0)]),
            ),
            ("topology".into(), serde::Value::Map(vec![])),
        ]);
        assert!(err(&both).contains("not both"));
        let neither = serde::Value::Map(vec![(
            "speeds".into(),
            serde::Value::Seq(vec![serde::Value::Float(1.0)]),
        )]);
        assert!(err(&neither).contains("`delays` or `topology`"));
    }

    #[test]
    fn prefix_keeps_routed_comm() {
        let p = Topology::chain(vec![1.0; 4], 0.5)
            .into_contended_platform()
            .expect("connected");
        let q = p.prefix(2);
        assert!(q.is_contended());
        assert_eq!(q.num_links(), 3);
        assert_eq!(q.route(ProcId(0), ProcId(1)).len(), 1);
        assert_eq!(q.unit_delay(ProcId(0), ProcId(1)), 0.5);
    }

    #[test]
    fn deserialize_rejects_invalid() {
        fn decode(speeds: serde::Value, delays: serde::Value) -> Result<Platform, serde::DeError> {
            let v = serde::Value::Map(vec![("speeds".into(), speeds), ("delays".into(), delays)]);
            <Platform as Deserialize>::from_value(&v)
        }
        let floats =
            |xs: &[f64]| serde::Value::Seq(xs.iter().map(|&x| serde::Value::Float(x)).collect());
        // Every case below would be a panic through `from_parts`.
        assert!(decode(floats(&[]), floats(&[]))
            .unwrap_err()
            .to_string()
            .contains("at least one"));
        assert!(decode(floats(&[1.0, 1.0]), floats(&[0.0]))
            .unwrap_err()
            .to_string()
            .contains("2x2"));
        assert!(decode(floats(&[0.0]), floats(&[0.0]))
            .unwrap_err()
            .to_string()
            .contains("speed"));
        assert!(decode(floats(&[1.0]), floats(&[f64::NAN]))
            .unwrap_err()
            .to_string()
            .contains("delay"));
        assert!(decode(floats(&[1.0]), floats(&[0.5]))
            .unwrap_err()
            .to_string()
            .contains("self-delay"));
        let extra = serde::Value::Map(vec![
            ("speeds".into(), floats(&[1.0])),
            ("delays".into(), floats(&[0.0])),
            ("cores".into(), serde::Value::UInt(8)),
        ]);
        assert!(<Platform as Deserialize>::from_value(&extra)
            .unwrap_err()
            .to_string()
            .contains("unknown field `cores`"));
    }
}
