//! Routed communication models: link identity underneath the logical
//! delay matrix.
//!
//! The paper's platform (§2) is the *logical* view: a fully-connected
//! `m × m` unit-delay matrix where a routed path is reduced to its
//! bottleneck bandwidth before the scheduler ever sees it. That erasure is
//! exactly right for the paper's results, but it cannot express link
//! *contention*: when several transfers share one physical link, the link
//! — not the endpoint ports — bounds what the schedule can sustain.
//!
//! This module keeps both views layered instead of flattened:
//!
//! * [`RouteTable`] — the physical links of a [`crate::Topology`] plus,
//!   cached per ordered processor pair, the [`Route`] the pair's messages
//!   take (the bottleneck-optimal path and its effective delay).
//! * [`CommModel`] — the trait the placement engine asks two questions of:
//!   how many links exist, and which links a `k → h` message traverses.
//! * [`Uniform`] — the matrix model: no links, every route empty. Engines
//!   driven by it behave bit-identically to the pre-refactor code.
//! * [`Contended`] — the routed model: a message reserves every link on
//!   its route for its whole transfer window, so transfers sharing a link
//!   serialize, and per-link load counts against the period (condition (1)
//!   extended with link capacity).
//!
//! [`CommDispatch`] is the static-dispatch sum of the two models carried by
//! [`crate::Platform`], so the probe hot path pays a predictable branch
//! instead of a vtable call.

use crate::platform::ProcId;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Dense identifier of a physical link, `0..L` in topology declaration
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The link id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for LinkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0 + 1)
    }
}

/// One undirected physical link: endpoints and unit message delay
/// (`= 1/bandwidth`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// First endpoint (processor index).
    pub a: usize,
    /// Second endpoint (processor index).
    pub b: usize,
    /// Unit message delay of the link.
    pub delay: f64,
}

/// The routed path of one ordered processor pair: the physical links the
/// message traverses, in order from source to destination, plus the
/// effective (bottleneck) unit delay — the largest link delay on the path,
/// which is what [`crate::Topology::into_platform`] keeps in the matrix.
#[derive(Debug, Clone, Default)]
pub struct Route {
    links: Vec<LinkId>,
    delay: f64,
}

impl Route {
    /// Build from a link path and its bottleneck delay (crate-internal;
    /// routes come out of [`crate::Topology::route_table`]).
    pub(crate) fn from_parts(links: Vec<LinkId>, delay: f64) -> Self {
        Self { links, delay }
    }

    /// The links traversed, source to destination. Empty for a processor
    /// talking to itself.
    #[inline]
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// Effective (bottleneck) unit delay of the route.
    #[inline]
    pub fn delay(&self) -> f64 {
        self.delay
    }

    /// Number of physical hops.
    #[inline]
    pub fn hops(&self) -> usize {
        self.links.len()
    }
}

/// Physical links plus the per-pair route cache. Built once per topology by
/// [`crate::Topology::route_table`]; shared (via [`Contended`]) by every
/// engine scheduling on the platform.
#[derive(Debug, Clone)]
pub struct RouteTable {
    m: usize,
    links: Vec<Link>,
    /// Row-major `m × m`; `routes[k*m + h]` is the route `P_k → P_h`.
    routes: Vec<Route>,
}

impl RouteTable {
    /// Build from raw parts (crate-internal; use
    /// [`crate::Topology::route_table`]).
    pub(crate) fn from_parts(m: usize, links: Vec<Link>, routes: Vec<Route>) -> Self {
        debug_assert_eq!(routes.len(), m * m);
        Self { m, links, routes }
    }

    /// Number of processors the table routes between.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.m
    }

    /// Number of physical links.
    #[inline]
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// The physical links, in declaration order (`LinkId` order).
    #[inline]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// One physical link.
    #[inline]
    pub fn link(&self, l: LinkId) -> &Link {
        &self.links[l.index()]
    }

    /// The cached route of an ordered pair.
    #[inline]
    pub fn route(&self, k: ProcId, h: ProcId) -> &Route {
        &self.routes[k.index() * self.m + h.index()]
    }
}

/// Wire tag selecting how a topology-described platform models
/// communication: `Uniform` flattens routes into the delay matrix (the
/// paper's model), `Contended` keeps link identity and reserves per-link
/// capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommMode {
    /// Matrix model: routes are flattened to bottleneck delays.
    Uniform,
    /// Routed model: transfers reserve every link on their route.
    Contended,
}

/// The communication model a placement engine schedules messages through.
///
/// Implementations answer two questions on the probe hot path: how many
/// link timelines must the engine maintain, and which links does a
/// `k → h` message occupy. A message occupies every returned link for its
/// whole transfer window `[start, start + vol·d_kh)` — circuit-style, the
/// conservative reading of "the path keeps the bottleneck bandwidth".
pub trait CommModel {
    /// Number of physical links the model reserves capacity on. Zero means
    /// no link timelines at all (the pure matrix model).
    fn num_links(&self) -> usize;

    /// The links a `k → h` message traverses. Empty when no link
    /// reservation applies (matrix model, or co-located pair).
    fn route(&self, k: ProcId, h: ProcId) -> &[LinkId];

    /// Unit delay of one physical link.
    ///
    /// # Panics
    /// May panic when `l` is out of range (models with no links have no
    /// valid `LinkId`).
    fn link_delay(&self, l: LinkId) -> f64;
}

/// The matrix model: communication costs come from the platform's delay
/// matrix alone, no link is ever reserved. Engines driven by `Uniform`
/// produce bit-identical schedules to the pre-`CommModel` code — the
/// differential suite in `ltf-core` pins this against the frozen
/// `reference` oracle.
#[derive(Debug, Clone, Copy, Default)]
pub struct Uniform;

impl CommModel for Uniform {
    #[inline]
    fn num_links(&self) -> usize {
        0
    }

    #[inline]
    fn route(&self, _k: ProcId, _h: ProcId) -> &[LinkId] {
        &[]
    }

    fn link_delay(&self, l: LinkId) -> f64 {
        panic!("uniform comm model has no link {l}")
    }
}

/// The routed model: every cross-processor message reserves each link on
/// its cached route for its whole transfer window, so transfers sharing a
/// physical link serialize even when their endpoint ports are free.
#[derive(Debug, Clone)]
pub struct Contended {
    table: Arc<RouteTable>,
}

impl Contended {
    /// Wrap a route table (shared, cheap to clone).
    pub fn new(table: Arc<RouteTable>) -> Self {
        Self { table }
    }

    /// The underlying route table.
    #[inline]
    pub fn table(&self) -> &RouteTable {
        &self.table
    }
}

impl CommModel for Contended {
    #[inline]
    fn num_links(&self) -> usize {
        self.table.num_links()
    }

    #[inline]
    fn route(&self, k: ProcId, h: ProcId) -> &[LinkId] {
        self.table.route(k, h).links()
    }

    #[inline]
    fn link_delay(&self, l: LinkId) -> f64 {
        self.table.link(l).delay
    }
}

/// Static dispatch over the two communication models. Carried by
/// [`crate::Platform`]; the engine's probe loop matches once per message
/// instead of paying a virtual call per timeline query.
#[derive(Debug, Clone)]
pub enum CommDispatch {
    /// Matrix model (the default for every matrix-built platform).
    Uniform(Uniform),
    /// Routed model with per-link capacity.
    Contended(Contended),
}

impl Default for CommDispatch {
    fn default() -> Self {
        CommDispatch::Uniform(Uniform)
    }
}

impl CommDispatch {
    /// `true` when link contention applies.
    #[inline]
    pub fn is_contended(&self) -> bool {
        matches!(self, CommDispatch::Contended(_))
    }

    /// The route table, when the model keeps one.
    pub fn route_table(&self) -> Option<&RouteTable> {
        match self {
            CommDispatch::Uniform(_) => None,
            CommDispatch::Contended(c) => Some(c.table()),
        }
    }
}

impl CommModel for CommDispatch {
    #[inline]
    fn num_links(&self) -> usize {
        match self {
            CommDispatch::Uniform(u) => u.num_links(),
            CommDispatch::Contended(c) => c.num_links(),
        }
    }

    #[inline]
    fn route(&self, k: ProcId, h: ProcId) -> &[LinkId] {
        match self {
            CommDispatch::Uniform(u) => u.route(k, h),
            CommDispatch::Contended(c) => c.route(k, h),
        }
    }

    #[inline]
    fn link_delay(&self, l: LinkId) -> f64 {
        match self {
            CommDispatch::Uniform(u) => u.link_delay(l),
            CommDispatch::Contended(c) => c.link_delay(l),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    #[test]
    fn uniform_has_no_links() {
        let u = Uniform;
        assert_eq!(u.num_links(), 0);
        assert!(u.route(ProcId(0), ProcId(5)).is_empty());
        let d = CommDispatch::default();
        assert!(!d.is_contended());
        assert!(d.route_table().is_none());
    }

    #[test]
    #[should_panic(expected = "no link")]
    fn uniform_link_delay_panics() {
        Uniform.link_delay(LinkId(0));
    }

    #[test]
    fn contended_routes_through_table() {
        let t = Topology::chain(vec![1.0; 3], 2.0);
        let table = Arc::new(t.route_table().expect("connected"));
        let c = Contended::new(table);
        assert_eq!(c.num_links(), 2);
        // 0 → 2 crosses both chain links, in order.
        assert_eq!(c.route(ProcId(0), ProcId(2)), &[LinkId(0), LinkId(1)]);
        assert_eq!(c.route(ProcId(2), ProcId(0)), &[LinkId(1), LinkId(0)]);
        assert!(c.route(ProcId(1), ProcId(1)).is_empty());
        assert_eq!(c.link_delay(LinkId(1)), 2.0);
        let d = CommDispatch::Contended(c);
        assert!(d.is_contended());
        assert_eq!(d.route_table().unwrap().num_links(), 2);
    }

    #[test]
    fn display_and_mode_roundtrip() {
        assert_eq!(LinkId(0).to_string(), "L1");
        let v = serde::Serialize::to_value(&CommMode::Contended);
        assert_eq!(
            <CommMode as serde::Deserialize>::from_value(&v).unwrap(),
            CommMode::Contended
        );
    }
}
