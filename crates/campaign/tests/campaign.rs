//! End-to-end campaign runs: sharded execution across real worker
//! processes (spawned children and TCP daemons) must produce output
//! **byte-identical** to a single-process serial run — including after a
//! worker is killed mid-shard and its shard is reassigned and resumed
//! from the checkpoint journal.

use ltf_campaign::{run_campaign, serial_lines, Mode, RunConfig};
use ltf_experiments::campaign::{run_serial, CampaignSpec, ABORT_ENV};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Spawn tests toggle the process-global crash-injection env var, which
/// child workers inherit — serialize them so one test's setting cannot
/// leak into another's children.
static ENV_LOCK: Mutex<()> = Mutex::new(());

const SPEC: &str = r#"{
  "name": "e2e",
  "graphs": ["fig1", "fig2-variant"],
  "heuristics": ["rltf", "ltf"],
  "epsilons": [{"max": 1}]
}"#;

/// An SLO campaign over the same graphs: trace blocks instead of front
/// enumerations, a per-cell distribution report instead of front lines.
const SLO_SPEC: &str = r#"{
  "name": "e2e-slo",
  "graphs": ["fig1"],
  "heuristics": ["rltf", "ltf"],
  "epsilons": [{"max": 1}],
  "failure": {"rate": 0.002, "traces": 4, "items": 6, "block": 2,
              "period": 30.0, "policy": "reroute"},
  "slo": {"max_latency": 200.0, "max_violation_rate": 0.25}
}"#;

/// A fresh scratch dir under the test-scoped target tmpdir.
fn scratch(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("campaign-{tag}"));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale scratch dir");
    }
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn write_spec(dir: &Path) -> PathBuf {
    let path = dir.join("spec.json");
    std::fs::write(&path, SPEC).expect("write spec");
    path
}

fn write_slo_spec(dir: &Path) -> PathBuf {
    let path = dir.join("slo-spec.json");
    std::fs::write(&path, SLO_SPEC).expect("write slo spec");
    path
}

fn spawn_config(dir: &Path) -> RunConfig {
    RunConfig {
        shards: 2,
        workers: 2,
        mode: Mode::Spawn,
        journal_dir: Some(dir.join("journals")),
        worker_bin: Some(PathBuf::from(env!("CARGO_BIN_EXE_ltf-campaign"))),
        retries: 3,
        worker_threads: 1,
    }
}

#[test]
fn two_spawned_workers_match_serial_byte_for_byte() {
    let _guard = ENV_LOCK.lock().unwrap();
    let dir = scratch("spawn");
    let spec_path = write_spec(&dir);
    let spec = CampaignSpec::load(&spec_path).unwrap();

    let serial = run_serial(&spec, 1, None).unwrap();
    let report = run_campaign(&spec_path, &spec, &spawn_config(&dir)).unwrap();

    assert!(!serial.is_empty());
    assert_eq!(report.lines, serial, "sharded merge must equal serial run");
    assert_eq!(report.retries_used, 0);
}

#[test]
fn killed_worker_is_reassigned_and_output_is_identical() {
    let _guard = ENV_LOCK.lock().unwrap();
    let dir = scratch("kill");
    let spec_path = write_spec(&dir);
    let spec = CampaignSpec::load(&spec_path).unwrap();
    let serial = run_serial(&spec, 1, None).unwrap();

    // Arm the crash hook: the first worker incarnation to emit an item
    // creates the marker and hard-aborts; every later incarnation sees
    // the marker and runs to completion. Exactly one worker dies.
    let marker = dir.join("abort-once.marker");
    std::env::set_var(ABORT_ENV, &marker);
    let result = run_campaign(&spec_path, &spec, &spawn_config(&dir));
    std::env::remove_var(ABORT_ENV);
    let report = result.unwrap();

    assert!(marker.exists(), "crash hook must actually have fired");
    assert!(
        report.retries_used >= 1,
        "the killed worker's shard must have been reassigned"
    );
    assert_eq!(
        report.lines, serial,
        "output after a mid-campaign kill must still equal the serial run"
    );
    // The dead incarnation journaled its progress; the rerun resumed
    // from a non-empty journal rather than recomputing blind.
    let journals: Vec<_> = std::fs::read_dir(dir.join("journals"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert!(!journals.is_empty(), "journaling was configured");
    assert!(journals
        .iter()
        .any(|p| std::fs::metadata(p).unwrap().len() > 0));
}

#[test]
fn exhausted_retries_fail_the_run_with_a_diagnostic() {
    let _guard = ENV_LOCK.lock().unwrap();
    let dir = scratch("exhaust");
    let spec_path = write_spec(&dir);
    let spec = CampaignSpec::load(&spec_path).unwrap();
    let cfg = RunConfig {
        retries: 0,
        // No journal: nothing marks the crash as "already happened", so
        // with retries=0 the first crash is fatal.
        journal_dir: None,
        ..spawn_config(&dir)
    };
    let marker = dir.join("abort-once.marker");
    std::env::set_var(ABORT_ENV, &marker);
    let result = run_campaign(&spec_path, &spec, &cfg);
    std::env::remove_var(ABORT_ENV);
    let err = result.unwrap_err();
    assert!(err.contains("giving up"), "{err}");
}

#[test]
fn slo_spawned_workers_match_serial_byte_for_byte() {
    let _guard = ENV_LOCK.lock().unwrap();
    let dir = scratch("slo-spawn");
    let spec_path = write_slo_spec(&dir);
    let spec = CampaignSpec::load(&spec_path).unwrap();

    let serial = serial_lines(&spec, 1, None).unwrap();
    let report = run_campaign(&spec_path, &spec, &spawn_config(&dir)).unwrap();

    assert!(!serial.is_empty());
    assert_eq!(report.lines, serial, "sharded SLO report must equal serial");
    assert_eq!(report.retries_used, 0);
    // One rendered row per cell: 2 heuristics × 2 ε values, with the
    // per-cell distribution fields present.
    assert_eq!(report.lines.len(), 4);
    for line in &report.lines {
        assert!(
            line.contains("\"p99\":") && line.contains("\"slo_ok\":"),
            "{line}"
        );
    }
}

#[test]
fn slo_killed_worker_is_reassigned_and_report_is_identical() {
    let _guard = ENV_LOCK.lock().unwrap();
    let dir = scratch("slo-kill");
    let spec_path = write_slo_spec(&dir);
    let spec = CampaignSpec::load(&spec_path).unwrap();
    let serial = serial_lines(&spec, 1, None).unwrap();

    let marker = dir.join("abort-once.marker");
    std::env::set_var(ABORT_ENV, &marker);
    let result = run_campaign(&spec_path, &spec, &spawn_config(&dir));
    std::env::remove_var(ABORT_ENV);
    let report = result.unwrap();

    assert!(marker.exists(), "crash hook must actually have fired");
    assert!(report.retries_used >= 1, "killed shard must be reassigned");
    assert_eq!(
        report.lines, serial,
        "SLO report after a mid-campaign kill must still equal serial"
    );
}

#[test]
fn slo_tcp_workers_match_serial_byte_for_byte() {
    let dir = scratch("slo-tcp");
    let spec_path = write_slo_spec(&dir);
    let spec = CampaignSpec::load(&spec_path).unwrap();
    let serial = serial_lines(&spec, 1, None).unwrap();

    let cfg = RunConfig {
        shards: 2,
        workers: 2,
        mode: Mode::Connect(vec![start_tcp_worker(), start_tcp_worker()]),
        journal_dir: None,
        worker_bin: None,
        retries: 3,
        worker_threads: 1,
    };
    let report = run_campaign(&spec_path, &spec, &cfg).unwrap();
    assert_eq!(
        report.lines, serial,
        "TCP-sharded SLO report must equal serial"
    );
}

/// One accept loop over a shared in-process `ltf-serve` service: each
/// connection carries one LDJSON request line and gets one reply line —
/// exactly what `ltf-serve --listen` does, minus the process boundary.
fn start_tcp_worker() -> String {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        let mut service = ltf_serve::Service::new(ltf_serve::ServiceConfig {
            threads: 1,
            ..Default::default()
        });
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let mut writer = stream.try_clone().expect("clone stream");
            let mut line = String::new();
            let mut reader = BufReader::new(stream);
            while reader.read_line(&mut line).unwrap_or(0) > 0 {
                let resp = service.handle_line(line.trim_end());
                if writeln!(writer, "{resp}").is_err() {
                    break;
                }
                line.clear();
            }
        }
    });
    addr
}

#[test]
fn tcp_workers_match_serial_byte_for_byte() {
    let dir = scratch("tcp");
    let spec_path = write_spec(&dir);
    let spec = CampaignSpec::load(&spec_path).unwrap();
    let serial = run_serial(&spec, 1, None).unwrap();

    let cfg = RunConfig {
        shards: 2,
        workers: 2,
        mode: Mode::Connect(vec![start_tcp_worker(), start_tcp_worker()]),
        journal_dir: None,
        worker_bin: None,
        retries: 3,
        worker_threads: 1,
    };
    let report = run_campaign(&spec_path, &spec, &cfg).unwrap();
    assert_eq!(report.lines, serial, "TCP-sharded merge must equal serial");
}

#[test]
fn dead_address_is_absorbed_by_the_surviving_worker() {
    let dir = scratch("dead-addr");
    let spec_path = write_spec(&dir);
    let spec = CampaignSpec::load(&spec_path).unwrap();
    let serial = run_serial(&spec, 1, None).unwrap();

    // Bind-then-drop: a port that refuses connections.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let cfg = RunConfig {
        shards: 2,
        workers: 2,
        mode: Mode::Connect(vec![dead, start_tcp_worker()]),
        journal_dir: None,
        worker_bin: None,
        retries: 3,
        worker_threads: 1,
    };
    let report = run_campaign(&spec_path, &spec, &cfg).unwrap();
    assert_eq!(report.lines, serial);
    assert!(report.retries_used >= 1, "dead address cost one requeue");
}
