//! The supervisor: shard queue, worker lifecycles, crash retry, and the
//! deterministic merge.
//!
//! Both execution modes drain one shared shard queue. **Spawn mode**
//! runs up to [`RunConfig::workers`] `campaign-worker` child processes
//! concurrently, each streaming `ItemResult` JSON lines on stdout and a
//! final `{"done":true,...}` line; a child that exits without the done
//! line (crash, kill, nonzero exit) has its shard pushed back and rerun
//! by the next free slot, resuming from its per-shard checkpoint journal
//! when [`RunConfig::journal_dir`] is set. **Connect mode** sends each
//! shard as one `{"cmd":"shard",...}` LDJSON request to a remote
//! `ltf-serve` daemon (one coordinator thread per address, one
//! connection per shard); an address that fails is retired after its
//! shard is requeued, so the remaining workers absorb its load.
//!
//! Results from any shard, attempt or transport funnel into one
//! [`Merger`], which re-orders by global item index and rejects
//! conflicting duplicates — the merged output is byte-identical to
//! `campaign::run_serial` on the same spec, which the kill-a-worker
//! tests and the CI smoke assert literally.
//!
//! The whole pipeline is generic over [`CampaignResult`]: a Pareto
//! campaign shards front enumerations and merges [`ItemResult`]s, an SLO
//! campaign (spec with a `failure` block) shards trace blocks and merges
//! [`SloItemResult`]s into an `ltf_faultlab::SloReport`.
//! Workers self-dispatch on the spec, so the supervision, wire format,
//! retry and journaling machinery is shared verbatim between the two.

use ltf_experiments::campaign::{
    build_slo_report, render_lines, run_serial, run_slo_serial, slo_cells, slo_work_items,
    work_items, CampaignResult, CampaignSpec, ItemResult, Merger, SloItemResult,
};
use ltf_experiments::checkpoint::{as_bool, as_str, as_u64, field};
use serde::{Deserialize, Serialize, Value};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How shards reach their workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mode {
    /// Spawn `campaign-worker` child processes on this machine.
    Spawn,
    /// Send shards to remote LDJSON daemons at these addresses.
    Connect(Vec<String>),
}

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Shard count (the `N` of `K/N`; every shard is one worker run).
    pub shards: usize,
    /// Concurrent child processes in spawn mode (ignored in connect
    /// mode, where concurrency is one in-flight shard per address).
    pub workers: usize,
    /// Transport: spawn children, or connect to remote daemons.
    pub mode: Mode,
    /// Per-shard checkpoint journals live here (spawn mode). `None`
    /// disables journaling: a retried shard recomputes from scratch.
    pub journal_dir: Option<PathBuf>,
    /// Worker executable (spawn mode); defaults to this very binary
    /// (`current_exe`), which carries the `campaign-worker` subcommand.
    /// `ltf-experiments` works too — the subcommand is identical.
    pub worker_bin: Option<PathBuf>,
    /// How many times a shard may be rerun after a crash before the
    /// campaign fails.
    pub retries: usize,
    /// `--threads` forwarded to each spawned worker.
    pub worker_threads: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            shards: 2,
            workers: 2,
            mode: Mode::Spawn,
            journal_dir: None,
            worker_bin: None,
            retries: 3,
            worker_threads: 1,
        }
    }
}

/// The outcome of a distributed campaign run.
#[derive(Debug)]
pub struct RunReport {
    /// The merged canonical output: one JSON line per front row, in
    /// global item order — byte-identical to a serial run.
    pub lines: Vec<String>,
    /// Work items merged.
    pub items: usize,
    /// Shard reruns that were needed (0 on a crash-free run).
    pub retries_used: usize,
}

/// The journal path of shard `k` of `n` under `dir`. The shard count is
/// part of the name: re-running the same spec with a different `N`
/// repartitions the items, so shard journals must not be shared across
/// partitions (item keys would cross-replay fine — they are global —
/// but keeping partitions separate keeps each file a clean prefix of
/// its own shard).
pub fn shard_journal(dir: &Path, k: usize, n: usize) -> PathBuf {
    dir.join(format!("shard-{k}-of-{n}.jsonl"))
}

/// Run the campaign distributed per `cfg` and merge the result.
/// `spec_path` is the spec file handed to spawned workers (both sides
/// re-expand it; connect mode embeds the parsed spec in the request
/// instead). Dispatches on the campaign kind: specs with a `failure`
/// block shard SLO trace blocks and merge the per-cell report, plain
/// specs shard front enumerations — over the same supervision machinery.
pub fn run_campaign(
    spec_path: &Path,
    spec: &CampaignSpec,
    cfg: &RunConfig,
) -> Result<RunReport, String> {
    if cfg.shards == 0 {
        return Err("campaign: shard count must be ≥ 1".into());
    }
    let exps = spec.expand().map_err(|e| e.to_string())?;
    if let Some(dir) = &cfg.journal_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("journal dir {}: {e}", dir.display()))?;
    }
    if let Some(f) = &spec.failure {
        let expected = slo_work_items(f, &slo_cells(&exps)).len();
        let (results, retries_used) = drive::<SloItemResult>(spec_path, spec, cfg, expected)?;
        let items = results.len();
        let report = build_slo_report(spec, &results)?;
        Ok(RunReport {
            lines: report.json_lines(),
            items,
            retries_used,
        })
    } else {
        let expected = work_items(&exps).len();
        let (results, retries_used) = drive::<ItemResult>(spec_path, spec, cfg, expected)?;
        let items = results.len();
        Ok(RunReport {
            lines: render_lines(&results),
            items,
            retries_used,
        })
    }
}

/// The serial golden reference for `spec`, whichever campaign kind it
/// is: the rendered lines a distributed [`run_campaign`] must equal
/// byte-for-byte (`--verify` asserts exactly this).
pub fn serial_lines(
    spec: &CampaignSpec,
    threads: usize,
    journal: Option<&Path>,
) -> Result<Vec<String>, String> {
    if spec.failure.is_some() {
        Ok(run_slo_serial(spec, threads, journal)?.json_lines())
    } else {
        run_serial(spec, threads, journal)
    }
}

/// The transport- and kind-agnostic supervisor core: drain the shard
/// queue through spawned workers or remote daemons, retry crashed
/// shards, and merge every streamed result into global item order.
fn drive<R: CampaignResult + Deserialize + Send>(
    spec_path: &Path,
    spec: &CampaignSpec,
    cfg: &RunConfig,
    expected: usize,
) -> Result<(Vec<R>, usize), String> {
    // The shared shard queue: (shard index, attempts so far).
    let queue: Mutex<VecDeque<(usize, usize)>> =
        Mutex::new((0..cfg.shards).map(|k| (k, 0)).collect());
    let merger: Mutex<Merger<R>> = Mutex::new(Merger::new(expected));
    let retries_used = AtomicUsize::new(0);
    let fatal: Mutex<Option<String>> = Mutex::new(None);

    let set_fatal = |msg: String| {
        let mut f = fatal.lock().unwrap();
        if f.is_none() {
            *f = Some(msg);
        }
    };
    let pop = || -> Option<(usize, usize)> {
        if fatal.lock().unwrap().is_some() {
            return None; // stop draining once the run is doomed
        }
        queue.lock().unwrap().pop_front()
    };
    // One shard attempt failed: requeue within the retry budget.
    let handle_failure = |k: usize, attempts: usize, err: String| {
        if attempts >= cfg.retries {
            set_fatal(format!(
                "campaign: shard {k}/{} failed {} time(s), giving up: {err}",
                cfg.shards,
                attempts + 1
            ));
        } else {
            eprintln!(
                "campaign: shard {k}/{} attempt {} failed ({err}); reassigning",
                cfg.shards,
                attempts + 1
            );
            retries_used.fetch_add(1, Ordering::Relaxed);
            queue.lock().unwrap().push_back((k, attempts + 1));
        }
    };
    let absorb = |results: Vec<R>| {
        let mut m = merger.lock().unwrap();
        for r in results {
            if let Err(e) = m.insert(r) {
                set_fatal(e);
                return;
            }
        }
    };

    std::thread::scope(|s| {
        match &cfg.mode {
            Mode::Spawn => {
                for _ in 0..cfg.workers.max(1) {
                    s.spawn(|| {
                        while let Some((k, attempts)) = pop() {
                            match spawn_shard(spec_path, cfg, k) {
                                Ok(results) => absorb(results),
                                Err(e) => handle_failure(k, attempts, e),
                            }
                        }
                    });
                }
            }
            Mode::Connect(addrs) => {
                for addr in addrs {
                    s.spawn(move || {
                        while let Some((k, attempts)) = pop() {
                            match connect_shard(addr, spec, cfg.shards, k) {
                                Ok(results) => absorb(results),
                                Err(e) => {
                                    handle_failure(k, attempts, e);
                                    // The address failed a whole shard
                                    // round-trip: retire it and let the
                                    // surviving addresses take the queue.
                                    eprintln!("campaign: retiring worker address {addr}");
                                    return;
                                }
                            }
                        }
                    });
                }
            }
        }
    });

    if let Some(msg) = fatal.into_inner().unwrap() {
        return Err(msg);
    }
    // All workers retired with shards still queued (connect mode with
    // every address dead) surfaces here as missing items.
    let results = merger.into_inner().unwrap().finish()?;
    Ok((results, retries_used.into_inner()))
}

/// Run shard `k` as a child process, collecting its streamed results.
/// Success requires both the `{"done":true,...}` line *and* a clean
/// exit — a worker killed after its last item but before the done line
/// still counts as crashed (its journal makes the rerun cheap).
fn spawn_shard<R: CampaignResult + Deserialize>(
    spec_path: &Path,
    cfg: &RunConfig,
    k: usize,
) -> Result<Vec<R>, String> {
    let bin = match &cfg.worker_bin {
        Some(p) => p.clone(),
        None => std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?,
    };
    let mut cmd = Command::new(&bin);
    cmd.arg("campaign-worker")
        .arg("--spec")
        .arg(spec_path)
        .arg("--shard")
        .arg(format!("{k}/{}", cfg.shards))
        .arg("--threads")
        .arg(cfg.worker_threads.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::piped());
    if let Some(dir) = &cfg.journal_dir {
        cmd.arg("--checkpoint")
            .arg(shard_journal(dir, k, cfg.shards));
    }
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", bin.display()))?;
    let stdout = child.stdout.take().expect("stdout piped");
    let mut results = Vec::new();
    let mut saw_done = None;
    for line in BufReader::new(stdout).lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break, // pipe died with the worker; wait() decides
        };
        match parse_worker_line(&line) {
            Some(WorkerLine::Result(r)) => results.push(r),
            Some(WorkerLine::Done { items }) => saw_done = Some(items),
            None => {
                // A torn write from a dying worker, or stray noise:
                // ignore it — correctness rests on the journal and the
                // done/exit handshake, not on every stdout byte.
                eprintln!(
                    "campaign: ignoring unparseable worker line ({} bytes)",
                    line.len()
                );
            }
        }
    }
    let status = child.wait().map_err(|e| format!("wait: {e}"))?;
    if !status.success() {
        return Err(format!("worker exited with {status}"));
    }
    match saw_done {
        None => return Err("worker exited without its done line".into()),
        Some(n) if n as usize != results.len() => {
            return Err(format!(
                "worker reported {n} item(s) but streamed {}",
                results.len()
            ));
        }
        Some(_) => {}
    }
    Ok(results)
}

/// One parsed worker stdout line.
enum WorkerLine<R> {
    Result(R),
    Done { items: u64 },
}

fn parse_worker_line<R: Deserialize>(line: &str) -> Option<WorkerLine<R>> {
    let v: Value = serde_json::from_str(line).ok()?;
    if let Some(done) = field(&v, "done").and_then(as_bool) {
        if done {
            let items = field(&v, "items").and_then(as_u64).unwrap_or(0);
            return Some(WorkerLine::Done { items });
        }
        return None;
    }
    R::from_value(&v).ok().map(WorkerLine::Result)
}

/// The `{"cmd":"shard",...}` request line for shard `k` of `n`, with the
/// parsed spec embedded (the remote worker has no spec file).
pub fn shard_request_line(spec: &CampaignSpec, k: usize, n: usize, id: u64) -> String {
    let v = Value::Map(vec![
        ("cmd".to_string(), Value::Str("shard".to_string())),
        ("id".to_string(), Value::UInt(id)),
        ("spec".to_string(), spec.to_value()),
        ("shard".to_string(), Value::Str(format!("{k}/{n}"))),
    ]);
    serde_json::to_string(&v).expect("value writer is infallible")
}

/// Decode a `shard` response line into its results, surfacing protocol
/// errors (`"ok":false` replies) as text.
pub fn parse_shard_response<R: Deserialize>(line: &str) -> Result<Vec<R>, String> {
    let v: Value =
        serde_json::from_str(line).map_err(|e| format!("unparseable shard response: {e}"))?;
    if field(&v, "ok").and_then(as_bool) != Some(true) {
        let kind = field(&v, "error").and_then(as_str).unwrap_or("unknown");
        let msg = field(&v, "message").and_then(as_str).unwrap_or("");
        return Err(format!("worker rejected shard: {kind}: {msg}"));
    }
    let Some(Value::Seq(items)) = field(&v, "results") else {
        return Err("shard response has no results array".into());
    };
    items
        .iter()
        .map(|r| R::from_value(r).map_err(|e| format!("bad result in response: {e}")))
        .collect()
}

/// Run shard `k` remotely: one TCP connection, one request line, one
/// response line.
fn connect_shard<R: CampaignResult + Deserialize>(
    addr: &str,
    spec: &CampaignSpec,
    n: usize,
    k: usize,
) -> Result<Vec<R>, String> {
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let req = shard_request_line(spec, k, n, k as u64);
    stream
        .write_all(req.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .map_err(|e| format!("send to {addr}: {e}"))?;
    let mut line = String::new();
    BufReader::new(&stream)
        .read_line(&mut line)
        .map_err(|e| format!("read from {addr}: {e}"))?;
    if line.is_empty() {
        return Err(format!("{addr} closed the connection without replying"));
    }
    parse_shard_response(line.trim_end())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec::parse(
            r#"{"name":"t","graphs":["fig1"],"heuristics":["rltf"],"epsilons":[{"max":1}]}"#,
        )
        .unwrap()
    }

    #[test]
    fn shard_request_roundtrips_through_value() {
        let spec = tiny_spec();
        let line = shard_request_line(&spec, 1, 4, 7);
        let v: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(field(&v, "cmd").and_then(as_str), Some("shard"));
        assert_eq!(field(&v, "shard").and_then(as_str), Some("1/4"));
        assert_eq!(field(&v, "id").and_then(as_u64), Some(7));
        let spec_v = field(&v, "spec").unwrap();
        let decoded = CampaignSpec::from_value(spec_v).unwrap();
        assert_eq!(decoded, spec);
    }

    #[test]
    fn shard_response_errors_are_surfaced() {
        let err = parse_shard_response::<ItemResult>(
            r#"{"ok":false,"error":"bad-request","message":"spec: axis \"graphs\" is empty"}"#,
        )
        .unwrap_err();
        assert!(
            err.contains("bad-request") && err.contains("graphs"),
            "{err}"
        );
        let err = parse_shard_response::<ItemResult>("not json").unwrap_err();
        assert!(err.contains("unparseable"), "{err}");
        let err = parse_shard_response::<ItemResult>(r#"{"ok":true}"#).unwrap_err();
        assert!(err.contains("no results"), "{err}");
    }

    #[test]
    fn worker_lines_parse_results_done_and_noise() {
        assert!(matches!(
            parse_worker_line::<ItemResult>(r#"{"done":true,"shard":"0/2","items":3}"#),
            Some(WorkerLine::Done { items: 3 })
        ));
        assert!(parse_worker_line::<ItemResult>("garbage").is_none());
        assert!(parse_worker_line::<ItemResult>(r#"{"done":false}"#).is_none());
        let r = r#"{"item":4,"experiment":1,"label":"fig1/rltf/eps=all","seed":9,"rows":[]}"#;
        match parse_worker_line::<ItemResult>(r) {
            Some(WorkerLine::Result(ir)) => {
                assert_eq!(ir.item, 4);
                assert_eq!(ir.label, "fig1/rltf/eps=all");
            }
            _ => panic!("result line must parse"),
        }
        // SLO worker lines ride the same wire with a different payload.
        let r = r#"{"item":2,"cell":1,"label":"fig1/rltf/eps=0/inst=0","feasible":false,"stats":{"traces":0,"items":0,"produced":0,"lost":0,"violations":0,"latency":{"buckets":[],"count":0,"min":null,"max":null}}}"#;
        match parse_worker_line::<SloItemResult>(r) {
            Some(WorkerLine::Result(sr)) => {
                assert_eq!(sr.item, 2);
                assert!(!sr.feasible);
            }
            _ => panic!("slo result line must parse"),
        }
    }

    #[test]
    fn shard_journal_names_partition() {
        let p = shard_journal(Path::new("/tmp/j"), 2, 5);
        assert_eq!(p, PathBuf::from("/tmp/j/shard-2-of-5.jsonl"));
    }
}
