//! Distributed campaign coordinator for the LTF / R-LTF experiment stack.
//!
//! The `ltf-campaign` binary wraps this library: it loads a declarative
//! JSON campaign spec (see `docs/campaign-spec.md`), shards the expanded
//! work-item list round-robin across worker processes — either spawned
//! `campaign-worker` children or remote `ltf-serve` daemons speaking the
//! LDJSON protocol over TCP (`docs/protocol.md`) — supervises them
//! (a crashed worker's shard is reassigned and, when journaling is on,
//! resumed from its partial checkpoint), and merges the per-shard results
//! into output **byte-identical** to a single-process run.
//!
//! The identity is structural, not statistical: sharding is a pure
//! function of the spec (`ltf_core::shard`), per-item seeds derive from
//! expansion order alone, and the merge re-orders by global item index —
//! so worker count, crash timing and arrival interleaving cannot leak
//! into the output. The merge also cross-checks determinism at runtime:
//! an item computed twice with different bytes fails the run instead of
//! silently picking a winner.

pub mod coordinator;

pub use coordinator::{run_campaign, serial_lines, Mode, RunConfig, RunReport};
