//! `ltf-campaign`: run declarative experiment campaigns across worker
//! processes.
//!
//! ```text
//! ltf-campaign run --spec FILE [--shards N] [--workers N] [--serial]
//!                  [--connect ADDR]... [--journal-dir DIR] [--out FILE]
//!                  [--worker-bin PATH] [--threads N] [--retries N] [--verify]
//! ltf-campaign expand --spec FILE
//! ltf-campaign campaign-worker --spec FILE --shard K/N
//!                  [--checkpoint FILE] [--threads N]
//! ```
//!
//! `run` shards the campaign across spawned `campaign-worker` children
//! (default), or across remote `ltf-serve --listen` daemons when
//! `--connect` addresses are given; `--serial` runs everything in this
//! process instead, and `--verify` runs *both* and fails unless the
//! merged distributed output is byte-identical to the serial one. See
//! `docs/campaign-spec.md` for the spec format.

use ltf_campaign::{run_campaign, serial_lines, Mode, RunConfig};
use ltf_core::shard::Shard;
use ltf_experiments::campaign::{slo_cells, slo_work_items, work_items, worker_main, CampaignSpec};
use std::path::PathBuf;

#[derive(Debug)]
struct Opts {
    command: String,
    spec: Option<PathBuf>,
    shards: Option<usize>,
    workers: usize,
    serial: bool,
    connect: Vec<String>,
    journal_dir: Option<PathBuf>,
    out: Option<PathBuf>,
    worker_bin: Option<PathBuf>,
    threads: usize,
    retries: usize,
    verify: bool,
    shard: Shard,
    checkpoint: Option<PathBuf>,
}

/// Pull the next argument as `flag`'s value and parse it (same diagnostic
/// shape as the `ltf-experiments` CLI: `flag: got 'X', expected <what>`).
fn take<T: std::str::FromStr>(
    args: &mut impl Iterator<Item = String>,
    flag: &str,
    expected: &str,
) -> Result<T, String> {
    let raw = args
        .next()
        .ok_or_else(|| format!("{flag}: missing value, expected {expected}"))?;
    raw.parse()
        .map_err(|_| format!("{flag}: got '{raw}', expected {expected}"))
}

fn parse_args_from(args: impl IntoIterator<Item = String>) -> Result<Opts, String> {
    let mut opts = Opts {
        command: String::new(),
        spec: None,
        shards: None,
        workers: 2,
        serial: false,
        connect: Vec::new(),
        journal_dir: None,
        out: None,
        worker_bin: None,
        threads: 1,
        retries: 3,
        verify: false,
        shard: Shard::solo(),
        checkpoint: None,
    };
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        let args = &mut args;
        match a.as_str() {
            "--spec" => {
                opts.spec = Some(PathBuf::from(take::<String>(
                    args,
                    "--spec",
                    "a spec path",
                )?))
            }
            "--shards" => {
                let n: usize = take(args, "--shards", "a positive integer")?;
                if n == 0 {
                    return Err("--shards: got '0', expected a positive integer".into());
                }
                opts.shards = Some(n);
            }
            "--workers" => {
                let n: usize = take(args, "--workers", "a positive integer")?;
                if n == 0 {
                    return Err("--workers: got '0', expected a positive integer".into());
                }
                opts.workers = n;
            }
            "--serial" => opts.serial = true,
            "--connect" => opts
                .connect
                .push(take(args, "--connect", "a host:port address")?),
            "--journal-dir" => {
                opts.journal_dir = Some(PathBuf::from(take::<String>(
                    args,
                    "--journal-dir",
                    "a directory path",
                )?))
            }
            "--out" => opts.out = Some(PathBuf::from(take::<String>(args, "--out", "a path")?)),
            "--worker-bin" => {
                opts.worker_bin = Some(PathBuf::from(take::<String>(
                    args,
                    "--worker-bin",
                    "an executable path",
                )?))
            }
            "--threads" => opts.threads = take(args, "--threads", "a thread count")?,
            "--retries" => opts.retries = take(args, "--retries", "a non-negative integer")?,
            "--verify" => opts.verify = true,
            "--shard" => opts.shard = take(args, "--shard", "K/N (shard K of N)")?,
            "--checkpoint" => {
                opts.checkpoint = Some(PathBuf::from(take::<String>(
                    args,
                    "--checkpoint",
                    "a journal path",
                )?))
            }
            "--help" | "-h" => {
                opts.command = "help".into();
                return Ok(opts);
            }
            cmd if !cmd.starts_with('-') && opts.command.is_empty() => {
                opts.command = cmd.to_string();
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if opts.command.is_empty() {
        return Err("missing command (run, expand, campaign-worker)".into());
    }
    Ok(opts)
}

fn print_usage() {
    eprintln!(
        "usage: ltf-campaign COMMAND [OPTIONS]\n\
         \n\
         commands:\n\
         \x20 run              shard a campaign across workers and merge the fronts\n\
         \x20 expand           print the expanded experiment matrix of a spec\n\
         \x20 campaign-worker  run one shard (spawned internally by `run`)\n\
         \n\
         options:\n\
         \x20 --spec FILE      the campaign spec (JSON; see docs/campaign-spec.md)\n\
         \x20 --shards N       partition the work into N shards (default: worker count)\n\
         \x20 --workers N      concurrent spawned workers (default 2)\n\
         \x20 --serial         run everything in-process (the golden reference)\n\
         \x20 --connect A      send shards to the ltf-serve daemon at A (host:port;\n\
         \x20                  repeatable — one in-flight shard per address)\n\
         \x20 --journal-dir D  per-shard checkpoint journals in D (crash resume)\n\
         \x20 --out FILE       write merged front lines to FILE (default stdout)\n\
         \x20 --worker-bin P   worker executable (default: this binary;\n\
         \x20                  target/release/ltf-experiments works too)\n\
         \x20 --threads N      worker threads per process (default 1)\n\
         \x20 --retries N      shard rerun budget after crashes (default 3)\n\
         \x20 --verify         also run serially and fail unless byte-identical\n\
         \x20 --shard K/N      campaign-worker: which shard to run (default 0/1)\n\
         \x20 --checkpoint F   campaign-worker: journal completed items to F\n\
         \x20 --help, -h       this message"
    );
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn require_spec(o: &Opts) -> (&PathBuf, CampaignSpec) {
    let Some(path) = &o.spec else {
        eprintln!("error: {} requires --spec FILE\n", o.command);
        print_usage();
        std::process::exit(2);
    };
    match CampaignSpec::load(path) {
        Ok(spec) => (path, spec),
        Err(e) => fail(&e.to_string()),
    }
}

fn emit_lines(o: &Opts, lines: &[String]) {
    match &o.out {
        Some(path) => {
            let mut text = lines.join("\n");
            if !text.is_empty() {
                text.push('\n');
            }
            if let Err(e) = std::fs::write(path, text) {
                fail(&format!("write {}: {e}", path.display()));
            }
            eprintln!(
                "campaign: wrote {} line(s) to {}",
                lines.len(),
                path.display()
            );
        }
        None => {
            for line in lines {
                println!("{line}");
            }
        }
    }
}

fn run(o: &Opts) {
    let (path, spec) = require_spec(o);
    if o.serial {
        match serial_lines(&spec, o.threads, o.checkpoint.as_deref()) {
            Ok(lines) => {
                eprintln!("campaign: serial run, {} line(s)", lines.len());
                emit_lines(o, &lines);
            }
            Err(e) => fail(&e),
        }
        return;
    }
    let mode = if o.connect.is_empty() {
        Mode::Spawn
    } else {
        Mode::Connect(o.connect.clone())
    };
    let default_shards = match &mode {
        Mode::Spawn => o.workers,
        Mode::Connect(addrs) => addrs.len(),
    };
    let cfg = RunConfig {
        shards: o.shards.unwrap_or(default_shards.max(1)),
        workers: o.workers,
        mode,
        journal_dir: o.journal_dir.clone(),
        worker_bin: o.worker_bin.clone(),
        retries: o.retries,
        worker_threads: o.threads,
    };
    let report = match run_campaign(path, &spec, &cfg) {
        Ok(r) => r,
        Err(e) => fail(&e),
    };
    eprintln!(
        "campaign: {} item(s) over {} shard(s), {} retry(ies), {} line(s)",
        report.items,
        cfg.shards,
        report.retries_used,
        report.lines.len()
    );
    if o.verify {
        let serial = match serial_lines(&spec, o.threads, None) {
            Ok(lines) => lines,
            Err(e) => fail(&format!("verify (serial rerun): {e}")),
        };
        if serial != report.lines {
            fail(&format!(
                "verify: distributed output differs from serial ({} vs {} lines)",
                report.lines.len(),
                serial.len()
            ));
        }
        eprintln!(
            "campaign: verify OK — merged output byte-identical to serial ({} lines)",
            serial.len()
        );
    }
    emit_lines(o, &report.lines);
}

fn expand(o: &Opts) {
    let (_, spec) = require_spec(o);
    let exps = match spec.expand() {
        Ok(e) => e,
        Err(e) => fail(&e.to_string()),
    };
    for exp in &exps {
        println!(
            "{:>4}  {}  [{} instance(s)]",
            exp.index, exp.label, exp.instances
        );
    }
    if let Some(f) = &spec.failure {
        // SLO campaign: the unit of work is the trace block, cell-major.
        let cells = slo_cells(&exps);
        let items = slo_work_items(f, &cells);
        for cell in &cells {
            println!(
                "cell {:>4}  {}  [seed {}]",
                cell.index, cell.label, cell.seed
            );
        }
        println!(
            "slo campaign {:?}: {} experiment(s), {} cell(s), {} trace(s)/cell \
             in {} block(s), signature {:016x}",
            spec.name,
            exps.len(),
            cells.len(),
            f.traces(),
            items.len(),
            spec.signature()
        );
        return;
    }
    let items = work_items(&exps);
    println!(
        "campaign {:?}: {} experiment(s), {} work item(s), signature {:016x}",
        spec.name,
        exps.len(),
        items.len(),
        spec.signature()
    );
}

fn worker(o: &Opts) {
    let Some(spec) = &o.spec else {
        eprintln!("error: campaign-worker requires --spec FILE\n");
        print_usage();
        std::process::exit(2);
    };
    let mut out = std::io::stdout().lock();
    match worker_main(spec, o.shard, o.threads, o.checkpoint.as_deref(), &mut out) {
        Ok(items) => eprintln!("campaign-worker: shard {} done, {items} item(s)", o.shard),
        Err(e) => fail(&e),
    }
}

fn main() {
    let o = match parse_args_from(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}\n");
            print_usage();
            std::process::exit(2);
        }
    };
    match o.command.as_str() {
        "help" => print_usage(),
        "run" => run(&o),
        "expand" => expand(&o),
        "campaign-worker" => worker(&o),
        other => {
            eprintln!("error: unknown command: {other}\n");
            print_usage();
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Opts, String> {
        parse_args_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn run_flags_parse() {
        let o = parse(&[
            "run",
            "--spec",
            "c.json",
            "--shards",
            "4",
            "--workers",
            "2",
            "--connect",
            "a:1",
            "--connect",
            "b:2",
            "--journal-dir",
            "j",
            "--verify",
        ])
        .unwrap();
        assert_eq!(o.command, "run");
        assert_eq!(o.spec.as_deref(), Some(std::path::Path::new("c.json")));
        assert_eq!(o.shards, Some(4));
        assert_eq!(o.connect, vec!["a:1", "b:2"]);
        assert!(o.verify);
        assert_eq!(o.journal_dir.as_deref(), Some(std::path::Path::new("j")));
    }

    #[test]
    fn worker_flags_parse() {
        let o = parse(&["campaign-worker", "--spec", "c.json", "--shard", "1/3"]).unwrap();
        assert_eq!(o.shard, "1/3".parse().unwrap());
        assert!(o.checkpoint.is_none());
    }

    #[test]
    fn bad_values_are_diagnosed() {
        assert!(parse(&[]).unwrap_err().contains("missing command"));
        assert_eq!(
            parse(&["run", "--shards", "0"]).unwrap_err(),
            "--shards: got '0', expected a positive integer"
        );
        assert_eq!(
            parse(&["run", "--workers", "x"]).unwrap_err(),
            "--workers: got 'x', expected a positive integer"
        );
        let err = parse(&["campaign-worker", "--shard", "3/2"]).unwrap_err();
        assert!(err.starts_with("--shard: got '3/2'"), "{err}");
        assert_eq!(
            parse(&["run", "--frobnicate"]).unwrap_err(),
            "unknown argument: --frobnicate"
        );
    }
}
