//! Discrete-event simulation of pipelined schedule execution.
//!
//! The paper evaluates schedules both through the stage bound
//! `L = (2S − 1)/T` and by "computing the real execution time for a given
//! schedule rather than just bounds" (§5). This crate provides both
//! executable semantics for a [`ltf_schedule::Schedule`] driven by a stream
//! of data items, with optional processor-crash injection:
//!
//! * [`synchronous()`](synchronous()) — the Hary–Özgüner stage-synchronous discipline behind
//!   the latency formula: time is divided into windows of length `Δ`; an
//!   item is computed by stage-`s` replicas in window `k + 2(s−1)` and
//!   shipped in window `k + 2s − 1`. Per-item latency is exactly
//!   `(2·S_eff − 1)·Δ` with the effective (best-alive-source) stage of the
//!   item's surviving exit replicas — the simulator's measurement therefore
//!   cross-validates `ltf_schedule::failures`.
//! * [`asap()`](asap()) — an event-driven ASAP (as-soon-as-possible) execution: every
//!   replica starts an item as soon as one copy of each input has arrived
//!   and its processor is free; messages contend for send/receive ports
//!   under the one-port model. Latencies are ≤ the synchronous ones; the
//!   gap measures the slack the window model leaves on the table.
//!
//! Crash injection is fail-silent/fail-stop: from the crash time onward a
//! crashed processor finishes nothing and sends nothing.
//!
//! Both disciplines also replay *sampled* failure scenarios: a
//! [`CrashTrace`] carries per-processor crash times (instead of one fixed
//! set failing at one instant) and a [`RecoveryPolicy`] decides whether
//! consumers starve when their scheduled sources die
//! ([`RecoveryPolicy::FailStop`]) or re-route the fetch to a surviving
//! replica mid-stream ([`RecoveryPolicy::Reroute`]). See
//! [`synchronous_trace`] and [`asap_trace`]; `ltf-faultlab` builds its
//! stochastic SLO campaigns on these entry points.

pub mod asap;
pub mod fault;
pub mod report;
pub mod synchronous;

pub use crate::asap::{asap, asap_trace, AsapConfig};
pub use crate::fault::{CrashTrace, RecoveryPolicy, TraceConfig};
pub use crate::report::SimReport;
pub use crate::synchronous::{synchronous, synchronous_trace, SynchronousConfig};
