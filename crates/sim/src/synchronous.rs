//! Stage-synchronous execution discipline (the latency formula's model).

use crate::fault::{RecoveryPolicy, TraceConfig};
use crate::report::SimReport;
use ltf_graph::TaskGraph;
use ltf_schedule::stages::{effective_stages, latency_for_stages};
use ltf_schedule::{CrashSet, ReplicaId, Schedule, SourceChoice};

/// Configuration for [`synchronous`].
#[derive(Debug, Clone)]
pub struct SynchronousConfig {
    /// Number of stream items to push through the pipeline.
    pub items: usize,
    /// Processors that are crashed for the whole run (fail-silent from the
    /// start; use the ASAP simulator for mid-stream crashes).
    pub crash: Option<CrashSet>,
}

impl SynchronousConfig {
    /// Failure-free run over `items` data sets.
    pub fn new(items: usize) -> Self {
        Self { items, crash: None }
    }

    /// Run with the given crash set active from time 0.
    pub fn with_crash(items: usize, crash: CrashSet) -> Self {
        Self {
            items,
            crash: Some(crash),
        }
    }
}

/// Execute the schedule under the stage-synchronous discipline: item `k` is
/// computed by stage-`s` replicas during window `k + 2(s−1)` (each window
/// lasting `Δ`) and shipped during window `k + 2s − 1`; its latency is
/// `(2·S_eff(k) − 1)·Δ` where `S_eff` is the stage of its earliest
/// surviving exit replica. Capacity per window is guaranteed by the
/// schedule's throughput constraints (`Σ_u, C^I_u, C^O_u ≤ Δ`), which the
/// validator checks separately.
pub fn synchronous(g: &TaskGraph, sched: &Schedule, cfg: &SynchronousConfig) -> SimReport {
    let m = sched
        .replicas()
        .map(|r| sched.proc(r).index() + 1)
        .max()
        .unwrap_or(1);
    let crash = cfg
        .crash
        .clone()
        .unwrap_or_else(|| CrashSet::empty(m.max(1)));
    let nrep = sched.replicas_per_task();
    let proc_of: Vec<_> = sched.replicas().map(|r| sched.proc(r)).collect();
    let sources: Vec<_> = sched
        .replicas()
        .map(|r| sched.sources(r).to_vec())
        .collect();
    let eff = effective_stages(g, nrep, &proc_of, &sources, &crash);

    // Effective stage per item: all items share the static mapping.
    let mut total: Option<u32> = Some(1);
    for &t in g.exits() {
        let best = (0..nrep)
            .filter_map(|c| {
                let r = ReplicaId::new(t, c as u8).dense(nrep);
                eff.alive[r].then_some(eff.stage[r])
            })
            .min();
        total = match (total, best) {
            (Some(a), Some(b)) => Some(a.max(b)),
            _ => None,
        };
    }

    let period = sched.period();
    let latency = total.map(|s| latency_for_stages(s, period));
    let mut item_latency = Vec::with_capacity(cfg.items);
    let mut item_completion = Vec::with_capacity(cfg.items);
    let mut makespan = 0.0f64;
    for k in 0..cfg.items {
        match latency {
            Some(l) => {
                let done = k as f64 * period + l;
                item_latency.push(Some(l));
                item_completion.push(Some(done));
                makespan = makespan.max(done);
            }
            None => {
                item_latency.push(None);
                item_completion.push(None);
            }
        }
    }
    SimReport {
        item_latency,
        item_completion,
        makespan,
    }
}

/// Execute the schedule under the stage-synchronous discipline while a
/// sampled [`crate::CrashTrace`] kills processors at their own times.
///
/// The window model makes "when does a crash hit item `k`?" precise: a
/// stage-`s` replica computes item `k` in window `k + 2(s−1)` (ending at
/// `(k + 2s − 1)·Δ`) and ships it in window `k + 2s − 1` (ending at
/// `(k + 2s)·Δ`). A replica therefore produces item `k` only if its host
/// survives through its compute window, and a *remote* source is usable
/// only if it also survives through its ship window — work completing
/// exactly at the crash instant still counts, matching the fixed-set
/// convention. Stages are re-derived per item along the topological
/// order, so the effective stage (and hence the latency `(2S−1)·Δ`)
/// degrades item by item as the trace unfolds.
///
/// Under [`RecoveryPolicy::Reroute`], an in-edge whose scheduled sources
/// are all unusable for an item falls back to the best usable replica of
/// the predecessor task (the online re-route, expressed in window terms);
/// under [`RecoveryPolicy::FailStop`] the consumer starves, exactly like
/// [`effective_stages`] with the crashed set of that window.
///
/// With an all-`+∞` trace this reproduces [`synchronous`]'s failure-free
/// output; with all-zero crash times it reproduces the fixed-set run.
pub fn synchronous_trace(g: &TaskGraph, sched: &Schedule, cfg: &TraceConfig) -> SimReport {
    let nrep = sched.replicas_per_task();
    let n_rep = g.num_tasks() * nrep;
    let period = sched.period();
    let trace = &cfg.trace;
    let proc_of: Vec<usize> = sched.replicas().map(|r| sched.proc(r).index()).collect();
    let sources: Vec<Vec<SourceChoice>> = sched
        .replicas()
        .map(|r| sched.sources(r).to_vec())
        .collect();

    let mut alive = vec![false; n_rep];
    let mut stage = vec![0u32; n_rep];
    let mut item_latency = Vec::with_capacity(cfg.items);
    let mut item_completion = Vec::with_capacity(cfg.items);
    let mut makespan = 0.0f64;

    for k in 0..cfg.items {
        // Best usable source stage for one in-edge, over the given copies:
        // a source must have produced the item, and a remote source must
        // survive its ship window.
        let usable = |alive: &[bool],
                      stage: &[u32],
                      pred: ltf_graph::TaskId,
                      copies: &mut dyn Iterator<Item = u8>,
                      my_proc: usize|
         -> Option<u32> {
            let mut best: Option<u32> = None;
            for c in copies {
                let src = ReplicaId::new(pred, c).dense(nrep);
                if !alive[src] {
                    continue;
                }
                let eta = u32::from(proc_of[src] != my_proc);
                if eta == 1 {
                    let ship_end = (k as f64 + 2.0 * stage[src] as f64) * period;
                    if trace.crashed(proc_of[src], ship_end) {
                        continue;
                    }
                }
                let cand = stage[src] + eta;
                best = Some(best.map_or(cand, |b: u32| b.min(cand)));
            }
            best
        };

        for &t in g.topo_order() {
            for c in 0..nrep {
                let r = ReplicaId::new(t, c as u8).dense(nrep);
                let u = proc_of[r];
                let mut ok = true;
                let mut s = 1u32;
                for choice in &sources[r] {
                    let pred = g.edge(choice.edge).src;
                    let mut best =
                        usable(&alive, &stage, pred, &mut choice.sources.iter().copied(), u);
                    if best.is_none() && cfg.policy == RecoveryPolicy::Reroute {
                        // Online recovery: fall back to any usable replica
                        // of the predecessor task.
                        best = usable(&alive, &stage, pred, &mut (0..nrep as u8), u);
                    }
                    match best {
                        Some(b) => s = s.max(b),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    alive[r] = false;
                    continue;
                }
                // The host must survive through the compute window of the
                // stage this item runs at.
                let compute_end = (k as f64 + 2.0 * s as f64 - 1.0) * period;
                alive[r] = !trace.crashed(u, compute_end);
                stage[r] = s;
            }
        }

        // Effective stage of item k: fastest usable replica per exit task,
        // slowest over exit tasks (every stream output must be produced).
        let mut total: Option<u32> = Some(1);
        for &t in g.exits() {
            let best = (0..nrep)
                .filter_map(|c| {
                    let r = ReplicaId::new(t, c as u8).dense(nrep);
                    alive[r].then_some(stage[r])
                })
                .min();
            total = match (total, best) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            };
        }
        match total {
            Some(s) => {
                let l = latency_for_stages(s, period);
                let done = k as f64 * period + l;
                item_latency.push(Some(l));
                item_completion.push(Some(done));
                makespan = makespan.max(done);
            }
            None => {
                item_latency.push(None);
                item_completion.push(None);
            }
        }
    }

    SimReport {
        item_latency,
        item_completion,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::CrashTrace;
    use ltf_platform::{Platform, ProcId};
    use ltf_schedule::{CommEvent, ScheduleData};

    /// ε=1 chain t0 -> t1 on 4 procs, one-to-one lanes; stage 2 on both
    /// lanes.
    fn sample() -> (TaskGraph, Schedule) {
        let mut b = ltf_graph::GraphBuilder::new();
        let t0 = b.add_task(4.0);
        let t1 = b.add_task(2.0);
        let e = b.add_edge(t0, t1, 3.0);
        let g = b.build().unwrap();
        let p = Platform::homogeneous(4, 1.0, 1.0);
        let r00 = ReplicaId::new(t0, 0);
        let r01 = ReplicaId::new(t0, 1);
        let r10 = ReplicaId::new(t1, 0);
        let r11 = ReplicaId::new(t1, 1);
        let data = ScheduleData {
            epsilon: 1,
            period: 10.0,
            proc_of: vec![ProcId(0), ProcId(1), ProcId(2), ProcId(3)],
            start: vec![0.0, 0.0, 7.0, 7.0],
            finish: vec![4.0, 4.0, 9.0, 9.0],
            sources: vec![
                vec![],
                vec![],
                vec![SourceChoice::one(e, 0)],
                vec![SourceChoice::one(e, 1)],
            ],
            comm_events: vec![
                CommEvent {
                    edge: e,
                    src: r00,
                    dst: r10,
                    src_proc: ProcId(0),
                    dst_proc: ProcId(2),
                    start: 4.0,
                    finish: 7.0,
                },
                CommEvent {
                    edge: e,
                    src: r01,
                    dst: r11,
                    src_proc: ProcId(1),
                    dst_proc: ProcId(3),
                    start: 4.0,
                    finish: 7.0,
                },
            ],
        };
        let s = Schedule::new(&g, &p, data);
        (g, s)
    }

    #[test]
    fn no_crash_matches_formula() {
        let (g, s) = sample();
        let rep = synchronous(&g, &s, &SynchronousConfig::new(5));
        assert_eq!(rep.produced(), 5);
        // S = 2, Δ = 10 -> L = 30 for every item.
        for l in &rep.item_latency {
            assert_eq!(*l, Some(30.0));
        }
        // Items complete Δ apart.
        assert_eq!(rep.achieved_period(), Some(10.0));
        assert_eq!(rep.makespan, 4.0 * 10.0 + 30.0);
    }

    #[test]
    fn single_crash_keeps_all_items() {
        let (g, s) = sample();
        let crash = CrashSet::from_procs(&[ProcId(0)], 4);
        let rep = synchronous(&g, &s, &SynchronousConfig::with_crash(5, crash));
        assert_eq!(rep.produced(), 5);
        assert_eq!(rep.item_latency[0], Some(30.0)); // surviving lane has S=2
    }

    #[test]
    fn double_crash_loses_everything() {
        let (g, s) = sample();
        // Kill both exit hosts.
        let crash = CrashSet::from_procs(&[ProcId(2), ProcId(3)], 4);
        let rep = synchronous(&g, &s, &SynchronousConfig::with_crash(3, crash));
        assert_eq!(rep.produced(), 0);
        assert_eq!(rep.lost(), 3);
        assert_eq!(rep.mean_latency(), None);
    }

    #[test]
    fn trace_never_matches_failure_free() {
        let (g, s) = sample();
        let base = synchronous(&g, &s, &SynchronousConfig::new(5));
        for policy in [RecoveryPolicy::FailStop, RecoveryPolicy::Reroute] {
            let cfg = TraceConfig::new(5, CrashTrace::never(4), policy);
            let rep = synchronous_trace(&g, &s, &cfg);
            assert_eq!(rep.item_latency, base.item_latency);
            assert_eq!(rep.item_completion, base.item_completion);
        }
    }

    #[test]
    fn trace_all_zero_matches_fixed_set() {
        let (g, s) = sample();
        for procs in [vec![ProcId(0)], vec![ProcId(2)], vec![ProcId(2), ProcId(3)]] {
            let set = CrashSet::from_procs(&procs, 4);
            let base = synchronous(&g, &s, &SynchronousConfig::with_crash(5, set.clone()));
            let cfg = TraceConfig::new(
                5,
                CrashTrace::from_crash_set(&set, 4, 0.0),
                RecoveryPolicy::FailStop,
            );
            let rep = synchronous_trace(&g, &s, &cfg);
            assert_eq!(rep.item_latency, base.item_latency, "procs {procs:?}");
            assert_eq!(rep.item_completion, base.item_completion);
        }
    }

    #[test]
    fn trace_degrades_item_by_item() {
        let (g, s) = sample();
        // The fast exit host P3 (lane 0's t1) dies at t=45. Item k's exit
        // compute window ends at (k+3)·10; items 0 (ends 30) and 1 (ends
        // 40) make it on either lane, later items must use lane 1 — which
        // is also stage 2 here, so items survive with the same latency
        // until lane 1's own host dies at t=85: items with (k+3)·10 ≤ 85,
        // i.e. k ≤ 5, survive.
        let trace = CrashTrace::from_crash_times(vec![f64::INFINITY, f64::INFINITY, 45.0, 85.0]);
        let cfg = TraceConfig::new(10, trace, RecoveryPolicy::FailStop);
        let rep = synchronous_trace(&g, &s, &cfg);
        for k in 0..=5 {
            assert_eq!(rep.item_latency[k], Some(30.0), "item {k}");
        }
        for k in 6..10 {
            assert_eq!(rep.item_latency[k], None, "item {k}");
        }
    }

    #[test]
    fn reroute_survives_crossed_crashes() {
        let (g, s) = sample();
        // Kill lane 0's entry host (P1) and lane 1's exit host (P4) from
        // the start: fail-stop loses everything (each lane is half dead),
        // re-route crosses the lanes (t0^2 on P2 feeds t1^1 on P3).
        let trace = CrashTrace::from_crash_times(vec![0.0, f64::INFINITY, f64::INFINITY, 0.0]);
        let failstop = synchronous_trace(
            &g,
            &s,
            &TraceConfig::new(4, trace.clone(), RecoveryPolicy::FailStop),
        );
        assert_eq!(failstop.produced(), 0);
        let reroute =
            synchronous_trace(&g, &s, &TraceConfig::new(4, trace, RecoveryPolicy::Reroute));
        assert_eq!(reroute.produced(), 4);
        // The crossed path hops processors at every edge: stage 2, L = 30.
        assert_eq!(reroute.item_latency[0], Some(30.0));
    }
}
