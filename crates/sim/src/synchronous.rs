//! Stage-synchronous execution discipline (the latency formula's model).

use crate::report::SimReport;
use ltf_graph::TaskGraph;
use ltf_schedule::stages::{effective_stages, latency_for_stages};
use ltf_schedule::{CrashSet, ReplicaId, Schedule};

/// Configuration for [`synchronous`].
#[derive(Debug, Clone)]
pub struct SynchronousConfig {
    /// Number of stream items to push through the pipeline.
    pub items: usize,
    /// Processors that are crashed for the whole run (fail-silent from the
    /// start; use the ASAP simulator for mid-stream crashes).
    pub crash: Option<CrashSet>,
}

impl SynchronousConfig {
    /// Failure-free run over `items` data sets.
    pub fn new(items: usize) -> Self {
        Self { items, crash: None }
    }

    /// Run with the given crash set active from time 0.
    pub fn with_crash(items: usize, crash: CrashSet) -> Self {
        Self {
            items,
            crash: Some(crash),
        }
    }
}

/// Execute the schedule under the stage-synchronous discipline: item `k` is
/// computed by stage-`s` replicas during window `k + 2(s−1)` (each window
/// lasting `Δ`) and shipped during window `k + 2s − 1`; its latency is
/// `(2·S_eff(k) − 1)·Δ` where `S_eff` is the stage of its earliest
/// surviving exit replica. Capacity per window is guaranteed by the
/// schedule's throughput constraints (`Σ_u, C^I_u, C^O_u ≤ Δ`), which the
/// validator checks separately.
pub fn synchronous(g: &TaskGraph, sched: &Schedule, cfg: &SynchronousConfig) -> SimReport {
    let m = sched
        .replicas()
        .map(|r| sched.proc(r).index() + 1)
        .max()
        .unwrap_or(1);
    let crash = cfg
        .crash
        .clone()
        .unwrap_or_else(|| CrashSet::empty(m.max(1)));
    let nrep = sched.replicas_per_task();
    let proc_of: Vec<_> = sched.replicas().map(|r| sched.proc(r)).collect();
    let sources: Vec<_> = sched
        .replicas()
        .map(|r| sched.sources(r).to_vec())
        .collect();
    let eff = effective_stages(g, nrep, &proc_of, &sources, &crash);

    // Effective stage per item: all items share the static mapping.
    let mut total: Option<u32> = Some(1);
    for &t in g.exits() {
        let best = (0..nrep)
            .filter_map(|c| {
                let r = ReplicaId::new(t, c as u8).dense(nrep);
                eff.alive[r].then_some(eff.stage[r])
            })
            .min();
        total = match (total, best) {
            (Some(a), Some(b)) => Some(a.max(b)),
            _ => None,
        };
    }

    let period = sched.period();
    let latency = total.map(|s| latency_for_stages(s, period));
    let mut item_latency = Vec::with_capacity(cfg.items);
    let mut item_completion = Vec::with_capacity(cfg.items);
    let mut makespan = 0.0f64;
    for k in 0..cfg.items {
        match latency {
            Some(l) => {
                let done = k as f64 * period + l;
                item_latency.push(Some(l));
                item_completion.push(Some(done));
                makespan = makespan.max(done);
            }
            None => {
                item_latency.push(None);
                item_completion.push(None);
            }
        }
    }
    SimReport {
        item_latency,
        item_completion,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltf_platform::{Platform, ProcId};
    use ltf_schedule::{CommEvent, ScheduleData, SourceChoice};

    /// ε=1 chain t0 -> t1 on 4 procs, one-to-one lanes; stage 2 on both
    /// lanes.
    fn sample() -> (TaskGraph, Schedule) {
        let mut b = ltf_graph::GraphBuilder::new();
        let t0 = b.add_task(4.0);
        let t1 = b.add_task(2.0);
        let e = b.add_edge(t0, t1, 3.0);
        let g = b.build().unwrap();
        let p = Platform::homogeneous(4, 1.0, 1.0);
        let r00 = ReplicaId::new(t0, 0);
        let r01 = ReplicaId::new(t0, 1);
        let r10 = ReplicaId::new(t1, 0);
        let r11 = ReplicaId::new(t1, 1);
        let data = ScheduleData {
            epsilon: 1,
            period: 10.0,
            proc_of: vec![ProcId(0), ProcId(1), ProcId(2), ProcId(3)],
            start: vec![0.0, 0.0, 7.0, 7.0],
            finish: vec![4.0, 4.0, 9.0, 9.0],
            sources: vec![
                vec![],
                vec![],
                vec![SourceChoice::one(e, 0)],
                vec![SourceChoice::one(e, 1)],
            ],
            comm_events: vec![
                CommEvent {
                    edge: e,
                    src: r00,
                    dst: r10,
                    src_proc: ProcId(0),
                    dst_proc: ProcId(2),
                    start: 4.0,
                    finish: 7.0,
                },
                CommEvent {
                    edge: e,
                    src: r01,
                    dst: r11,
                    src_proc: ProcId(1),
                    dst_proc: ProcId(3),
                    start: 4.0,
                    finish: 7.0,
                },
            ],
        };
        let s = Schedule::new(&g, &p, data);
        (g, s)
    }

    #[test]
    fn no_crash_matches_formula() {
        let (g, s) = sample();
        let rep = synchronous(&g, &s, &SynchronousConfig::new(5));
        assert_eq!(rep.produced(), 5);
        // S = 2, Δ = 10 -> L = 30 for every item.
        for l in &rep.item_latency {
            assert_eq!(*l, Some(30.0));
        }
        // Items complete Δ apart.
        assert_eq!(rep.achieved_period(), Some(10.0));
        assert_eq!(rep.makespan, 4.0 * 10.0 + 30.0);
    }

    #[test]
    fn single_crash_keeps_all_items() {
        let (g, s) = sample();
        let crash = CrashSet::from_procs(&[ProcId(0)], 4);
        let rep = synchronous(&g, &s, &SynchronousConfig::with_crash(5, crash));
        assert_eq!(rep.produced(), 5);
        assert_eq!(rep.item_latency[0], Some(30.0)); // surviving lane has S=2
    }

    #[test]
    fn double_crash_loses_everything() {
        let (g, s) = sample();
        // Kill both exit hosts.
        let crash = CrashSet::from_procs(&[ProcId(2), ProcId(3)], 4);
        let rep = synchronous(&g, &s, &SynchronousConfig::with_crash(3, crash));
        assert_eq!(rep.produced(), 0);
        assert_eq!(rep.lost(), 3);
        assert_eq!(rep.mean_latency(), None);
    }
}
