//! Simulation outcome summary.

/// Measurements from one simulated stream execution.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Latency of each data item (completion of the last stream output
    /// minus its arrival time `k·Δ`); `None` when the item was lost — the
    /// crash pattern exceeded what the replication degree protects.
    pub item_latency: Vec<Option<f64>>,
    /// Completion time of each produced item.
    pub item_completion: Vec<Option<f64>>,
    /// Simulated makespan (last completion).
    pub makespan: f64,
}

impl SimReport {
    /// Number of items that produced all stream outputs.
    pub fn produced(&self) -> usize {
        self.item_latency.iter().filter(|l| l.is_some()).count()
    }

    /// Number of lost items.
    pub fn lost(&self) -> usize {
        self.item_latency.len() - self.produced()
    }

    /// Mean latency over produced items (`None` when nothing was produced).
    pub fn mean_latency(&self) -> Option<f64> {
        let (mut sum, mut n) = (0.0, 0usize);
        for l in self.item_latency.iter().flatten() {
            sum += l;
            n += 1;
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Nearest-rank `pct`-th percentile latency over produced items
    /// (`None` when nothing was produced).
    ///
    /// NaN-safe: latencies are ordered by [`f64::total_cmp`], so a
    /// pathological NaN sorts after `+∞` instead of poisoning the sort,
    /// and the result is bit-stable for a given report.
    pub fn percentile(&self, pct: f64) -> Option<f64> {
        let mut produced: Vec<f64> = self.item_latency.iter().flatten().copied().collect();
        ltf_core::stats::sort_f64(&mut produced);
        ltf_core::stats::percentile_sorted_f64(&produced, pct)
    }

    /// Maximum latency over produced items.
    pub fn max_latency(&self) -> Option<f64> {
        self.item_latency
            .iter()
            .flatten()
            .copied()
            .fold(None, |acc: Option<f64>, l| {
                Some(acc.map_or(l, |a| a.max(l)))
            })
    }

    /// Average inter-completion interval in steady state (the achieved
    /// period); `None` with fewer than two produced items.
    pub fn achieved_period(&self) -> Option<f64> {
        let comps: Vec<f64> = self.item_completion.iter().flatten().copied().collect();
        if comps.len() < 2 {
            return None;
        }
        Some((comps[comps.len() - 1] - comps[0]) / (comps.len() - 1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let r = SimReport {
            item_latency: vec![Some(10.0), None, Some(20.0)],
            item_completion: vec![Some(10.0), None, Some(30.0)],
            makespan: 30.0,
        };
        assert_eq!(r.produced(), 2);
        assert_eq!(r.lost(), 1);
        assert_eq!(r.mean_latency(), Some(15.0));
        assert_eq!(r.max_latency(), Some(20.0));
        assert_eq!(r.achieved_period(), Some(20.0));
        assert_eq!(r.percentile(50.0), Some(10.0));
        assert_eq!(r.percentile(99.0), Some(20.0));
    }

    #[test]
    fn percentile_skips_lost_items_and_tolerates_nan() {
        let r = SimReport {
            item_latency: vec![Some(30.0), None, Some(10.0), Some(20.0), Some(f64::NAN)],
            item_completion: vec![Some(30.0), None, Some(20.0), Some(40.0), Some(50.0)],
            makespan: 50.0,
        };
        // NaN sorts last under total_cmp; the median of the four produced
        // latencies is still well-defined and the call never panics.
        assert_eq!(r.percentile(50.0), Some(20.0));
        assert_eq!(r.percentile(0.0), Some(10.0));
        assert!(r.percentile(100.0).unwrap().is_nan());
        let empty = SimReport {
            item_latency: vec![None],
            item_completion: vec![None],
            makespan: 0.0,
        };
        assert_eq!(empty.percentile(50.0), None);
    }

    #[test]
    fn empty() {
        let r = SimReport {
            item_latency: vec![None, None],
            item_completion: vec![None, None],
            makespan: 0.0,
        };
        assert_eq!(r.produced(), 0);
        assert_eq!(r.mean_latency(), None);
        assert_eq!(r.max_latency(), None);
        assert_eq!(r.achieved_period(), None);
    }
}
