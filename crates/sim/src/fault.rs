//! Crash traces and online recovery policies.
//!
//! The fixed [`CrashSet`] injection of the original simulators answers the
//! paper's worst-case question — "does the schedule survive these ε
//! processors failing?". Stochastic failure campaigns ask a different one:
//! *when* processors fail at sampled times, what do the latency and loss
//! distributions look like? A [`CrashTrace`] carries one sampled answer per
//! processor (the absolute time its host dies, `+∞` for "never"), and a
//! [`RecoveryPolicy`] chooses what the runtime does about it:
//!
//! * [`RecoveryPolicy::FailStop`] — the paper's model: consumers only ever
//!   read from their scheduled source replicas; a dead lane stays dead.
//! * [`RecoveryPolicy::Reroute`] — an online recovery hook: when every
//!   scheduled source of an in-edge is dead, the consumer re-routes the
//!   fetch to any surviving replica of the predecessor task mid-stream
//!   (paying the real communication cost between the new endpoints).
//!
//! Both simulators accept a [`TraceConfig`]; with an all-`+∞` trace they
//! reproduce their failure-free behavior exactly, and with all-zero crash
//! times they reproduce the fixed-`CrashSet` behavior.

use ltf_platform::ProcId;
use ltf_schedule::CrashSet;

/// Per-processor absolute crash times; `+∞` means the processor never
/// fails within the simulated horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashTrace {
    crash_at: Vec<f64>,
}

impl CrashTrace {
    /// A trace in which none of the `m` processors ever fails.
    pub fn never(m: usize) -> Self {
        Self {
            crash_at: vec![f64::INFINITY; m],
        }
    }

    /// A trace from explicit per-processor crash times (`+∞` = never).
    /// Times must be non-negative and not NaN.
    pub fn from_crash_times(crash_at: Vec<f64>) -> Self {
        assert!(
            crash_at.iter().all(|t| *t >= 0.0 && !t.is_nan()),
            "crash times must be non-negative"
        );
        Self { crash_at }
    }

    /// The fixed-set model as a trace: members of `crash` fail at `at`,
    /// everyone else never does.
    pub fn from_crash_set(crash: &CrashSet, m: usize, at: f64) -> Self {
        let crash_at = (0..m)
            .map(|u| {
                if crash.contains(ProcId(u as u16)) {
                    at
                } else {
                    f64::INFINITY
                }
            })
            .collect();
        Self { crash_at }
    }

    /// Number of processors the trace covers.
    pub fn num_procs(&self) -> usize {
        self.crash_at.len()
    }

    /// The absolute crash time of processor `u` (`+∞` = never).
    pub fn crash_time(&self, u: usize) -> f64 {
        self.crash_at[u]
    }

    /// Whether processor `u` is dead strictly after `time` — the same
    /// convention as the fixed-set simulators (`time > crash_at`): work
    /// completing exactly at the crash instant still counts.
    pub fn crashed(&self, u: usize, time: f64) -> bool {
        time > self.crash_at[u]
    }

    /// Earliest crash in the trace (`+∞` when nothing fails).
    pub fn first_crash(&self) -> f64 {
        self.crash_at.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// What the runtime does when scheduled source replicas die mid-stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Paper semantics: consumers read only from their scheduled sources;
    /// an in-edge whose sources are all dead starves the consumer.
    FailStop,
    /// Online recovery: an in-edge whose scheduled sources are all dead is
    /// re-routed to a surviving replica of the predecessor task, at the
    /// real communication cost between the new processor pair.
    Reroute,
}

/// Configuration for the trace-replay entry points
/// ([`crate::synchronous_trace`], [`crate::asap_trace`]).
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Number of stream items to push through the pipeline.
    pub items: usize,
    /// When each processor dies.
    pub trace: CrashTrace,
    /// What the runtime does about it.
    pub policy: RecoveryPolicy,
}

impl TraceConfig {
    /// Replay `trace` over `items` items under `policy`.
    pub fn new(items: usize, trace: CrashTrace, policy: RecoveryPolicy) -> Self {
        Self {
            items,
            trace,
            policy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_conventions() {
        let t = CrashTrace::never(3);
        assert_eq!(t.num_procs(), 3);
        assert!(!t.crashed(0, 1e12));
        assert_eq!(t.first_crash(), f64::INFINITY);

        let t = CrashTrace::from_crash_times(vec![5.0, f64::INFINITY]);
        assert!(!t.crashed(0, 5.0)); // boundary: work at the instant counts
        assert!(t.crashed(0, 5.0 + 1e-12));
        assert!(!t.crashed(1, 1e12));
        assert_eq!(t.first_crash(), 5.0);

        let set = CrashSet::from_procs(&[ProcId(1)], 3);
        let t = CrashTrace::from_crash_set(&set, 3, 0.0);
        assert!(t.crashed(1, 0.1) && !t.crashed(0, 0.1) && !t.crashed(2, 0.1));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_crash_time_rejected() {
        CrashTrace::from_crash_times(vec![-1.0]);
    }
}
