//! Event-driven ASAP execution of a schedule on a stream of items.
//!
//! Each replica starts computing item `k` as soon as (a) the item has been
//! admitted (`k·Δ`), (b) for every in-edge at least one copy of the input
//! has arrived (active replication delivers identical data), and (c) its
//! processor is free. Messages follow the schedule's communication
//! structure and contend for send/receive ports under the one-port model
//! (FIFO by readiness). Crashed processors finish nothing and send nothing
//! from the crash time onward.

use crate::report::SimReport;
use ltf_graph::TaskGraph;
use ltf_schedule::{CrashSet, ReplicaId, Schedule};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Configuration for [`asap`].
#[derive(Debug, Clone)]
pub struct AsapConfig {
    /// Number of stream items to push through the pipeline.
    pub items: usize,
    /// Optional crash injection: the processors and the time at which they
    /// fail (use 0.0 for whole-run failures).
    pub crash: Option<(CrashSet, f64)>,
}

impl AsapConfig {
    /// Failure-free run over `items` data sets.
    pub fn new(items: usize) -> Self {
        Self { items, crash: None }
    }

    /// Crash `procs` at time `at`.
    pub fn with_crash(items: usize, crash: CrashSet, at: f64) -> Self {
        Self {
            items,
            crash: Some((crash, at)),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// A compute job became ready (inputs present, item admitted).
    JobReady { rep: u32, item: u32 },
    /// A compute job finished on its processor.
    JobFinish { rep: u32, item: u32 },
    /// A message became ready to leave its source.
    MsgReady { ev: u32, item: u32 },
    /// A message fully arrived at its destination.
    MsgArrive { ev: u32, item: u32 },
}

/// Execute the schedule ASAP. Returns per-item latency measurements.
///
/// Panics if `items == 0`.
pub fn asap(g: &TaskGraph, sched: &Schedule, cfg: &AsapConfig) -> SimReport {
    assert!(cfg.items > 0, "need at least one item");
    let nrep = sched.replicas_per_task();
    let n_rep = g.num_tasks() * nrep;
    let items = cfg.items;
    let period = sched.period();
    let m = 1 + sched
        .replicas()
        .map(|r| sched.proc(r).index())
        .max()
        .unwrap_or(0);

    let (crash, crash_at) = match &cfg.crash {
        Some((c, at)) => (Some(c), *at),
        None => (None, f64::INFINITY),
    };
    let crashed = |proc: usize, time: f64| -> bool {
        time > crash_at && crash.is_some_and(|c| c.contains(ltf_platform::ProcId(proc as u16)))
    };

    // Static structure: per replica, the number of in-edges; per replica,
    // outgoing message ids; per message, (src rep, dst rep, dst edge slot).
    let rep_of = |t: ltf_graph::TaskId, c: u8| ReplicaId::new(t, c).dense(nrep);
    let mut in_edges_of = vec![0usize; n_rep];
    // Map (rep, edge) -> slot index within the replica's edge list.
    let mut edge_slot = vec![Vec::<(u32, usize)>::new(); n_rep];
    for t in g.tasks() {
        for c in 0..nrep as u8 {
            let r = rep_of(t, c);
            in_edges_of[r] = g.in_degree(t);
            edge_slot[r] = g
                .pred_edges(t)
                .iter()
                .enumerate()
                .map(|(i, &e)| (e.0, i))
                .collect();
        }
    }
    let slot_of = |r: usize, edge: u32| -> usize {
        edge_slot[r]
            .iter()
            .find(|(e, _)| *e == edge)
            .expect("edge of replica")
            .1
    };

    // Outgoing messages per source replica (indices into comm_events), and
    // local (same-processor) deliveries derived from the source structure.
    let events = sched.comm_events();
    let mut out_msgs = vec![Vec::<u32>::new(); n_rep];
    for (i, ev) in events.iter().enumerate() {
        out_msgs[ev.src.dense(nrep)].push(i as u32);
    }
    let mut local_out = vec![Vec::<(u32, u32)>::new(); n_rep]; // (dst rep, edge)
    for t in g.tasks() {
        for c in 0..nrep as u8 {
            let r = rep_of(t, c);
            for choice in sched.sources(ReplicaId::new(t, c)) {
                let pred = g.edge(choice.edge).src;
                for &sc in &choice.sources {
                    let src = rep_of(pred, sc);
                    if sched.proc(ReplicaId::new(pred, sc)) == sched.proc(ReplicaId::new(t, c)) {
                        local_out[src].push((r as u32, choice.edge.0));
                    }
                }
            }
        }
    }

    // Dynamic state.
    let idx = |rep: usize, item: usize| rep * items + item;
    let max_deg = in_edges_of.iter().copied().max().unwrap_or(0).max(1);
    // Which in-edge slots have data (first arrival wins), indexed by
    // (rep, item, slot).
    let mut edge_done = vec![false; n_rep * items * max_deg];
    let mut edges_missing: Vec<u32> = (0..n_rep * items)
        .map(|i| in_edges_of[i / items] as u32)
        .collect();
    let mut job_done_at = vec![f64::NAN; n_rep * items];
    let mut job_scheduled = vec![false; n_rep * items];
    let mut produced = vec![false; n_rep * items];

    let mut proc_free = vec![0.0f64; m];
    let mut send_free = vec![0.0f64; m];
    let mut recv_free = vec![0.0f64; m];

    // Event heap ordered by (time, sequence) for deterministic ties.
    let mut heap: BinaryHeap<Reverse<(u64, u64, Event)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let key = |t: f64| -> u64 { t.to_bits() }; // times are non-negative finite
    let push =
        |heap: &mut BinaryHeap<Reverse<(u64, u64, Event)>>, seq: &mut u64, t: f64, e: Event| {
            debug_assert!(t.is_finite() && t >= 0.0);
            *seq += 1;
            heap.push(Reverse((key(t), *seq, e)));
        };

    // Admit entry jobs.
    for &t in g.entries() {
        for c in 0..nrep as u8 {
            let r = rep_of(t, c);
            for k in 0..items {
                push(
                    &mut heap,
                    &mut seq,
                    k as f64 * period,
                    Event::JobReady {
                        rep: r as u32,
                        item: k as u32,
                    },
                );
            }
        }
    }

    let mut makespan = 0.0f64;
    while let Some(Reverse((tbits, _, event))) = heap.pop() {
        let now = f64::from_bits(tbits);
        match event {
            Event::JobReady { rep, item } => {
                let (r, k) = (rep as usize, item as usize);
                if job_scheduled[idx(r, k)] {
                    continue;
                }
                job_scheduled[idx(r, k)] = true;
                let rid = ReplicaId::from_dense(r, nrep);
                let u = sched.proc(rid).index();
                let exec = sched.finish(rid) - sched.start(rid);
                let start = now.max(proc_free[u]);
                proc_free[u] = start + exec;
                push(
                    &mut heap,
                    &mut seq,
                    start + exec,
                    Event::JobFinish { rep, item },
                );
            }
            Event::JobFinish { rep, item } => {
                let (r, k) = (rep as usize, item as usize);
                let rid = ReplicaId::from_dense(r, nrep);
                let u = sched.proc(rid).index();
                if crashed(u, now) {
                    continue; // fail-silent: no output
                }
                job_done_at[idx(r, k)] = now;
                produced[idx(r, k)] = true;
                makespan = makespan.max(now);
                // Local deliveries are instantaneous.
                for &(dst, edge) in &local_out[r] {
                    deliver(
                        dst as usize,
                        k,
                        slot_of(dst as usize, edge),
                        now,
                        items,
                        max_deg,
                        &mut edge_done,
                        &mut edges_missing,
                        &mut heap,
                        &mut seq,
                    );
                }
                for &mi in &out_msgs[r] {
                    push(&mut heap, &mut seq, now, Event::MsgReady { ev: mi, item });
                }
            }
            Event::MsgReady { ev, item } => {
                let e = &events[ev as usize];
                let h = e.src_proc.index();
                let u = e.dst_proc.index();
                let dur = e.duration();
                let start = now.max(send_free[h]).max(recv_free[u]);
                if crashed(h, start) {
                    continue; // sender dead before transmission
                }
                send_free[h] = start + dur;
                recv_free[u] = start + dur;
                push(
                    &mut heap,
                    &mut seq,
                    start + dur,
                    Event::MsgArrive { ev, item },
                );
            }
            Event::MsgArrive { ev, item } => {
                let e = &events[ev as usize];
                if crashed(e.src_proc.index(), now) {
                    // The tail of the transmission was cut off.
                    continue;
                }
                let dst = e.dst.dense(nrep);
                let k = item as usize;
                deliver(
                    dst,
                    k,
                    slot_of(dst, e.edge.0),
                    now,
                    items,
                    max_deg,
                    &mut edge_done,
                    &mut edges_missing,
                    &mut heap,
                    &mut seq,
                );
            }
        }
    }

    // Per-item completion: earliest surviving exit replica per exit task.
    let mut item_latency = Vec::with_capacity(items);
    let mut item_completion = Vec::with_capacity(items);
    for k in 0..items {
        let mut done: Option<f64> = Some(0.0);
        for &t in g.exits() {
            let best = (0..nrep as u8)
                .filter_map(|c| {
                    let r = rep_of(t, c);
                    produced[idx(r, k)].then(|| job_done_at[idx(r, k)])
                })
                .fold(None, |acc: Option<f64>, v| {
                    Some(acc.map_or(v, |a| a.min(v)))
                });
            done = match (done, best) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            };
        }
        match done {
            Some(d) => {
                item_completion.push(Some(d));
                item_latency.push(Some(d - k as f64 * period));
            }
            None => {
                item_completion.push(None);
                item_latency.push(None);
            }
        }
    }

    SimReport {
        item_latency,
        item_completion,
        makespan,
    }
}

/// Record a first-arrival on an in-edge slot; when every in-edge of the
/// replica has data, emit `JobReady` (admission-gated for entry items is
/// unnecessary here: non-entry jobs are gated by their inputs).
#[allow(clippy::too_many_arguments)]
fn deliver(
    dst: usize,
    item: usize,
    slot: usize,
    now: f64,
    items: usize,
    max_deg: usize,
    edge_done: &mut [bool],
    edges_missing: &mut [u32],
    heap: &mut BinaryHeap<Reverse<(u64, u64, Event)>>,
    seq: &mut u64,
) {
    let e_idx = (dst * items + item) * max_deg + slot;
    if edge_done[e_idx] {
        return; // later copies of the same input are redundant
    }
    edge_done[e_idx] = true;
    let miss = &mut edges_missing[dst * items + item];
    *miss -= 1;
    if *miss == 0 {
        *seq += 1;
        heap.push(Reverse((
            now.to_bits(),
            *seq,
            Event::JobReady {
                rep: dst as u32,
                item: item as u32,
            },
        )));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltf_platform::{Platform, ProcId};
    use ltf_schedule::{CommEvent, ScheduleData, SourceChoice};

    fn sample() -> (TaskGraph, Schedule) {
        let mut b = ltf_graph::GraphBuilder::new();
        let t0 = b.add_task(4.0);
        let t1 = b.add_task(2.0);
        let e = b.add_edge(t0, t1, 3.0);
        let g = b.build().unwrap();
        let p = Platform::homogeneous(4, 1.0, 1.0);
        let r00 = ReplicaId::new(t0, 0);
        let r01 = ReplicaId::new(t0, 1);
        let r10 = ReplicaId::new(t1, 0);
        let r11 = ReplicaId::new(t1, 1);
        let data = ScheduleData {
            epsilon: 1,
            period: 10.0,
            proc_of: vec![ProcId(0), ProcId(1), ProcId(2), ProcId(3)],
            start: vec![0.0, 0.0, 7.0, 7.0],
            finish: vec![4.0, 4.0, 9.0, 9.0],
            sources: vec![
                vec![],
                vec![],
                vec![SourceChoice::one(e, 0)],
                vec![SourceChoice::one(e, 1)],
            ],
            comm_events: vec![
                CommEvent {
                    edge: e,
                    src: r00,
                    dst: r10,
                    src_proc: ProcId(0),
                    dst_proc: ProcId(2),
                    start: 4.0,
                    finish: 7.0,
                },
                CommEvent {
                    edge: e,
                    src: r01,
                    dst: r11,
                    src_proc: ProcId(1),
                    dst_proc: ProcId(3),
                    start: 4.0,
                    finish: 7.0,
                },
            ],
        };
        let s = Schedule::new(&g, &p, data);
        (g, s)
    }

    #[test]
    fn asap_latency_at_most_synchronous() {
        let (g, s) = sample();
        let rep = asap(&g, &s, &AsapConfig::new(4));
        assert_eq!(rep.produced(), 4);
        // First item: t0 done at 4, msg 4..7, t1 done at 9 -> latency 9,
        // well under the synchronous 30.
        assert_eq!(rep.item_latency[0], Some(9.0));
        for l in rep.item_latency.iter().flatten() {
            assert!(*l <= 30.0 + 1e-9);
        }
    }

    #[test]
    fn asap_steady_state_period_respected() {
        let (g, s) = sample();
        let rep = asap(&g, &s, &AsapConfig::new(20));
        // Period 10 is far above the bottleneck load (4): completions are
        // period-spaced.
        let p = rep.achieved_period().unwrap();
        assert!((p - 10.0).abs() < 1e-9, "period {p}");
    }

    #[test]
    fn crash_from_start_uses_surviving_lane() {
        let (g, s) = sample();
        let crash = CrashSet::from_procs(&[ProcId(2)], 4);
        let rep = asap(&g, &s, &AsapConfig::with_crash(4, crash, 0.0));
        assert_eq!(rep.produced(), 4);
        // Lane 1 (P2 -> P4) still delivers every item at the same times.
        assert_eq!(rep.item_latency[0], Some(9.0));
    }

    #[test]
    fn mid_stream_crash_loses_late_items_when_both_lanes_cut() {
        let (g, s) = sample();
        let crash = CrashSet::from_procs(&[ProcId(2), ProcId(3)], 4);
        // Both exit hosts die at t=25: items completing before that
        // survive, later ones are lost.
        let rep = asap(&g, &s, &AsapConfig::with_crash(6, crash, 25.0));
        assert!(rep.produced() >= 2, "early items survive");
        assert!(rep.lost() >= 2, "late items lost");
    }

    #[test]
    fn double_crash_from_start_loses_all() {
        let (g, s) = sample();
        let crash = CrashSet::from_procs(&[ProcId(2), ProcId(3)], 4);
        let rep = asap(&g, &s, &AsapConfig::with_crash(3, crash, 0.0));
        assert_eq!(rep.produced(), 0);
    }
}
