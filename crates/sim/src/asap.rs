//! Event-driven ASAP execution of a schedule on a stream of items.
//!
//! Each replica starts computing item `k` as soon as (a) the item has been
//! admitted (`k·Δ`), (b) for every in-edge at least one copy of the input
//! has arrived (active replication delivers identical data), and (c) its
//! processor is free. Messages follow the schedule's communication
//! structure and contend for send/receive ports under the one-port model
//! (FIFO by readiness). Crashed processors finish nothing and send nothing
//! from the crash time onward.
//!
//! Two entry points share the engine: [`asap`] replays the fixed-set crash
//! model (all failures at one instant), [`asap_trace`] replays a sampled
//! [`CrashTrace`] with per-processor crash times and an online
//! [`RecoveryPolicy`]. When the platform models routed communication
//! (`Contended`), trace replay additionally charges **link contention**: a
//! message holds every physical link on its route for its whole transfer
//! window, so transfers sharing a link serialize even between distinct
//! port pairs — mirroring the placement engine's reservation discipline.
//! Matrix and `Uniform`-mode platforms replay event-identically to the
//! pre-routing engine. Under [`RecoveryPolicy::Reroute`], an in-edge whose
//! scheduled sources have all died is re-routed mid-stream to a surviving
//! replica of the predecessor task: re-route messages are injected into
//! the event world at the real communication cost between the new
//! processor pair and contend for ports like any scheduled message.

use crate::fault::{CrashTrace, RecoveryPolicy, TraceConfig};
use crate::report::SimReport;
use ltf_graph::{EdgeId, TaskGraph};
use ltf_platform::{Platform, ProcId};
use ltf_schedule::{CrashSet, ReplicaId, Schedule};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Configuration for [`asap`].
#[derive(Debug, Clone)]
pub struct AsapConfig {
    /// Number of stream items to push through the pipeline.
    pub items: usize,
    /// Optional crash injection: the processors and the time at which they
    /// fail (use 0.0 for whole-run failures).
    pub crash: Option<(CrashSet, f64)>,
}

impl AsapConfig {
    /// Failure-free run over `items` data sets.
    pub fn new(items: usize) -> Self {
        Self { items, crash: None }
    }

    /// Crash `procs` at time `at`.
    pub fn with_crash(items: usize, crash: CrashSet, at: f64) -> Self {
        Self {
            items,
            crash: Some((crash, at)),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// A compute job became ready (inputs present, item admitted).
    JobReady { rep: u32, item: u32 },
    /// A compute job finished on its processor.
    JobFinish { rep: u32, item: u32 },
    /// A message became ready to leave its source.
    MsgReady { ev: u32, item: u32 },
    /// A message fully arrived at its destination.
    MsgArrive { ev: u32, item: u32 },
    /// A processor died (only scheduled under [`RecoveryPolicy::Reroute`]
    /// — it triggers the bulk re-route scan).
    ProcCrash { proc: u32 },
}

/// One point-to-point transfer: the scheduled communication events, plus
/// any re-route messages injected at runtime.
#[derive(Debug, Clone)]
struct Msg {
    dst_rep: u32,
    dst_slot: u32,
    src_proc: usize,
    dst_proc: usize,
    dur: f64,
    /// Injected by the re-route policy (its in-flight flag must be cleared
    /// if the transfer is cut, so recovery can be retried elsewhere).
    reroute: bool,
}

/// Execute the schedule ASAP. Returns per-item latency measurements.
///
/// Panics if `items == 0`.
pub fn asap(g: &TaskGraph, sched: &Schedule, cfg: &AsapConfig) -> SimReport {
    let m = 1 + sched
        .replicas()
        .map(|r| sched.proc(r).index())
        .max()
        .unwrap_or(0);
    let trace = match &cfg.crash {
        Some((c, at)) => CrashTrace::from_crash_set(c, m, *at),
        None => CrashTrace::never(m),
    };
    Runner::new(g, None, sched, cfg.items, &trace, RecoveryPolicy::FailStop).run()
}

/// Execute the schedule ASAP under a sampled crash trace and recovery
/// policy. The platform prices re-route messages between processor pairs
/// the schedule never planned a transfer for.
///
/// Panics if `cfg.items == 0` or the trace covers fewer processors than
/// the schedule uses.
pub fn asap_trace(g: &TaskGraph, p: &Platform, sched: &Schedule, cfg: &TraceConfig) -> SimReport {
    Runner::new(g, Some(p), sched, cfg.items, &cfg.trace, cfg.policy).run()
}

struct Runner<'a> {
    g: &'a TaskGraph,
    platform: Option<&'a Platform>,
    sched: &'a Schedule,
    trace: &'a CrashTrace,
    policy: RecoveryPolicy,
    items: usize,
    nrep: usize,
    n_rep: usize,
    max_deg: usize,
    // Static structure.
    proc_of: Vec<usize>,
    /// Per replica, its in-edges in slot order (`g.pred_edges` order).
    slot_edges: Vec<Vec<u32>>,
    /// Per (replica, slot), the processors of the scheduled sources.
    sched_src_procs: Vec<Vec<Vec<usize>>>,
    /// Per source replica, local (same-processor) deliveries: (dst, slot).
    local_out: Vec<Vec<(u32, u32)>>,
    /// Per source replica, scheduled outgoing message ids.
    out_msgs: Vec<Vec<u32>>,
    /// Per task, the (consumer replica, slot) pairs fed by its output.
    consumers: Vec<Vec<(u32, u32)>>,
    msgs: Vec<Msg>,
    // Dynamic state.
    edge_done: Vec<bool>,
    reroute_inflight: Vec<bool>,
    edges_missing: Vec<u32>,
    job_done_at: Vec<f64>,
    job_scheduled: Vec<bool>,
    produced: Vec<bool>,
    proc_free: Vec<f64>,
    send_free: Vec<f64>,
    recv_free: Vec<f64>,
    /// Next-free time of each physical link (empty unless the platform is
    /// routed: ASAP keeps scalar horizons, not interval sets, because
    /// replay only ever appends at the FIFO frontier).
    link_free: Vec<f64>,
    heap: BinaryHeap<Reverse<(u64, u64, Event)>>,
    seq: u64,
    makespan: f64,
}

impl<'a> Runner<'a> {
    fn new(
        g: &'a TaskGraph,
        platform: Option<&'a Platform>,
        sched: &'a Schedule,
        items: usize,
        trace: &'a CrashTrace,
        policy: RecoveryPolicy,
    ) -> Self {
        assert!(items > 0, "need at least one item");
        let nrep = sched.replicas_per_task();
        let n_rep = g.num_tasks() * nrep;
        let m = 1 + sched
            .replicas()
            .map(|r| sched.proc(r).index())
            .max()
            .unwrap_or(0);
        assert!(
            trace.num_procs() >= m,
            "trace covers {} processors, schedule uses {m}",
            trace.num_procs()
        );
        let rep_of = |t: ltf_graph::TaskId, c: u8| ReplicaId::new(t, c).dense(nrep);

        let proc_of: Vec<usize> = sched.replicas().map(|r| sched.proc(r).index()).collect();
        let mut slot_edges = vec![Vec::new(); n_rep];
        for t in g.tasks() {
            let edges: Vec<u32> = g.pred_edges(t).iter().map(|e| e.0).collect();
            for c in 0..nrep as u8 {
                slot_edges[rep_of(t, c)] = edges.clone();
            }
        }
        let slot_of = |slots: &[u32], edge: u32| -> u32 {
            slots
                .iter()
                .position(|e| *e == edge)
                .expect("edge of replica") as u32
        };

        // Scheduled sources: per (consumer, slot) the source processors
        // (for the "everything I was wired to is dead" test), local
        // deliveries, and the reverse consumer index per task.
        let mut sched_src_procs: Vec<Vec<Vec<usize>>> = slot_edges
            .iter()
            .map(|s| vec![Vec::new(); s.len()])
            .collect();
        let mut local_out = vec![Vec::<(u32, u32)>::new(); n_rep];
        let mut consumers = vec![Vec::<(u32, u32)>::new(); g.num_tasks()];
        for t in g.tasks() {
            for c in 0..nrep as u8 {
                let r = rep_of(t, c);
                for choice in sched.sources(ReplicaId::new(t, c)) {
                    let pred = g.edge(choice.edge).src;
                    let slot = slot_of(&slot_edges[r], choice.edge.0);
                    consumers[pred.index()].push((r as u32, slot));
                    for &sc in &choice.sources {
                        let src = rep_of(pred, sc);
                        sched_src_procs[r][slot as usize].push(proc_of[src]);
                        if proc_of[src] == proc_of[r] {
                            local_out[src].push((r as u32, slot));
                        }
                    }
                }
            }
        }

        let events = sched.comm_events();
        let mut out_msgs = vec![Vec::<u32>::new(); n_rep];
        let mut msgs = Vec::with_capacity(events.len());
        for (i, ev) in events.iter().enumerate() {
            let dst = ev.dst.dense(nrep);
            out_msgs[ev.src.dense(nrep)].push(i as u32);
            msgs.push(Msg {
                dst_rep: dst as u32,
                dst_slot: slot_of(&slot_edges[dst], ev.edge.0),
                src_proc: ev.src_proc.index(),
                dst_proc: ev.dst_proc.index(),
                dur: ev.duration(),
                reroute: false,
            });
        }

        let max_deg = slot_edges.iter().map(Vec::len).max().unwrap_or(0).max(1);
        let edges_missing = (0..n_rep * items)
            .map(|i| slot_edges[i / items].len() as u32)
            .collect();
        Self {
            g,
            platform,
            sched,
            trace,
            policy,
            items,
            nrep,
            n_rep,
            max_deg,
            proc_of,
            slot_edges,
            sched_src_procs,
            local_out,
            out_msgs,
            consumers,
            msgs,
            edge_done: vec![false; n_rep * items * max_deg],
            reroute_inflight: vec![false; n_rep * items * max_deg],
            edges_missing,
            job_done_at: vec![f64::NAN; n_rep * items],
            job_scheduled: vec![false; n_rep * items],
            produced: vec![false; n_rep * items],
            proc_free: vec![0.0; m],
            send_free: vec![0.0; m],
            recv_free: vec![0.0; m],
            link_free: vec![0.0; platform.map_or(0, |p| p.num_links())],
            heap: BinaryHeap::new(),
            seq: 0,
            makespan: 0.0,
        }
    }

    #[inline]
    fn idx(&self, rep: usize, item: usize) -> usize {
        rep * self.items + item
    }

    #[inline]
    fn eidx(&self, rep: usize, item: usize, slot: usize) -> usize {
        (rep * self.items + item) * self.max_deg + slot
    }

    /// Strictly dead: the fixed-set convention (`time > crash_at` — work
    /// completing exactly at the crash instant still counts).
    #[inline]
    fn crashed(&self, proc: usize, time: f64) -> bool {
        self.trace.crashed(proc, time)
    }

    /// Dead for re-route decisions (`crash_at ≤ now`): at the crash
    /// instant itself the processor already counts as unrecoverable, so
    /// the `ProcCrash` event fired at exactly that time sees it dead.
    #[inline]
    fn dead_by(&self, proc: usize, time: f64) -> bool {
        self.trace.crash_time(proc) <= time
    }

    fn push(&mut self, t: f64, e: Event) {
        debug_assert!(t.is_finite() && t >= 0.0);
        self.seq += 1;
        self.heap.push(Reverse((t.to_bits(), self.seq, e)));
    }

    /// Record a first-arrival on an in-edge slot; when every in-edge of
    /// the replica has data, emit `JobReady`.
    fn deliver(&mut self, dst: usize, slot: usize, item: usize, now: f64) {
        let ei = self.eidx(dst, item, slot);
        if self.edge_done[ei] {
            return; // later copies of the same input are redundant
        }
        self.edge_done[ei] = true;
        let miss = &mut self.edges_missing[dst * self.items + item];
        *miss -= 1;
        if *miss == 0 {
            self.push(
                now,
                Event::JobReady {
                    rep: dst as u32,
                    item: item as u32,
                },
            );
        }
    }

    /// Whether every scheduled source of `(dst, slot)` is dead by `now`.
    fn sched_sources_dead(&self, dst: usize, slot: usize, now: f64) -> bool {
        self.sched_src_procs[dst][slot]
            .iter()
            .all(|&u| self.dead_by(u, now))
    }

    /// Try to recover `(dst, slot, item)` from a surviving replica of the
    /// predecessor task. No-op unless the policy is `Reroute`, the slot is
    /// still missing, no recovery is already in flight, the consumer is
    /// alive, and every scheduled source is dead.
    fn attempt_reroute(&mut self, dst: usize, slot: usize, item: usize, now: f64) {
        if self.policy != RecoveryPolicy::Reroute {
            return;
        }
        let ei = self.eidx(dst, item, slot);
        if self.edge_done[ei] || self.reroute_inflight[ei] {
            return;
        }
        let dst_proc = self.proc_of[dst];
        if self.crashed(dst_proc, now) || !self.sched_sources_dead(dst, slot, now) {
            return;
        }
        let edge = self.slot_edges[dst][slot];
        let pred = self.g.edge(EdgeId(edge)).src;
        // Deterministic pick: the lowest-index replica of the predecessor
        // that has produced the item and strictly outlives `now`.
        let mut pick = None;
        for c in 0..self.nrep as u8 {
            let src = ReplicaId::new(pred, c).dense(self.nrep);
            if self.produced[self.idx(src, item)] && !self.dead_by(self.proc_of[src], now) {
                pick = Some(src);
                break;
            }
        }
        let Some(src) = pick else { return };
        let src_proc = self.proc_of[src];
        if src_proc == dst_proc {
            self.deliver(dst, slot, item, now);
            return;
        }
        let vol = self.g.edge(EdgeId(edge)).volume;
        let p = self
            .platform
            .expect("re-route policy requires a platform for message pricing");
        let dur = p.comm_time(vol, ProcId(src_proc as u16), ProcId(dst_proc as u16));
        let mi = self.msgs.len() as u32;
        self.msgs.push(Msg {
            dst_rep: dst as u32,
            dst_slot: slot as u32,
            src_proc,
            dst_proc,
            dur,
            reroute: true,
        });
        self.reroute_inflight[ei] = true;
        self.push(
            now,
            Event::MsgReady {
                ev: mi,
                item: item as u32,
            },
        );
    }

    /// A transfer was cut by its sender's death: clear the in-flight flag
    /// if it was a re-route message, then try to recover from elsewhere.
    fn on_msg_cut(&mut self, ev: usize, item: usize, now: f64) {
        let (dst, slot, reroute) = {
            let m = &self.msgs[ev];
            (m.dst_rep as usize, m.dst_slot as usize, m.reroute)
        };
        if reroute {
            let ei = self.eidx(dst, item, slot);
            self.reroute_inflight[ei] = false;
        }
        self.attempt_reroute(dst, slot, item, now);
    }

    fn run(mut self) -> SimReport {
        // Crash events drive the bulk re-route scan; without re-routing
        // they would be pure no-ops, so they are only scheduled under the
        // policy that uses them (keeping fixed-set runs event-identical to
        // the pre-trace engine).
        if self.policy == RecoveryPolicy::Reroute {
            for u in 0..self.proc_free.len() {
                let t = self.trace.crash_time(u);
                if t.is_finite() {
                    self.push(t.max(0.0), Event::ProcCrash { proc: u as u32 });
                }
            }
        }

        // Admit entry jobs.
        let period = self.sched.period();
        for &t in self.g.entries() {
            for c in 0..self.nrep as u8 {
                let r = ReplicaId::new(t, c).dense(self.nrep);
                for k in 0..self.items {
                    self.push(
                        k as f64 * period,
                        Event::JobReady {
                            rep: r as u32,
                            item: k as u32,
                        },
                    );
                }
            }
        }

        while let Some(Reverse((tbits, _, event))) = self.heap.pop() {
            let now = f64::from_bits(tbits);
            match event {
                Event::JobReady { rep, item } => self.on_job_ready(rep, item, now),
                Event::JobFinish { rep, item } => self.on_job_finish(rep, item, now),
                Event::MsgReady { ev, item } => self.on_msg_ready(ev, item, now),
                Event::MsgArrive { ev, item } => self.on_msg_arrive(ev, item, now),
                Event::ProcCrash { .. } => self.on_proc_crash(now),
            }
        }

        self.finish(period)
    }

    fn on_job_ready(&mut self, rep: u32, item: u32, now: f64) {
        let (r, k) = (rep as usize, item as usize);
        if self.job_scheduled[self.idx(r, k)] {
            return;
        }
        let i = self.idx(r, k);
        self.job_scheduled[i] = true;
        let rid = ReplicaId::from_dense(r, self.nrep);
        let u = self.proc_of[r];
        let exec = self.sched.finish(rid) - self.sched.start(rid);
        let start = now.max(self.proc_free[u]);
        self.proc_free[u] = start + exec;
        self.push(start + exec, Event::JobFinish { rep, item });
    }

    fn on_job_finish(&mut self, rep: u32, item: u32, now: f64) {
        let (r, k) = (rep as usize, item as usize);
        let u = self.proc_of[r];
        if self.crashed(u, now) {
            return; // fail-silent: no output
        }
        let i = self.idx(r, k);
        self.job_done_at[i] = now;
        self.produced[i] = true;
        self.makespan = self.makespan.max(now);
        // Local deliveries are instantaneous.
        for li in 0..self.local_out[r].len() {
            let (dst, slot) = self.local_out[r][li];
            self.deliver(dst as usize, slot as usize, k, now);
        }
        for mi in 0..self.out_msgs[r].len() {
            let ev = self.out_msgs[r][mi];
            self.push(now, Event::MsgReady { ev, item });
        }
        // A late producer is the recovery source for consumers whose
        // scheduled lanes died before this output existed.
        if self.policy == RecoveryPolicy::Reroute {
            let t = ReplicaId::from_dense(r, self.nrep).task;
            for ci in 0..self.consumers[t.index()].len() {
                let (dst, slot) = self.consumers[t.index()][ci];
                self.attempt_reroute(dst as usize, slot as usize, k, now);
            }
        }
    }

    fn on_msg_ready(&mut self, ev: u32, item: u32, now: f64) {
        let (h, u, dur) = {
            let m = &self.msgs[ev as usize];
            (m.src_proc, m.dst_proc, m.dur)
        };
        let mut start = now.max(self.send_free[h]).max(self.recv_free[u]);
        // Routed platforms: the transfer also waits for — and then holds —
        // every physical link on its route (circuit-style, like the
        // placement engine's reservations).
        let route = match self.platform {
            Some(p) if !self.link_free.is_empty() => {
                let route = p.route(ProcId(h as u16), ProcId(u as u16));
                for &l in route {
                    start = start.max(self.link_free[l.index()]);
                }
                route
            }
            _ => &[],
        };
        if self.crashed(h, start) {
            // Sender dead before transmission.
            self.on_msg_cut(ev as usize, item as usize, start);
            return;
        }
        self.send_free[h] = start + dur;
        self.recv_free[u] = start + dur;
        for &l in route {
            self.link_free[l.index()] = start + dur;
        }
        self.push(start + dur, Event::MsgArrive { ev, item });
    }

    fn on_msg_arrive(&mut self, ev: u32, item: u32, now: f64) {
        let (h, dst, slot) = {
            let m = &self.msgs[ev as usize];
            (m.src_proc, m.dst_rep as usize, m.dst_slot as usize)
        };
        if self.crashed(h, now) {
            // The tail of the transmission was cut off.
            self.on_msg_cut(ev as usize, item as usize, now);
            return;
        }
        self.deliver(dst, slot, item as usize, now);
    }

    /// Bulk recovery scan at a crash instant: every still-missing in-edge
    /// whose scheduled sources are now all dead gets a re-route attempt
    /// (items produced only later are picked up by `on_job_finish`).
    fn on_proc_crash(&mut self, now: f64) {
        for dst in 0..self.n_rep {
            for slot in 0..self.slot_edges[dst].len() {
                for k in 0..self.items {
                    self.attempt_reroute(dst, slot, k, now);
                }
            }
        }
    }

    fn finish(self, period: f64) -> SimReport {
        // Per-item completion: earliest surviving exit replica per exit
        // task, latest over exit tasks.
        let mut item_latency = Vec::with_capacity(self.items);
        let mut item_completion = Vec::with_capacity(self.items);
        for k in 0..self.items {
            let mut done: Option<f64> = Some(0.0);
            for &t in self.g.exits() {
                let best = (0..self.nrep as u8)
                    .filter_map(|c| {
                        let r = ReplicaId::new(t, c).dense(self.nrep);
                        self.produced[self.idx(r, k)].then(|| self.job_done_at[self.idx(r, k)])
                    })
                    .fold(None, |acc: Option<f64>, v| {
                        Some(acc.map_or(v, |a| a.min(v)))
                    });
                done = match (done, best) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    _ => None,
                };
            }
            match done {
                Some(d) => {
                    item_completion.push(Some(d));
                    item_latency.push(Some(d - k as f64 * period));
                }
                None => {
                    item_completion.push(None);
                    item_latency.push(None);
                }
            }
        }
        SimReport {
            item_latency,
            item_completion,
            makespan: self.makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltf_schedule::{CommEvent, ScheduleData, SourceChoice};

    fn sample() -> (TaskGraph, Platform, Schedule) {
        let mut b = ltf_graph::GraphBuilder::new();
        let t0 = b.add_task(4.0);
        let t1 = b.add_task(2.0);
        let e = b.add_edge(t0, t1, 3.0);
        let g = b.build().unwrap();
        let p = Platform::homogeneous(4, 1.0, 1.0);
        let r00 = ReplicaId::new(t0, 0);
        let r01 = ReplicaId::new(t0, 1);
        let r10 = ReplicaId::new(t1, 0);
        let r11 = ReplicaId::new(t1, 1);
        let data = ScheduleData {
            epsilon: 1,
            period: 10.0,
            proc_of: vec![ProcId(0), ProcId(1), ProcId(2), ProcId(3)],
            start: vec![0.0, 0.0, 7.0, 7.0],
            finish: vec![4.0, 4.0, 9.0, 9.0],
            sources: vec![
                vec![],
                vec![],
                vec![SourceChoice::one(e, 0)],
                vec![SourceChoice::one(e, 1)],
            ],
            comm_events: vec![
                CommEvent {
                    edge: e,
                    src: r00,
                    dst: r10,
                    src_proc: ProcId(0),
                    dst_proc: ProcId(2),
                    start: 4.0,
                    finish: 7.0,
                },
                CommEvent {
                    edge: e,
                    src: r01,
                    dst: r11,
                    src_proc: ProcId(1),
                    dst_proc: ProcId(3),
                    start: 4.0,
                    finish: 7.0,
                },
            ],
        };
        let s = Schedule::new(&g, &p, data);
        (g, p, s)
    }

    #[test]
    fn asap_latency_at_most_synchronous() {
        let (g, _, s) = sample();
        let rep = asap(&g, &s, &AsapConfig::new(4));
        assert_eq!(rep.produced(), 4);
        // First item: t0 done at 4, msg 4..7, t1 done at 9 -> latency 9,
        // well under the synchronous 30.
        assert_eq!(rep.item_latency[0], Some(9.0));
        for l in rep.item_latency.iter().flatten() {
            assert!(*l <= 30.0 + 1e-9);
        }
    }

    #[test]
    fn asap_steady_state_period_respected() {
        let (g, _, s) = sample();
        let rep = asap(&g, &s, &AsapConfig::new(20));
        // Period 10 is far above the bottleneck load (4): completions are
        // period-spaced.
        let p = rep.achieved_period().unwrap();
        assert!((p - 10.0).abs() < 1e-9, "period {p}");
    }

    #[test]
    fn crash_from_start_uses_surviving_lane() {
        let (g, _, s) = sample();
        let crash = CrashSet::from_procs(&[ProcId(2)], 4);
        let rep = asap(&g, &s, &AsapConfig::with_crash(4, crash, 0.0));
        assert_eq!(rep.produced(), 4);
        // Lane 1 (P2 -> P4) still delivers every item at the same times.
        assert_eq!(rep.item_latency[0], Some(9.0));
    }

    #[test]
    fn mid_stream_crash_loses_late_items_when_both_lanes_cut() {
        let (g, _, s) = sample();
        let crash = CrashSet::from_procs(&[ProcId(2), ProcId(3)], 4);
        // Both exit hosts die at t=25: items completing before that
        // survive, later ones are lost.
        let rep = asap(&g, &s, &AsapConfig::with_crash(6, crash, 25.0));
        assert!(rep.produced() >= 2, "early items survive");
        assert!(rep.lost() >= 2, "late items lost");
    }

    #[test]
    fn double_crash_from_start_loses_all() {
        let (g, _, s) = sample();
        let crash = CrashSet::from_procs(&[ProcId(2), ProcId(3)], 4);
        let rep = asap(&g, &s, &AsapConfig::with_crash(3, crash, 0.0));
        assert_eq!(rep.produced(), 0);
    }

    #[test]
    fn trace_never_matches_failure_free() {
        let (g, p, s) = sample();
        let base = asap(&g, &s, &AsapConfig::new(8));
        for policy in [RecoveryPolicy::FailStop, RecoveryPolicy::Reroute] {
            let cfg = TraceConfig::new(8, CrashTrace::never(4), policy);
            let rep = asap_trace(&g, &p, &s, &cfg);
            assert_eq!(rep.item_latency, base.item_latency);
            assert_eq!(rep.item_completion, base.item_completion);
            assert_eq!(rep.makespan.to_bits(), base.makespan.to_bits());
        }
    }

    #[test]
    fn trace_fixed_set_matches_fail_stop_crash_injection() {
        let (g, p, s) = sample();
        let crash = CrashSet::from_procs(&[ProcId(2), ProcId(3)], 4);
        let base = asap(&g, &s, &AsapConfig::with_crash(6, crash.clone(), 25.0));
        let cfg = TraceConfig::new(
            6,
            CrashTrace::from_crash_set(&crash, 4, 25.0),
            RecoveryPolicy::FailStop,
        );
        let rep = asap_trace(&g, &p, &s, &cfg);
        assert_eq!(rep.item_latency, base.item_latency);
        assert_eq!(rep.item_completion, base.item_completion);
    }

    #[test]
    fn reroute_recovers_items_fail_stop_loses() {
        let (g, p, s) = sample();
        // t0's lane-0 host (P1) dies at t=15: from item ~2 onward, lane 0's
        // consumer (t1 on P3) starves under fail-stop... but its sibling
        // t0^2 on P2 survives, so re-routing keeps feeding it. Meanwhile
        // lane 1 stays fully alive, so nothing is lost either way — kill
        // P2's t1 host (P4... ProcId(3)) too, leaving only the crossed
        // path t0^2 (P2) -> re-route -> t1^1 (P3).
        let trace = CrashTrace::from_crash_times(vec![15.0, f64::INFINITY, f64::INFINITY, 15.0]);
        let failstop = asap_trace(
            &g,
            &p,
            &s,
            &TraceConfig::new(8, trace.clone(), RecoveryPolicy::FailStop),
        );
        let reroute = asap_trace(
            &g,
            &p,
            &s,
            &TraceConfig::new(8, trace, RecoveryPolicy::Reroute),
        );
        assert!(
            reroute.produced() > failstop.produced(),
            "re-route should recover items fail-stop loses ({} vs {})",
            reroute.produced(),
            failstop.produced()
        );
        // With one entry and one exit replica surviving, every item should
        // still be produced via the re-routed path.
        assert_eq!(reroute.produced(), 8);
    }

    #[test]
    fn trace_replay_serializes_messages_sharing_a_link() {
        use ltf_platform::{CommMode, Topology};
        // Two independent pipelines on a 4-processor chain. Their messages
        // use disjoint port pairs (P1→P4 and P2→P3) but both routes cross
        // the middle link P2–P3.
        let mut b = ltf_graph::GraphBuilder::new();
        let t0 = b.add_task(4.0);
        let t1 = b.add_task(2.0);
        let t2 = b.add_task(4.0);
        let t3 = b.add_task(2.0);
        let e0 = b.add_edge(t0, t1, 3.0);
        let e1 = b.add_edge(t2, t3, 3.0);
        let g = b.build().unwrap();
        let chain = || Topology::chain(vec![1.0; 4], 1.0);
        let flat = chain().into_platform().unwrap();
        let routed = chain().into_platform_with(CommMode::Contended).unwrap();
        let mk = |p: &Platform| {
            let data = ScheduleData {
                epsilon: 0,
                period: 20.0,
                proc_of: vec![ProcId(0), ProcId(3), ProcId(1), ProcId(2)],
                start: vec![0.0, 7.0, 0.0, 7.0],
                finish: vec![4.0, 9.0, 4.0, 9.0],
                sources: vec![
                    vec![],
                    vec![SourceChoice::one(e0, 0)],
                    vec![],
                    vec![SourceChoice::one(e1, 0)],
                ],
                comm_events: vec![
                    CommEvent {
                        edge: e0,
                        src: ReplicaId::new(t0, 0),
                        dst: ReplicaId::new(t1, 0),
                        src_proc: ProcId(0),
                        dst_proc: ProcId(3),
                        start: 4.0,
                        finish: 7.0,
                    },
                    CommEvent {
                        edge: e1,
                        src: ReplicaId::new(t2, 0),
                        dst: ReplicaId::new(t3, 0),
                        src_proc: ProcId(1),
                        dst_proc: ProcId(2),
                        start: 4.0,
                        finish: 7.0,
                    },
                ],
            };
            Schedule::new(&g, p, data)
        };
        let cfg = TraceConfig::new(1, CrashTrace::never(4), RecoveryPolicy::FailStop);
        // Matrix platform: ports are free, both transfers run 4..7 and both
        // sinks finish at 9.
        let base = asap_trace(&g, &flat, &mk(&flat), &cfg);
        assert_eq!(base.item_latency[0], Some(9.0));
        // Contended platform: the second transfer waits for the shared
        // middle link (7..10), so its sink finishes at 12.
        let routed_rep = asap_trace(&g, &routed, &mk(&routed), &cfg);
        assert_eq!(routed_rep.item_latency[0], Some(12.0));
    }

    #[test]
    fn reroute_without_any_survivor_still_loses() {
        let (g, p, s) = sample();
        // Both exit hosts die: no amount of re-routing produces outputs.
        let trace = CrashTrace::from_crash_times(vec![f64::INFINITY, f64::INFINITY, 5.0, 5.0]);
        let rep = asap_trace(
            &g,
            &p,
            &s,
            &TraceConfig::new(6, trace, RecoveryPolicy::Reroute),
        );
        assert_eq!(rep.produced(), 0);
    }
}
