//! Public entry points: LTF, R-LTF and the fault-free reference schedule.

use crate::config::{AlgoConfig, AlgoKind, ScheduleError};
use crate::convert;
use crate::driver::{self, Policy};
use crate::engine::Engine;
use ltf_graph::TaskGraph;
use ltf_platform::Platform;
use ltf_schedule::Schedule;

/// The **LTF** algorithm (paper §4.1, Algorithm 4.1): forward chunked list
/// mapping with the one-to-one replication procedure and minimum-finish-
/// time processor selection, under the throughput constraint
/// `T = 1/cfg.period` and fault-tolerance degree `cfg.epsilon`.
///
/// Fails with [`ScheduleError::Infeasible`] when some replica cannot be
/// placed without exceeding the period — the behaviour the paper
/// demonstrates on the Fig. 2 example with 8 processors.
pub fn ltf_schedule(
    g: &TaskGraph,
    p: &Platform,
    cfg: &AlgoConfig,
) -> Result<Schedule, ScheduleError> {
    let mut engine = Engine::new(g, p, cfg);
    driver::run(&mut engine, cfg, Policy::Ltf)?;
    Ok(convert::forward_schedule(
        engine,
        g,
        p,
        cfg.epsilon,
        cfg.period,
    ))
}

/// The **R-LTF** algorithm (paper §4.2): bottom-up traversal of the
/// application graph guided by Rule 1 (never grow the pipeline stage count
/// when avoidable) and Rule 2 (one-to-one replica spreading on linear chain
/// sections), minimizing the pipeline latency `L = (2S − 1)/T`.
pub fn rltf_schedule(
    g: &TaskGraph,
    p: &Platform,
    cfg: &AlgoConfig,
) -> Result<Schedule, ScheduleError> {
    let rev = g.reversed();
    let mut engine = Engine::new(&rev, p, cfg);
    driver::run(&mut engine, cfg, Policy::Rltf)?;
    Ok(convert::reversed_schedule(
        engine,
        g,
        p,
        cfg.epsilon,
        cfg.period,
    ))
}

/// Dispatch by [`AlgoKind`].
pub fn schedule_with(
    kind: AlgoKind,
    g: &TaskGraph,
    p: &Platform,
    cfg: &AlgoConfig,
) -> Result<Schedule, ScheduleError> {
    match kind {
        AlgoKind::Ltf => ltf_schedule(g, p, cfg),
        AlgoKind::Rltf => rltf_schedule(g, p, cfg),
    }
}

/// The **fault-free reference schedule** of §5: R-LTF without replication
/// (`ε = 0`), assuming a completely safe system. The paper's overhead
/// metric is `(L_algo − L_FF) / L_FF` against this schedule's latency.
pub fn fault_free_reference(
    g: &TaskGraph,
    p: &Platform,
    period: f64,
    seed: u64,
) -> Result<Schedule, ScheduleError> {
    let cfg = AlgoConfig::new(0, period).seeded(seed);
    rltf_schedule(g, p, &cfg)
}
