//! Legacy free-function entry points and the prepared problem instance.
//!
//! The free functions ([`ltf_schedule`], [`rltf_schedule`], [`schedule_with`],
//! [`fault_free_reference`]) predate the [`Solver`](crate::Solver) /
//! [`Heuristic`](crate::Heuristic) API and are kept as thin deprecated
//! shims so downstream code migrates incrementally; each one is equivalent
//! to a single [`Solver`](crate::Solver) call (see the crate-level docs for
//! the migration table).

use crate::config::{AlgoConfig, AlgoKind, ScheduleError};
use crate::convert;
use crate::driver::{self, Policy};
use crate::engine::Engine;
use crate::prio::LevelCache;
use ltf_graph::TaskGraph;
use ltf_platform::Platform;
use ltf_schedule::Schedule;
use std::sync::OnceLock;

/// The **LTF** algorithm (paper §4.1, Algorithm 4.1): forward chunked list
/// mapping with the one-to-one replication procedure and minimum-finish-
/// time processor selection, under the throughput constraint
/// `T = 1/cfg.period` and fault-tolerance degree `cfg.epsilon`.
///
/// Fails with [`ScheduleError::Infeasible`] when some replica cannot be
/// placed without exceeding the period — the behaviour the paper
/// demonstrates on the Fig. 2 example with 8 processors.
#[deprecated(
    since = "0.1.0",
    note = "use `Solver::builtin(g, p).solve(\"ltf\", cfg)` or `Ltf.schedule(&PreparedInstance::new(g, p), cfg)`"
)]
pub fn ltf_schedule(
    g: &TaskGraph,
    p: &Platform,
    cfg: &AlgoConfig,
) -> Result<Schedule, ScheduleError> {
    ltf_cached(&PreparedInstance::new(g, p), cfg)
}

/// LTF over a prepared instance, reusing its forward level cache.
pub(crate) fn ltf_cached(
    inst: &PreparedInstance<'_>,
    cfg: &AlgoConfig,
) -> Result<Schedule, ScheduleError> {
    let (g, p) = (inst.graph(), inst.platform());
    let mut engine = Engine::new(g, p, cfg);
    driver::run(&mut engine, cfg, Policy::Ltf, inst.levels_forward())?;
    Ok(convert::forward_schedule(
        engine,
        g,
        p,
        cfg.epsilon,
        cfg.period,
    ))
}

/// The **R-LTF** algorithm (paper §4.2): bottom-up traversal of the
/// application graph guided by Rule 1 (never grow the pipeline stage count
/// when avoidable) and Rule 2 (one-to-one replica spreading on linear chain
/// sections), minimizing the pipeline latency `L = (2S − 1)/T`.
#[deprecated(
    since = "0.1.0",
    note = "use `Solver::builtin(g, p).solve(\"rltf\", cfg)` or `Rltf.schedule(&PreparedInstance::new(g, p), cfg)`"
)]
pub fn rltf_schedule(
    g: &TaskGraph,
    p: &Platform,
    cfg: &AlgoConfig,
) -> Result<Schedule, ScheduleError> {
    rltf_cached(&PreparedInstance::new(g, p), cfg)
}

/// R-LTF over a prepared instance, reusing its reversed graph, level cache
/// and reversal slot table.
pub(crate) fn rltf_cached(
    inst: &PreparedInstance<'_>,
    cfg: &AlgoConfig,
) -> Result<Schedule, ScheduleError> {
    let (g, p) = (inst.graph(), inst.platform());
    let mut engine = Engine::new_reversed(inst.reversed(), g, inst.reversal(), p, cfg);
    driver::run(&mut engine, cfg, Policy::Rltf, inst.levels_reversed())?;
    Ok(convert::reversed_schedule(
        engine,
        g,
        p,
        cfg.epsilon,
        cfg.period,
    ))
}

/// Dispatch by [`AlgoKind`].
#[deprecated(
    since = "0.1.0",
    note = "use `Solver::builtin(g, p).solve(kind.name(), cfg)` or `kind.heuristic().schedule(..)`"
)]
pub fn schedule_with(
    kind: AlgoKind,
    g: &TaskGraph,
    p: &Platform,
    cfg: &AlgoConfig,
) -> Result<Schedule, ScheduleError> {
    let inst = PreparedInstance::new(g, p);
    match kind {
        AlgoKind::Ltf => ltf_cached(&inst, cfg),
        AlgoKind::Rltf => rltf_cached(&inst, cfg),
    }
}

/// A `(graph, platform)` pair with the period-independent derivations —
/// the reversed graph for bottom-up traversals and the platform-averaged
/// level caches for both directions — computed lazily, at most once, and
/// shared by every schedule attempt on the instance.
///
/// The objective-space searches probe the same instance at dozens of
/// candidate periods (or ε values); preparing once keeps each probe's
/// setup cost at "allocate an engine" instead of "re-derive levels,
/// averaged weights and the reversed graph". Laziness means a session that
/// only ever runs forward heuristics never pays for the reversed
/// derivations (and vice versa).
pub struct PreparedInstance<'a> {
    g: &'a TaskGraph,
    p: &'a Platform,
    rev: OnceLock<TaskGraph>,
    fwd_cache: OnceLock<LevelCache>,
    rev_cache: OnceLock<LevelCache>,
    rev_slots: OnceLock<Vec<u32>>,
}

impl<'a> PreparedInstance<'a> {
    /// Wrap `g` on `p`; direction-specific derivations are computed on
    /// first use.
    pub fn new(g: &'a TaskGraph, p: &'a Platform) -> Self {
        Self {
            g,
            p,
            rev: OnceLock::new(),
            fwd_cache: OnceLock::new(),
            rev_cache: OnceLock::new(),
            rev_slots: OnceLock::new(),
        }
    }

    /// The application graph this instance was prepared for.
    pub fn graph(&self) -> &TaskGraph {
        self.g
    }

    /// The platform this instance was prepared for.
    pub fn platform(&self) -> &Platform {
        self.p
    }

    /// The reversed application graph (computed on first use), shared by
    /// every bottom-up traversal over this instance.
    pub fn reversed(&self) -> &TaskGraph {
        self.rev.get_or_init(|| self.g.reversed())
    }

    /// Platform-averaged level cache of the forward graph (computed on
    /// first use). Drives LTF's priorities.
    pub fn levels_forward(&self) -> &LevelCache {
        self.fwd_cache
            .get_or_init(|| LevelCache::compute(self.g, self.p))
    }

    /// Platform-averaged level cache of the reversed graph (computed on
    /// first use). Drives R-LTF's priorities.
    pub fn levels_reversed(&self) -> &LevelCache {
        self.rev_cache
            .get_or_init(|| LevelCache::compute(self.reversed(), self.p))
    }

    /// Reversal slot table (computed on first use): `slots[e]` is the
    /// position of edge `e` in `g.pred_edges(dst(e))`. A reverse-mode
    /// engine uses it to maintain the forward source relation
    /// incrementally, so the reversal transposition is cached per instance
    /// instead of re-derived per solve (see
    /// [`crate::convert::reversed_schedule`]).
    pub(crate) fn reversal(&self) -> &[u32] {
        self.rev_slots.get_or_init(|| {
            let mut slots = vec![0u32; self.g.num_edges()];
            for y in self.g.tasks() {
                for (i, &e) in self.g.pred_edges(y).iter().enumerate() {
                    slots[e.index()] = i as u32;
                }
            }
            slots
        })
    }

    /// Schedule with the chosen built-in heuristic, reusing the cached
    /// derivations.
    #[deprecated(
        since = "0.1.0",
        note = "use `kind.heuristic().schedule(self, cfg)` or go through a `Solver`"
    )]
    pub fn schedule(&self, kind: AlgoKind, cfg: &AlgoConfig) -> Result<Schedule, ScheduleError> {
        match kind {
            AlgoKind::Ltf => ltf_cached(self, cfg),
            AlgoKind::Rltf => rltf_cached(self, cfg),
        }
    }
}

/// The **fault-free reference schedule** of §5: R-LTF without replication
/// (`ε = 0`), assuming a completely safe system. The paper's overhead
/// metric is `(L_algo − L_FF) / L_FF` against this schedule's latency.
#[deprecated(
    since = "0.1.0",
    note = "use `Solver::builtin(g, p).solve(\"fault-free\", cfg)` (the heuristic forces ε = 0)"
)]
pub fn fault_free_reference(
    g: &TaskGraph,
    p: &Platform,
    period: f64,
    seed: u64,
) -> Result<Schedule, ScheduleError> {
    let cfg = AlgoConfig::new(0, period).seeded(seed);
    rltf_cached(&PreparedInstance::new(g, p), &cfg)
}

/// Schedule through the frozen snapshot-based reference implementation
/// ([`crate::reference`]): the pre-arena parallel-`Vec` engine, the
/// clone-based R-LTF speculation and the batch reversal transposition,
/// kept as an independent oracle for differential testing of the
/// production path (struct-of-arrays state, scratch arenas, undo journal,
/// incremental reversal). The overlay probe and interval-index layers are
/// shared — their equivalence with naive recomputation is covered
/// separately by the property tests in `ltf-schedule`. Must produce
/// schedules identical to the production heuristics on every input.
#[doc(hidden)]
pub fn schedule_with_reference(
    kind: AlgoKind,
    g: &TaskGraph,
    p: &Platform,
    cfg: &AlgoConfig,
) -> Result<Schedule, ScheduleError> {
    crate::reference::schedule(kind, g, p, cfg)
}
