//! Public entry points: LTF, R-LTF and the fault-free reference schedule.

use crate::config::{AlgoConfig, AlgoKind, ScheduleError};
use crate::convert;
use crate::driver::{self, Policy};
use crate::engine::Engine;
use crate::prio::LevelCache;
use ltf_graph::TaskGraph;
use ltf_platform::Platform;
use ltf_schedule::Schedule;

/// The **LTF** algorithm (paper §4.1, Algorithm 4.1): forward chunked list
/// mapping with the one-to-one replication procedure and minimum-finish-
/// time processor selection, under the throughput constraint
/// `T = 1/cfg.period` and fault-tolerance degree `cfg.epsilon`.
///
/// Fails with [`ScheduleError::Infeasible`] when some replica cannot be
/// placed without exceeding the period — the behaviour the paper
/// demonstrates on the Fig. 2 example with 8 processors.
pub fn ltf_schedule(
    g: &TaskGraph,
    p: &Platform,
    cfg: &AlgoConfig,
) -> Result<Schedule, ScheduleError> {
    let cache = LevelCache::compute(g, p);
    ltf_schedule_cached(g, p, cfg, &cache)
}

fn ltf_schedule_cached(
    g: &TaskGraph,
    p: &Platform,
    cfg: &AlgoConfig,
    cache: &LevelCache,
) -> Result<Schedule, ScheduleError> {
    let mut engine = Engine::new(g, p, cfg);
    driver::run(&mut engine, cfg, Policy::Ltf, cache)?;
    Ok(convert::forward_schedule(
        engine,
        g,
        p,
        cfg.epsilon,
        cfg.period,
    ))
}

/// The **R-LTF** algorithm (paper §4.2): bottom-up traversal of the
/// application graph guided by Rule 1 (never grow the pipeline stage count
/// when avoidable) and Rule 2 (one-to-one replica spreading on linear chain
/// sections), minimizing the pipeline latency `L = (2S − 1)/T`.
pub fn rltf_schedule(
    g: &TaskGraph,
    p: &Platform,
    cfg: &AlgoConfig,
) -> Result<Schedule, ScheduleError> {
    let rev = g.reversed();
    let cache = LevelCache::compute(&rev, p);
    rltf_schedule_cached(g, &rev, p, cfg, &cache)
}

fn rltf_schedule_cached(
    g: &TaskGraph,
    rev: &TaskGraph,
    p: &Platform,
    cfg: &AlgoConfig,
    cache: &LevelCache,
) -> Result<Schedule, ScheduleError> {
    let mut engine = Engine::new(rev, p, cfg);
    driver::run(&mut engine, cfg, Policy::Rltf, cache)?;
    Ok(convert::reversed_schedule(
        engine,
        g,
        p,
        cfg.epsilon,
        cfg.period,
    ))
}

/// Dispatch by [`AlgoKind`].
pub fn schedule_with(
    kind: AlgoKind,
    g: &TaskGraph,
    p: &Platform,
    cfg: &AlgoConfig,
) -> Result<Schedule, ScheduleError> {
    match kind {
        AlgoKind::Ltf => ltf_schedule(g, p, cfg),
        AlgoKind::Rltf => rltf_schedule(g, p, cfg),
    }
}

/// A `(graph, platform)` pair with everything period-independent
/// precomputed: the reversed graph for R-LTF and the platform-averaged
/// level caches for both traversal directions.
///
/// The objective-space searches probe the same instance at dozens of
/// candidate periods (or ε values); preparing once keeps each probe's
/// setup cost at "allocate an engine" instead of "re-derive levels,
/// averaged weights and the reversed graph".
pub struct PreparedInstance<'a> {
    g: &'a TaskGraph,
    p: &'a Platform,
    rev: TaskGraph,
    fwd_cache: LevelCache,
    rev_cache: LevelCache,
}

impl<'a> PreparedInstance<'a> {
    /// Precompute the direction-specific level caches for `g` on `p`.
    pub fn new(g: &'a TaskGraph, p: &'a Platform) -> Self {
        let rev = g.reversed();
        let fwd_cache = LevelCache::compute(g, p);
        let rev_cache = LevelCache::compute(&rev, p);
        Self {
            g,
            p,
            rev,
            fwd_cache,
            rev_cache,
        }
    }

    /// The application graph this instance was prepared for.
    pub fn graph(&self) -> &TaskGraph {
        self.g
    }

    /// The platform this instance was prepared for.
    pub fn platform(&self) -> &Platform {
        self.p
    }

    /// Schedule with the chosen heuristic, reusing the precomputed caches.
    /// Equivalent to [`schedule_with`] on the same inputs.
    pub fn schedule(&self, kind: AlgoKind, cfg: &AlgoConfig) -> Result<Schedule, ScheduleError> {
        match kind {
            AlgoKind::Ltf => ltf_schedule_cached(self.g, self.p, cfg, &self.fwd_cache),
            AlgoKind::Rltf => rltf_schedule_cached(self.g, &self.rev, self.p, cfg, &self.rev_cache),
        }
    }
}

/// The **fault-free reference schedule** of §5: R-LTF without replication
/// (`ε = 0`), assuming a completely safe system. The paper's overhead
/// metric is `(L_algo − L_FF) / L_FF` against this schedule's latency.
pub fn fault_free_reference(
    g: &TaskGraph,
    p: &Platform,
    period: f64,
    seed: u64,
) -> Result<Schedule, ScheduleError> {
    let cfg = AlgoConfig::new(0, period).seeded(seed);
    rltf_schedule(g, p, &cfg)
}

/// Schedule through the snapshot-based reference driver: R-LTF's
/// task-level modes are compared via whole-engine clones (the
/// pre-incremental control flow) instead of the undo journal, isolating
/// the journal/rollback/replay machinery for differential testing. The
/// probe, interval-index and stage layers are shared with the production
/// path — their equivalence with naive recomputation is covered
/// separately by the property tests in `ltf-schedule`. Must produce
/// schedules identical to [`schedule_with`] on every input.
#[doc(hidden)]
pub fn schedule_with_reference(
    kind: AlgoKind,
    g: &TaskGraph,
    p: &Platform,
    cfg: &AlgoConfig,
) -> Result<Schedule, ScheduleError> {
    match kind {
        AlgoKind::Ltf => {
            let cache = LevelCache::compute(g, p);
            let mut engine = Engine::new(g, p, cfg);
            driver::run_reference(&mut engine, cfg, Policy::Ltf, &cache)?;
            Ok(convert::forward_schedule(
                engine,
                g,
                p,
                cfg.epsilon,
                cfg.period,
            ))
        }
        AlgoKind::Rltf => {
            let rev = g.reversed();
            let cache = LevelCache::compute(&rev, p);
            let mut engine = Engine::new(&rev, p, cfg);
            driver::run_reference(&mut engine, cfg, Policy::Rltf, &cache)?;
            Ok(convert::reversed_schedule(
                engine,
                g,
                p,
                cfg.epsilon,
                cfg.period,
            ))
        }
    }
}
