//! Deterministic partitioning of a work-item key space across workers.
//!
//! The campaign runner (and any other distributed driver) splits an
//! ordered list of work items across `of` shards by round-robin on the
//! item index: shard `k` owns exactly the items `i` with `i % of == k`.
//! The assignment depends only on `(index, of)` — never on worker count,
//! timing, or which process asks — so two runs with the same item list
//! and shard count agree on ownership, a crashed shard can be recomputed
//! by any other process, and the union of all shards is a partition
//! (every item owned exactly once, proven by the tests below).
//!
//! ```
//! use ltf_core::shard::Shard;
//!
//! let shard: Shard = "1/4".parse().unwrap();
//! assert!(shard.owns(5) && !shard.owns(6));
//! assert_eq!(shard.indices(10), vec![1, 5, 9]);
//! // The trivial shard owns everything (a single-process run).
//! assert!(Shard::solo().owns(7));
//! ```

/// One shard of a round-robin partition: this worker's index and the
/// total shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shard {
    index: usize,
    of: usize,
}

impl Shard {
    /// Shard `index` of `of`. Returns an error text when `of` is zero or
    /// `index` is out of range.
    pub fn new(index: usize, of: usize) -> Result<Self, String> {
        if of == 0 {
            return Err("shard count must be at least 1".into());
        }
        if index >= of {
            return Err(format!("shard index {index} out of range (0..{of})"));
        }
        Ok(Self { index, of })
    }

    /// The trivial partition: one shard owning every item (the
    /// single-process run every distributed result is compared against).
    pub fn solo() -> Self {
        Self { index: 0, of: 1 }
    }

    /// This shard's index (0-based).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Total number of shards in the partition.
    pub fn of(&self) -> usize {
        self.of
    }

    /// Whether this shard owns work item `i`.
    pub fn owns(&self, i: usize) -> bool {
        i % self.of == self.index
    }

    /// The indices this shard owns among `total` items, ascending.
    pub fn indices(&self, total: usize) -> Vec<usize> {
        (self.index..total).step_by(self.of).collect()
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.of)
    }
}

impl std::str::FromStr for Shard {
    type Err = String;

    /// Parse `"K/N"` (shard K of N).
    fn from_str(s: &str) -> Result<Self, String> {
        let (k, n) = s
            .split_once('/')
            .ok_or_else(|| format!("shard spec {s:?}: expected K/N"))?;
        let index: usize = k
            .trim()
            .parse()
            .map_err(|_| format!("shard spec {s:?}: bad index {k:?}"))?;
        let of: usize = n
            .trim()
            .parse()
            .map_err(|_| format!("shard spec {s:?}: bad count {n:?}"))?;
        Self::new(index, of)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_item_owned_by_exactly_one_shard() {
        for of in 1..=7usize {
            for item in 0..100usize {
                let owners = (0..of)
                    .filter(|&k| Shard::new(k, of).unwrap().owns(item))
                    .count();
                assert_eq!(owners, 1, "item {item} of {of} shards");
            }
        }
    }

    #[test]
    fn indices_match_owns() {
        let shard = Shard::new(2, 3).unwrap();
        let idx = shard.indices(11);
        assert_eq!(idx, vec![2, 5, 8]);
        for i in 0..11 {
            assert_eq!(shard.owns(i), idx.contains(&i));
        }
        assert!(Shard::new(0, 4).unwrap().indices(0).is_empty());
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let shard: Shard = "1/4".parse().unwrap();
        assert_eq!((shard.index(), shard.of()), (1, 4));
        assert_eq!(shard.to_string(), "1/4");
        assert_eq!(shard.to_string().parse::<Shard>().unwrap(), shard);
        assert_eq!(Shard::solo(), "0/1".parse().unwrap());
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!("".parse::<Shard>().is_err());
        assert!("3".parse::<Shard>().is_err());
        assert!("a/4".parse::<Shard>().is_err());
        assert!("1/x".parse::<Shard>().is_err());
        assert!("4/4".parse::<Shard>().is_err(), "index out of range");
        assert!("0/0".parse::<Shard>().is_err(), "zero shards");
        assert!(Shard::new(0, 0).is_err());
        assert!(Shard::new(5, 5).is_err());
    }
}
