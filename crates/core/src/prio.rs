//! Platform-averaged level cache and dirty-set priority maintenance.
//!
//! The chunked mapping loop ranks ready tasks by `tℓ(t) + bℓ(t)` (paper
//! §2) and refines the top-level term online with actual task finish times
//! ("update priority values of its successors"). Two structures make that
//! hot path incremental:
//!
//! * [`LevelCache`] — the placement-independent part: platform-averaged
//!   node/edge weights, bottom levels, and the static `tℓ + bℓ` baseline.
//!   It depends only on `(graph, platform)`, never on the period, the
//!   replication degree or the seed, so the objective-space searches in
//!   [`crate::search`] compute it **once** and reuse it across every
//!   probed candidate instead of re-deriving levels per schedule attempt.
//! * [`PrioTracker`] — the placement-dependent part: committed tasks are
//!   recorded in a dirty set ([`PrioTracker::mark_finished`]) and their
//!   successors' priorities are raised lazily in one batch
//!   ([`PrioTracker::flush`]) right before the next chunk selection reads
//!   them. Each commit costs `O(out-degree)` once; nothing is ever
//!   recomputed from scratch.
//!
//! [`PrioTracker::naive`] recomputes the same fixpoint from scratch; the
//! property tests assert the dirty-set maintenance agrees with it after
//! arbitrary commit/flush interleavings.

use ltf_graph::{levels, TaskGraph, TaskId, Weights};
use ltf_platform::{AverageWeightsInput, Platform};

/// Precomputed platform-averaged weights and static levels for one
/// `(graph, platform)` pair, shared across schedule attempts.
#[derive(Debug, Clone)]
pub struct LevelCache {
    /// Platform-averaged communication time per edge, indexed by `EdgeId`.
    pub avg_edge: Vec<f64>,
    /// Bottom levels `bℓ(t)` under the averaged weights.
    pub bottom: Vec<f64>,
    /// Static priorities `tℓ(t) + bℓ(t)` under the averaged weights.
    pub base_prio: Vec<f64>,
}

impl LevelCache {
    /// Compute the averaged weights and levels for `g` on `p`.
    pub fn compute(g: &TaskGraph, p: &Platform) -> Self {
        let exec: Vec<f64> = g.tasks().map(|t| g.exec(t)).collect();
        let volume: Vec<f64> = g.edge_ids().map(|e| g.edge(e).volume).collect();
        let avg = p.average_weights(&AverageWeightsInput {
            exec: &exec,
            volume: &volume,
        });
        let w = Weights::new(avg.node.clone(), avg.edge.clone());
        let bottom = levels::bottom_levels(g, &w);
        let tl = levels::top_levels(g, &w);
        let base_prio: Vec<f64> = tl.iter().zip(&bottom).map(|(a, b)| a + b).collect();
        Self {
            avg_edge: avg.edge,
            bottom,
            base_prio,
        }
    }
}

/// Dirty-set maintenance of the dynamic task priorities.
///
/// Committing a task marks it dirty with its actual finish time; the
/// pending raises are applied to its successors on the next [`flush`]
/// (once per chunk round, before priorities are read). Priorities only
/// ever grow, so the maintained values equal the from-scratch fixpoint
/// over the committed set regardless of commit order.
///
/// [`flush`]: PrioTracker::flush
#[derive(Debug, Clone)]
pub struct PrioTracker<'a> {
    cache: &'a LevelCache,
    prio: Vec<f64>,
    dirty: Vec<(TaskId, f64)>,
}

impl<'a> PrioTracker<'a> {
    /// Start from the static `tℓ + bℓ` priorities.
    pub fn new(cache: &'a LevelCache) -> Self {
        Self {
            cache,
            prio: cache.base_prio.clone(),
            dirty: Vec::new(),
        }
    }

    /// Record that every replica of `t` is placed with latest finish time
    /// `finish`. Cost: one push; successor updates are deferred.
    pub fn mark_finished(&mut self, t: TaskId, finish: f64) {
        self.dirty.push((t, finish));
    }

    /// Apply all pending raises: each dirty task lifts its successors to
    /// `finish + avg_edge + bℓ(succ)` when that beats their current
    /// priority.
    pub fn flush(&mut self, g: &TaskGraph) {
        for (t, tfin) in self.dirty.drain(..) {
            for &eid in g.succ_edges(t) {
                let s = g.edge(eid).dst;
                let cand = tfin + self.cache.avg_edge[eid.index()] + self.cache.bottom[s.index()];
                if cand > self.prio[s.index()] {
                    self.prio[s.index()] = cand;
                }
            }
        }
    }

    /// The current priorities. Callers flush first; a debug assertion
    /// guards against reading stale values.
    pub fn values(&self) -> &[f64] {
        debug_assert!(self.dirty.is_empty(), "read of unflushed priorities");
        &self.prio
    }

    /// From-scratch specification of the maintained priorities: the static
    /// baseline raised by every `(task, finish)` pair in `finished`. Used
    /// by the property tests to validate the dirty-set bookkeeping.
    pub fn naive(cache: &LevelCache, g: &TaskGraph, finished: &[(TaskId, f64)]) -> Vec<f64> {
        let mut prio = cache.base_prio.clone();
        for &(t, tfin) in finished {
            for &eid in g.succ_edges(t) {
                let s = g.edge(eid).dst;
                let cand = tfin + cache.avg_edge[eid.index()] + cache.bottom[s.index()];
                if cand > prio[s.index()] {
                    prio[s.index()] = cand;
                }
            }
        }
        prio
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltf_graph::GraphBuilder;

    fn diamond() -> TaskGraph {
        let mut b = GraphBuilder::new();
        let t0 = b.add_task(2.0);
        let t1 = b.add_task(3.0);
        let t2 = b.add_task(1.0);
        let t3 = b.add_task(2.0);
        b.add_edge(t0, t1, 1.0);
        b.add_edge(t0, t2, 1.0);
        b.add_edge(t1, t3, 1.0);
        b.add_edge(t2, t3, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn cache_matches_levels_module() {
        let g = diamond();
        let p = Platform::homogeneous(3, 1.0, 1.0);
        let cache = LevelCache::compute(&g, &p);
        let w = Weights::from_unit_speeds(&g);
        assert_eq!(cache.bottom, levels::bottom_levels(&g, &w));
        assert_eq!(cache.base_prio, levels::priorities(&g, &w));
    }

    #[test]
    fn flush_applies_pending_raises_once() {
        let g = diamond();
        let p = Platform::homogeneous(3, 1.0, 1.0);
        let cache = LevelCache::compute(&g, &p);
        let mut tr = PrioTracker::new(&cache);
        // A very late finish of t0 must lift both successors.
        tr.mark_finished(TaskId(0), 100.0);
        tr.flush(&g);
        let vals = tr.values();
        assert_eq!(vals[1], 100.0 + 1.0 + cache.bottom[1]);
        assert_eq!(vals[2], 100.0 + 1.0 + cache.bottom[2]);
        // Entry priority untouched.
        assert_eq!(vals[0], cache.base_prio[0]);
        // Agreement with the naive spec.
        assert_eq!(
            vals,
            &PrioTracker::naive(&cache, &g, &[(TaskId(0), 100.0)])[..]
        );
    }

    #[test]
    fn early_finish_never_lowers_priority() {
        let g = diamond();
        let p = Platform::homogeneous(3, 1.0, 1.0);
        let cache = LevelCache::compute(&g, &p);
        let mut tr = PrioTracker::new(&cache);
        tr.mark_finished(TaskId(0), 0.0);
        tr.flush(&g);
        assert_eq!(tr.values(), &cache.base_prio[..]);
    }
}
