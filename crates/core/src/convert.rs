//! Conversion of engine state into a canonical forward [`Schedule`].
//!
//! LTF schedules the application graph directly, so its engine state *is*
//! the forward schedule. R-LTF schedules the reversed graph `Ĝ`; mapping
//! its decisions back requires reflecting the timeline
//! (`t ↦ T_ref − t`, which preserves one-port disjointness, causality and
//! load sums) and transposing each communication pair: a replica of `x`
//! *receiving* from a replica of `y` in `Ĝ` is the same replica of `x`
//! *sending* to that replica of `y` along the original edge `x → y`
//! (edge ids are shared between `G` and `Ĝ`).

use crate::engine::Engine;
use ltf_graph::TaskGraph;
use ltf_platform::Platform;
use ltf_schedule::{CommEvent, Schedule, ScheduleData};

/// Build the schedule when the engine ran on the original graph (LTF).
/// The engine's per-commit stage vector *is* the guaranteed stage vector
/// in forward direction, so the schedule assembly skips the topological
/// stage recomputation.
pub(crate) fn forward_schedule(
    engine: Engine<'_>,
    g: &TaskGraph,
    p: &Platform,
    epsilon: u8,
    period: f64,
) -> Schedule {
    let (proc_of, start, finish, stage, sources, comm_events) = engine.into_parts();
    Schedule::with_stages(
        g,
        p,
        ScheduleData {
            epsilon,
            period,
            proc_of,
            start,
            finish,
            sources,
            comm_events,
        },
        stage,
    )
}

/// Build the schedule when the engine ran on `g.reversed()` (R-LTF).
///
/// `g` is the ORIGINAL application graph. The engine must have run in
/// reverse mode ([`Engine::new_reversed`]): the forward source relation —
/// the transposition of the `Ĝ`-direction decisions — was maintained
/// incrementally at every commit, so the conversion takes it ready-made
/// (per-replica lists in the original graph's in-edge order, source copies
/// ascending) instead of re-deriving it from the whole reverse relation on
/// every solve.
pub(crate) fn reversed_schedule(
    mut engine: Engine<'_>,
    g: &TaskGraph,
    p: &Platform,
    epsilon: u8,
    period: f64,
) -> Schedule {
    let fwd_sources = engine.take_fwd_sources();
    // A complete run fills every slot: one-to-one pairs the copies
    // bijectively per edge and receive-from-all covers them all.
    debug_assert!(fwd_sources
        .iter()
        .all(|list| list.iter().all(|c| !c.sources.is_empty())));
    // Reverse-direction stages do not transpose into forward guaranteed
    // stages (source roles flip), so the assembly recomputes them.
    let (proc_of, start_rev, finish_rev, _stage_rev, _sources_rev, events_rev) =
        engine.into_parts();

    // Reflection reference: everything must stay ≥ 0 after the flip.
    let t_ref = start_rev
        .iter()
        .chain(finish_rev.iter())
        .chain(events_rev.iter().flat_map(|e| [&e.start, &e.finish]))
        .fold(0.0f64, |a, &b| a.max(b));

    let start: Vec<f64> = finish_rev.iter().map(|&f| t_ref - f).collect();
    let finish: Vec<f64> = start_rev.iter().map(|&s| t_ref - s).collect();

    let comm_events: Vec<CommEvent> = events_rev
        .iter()
        .map(|e| CommEvent {
            edge: e.edge,
            src: e.dst,
            dst: e.src,
            src_proc: e.dst_proc,
            dst_proc: e.src_proc,
            start: t_ref - e.finish,
            finish: t_ref - e.start,
        })
        .collect();

    Schedule::new(
        g,
        p,
        ScheduleData {
            epsilon,
            period,
            proc_of,
            start,
            finish,
            sources: fwd_sources,
            comm_events,
        },
    )
}
