//! Conversion of engine state into a canonical forward [`Schedule`].
//!
//! LTF schedules the application graph directly, so its engine state *is*
//! the forward schedule. R-LTF schedules the reversed graph `Ĝ`; mapping
//! its decisions back requires reflecting the timeline
//! (`t ↦ T_ref − t`, which preserves one-port disjointness, causality and
//! load sums) and transposing each communication pair: a replica of `x`
//! *receiving* from a replica of `y` in `Ĝ` is the same replica of `x`
//! *sending* to that replica of `y` along the original edge `x → y`
//! (edge ids are shared between `G` and `Ĝ`).

use crate::engine::Engine;
use ltf_graph::{EdgeId, TaskGraph};
use ltf_platform::Platform;
use ltf_schedule::{CommEvent, ReplicaId, Schedule, ScheduleData, SourceChoice};

/// Build the schedule when the engine ran on the original graph (LTF).
/// The engine's per-commit stage vector *is* the guaranteed stage vector
/// in forward direction, so the schedule assembly skips the topological
/// stage recomputation.
pub(crate) fn forward_schedule(
    engine: Engine<'_>,
    g: &TaskGraph,
    p: &Platform,
    epsilon: u8,
    period: f64,
) -> Schedule {
    let (proc_of, start, finish, stage, sources, comm_events) = engine.into_parts();
    Schedule::with_stages(
        g,
        p,
        ScheduleData {
            epsilon,
            period,
            proc_of,
            start,
            finish,
            sources,
            comm_events,
        },
        stage,
    )
}

/// Build the schedule when the engine ran on `g.reversed()` (R-LTF).
///
/// `g` is the ORIGINAL application graph.
pub(crate) fn reversed_schedule(
    engine: Engine<'_>,
    g: &TaskGraph,
    p: &Platform,
    epsilon: u8,
    period: f64,
) -> Schedule {
    let nrep = epsilon as usize + 1;
    let n = g.num_tasks() * nrep;
    // Reverse-direction stages do not transpose into forward guaranteed
    // stages (source roles flip), so the assembly recomputes them.
    let (proc_of, start_rev, finish_rev, _stage_rev, sources_rev, events_rev) = engine.into_parts();

    // Reflection reference: everything must stay ≥ 0 after the flip.
    let t_ref = start_rev
        .iter()
        .chain(finish_rev.iter())
        .chain(events_rev.iter().flat_map(|e| [&e.start, &e.finish]))
        .fold(0.0f64, |a, &b| a.max(b));

    let start: Vec<f64> = finish_rev.iter().map(|&f| t_ref - f).collect();
    let finish: Vec<f64> = start_rev.iter().map(|&s| t_ref - s).collect();

    // Transpose the source relation: replica (x, i) receiving from (y, j)
    // over Ĝ-edge e  ⇒  forward source of (y, j) on original edge e is i.
    let mut fwd_sources: Vec<Vec<SourceChoice>> = (0..n).map(|_| Vec::new()).collect();
    for (ridx, choices) in sources_rev.iter().enumerate() {
        let x_rep = ReplicaId::from_dense(ridx, nrep);
        for choice in choices {
            // Original edge: x -> y (Ĝ in-edge of x shares the id).
            let y = g.edge(choice.edge).dst;
            debug_assert_eq!(g.edge(choice.edge).src, x_rep.task);
            for &j in &choice.sources {
                let tgt = ReplicaId::new(y, j).dense(nrep);
                push_source(&mut fwd_sources[tgt], choice.edge, x_rep.copy);
            }
        }
    }
    // Deterministic ordering: per replica follow the graph's in-edge order.
    for (ridx, list) in fwd_sources.iter_mut().enumerate() {
        let rep = ReplicaId::from_dense(ridx, nrep);
        let order = g.pred_edges(rep.task);
        list.sort_by_key(|c| {
            order
                .iter()
                .position(|&e| e == c.edge)
                .unwrap_or(usize::MAX)
        });
        for c in list.iter_mut() {
            c.sources.sort_unstable();
        }
    }

    let comm_events: Vec<CommEvent> = events_rev
        .iter()
        .map(|e| CommEvent {
            edge: e.edge,
            src: e.dst,
            dst: e.src,
            src_proc: e.dst_proc,
            dst_proc: e.src_proc,
            start: t_ref - e.finish,
            finish: t_ref - e.start,
        })
        .collect();

    Schedule::new(
        g,
        p,
        ScheduleData {
            epsilon,
            period,
            proc_of,
            start,
            finish,
            sources: fwd_sources,
            comm_events,
        },
    )
}

fn push_source(list: &mut Vec<SourceChoice>, edge: EdgeId, copy: u8) {
    match list.iter_mut().find(|c| c.edge == edge) {
        Some(c) => {
            if !c.sources.contains(&copy) {
                c.sources.push(copy);
            }
        }
        None => list.push(SourceChoice {
            edge,
            sources: vec![copy],
        }),
    }
}
