//! The LTF and R-LTF scheduling algorithms of
//! *"Optimizing the Latency of Streaming Applications under Throughput and
//! Reliability Constraints"* (Benoit, Hakem, Robert, 2009).
//!
//! Both heuristics map every task of a streaming workflow DAG — replicated
//! `ε+1` times to survive `ε` fail-silent/fail-stop processor failures —
//! onto a heterogeneous one-port platform so that the prescribed throughput
//! `T` is met (condition (1): per-processor compute and per-port
//! communication loads fit the period `Δ = 1/T`), while minimizing the
//! pipeline latency `L = (2S − 1)/T`:
//!
//! * [`ltf_schedule()`](ltf_schedule()) — **LTF** (Algorithm 4.1): forward chunked traversal
//!   by priority `tℓ + bℓ`, one-to-one replica mapping (Algorithm 4.2)
//!   while singleton processors remain, minimum-finish-time placement.
//! * [`rltf_schedule`] — **R-LTF**: the same machinery driven bottom-up,
//!   with Rule 1 (prefer placements that keep the pipeline stage count
//!   from growing) and Rule 2 (one-to-one spreading across linear chain
//!   sections). The paper's evaluation shows R-LTF dominating LTF.
//! * [`fault_free_reference`] — R-LTF with `ε = 0`, the baseline used to
//!   measure the fault-tolerance overhead.
//! * [`search`] — the conclusion's "symmetric" objectives: maximize
//!   throughput under a latency budget, maximize ε, minimize processors.
//!
//! ```
//! use ltf_core::{rltf_schedule, AlgoConfig};
//! use ltf_graph::generate::fig2_workflow_variant;
//! use ltf_platform::Platform;
//!
//! let g = fig2_workflow_variant();
//! let p = Platform::homogeneous(8, 1.0, 1.0);
//! let cfg = AlgoConfig::with_throughput(1, 0.05); // ε = 1, T = 0.05
//! let sched = rltf_schedule(&g, &p, &cfg).unwrap();
//! assert!(sched.latency_upper_bound() <= 140.0);
//! ```

mod api;
mod config;
mod convert;
mod driver;
mod engine;
pub mod prio;
pub mod search;

pub use crate::api::{
    fault_free_reference, ltf_schedule, rltf_schedule, schedule_with, schedule_with_reference,
    PreparedInstance,
};
pub use crate::config::{AlgoConfig, AlgoKind, ScheduleError};
pub use crate::prio::LevelCache;
