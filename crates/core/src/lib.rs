//! The LTF and R-LTF scheduling algorithms of
//! *"Optimizing the Latency of Streaming Applications under Throughput and
//! Reliability Constraints"* (Benoit, Hakem, Robert, 2009), behind a
//! unified [`Solver`]/[`Heuristic`] API.
//!
//! Both heuristics map every task of a streaming workflow DAG — replicated
//! `ε+1` times to survive `ε` fail-silent/fail-stop processor failures —
//! onto a heterogeneous one-port platform so that the prescribed throughput
//! `T` is met (condition (1): per-processor compute and per-port
//! communication loads fit the period `Δ = 1/T`), while minimizing the
//! pipeline latency `L = (2S − 1)/T`.
//!
//! # The Solver API
//!
//! Every strategy — [`Ltf`] (Algorithm 4.1), [`Rltf`] (§4.2, the paper's
//! winner), [`FaultFree`] (the ε = 0 reference of §5) and the comparison
//! baselines of `ltf-baselines` — implements the [`Heuristic`] trait and is
//! dispatched by name through a [`Solver`] session, which owns the
//! per-instance derivations and returns typed [`Solution`] /
//! [`Diagnostics`] outcomes:
//!
//! ```
//! use ltf_core::{AlgoConfig, ScheduleError, Solver};
//! use ltf_graph::generate::{fig2_workflow, fig2_workflow_variant};
//! use ltf_platform::Platform;
//!
//! let g = fig2_workflow_variant();
//! let p = Platform::homogeneous(8, 1.0, 1.0);
//! let solver = Solver::builtin(&g, &p); // ltf, rltf, fault-free
//! let cfg = AlgoConfig::with_throughput(1, 0.05); // ε = 1, T = 0.05
//!
//! let sol = solver.solve("rltf", &cfg).unwrap();
//! assert!(sol.metrics.latency_upper_bound <= 140.0);
//!
//! // Infeasible requests come back as typed diagnostics naming the
//! // heuristic, the request, and the replica that could not be placed
//! // (R-LTF paints itself into a corner on the fig2 reconstruction).
//! let g2 = fig2_workflow();
//! let solver2 = Solver::builtin(&g2, &p);
//! let err = solver2.solve("rltf", &cfg).unwrap_err();
//! assert_eq!(err.epsilon, 1);
//! assert!(matches!(err.error, ScheduleError::Infeasible { .. }));
//! ```
//!
//! The [`search`] module drives any [`Heuristic`] as an oracle for the
//! conclusion's "symmetric" objectives: maximize throughput under a
//! latency budget ([`search::min_period`]), maximize ε
//! ([`search::max_epsilon`]), minimize processors
//! ([`search::min_processors`]); [`search::pareto`] composes them into a
//! Pareto-front enumeration over (latency, period, ε, processors), with
//! latency-cap / processor-budget variants and a cross-heuristic merge
//! over a whole [`Solver`] registry.
//!
//! The pre-`Solver` free functions ([`ltf_schedule()`](ltf_schedule()),
//! [`rltf_schedule`], [`schedule_with`], [`fault_free_reference`]) remain
//! as deprecated shims; see the README's migration table.

#[cfg(test)]
mod alloc_probe;
mod api;
mod config;
mod convert;
mod driver;
mod engine;
pub mod par;
pub mod prio;
mod reference;
pub mod search;
pub mod shard;
pub mod solver;
pub mod stats;

#[allow(deprecated)]
pub use crate::api::{
    fault_free_reference, ltf_schedule, rltf_schedule, schedule_with, schedule_with_reference,
    PreparedInstance,
};
pub use crate::config::{AlgoConfig, AlgoKind, ScheduleError};
pub use crate::prio::LevelCache;
pub use crate::solver::{
    Diagnostics, FaultFree, Heuristic, Ltf, Rltf, Solution, SolutionMetrics, Solver,
};
