//! The chunked mapping loop shared by LTF (Algorithm 4.1) and R-LTF, with
//! the one-to-one mapping procedure (Algorithm 4.2).
//!
//! Each round selects a chunk `β` of up to `B` highest-priority ready tasks
//! (the paper sets `B = m`) and places the `ε+1` copies of every chunk
//! task.
//!
//! ### Replica-validity discipline (crash cones)
//!
//! The paper gates the one-to-one procedure on *singleton processors* and
//! locked sets. That test is a local proxy for the real invariant — no
//! single processor failure may silence two copies of the same task,
//! transitively through single-source feeding chains. We enforce the exact
//! invariant instead (`DESIGN.md` §2.4):
//!
//! * **LTF (forward)**: every replica carries its *crash cone* — the set
//!   of processors whose individual failure silences it: its host plus,
//!   per in-edge, the cone of its single source (one-to-one) or the
//!   intersection of all sources' cones (receive-from-all, which is empty
//!   once the predecessor's copies have disjoint cones). A new copy must
//!   keep its cone disjoint from its siblings' cones.
//! * **R-LTF (reverse)**: cones cannot be evaluated bottom-up (a replica's
//!   feeders are scheduled after it), so the engine tracks the dual
//!   objects: the *downstream closure* `D(r)` (replicas transitively fed
//!   by `r` through single-source pairings, fixed at placement) and the
//!   hosts of every replica known to feed each replica (`ushost`). A
//!   placement on processor `u` is admissible iff (a) its combined
//!   downstream closure never contains two copies of one task and (b) `u`
//!   does not appear among the upstream hosts of any *sibling copy* of a
//!   task in that closure. To keep the receive-from-all semantics exact,
//!   R-LTF decides per *task* (not per copy) between an all-one-to-one
//!   perfect matching and an all-receive-from-all placement, using an
//!   engine snapshot to roll back the losing attempt.
//!
//! Both disciplines are verified by exhaustive crash enumeration in the
//! test suite.
//!
//! ### Placement policy
//!
//! * **LTF**: copy `N` of every chunk task before copy `N+1` of any
//!   (the paper's interleaved order); per copy, one-to-one placement
//!   (heads ranked by communication finish time, processor with minimum
//!   finish time) whenever a cone-disjoint single-source candidate exists,
//!   otherwise the receive-from-all fallback on the minimum-finish-time
//!   processor satisfying condition (1).
//! * **R-LTF**: per chunk task, both task-level modes are attempted;
//!   Rule 1 prefers the one yielding the smaller global stage count,
//!   Rule 2 breaks stage ties towards one-to-one spreading on linear chain
//!   sections, and remaining ties go to the earlier aggregate finish time.

use crate::config::{AlgoConfig, ScheduleError};
use crate::engine::{Engine, Probe, ProcMask, ReplicaSet, SourcePlan};
use ltf_graph::traversal::ReadyTracker;
use ltf_graph::{levels, TaskGraph, TaskId, Weights};
use ltf_platform::AverageWeightsInput;
use ltf_schedule::{ReplicaId, EPS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Placement policy: the only behavioural difference between the two
/// heuristics once the traversal direction is fixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Policy {
    Ltf,
    Rltf,
}

/// Run the chunked mapping loop to completion.
pub(crate) fn run(
    engine: &mut Engine<'_>,
    cfg: &AlgoConfig,
    policy: Policy,
) -> Result<(), ScheduleError> {
    let g = engine.g;
    let p = engine.p;
    if p.num_procs() < cfg.replicas() {
        return Err(ScheduleError::TooFewProcessors {
            needed: cfg.replicas(),
            available: p.num_procs(),
        });
    }
    if !(cfg.period.is_finite() && cfg.period > 0.0) {
        return Err(ScheduleError::BadConfig(format!(
            "period must be positive, got {}",
            cfg.period
        )));
    }

    // Platform-averaged priorities tℓ + bℓ (§2); tℓ is refined online with
    // actual finish times as the partial clustering takes shape ("update
    // priority values of its successors").
    let exec: Vec<f64> = g.tasks().map(|t| g.exec(t)).collect();
    let volume: Vec<f64> = g.edge_ids().map(|e| g.edge(e).volume).collect();
    let avg = p.average_weights(&AverageWeightsInput {
        exec: &exec,
        volume: &volume,
    });
    let w = Weights::new(avg.node.clone(), avg.edge.clone());
    let bl = levels::bottom_levels(g, &w);
    let tl = levels::top_levels(g, &w);
    let mut prio: Vec<f64> = tl.iter().zip(&bl).map(|(a, b)| a + b).collect();

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut tracker = ReadyTracker::new(g);
    let mut alpha: Vec<TaskId> = g.entries().to_vec();
    let chunk_cap = cfg.chunk_size.unwrap_or(p.num_procs()).max(1);

    while !alpha.is_empty() {
        // Select the chunk β of up to B highest-priority ready tasks.
        let mut beta = Vec::with_capacity(chunk_cap.min(alpha.len()));
        while beta.len() < chunk_cap && !alpha.is_empty() {
            let idx = head_index(&alpha, &prio, &mut rng);
            beta.push(alpha.swap_remove(idx));
        }

        match policy {
            Policy::Ltf => {
                let mut ctxs: Vec<LtfCtx> = beta.iter().map(|&t| LtfCtx::new(t)).collect();
                for copy in 0..engine.nrep as u8 {
                    for ctx in &mut ctxs {
                        ltf_place_copy(engine, cfg, ctx, copy)?;
                    }
                }
            }
            Policy::Rltf => {
                for &t in &beta {
                    rltf_place_task(engine, cfg, t, &tracker)?;
                }
            }
        }

        for &t in &beta {
            for s in tracker.complete(g, t) {
                alpha.push(s);
            }
            // Dynamic top-level refinement: successors inherit the actual
            // task finish plus the averaged edge weight.
            let tfin = engine.task_finish(t);
            for &eid in g.succ_edges(t) {
                let s = g.edge(eid).dst;
                let cand = tfin + avg.edge[eid.index()] + bl[s.index()];
                if cand > prio[s.index()] {
                    prio[s.index()] = cand;
                }
            }
        }
    }
    debug_assert!(engine.all_placed(), "ready loop ended early");
    debug_assert!(tracker.all_done(g), "tasks left unscheduled");
    Ok(())
}

/// The head function `H(ℓ)`: index of a maximum-priority task, ties broken
/// randomly (paper §2).
fn head_index(alpha: &[TaskId], prio: &[f64], rng: &mut StdRng) -> usize {
    debug_assert!(!alpha.is_empty());
    let best = alpha
        .iter()
        .map(|t| prio[t.index()])
        .fold(f64::NEG_INFINITY, f64::max);
    let tied: Vec<usize> = (0..alpha.len())
        .filter(|&i| prio[alpha[i].index()] >= best - EPS)
        .collect();
    tied[rng.gen_range(0..tied.len())]
}

// ---------------------------------------------------------------------------
// LTF (forward direction): per-copy crash-cone discipline.
// ---------------------------------------------------------------------------

/// Per-chunk-task state for LTF: the union of the crash cones of the
/// already placed copies (the exact form of the paper's locked set `P̄`).
struct LtfCtx {
    task: TaskId,
    used: ProcMask,
}

impl LtfCtx {
    fn new(task: TaskId) -> Self {
        Self { task, used: 0 }
    }
}

fn ltf_place_copy(
    engine: &mut Engine<'_>,
    cfg: &AlgoConfig,
    ctx: &mut LtfCtx,
    copy: u8,
) -> Result<(), ScheduleError> {
    let t = ctx.task;
    // Fair-share cone budget: with ε+1 lanes on m processors a copy whose
    // crash cone exceeds ⌈m/(ε+1)⌉ processors starves its later siblings
    // of cone-free hosts.
    let cone_budget = engine.p.num_procs().div_ceil(engine.nrep) as u32;
    let chosen = ltf_best_placement(engine, ctx, copy, cone_budget, cfg.use_one_to_one);
    let Some((probe, plan)) = chosen else {
        if std::env::var_os("LTF_DEBUG").is_some() {
            let m = engine.p.num_procs();
            let free = (0..m).filter(|&u| ctx.used >> u & 1 == 0).count();
            eprintln!(
                "LTF fail: task {t} copy {copy} in_deg {} | cone-free procs {free}/{m} used={:#x}",
                engine.g.in_degree(t),
                ctx.used
            );
        }
        return Err(ScheduleError::Infeasible { task: t, copy });
    };
    ctx.used |= probe.kill;
    engine.commit(t, copy, &probe, &plan);
    Ok(())
}

/// LTF placement for one copy: probe every processor outside the task's
/// used cone with a per-edge source plan, and keep the placement with the
/// earliest finish time (budget-respecting cones preferred).
///
/// The per-edge plan generalizes Algorithm 4.2: an edge uses the
/// cone-disjoint head with the earliest communication finish onto the
/// candidate (lane-aligned copies preferred — wandering lanes inflate the
/// crash cones until no cone-disjoint placement is left, matching the
/// copy-wise pairing of the paper's worked traces) as long as the
/// accumulated cone stays within the fair-share budget; otherwise the edge
/// falls back to receive-from-all, which contributes nothing to the cone
/// (the intersection of the predecessor's disjoint cones is empty) at the
/// price of `ε+1` messages. With `one_to_one` disabled every edge uses
/// receive-from-all (the `(ε+1)²` ablation).
fn ltf_best_placement(
    engine: &Engine<'_>,
    ctx: &LtfCtx,
    copy: u8,
    cone_budget: u32,
    one_to_one: bool,
) -> Option<(Probe, SourcePlan)> {
    let g = engine.g;
    let t = ctx.task;
    let pred_edges = g.pred_edges(t);
    let mut best: Option<(Probe, SourcePlan)> = None;

    for u in engine.p.procs() {
        if ctx.used >> u.index() & 1 == 1 {
            continue;
        }
        let mut plan = Vec::with_capacity(pred_edges.len());
        let mut acc_kill: ProcMask = 1u128 << u.index();
        for &eid in pred_edges.iter() {
            let pred = g.edge(eid).src;
            let mut pick: Option<(bool, f64, u8)> = None;
            if one_to_one {
                for c in 0..engine.nrep as u8 {
                    let k = engine.kill_of(pred, c);
                    if k & ctx.used != 0 {
                        continue;
                    }
                    if (acc_kill | k).count_ones() > cone_budget {
                        continue;
                    }
                    let src = ReplicaId::new(pred, c);
                    let key = (c != copy, engine.arrival_estimate(eid, src, u), c);
                    if pick.is_none_or(|p| key < p) {
                        pick = Some(key);
                    }
                }
            }
            match pick {
                Some((_, _, c)) => {
                    acc_kill |= engine.kill_of(pred, c);
                    plan.push((eid, vec![c]));
                }
                // No affordable single source: receive from every copy
                // (cone contribution: the empty intersection).
                None => plan.push((eid, (0..engine.nrep as u8).collect())),
            }
        }
        let plan = SourcePlan { per_edge: plan };
        let Some(probe) = engine.probe(t, copy, u, &plan) else {
            continue;
        };
        if probe.kill & ctx.used != 0 {
            continue;
        }
        if best
            .as_ref()
            .is_none_or(|(b, _)| probe.finish < b.finish - EPS)
        {
            best = Some((probe, plan));
        }
    }
    best
}

// ---------------------------------------------------------------------------
// R-LTF (reverse direction): task-level modes with downstream closures.
// ---------------------------------------------------------------------------

/// Outcome summary of a task-level placement attempt.
struct AttemptScore {
    max_stage: u32,
    total_finish: f64,
}

fn rltf_place_task(
    engine: &mut Engine<'_>,
    cfg: &AlgoConfig,
    t: TaskId,
    tracker: &ReadyTracker,
) -> Result<(), ScheduleError> {
    let before = engine.clone();

    let oto_score = if cfg.use_one_to_one {
        rltf_try_one_to_one(engine, t, cfg.cluster_ties)
    } else {
        None
    };
    let oto_state = oto_score.is_some().then(|| engine.clone());
    // A failed attempt leaves partial placements behind: always restart
    // the receive-from-all attempt from the snapshot.
    *engine = before;
    let rfa_score = rltf_try_receive_from_all(engine, t, cfg.cluster_ties);

    match (oto_score, rfa_score) {
        (None, None) => {
            // Leave the engine in the (failed, partially mutated) RFA
            // state; the caller aborts anyway.
            Err(ScheduleError::Infeasible { task: t, copy: 0 })
        }
        (Some(_), None) => {
            *engine = oto_state.expect("saved with score");
            Ok(())
        }
        (None, Some(_)) => Ok(()), // engine already holds the RFA state
        (Some(o), Some(r)) => {
            let pick_oto = if cfg.rule1 && o.max_stage != r.max_stage {
                // Rule 1: the mode with the smaller global stage count.
                o.max_stage < r.max_stage
            } else if cfg.rule2 && rule2_condition(engine.g, t, tracker) {
                // Rule 2: linear chain sections spread one-to-one.
                true
            } else {
                // One-to-one also wins finish-time ties: it costs fewer
                // messages.
                o.total_finish <= r.total_finish + EPS
            };
            if pick_oto {
                *engine = oto_state.expect("saved with score");
            }
            Ok(())
        }
    }
}

/// The paper's Rule 2 condition, evaluated on the scheduling-direction
/// graph: `t` has a single predecessor `t'` (its unique successor in the
/// application graph), and every successor of `t'` (sibling of `t` in the
/// application graph) has `t'` as its only predecessor and is already
/// scheduled or ready.
fn rule2_condition(g: &TaskGraph, t: TaskId, tracker: &ReadyTracker) -> bool {
    if g.in_degree(t) != 1 {
        return false;
    }
    let tp = g.preds(t).next().expect("in-degree 1");
    g.succs(tp)
        .all(|s| g.in_degree(s) == 1 && (tracker.is_done(s) || tracker.is_ready(s)))
}

/// Attempt to place all copies of `t` with one-to-one pairings forming a
/// perfect matching per in-edge. Mutates the engine; on failure the caller
/// restores the snapshot.
fn rltf_try_one_to_one(engine: &mut Engine<'_>, t: TaskId, cluster: bool) -> Option<AttemptScore> {
    let g = engine.g;
    let nrep = engine.nrep;
    let pred_edges: Vec<_> = g.pred_edges(t).to_vec();
    // Unconsumed head copies per in-edge (perfect matching across copies).
    let mut remaining: Vec<Vec<u8>> = pred_edges
        .iter()
        .map(|_| (0..nrep as u8).collect())
        .collect();

    let mut max_stage = 0u32;
    let mut total_finish = 0.0f64;

    for copy in 0..nrep as u8 {
        let rep_dense = ReplicaId::new(t, copy).dense(nrep);
        let mut best: Option<(Probe, SourcePlan, Vec<u8>, ReplicaSet, ProcMask)> = None;

        for u in engine.p.procs() {
            // Head per in-edge: smallest (stage contribution, arrival)
            // among unconsumed copies.
            let mut plan = Vec::with_capacity(pred_edges.len());
            let mut heads = Vec::with_capacity(pred_edges.len());
            let mut ok = true;
            for (i, &eid) in pred_edges.iter().enumerate() {
                let pred = g.edge(eid).src;
                let mut pick: Option<(u32, f64, u8)> = None;
                for &c in &remaining[i] {
                    let src = ReplicaId::new(pred, c);
                    let key = (
                        engine.stage_contribution(src, u),
                        engine.arrival_estimate(eid, src, u),
                        c,
                    );
                    if pick.is_none_or(|p| key < p) {
                        pick = Some(key);
                    }
                }
                match pick {
                    Some((_, _, c)) => {
                        plan.push((eid, vec![c]));
                        heads.push(c);
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                break; // no heads left for some edge: no copy can pair
            }

            // Downstream closure of the would-be replica, and the validity
            // checks (no two copies of one task downstream; host outside
            // every sibling's upstream hosts).
            let mut dset = ReplicaSet::with_capacity(engine.num_replicas());
            dset.insert(rep_dense);
            for (i, &eid) in pred_edges.iter().enumerate() {
                let pred = g.edge(eid).src;
                let head = ReplicaId::new(pred, heads[i]).dense(nrep);
                dset.union_with(&engine.down[head]);
            }
            if closure_has_copy_conflict(&dset, nrep) {
                continue;
            }
            let forbid = forbidden_hosts(engine, &dset, nrep);
            if forbid >> u.index() & 1 == 1 {
                continue;
            }

            let plan = SourcePlan { per_edge: plan };
            let Some(probe) = engine.probe(t, copy, u, &plan) else {
                continue;
            };
            // Stage first; then prefer processors already in use — in
            // reverse time the finish value carries no latency meaning,
            // and spreading stage-tied replicas across fresh processors
            // would deny every upstream task a co-location target (its
            // consumers would sit on different processors, forcing a new
            // stage per level). Finish time breaks the remaining ties.
            let key = (probe.stage, cluster && !engine.proc_used(u), probe.finish);
            let better = best.as_ref().is_none_or(|(b, ..)| {
                key < (b.stage, cluster && !engine.proc_used(b.proc), b.finish)
            });
            if better {
                best = Some((probe, plan, heads, dset, forbid));
            }
        }

        let (probe, plan, heads, dset, _) = best?;
        // Consume the heads.
        for (i, &c) in heads.iter().enumerate() {
            remaining[i].retain(|&x| x != c);
        }
        max_stage = max_stage.max(probe.stage);
        total_finish += probe.finish;
        let host = probe.proc;
        engine.commit(t, copy, &probe, &plan);
        engine.down[rep_dense] = dset;
        register_upstream_host(engine, rep_dense, host.index(), nrep);
    }

    Some(AttemptScore {
        max_stage: max_stage.max(engine.max_stage),
        total_finish,
    })
}

/// Attempt to place all copies of `t` receive-from-all. Mutates the
/// engine; on failure the caller restores the snapshot.
fn rltf_try_receive_from_all(
    engine: &mut Engine<'_>,
    t: TaskId,
    cluster: bool,
) -> Option<AttemptScore> {
    let nrep = engine.nrep;
    let plan = SourcePlan::receive_from_all(engine.g, t, nrep);
    let mut max_stage = 0u32;
    let mut total_finish = 0.0f64;

    for copy in 0..nrep as u8 {
        let rep_dense = ReplicaId::new(t, copy).dense(nrep);
        // Sibling upstream hosts are forbidden (their crash must not be
        // able to take out this copy as well).
        let forbid = engine.allush[t.index()];
        let mut best: Option<Probe> = None;
        for u in engine.p.procs() {
            if forbid >> u.index() & 1 == 1 {
                continue;
            }
            let Some(probe) = engine.probe(t, copy, u, &plan) else {
                continue;
            };
            // Same clustering tie-break as the one-to-one attempt.
            let key = (probe.stage, cluster && !engine.proc_used(u), probe.finish);
            let better = best
                .as_ref()
                .is_none_or(|b| key < (b.stage, cluster && !engine.proc_used(b.proc), b.finish));
            if better {
                best = Some(probe);
            }
        }
        let probe = best?;
        max_stage = max_stage.max(probe.stage);
        total_finish += probe.finish;
        let host = probe.proc;
        engine.commit(t, copy, &probe, &plan);
        let mut dset = ReplicaSet::with_capacity(engine.num_replicas());
        dset.insert(rep_dense);
        engine.down[rep_dense] = dset;
        register_upstream_host(engine, rep_dense, host.index(), nrep);
    }

    Some(AttemptScore {
        max_stage: max_stage.max(engine.max_stage),
        total_finish,
    })
}

/// `true` when the closure contains two distinct copies of some task.
fn closure_has_copy_conflict(dset: &ReplicaSet, nrep: usize) -> bool {
    let mut last_task = usize::MAX;
    for idx in dset.iter() {
        let task = idx / nrep;
        if task == last_task {
            return true; // dense indices of one task are contiguous
        }
        last_task = task;
    }
    false
}

/// Hosts that the new replica must avoid: for every replica `(y, j)` in
/// its downstream closure, the upstream hosts already registered for the
/// *sibling* copies of `y`.
fn forbidden_hosts(engine: &Engine<'_>, dset: &ReplicaSet, nrep: usize) -> ProcMask {
    let mut forbid: ProcMask = 0;
    for idx in dset.iter() {
        let task = idx / nrep;
        // Disjointness invariant lets us subtract this copy's own hosts.
        forbid |= engine.allush[task] & !engine.ushost[idx];
    }
    forbid
}

/// Register `host` as an upstream host of every replica fed by `rep`
/// (including itself).
fn register_upstream_host(engine: &mut Engine<'_>, rep: usize, host: usize, nrep: usize) {
    let bit: ProcMask = 1 << host;
    let dset = std::mem::take(&mut engine.down[rep]);
    for idx in dset.iter() {
        engine.ushost[idx] |= bit;
        engine.allush[idx / nrep] |= bit;
    }
    engine.down[rep] = dset;
}
