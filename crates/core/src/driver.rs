//! The chunked mapping loop shared by LTF (Algorithm 4.1) and R-LTF, with
//! the one-to-one mapping procedure (Algorithm 4.2).
//!
//! Each round selects a chunk `β` of up to `B` highest-priority ready tasks
//! (the paper sets `B = m`) and places the `ε+1` copies of every chunk
//! task.
//!
//! ### Replica-validity discipline (crash cones)
//!
//! The paper gates the one-to-one procedure on *singleton processors* and
//! locked sets. That test is a local proxy for the real invariant — no
//! single processor failure may silence two copies of the same task,
//! transitively through single-source feeding chains. We enforce the exact
//! invariant instead (`DESIGN.md` §2.4):
//!
//! * **LTF (forward)**: every replica carries its *crash cone* — the set
//!   of processors whose individual failure silences it: its host plus,
//!   per in-edge, the cone of its single source (one-to-one) or the
//!   intersection of all sources' cones (receive-from-all, which is empty
//!   once the predecessor's copies have disjoint cones). A new copy must
//!   keep its cone disjoint from its siblings' cones.
//! * **R-LTF (reverse)**: cones cannot be evaluated bottom-up (a replica's
//!   feeders are scheduled after it), so the engine tracks the dual
//!   objects: the *downstream closure* `D(r)` (replicas transitively fed
//!   by `r` through single-source pairings, fixed at placement) and the
//!   hosts of every replica known to feed each replica (`ushost`). A
//!   placement on processor `u` is admissible iff (a) its combined
//!   downstream closure never contains two copies of one task and (b) `u`
//!   does not appear among the upstream hosts of any *sibling copy* of a
//!   task in that closure. To keep the receive-from-all semantics exact,
//!   R-LTF decides per *task* (not per copy) between an all-one-to-one
//!   perfect matching and an all-receive-from-all placement.
//!
//! Both disciplines are verified by exhaustive crash enumeration in the
//! test suite.
//!
//! ### Scratch arenas and incremental speculation
//!
//! The whole mapping loop runs out of one [`ProbeScratch`] arena: chunk
//! selection buffers, per-candidate source plans, probe outcomes,
//! incumbent/candidate double buffers (promoted by `mem::swap`, never
//! copied), closure bitsets and the replay records. Everything is
//! `clear()`ed and reused, so the steady-state placement loops perform no
//! heap allocation (pinned by the counting-allocator tests in
//! [`crate::alloc_probe`]).
//!
//! R-LTF's two task-level attempts used to be compared by snapshotting the
//! whole engine (three `Engine::clone`s per task — the dominant cost at
//! scale). Both attempts now run under one engine checkpoint: the
//! receive-from-all attempt goes first and records its per-copy probes,
//! the journal unwinds it, the one-to-one attempt runs second. A
//! one-to-one win keeps its state in place (nothing to replay — no clone
//! of the closure sets either); a receive-from-all win unwinds the
//! one-to-one attempt and re-applies the recorded probes, which is pure
//! bookkeeping — no placement logic re-runs. Rollback restores engine
//! state bit-for-bit and both scores depend only on the probes and the
//! ready tracker, so the attempt order cannot change the decision; the
//! snapshot-era control flow survives verbatim in [`crate::reference`] and
//! the differential suite pins both paths to identical schedules.
//!
//! ### Placement policy
//!
//! * **LTF**: copy `N` of every chunk task before copy `N+1` of any
//!   (the paper's interleaved order); per copy, one-to-one placement
//!   (heads ranked by communication finish time, processor with minimum
//!   finish time) whenever a cone-disjoint single-source candidate exists,
//!   otherwise the receive-from-all fallback on the minimum-finish-time
//!   processor satisfying condition (1).
//! * **R-LTF**: per chunk task, both task-level modes are attempted;
//!   Rule 1 prefers the one yielding the smaller global stage count,
//!   Rule 2 breaks stage ties towards one-to-one spreading on linear chain
//!   sections, and remaining ties go to the earlier aggregate finish time.

use crate::config::{AlgoConfig, ScheduleError};
use crate::engine::{Engine, PlanBuf, ProbeBuf, ProbeWorkspace, ProcMask, ReplicaSet};
use crate::prio::{LevelCache, PrioTracker};
use ltf_graph::traversal::ReadyTracker;
use ltf_graph::{TaskGraph, TaskId};
use ltf_schedule::{ReplicaId, EPS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Placement policy: the only behavioural difference between the two
/// heuristics once the traversal direction is fixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Policy {
    Ltf,
    Rltf,
}

/// Sentinel marking a consumed head copy in the flat `remaining` table.
const CONSUMED: u8 = u8::MAX;

/// Chunk-selection buffers, reused across rounds.
#[derive(Default)]
struct SelectScratch {
    beta: Vec<TaskId>,
    tied: Vec<usize>,
    newly: Vec<TaskId>,
    ctxs: Vec<LtfCtx>,
}

/// One recorded receive-from-all commit, replayable after a rollback.
/// Slots are recycled (`rfa_len` marks the live prefix) so the probe
/// buffers warm up once.
struct RfaCommit {
    copy: u8,
    probe: ProbeBuf,
}

/// Per-placement working memory: candidate/incumbent double buffers for
/// probes, plans, head choices and closure bitsets, the probe workspace,
/// the one-to-one head-consumption table and the receive-from-all replay
/// records. Split from [`SelectScratch`] so the chunk loop can hold a
/// mutable `LtfCtx` while placement borrows this half.
#[derive(Default)]
struct PlaceScratch {
    ws: ProbeWorkspace,
    cand: ProbeBuf,
    best: ProbeBuf,
    plan: PlanBuf,
    best_plan: PlanBuf,
    heads: Vec<u8>,
    best_heads: Vec<u8>,
    cand_dset: ReplicaSet,
    best_dset: ReplicaSet,
    /// Flat `in_degree × nrep` table of unconsumed head copies
    /// ([`CONSUMED`] marks a used slot).
    remaining: Vec<u8>,
    rfa: Vec<RfaCommit>,
    rfa_len: usize,
}

/// The per-run scratch arena (see the module docs). Created once per
/// [`run`]; every placement loop below draws its buffers from here.
struct ProbeScratch {
    sel: SelectScratch,
    place: PlaceScratch,
}

impl ProbeScratch {
    fn new() -> Self {
        Self {
            sel: SelectScratch::default(),
            place: PlaceScratch {
                plan: PlanBuf::new(),
                best_plan: PlanBuf::new(),
                ..PlaceScratch::default()
            },
        }
    }
}

/// Run the chunked mapping loop to completion.
pub(crate) fn run(
    engine: &mut Engine<'_>,
    cfg: &AlgoConfig,
    policy: Policy,
    cache: &LevelCache,
) -> Result<(), ScheduleError> {
    let g = engine.g;
    let p = engine.p;
    if p.num_procs() < cfg.replicas() {
        return Err(ScheduleError::TooFewProcessors {
            needed: cfg.replicas(),
            available: p.num_procs(),
        });
    }
    if !(cfg.period.is_finite() && cfg.period > 0.0) {
        return Err(ScheduleError::BadConfig(format!(
            "period must be positive, got {}",
            cfg.period
        )));
    }

    // Priorities tℓ + bℓ (§2) come precomputed in the level cache; tℓ is
    // refined online with actual finish times as the partial clustering
    // takes shape ("update priority values of its successors"), tracked
    // through a dirty set flushed once per chunk round.
    let mut prio = PrioTracker::new(cache);

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut tracker = ReadyTracker::new(g);
    let mut scratch = ProbeScratch::new();
    let mut alpha: Vec<TaskId> = g.entries().to_vec();
    let chunk_cap = cfg.chunk_size.unwrap_or(p.num_procs()).max(1);

    while !alpha.is_empty() {
        // Select the chunk β of up to B highest-priority ready tasks.
        prio.flush(g);
        scratch.sel.beta.clear();
        while scratch.sel.beta.len() < chunk_cap && !alpha.is_empty() {
            let idx = head_index(&alpha, prio.values(), &mut rng, &mut scratch.sel.tied);
            scratch.sel.beta.push(alpha.swap_remove(idx));
        }

        match policy {
            Policy::Ltf => {
                scratch.sel.ctxs.clear();
                scratch
                    .sel
                    .ctxs
                    .extend(scratch.sel.beta.iter().map(|&t| LtfCtx::new(t)));
                for copy in 0..engine.nrep as u8 {
                    for ctx in &mut scratch.sel.ctxs {
                        ltf_place_copy(engine, cfg, ctx, copy, &mut scratch.place)?;
                    }
                }
            }
            Policy::Rltf => {
                for &t in &scratch.sel.beta {
                    rltf_place_task(engine, cfg, t, &tracker, &mut scratch.place)?;
                }
            }
        }

        for &t in &scratch.sel.beta {
            tracker.complete_into(g, t, &mut scratch.sel.newly);
            alpha.extend_from_slice(&scratch.sel.newly);
            // Dynamic top-level refinement: successors inherit the actual
            // task finish plus the averaged edge weight.
            prio.mark_finished(t, engine.task_finish(t));
        }
    }
    debug_assert!(engine.all_placed(), "ready loop ended early");
    debug_assert!(tracker.all_done(g), "tasks left unscheduled");
    Ok(())
}

/// The head function `H(ℓ)`: index of a maximum-priority task, ties broken
/// randomly (paper §2). `tied` is scratch for the tie set.
fn head_index(alpha: &[TaskId], prio: &[f64], rng: &mut StdRng, tied: &mut Vec<usize>) -> usize {
    debug_assert!(!alpha.is_empty());
    let best = alpha
        .iter()
        .map(|t| prio[t.index()])
        .fold(f64::NEG_INFINITY, f64::max);
    tied.clear();
    tied.extend((0..alpha.len()).filter(|&i| prio[alpha[i].index()] >= best - EPS));
    tied[rng.gen_range(0..tied.len())]
}

// ---------------------------------------------------------------------------
// LTF (forward direction): per-copy crash-cone discipline.
// ---------------------------------------------------------------------------

/// Per-chunk-task state for LTF: the union of the crash cones of the
/// already placed copies (the exact form of the paper's locked set `P̄`).
struct LtfCtx {
    task: TaskId,
    used: ProcMask,
}

impl LtfCtx {
    fn new(task: TaskId) -> Self {
        Self { task, used: 0 }
    }
}

fn ltf_place_copy(
    engine: &mut Engine<'_>,
    cfg: &AlgoConfig,
    ctx: &mut LtfCtx,
    copy: u8,
    s: &mut PlaceScratch,
) -> Result<(), ScheduleError> {
    let t = ctx.task;
    // Fair-share cone budget: with ε+1 lanes on m processors a copy whose
    // crash cone exceeds ⌈m/(ε+1)⌉ processors starves its later siblings
    // of cone-free hosts.
    let cone_budget = engine.p.num_procs().div_ceil(engine.nrep) as u32;
    if !ltf_best_placement(engine, ctx, copy, cone_budget, cfg.use_one_to_one, s) {
        if std::env::var_os("LTF_DEBUG").is_some() {
            let m = engine.p.num_procs();
            let free = (0..m).filter(|&u| ctx.used >> u & 1 == 0).count();
            eprintln!(
                "LTF fail: task {t} copy {copy} in_deg {} | cone-free procs {free}/{m} used={:#x}",
                engine.g.in_degree(t),
                ctx.used
            );
        }
        return Err(ScheduleError::Infeasible { task: t, copy });
    }
    ctx.used |= s.best.kill;
    engine.commit(t, copy, &s.best, &s.best_plan);
    Ok(())
}

/// LTF placement for one copy: probe every processor outside the task's
/// used cone with a per-edge source plan, and keep the placement with the
/// earliest finish time (budget-respecting cones preferred). On success
/// the winner sits in `s.best` / `s.best_plan`.
///
/// The per-edge plan generalizes Algorithm 4.2: an edge uses the
/// cone-disjoint head with the earliest communication finish onto the
/// candidate (lane-aligned copies preferred — wandering lanes inflate the
/// crash cones until no cone-disjoint placement is left, matching the
/// copy-wise pairing of the paper's worked traces) as long as the
/// accumulated cone stays within the fair-share budget; otherwise the edge
/// falls back to receive-from-all, which contributes nothing to the cone
/// (the intersection of the predecessor's disjoint cones is empty) at the
/// price of `ε+1` messages. With `one_to_one` disabled every edge uses
/// receive-from-all (the `(ε+1)²` ablation).
fn ltf_best_placement(
    engine: &Engine<'_>,
    ctx: &LtfCtx,
    copy: u8,
    cone_budget: u32,
    one_to_one: bool,
    s: &mut PlaceScratch,
) -> bool {
    let g = engine.g;
    let t = ctx.task;
    let pred_edges = g.pred_edges(t);
    let mut have_best = false;

    for u in engine.p.procs() {
        if ctx.used >> u.index() & 1 == 1 {
            continue;
        }
        s.plan.clear();
        let mut acc_kill: ProcMask = 1u128 << u.index();
        for &eid in pred_edges.iter() {
            let pred = g.edge(eid).src;
            let mut pick: Option<(bool, f64, u8)> = None;
            if one_to_one {
                for c in 0..engine.nrep as u8 {
                    let k = engine.kill_of(pred, c);
                    if k & ctx.used != 0 {
                        continue;
                    }
                    if (acc_kill | k).count_ones() > cone_budget {
                        continue;
                    }
                    let src = ReplicaId::new(pred, c);
                    let key = (c != copy, engine.arrival_estimate(eid, src, u), c);
                    if pick.is_none_or(|p| key < p) {
                        pick = Some(key);
                    }
                }
            }
            match pick {
                Some((_, _, c)) => {
                    acc_kill |= engine.kill_of(pred, c);
                    s.plan.push_single(eid, c);
                }
                // No affordable single source: receive from every copy
                // (cone contribution: the empty intersection).
                None => s.plan.push_all(eid, engine.nrep),
            }
        }
        if !engine.probe(t, u, &s.plan, &mut s.ws, &mut s.cand) {
            continue;
        }
        if s.cand.kill & ctx.used != 0 {
            continue;
        }
        if !have_best || s.cand.finish < s.best.finish - EPS {
            std::mem::swap(&mut s.cand, &mut s.best);
            std::mem::swap(&mut s.plan, &mut s.best_plan);
            have_best = true;
        }
    }
    have_best
}

// ---------------------------------------------------------------------------
// R-LTF (reverse direction): task-level modes with downstream closures.
// ---------------------------------------------------------------------------

/// Outcome summary of a task-level placement attempt.
struct AttemptScore {
    max_stage: u32,
    total_finish: f64,
}

/// Decide between the two task-level modes given their scores.
fn pick_one_to_one(
    engine: &Engine<'_>,
    cfg: &AlgoConfig,
    t: TaskId,
    tracker: &ReadyTracker,
    o: &AttemptScore,
    r: &AttemptScore,
) -> bool {
    if cfg.rule1 && o.max_stage != r.max_stage {
        // Rule 1: the mode with the smaller global stage count.
        o.max_stage < r.max_stage
    } else if cfg.rule2 && rule2_condition(engine.g, t, tracker) {
        // Rule 2: linear chain sections spread one-to-one.
        true
    } else {
        // One-to-one also wins finish-time ties: it costs fewer messages.
        o.total_finish <= r.total_finish + EPS
    }
}

/// Incremental R-LTF task placement: both modes run under one engine
/// checkpoint. Receive-from-all goes first, recording its probes; the
/// journal unwinds it and one-to-one runs second, so a one-to-one win —
/// the common case — keeps its committed state in place with nothing to
/// replay, and a receive-from-all win re-applies the records. Both
/// attempts start from bit-identical state and the decision depends only
/// on their scores, so the order flip cannot change the outcome (the
/// differential suite pins this against the snapshot-era reference).
fn rltf_place_task(
    engine: &mut Engine<'_>,
    cfg: &AlgoConfig,
    t: TaskId,
    tracker: &ReadyTracker,
    s: &mut PlaceScratch,
) -> Result<(), ScheduleError> {
    let mark = engine.checkpoint();

    s.rfa_len = 0;
    let rfa_score = rltf_try_receive_from_all(engine, t, cfg.cluster_ties, s);
    // A failed attempt leaves partial placements behind: always restart
    // the one-to-one attempt from the checkpoint.
    engine.rollback_to(mark);
    let oto_score = if cfg.use_one_to_one {
        rltf_try_one_to_one(engine, t, cfg.cluster_ties, s)
    } else {
        None
    };

    let keep_oto = match (&oto_score, &rfa_score) {
        (None, None) => {
            // The engine stays in the (failed, partially mutated)
            // one-to-one state; the caller aborts anyway.
            engine.discard_journal();
            return Err(ScheduleError::Infeasible { task: t, copy: 0 });
        }
        (Some(_), None) => true,
        (None, Some(_)) => false,
        (Some(o), Some(r)) => pick_one_to_one(engine, cfg, t, tracker, o, r),
    };
    if keep_oto {
        // The winner's commits are already in place.
        engine.discard_journal();
    } else {
        engine.rollback_to(mark);
        engine.discard_journal();
        // Replay the recorded receive-from-all decisions: pure
        // bookkeeping, no placement logic re-runs.
        s.plan.fill_receive_from_all(engine.g, t, engine.nrep);
        for k in 0..s.rfa_len {
            let rec = &s.rfa[k];
            engine.commit(t, rec.copy, &rec.probe, &s.plan);
            let rep = engine.dense(t, rec.copy);
            let host = rec.probe.proc.index();
            let mut dset = engine.take_set();
            dset.insert(rep);
            engine.set_down(rep, dset);
            engine.register_upstream_host(rep, host);
        }
    }
    Ok(())
}

/// The paper's Rule 2 condition, evaluated on the scheduling-direction
/// graph: `t` has a single predecessor `t'` (its unique successor in the
/// application graph), and every successor of `t'` (sibling of `t` in the
/// application graph) has `t'` as its only predecessor and is already
/// scheduled or ready.
fn rule2_condition(g: &TaskGraph, t: TaskId, tracker: &ReadyTracker) -> bool {
    if g.in_degree(t) != 1 {
        return false;
    }
    let tp = g.preds(t).next().expect("in-degree 1");
    g.succs(tp)
        .all(|s| g.in_degree(s) == 1 && (tracker.is_done(s) || tracker.is_ready(s)))
}

/// Attempt to place all copies of `t` with one-to-one pairings forming a
/// perfect matching per in-edge. Mutates the engine; on failure the caller
/// rolls back.
fn rltf_try_one_to_one(
    engine: &mut Engine<'_>,
    t: TaskId,
    cluster: bool,
    s: &mut PlaceScratch,
) -> Option<AttemptScore> {
    let g = engine.g;
    let nrep = engine.nrep;
    let pred_edges = g.pred_edges(t);
    // Unconsumed head copies per in-edge (perfect matching across copies),
    // flat `in_degree × nrep`.
    s.remaining.clear();
    for _ in 0..pred_edges.len() {
        s.remaining.extend(0..nrep as u8);
    }

    let mut max_stage = 0u32;
    let mut total_finish = 0.0f64;

    for copy in 0..nrep as u8 {
        let rep_dense = ReplicaId::new(t, copy).dense(nrep);
        let mut have_best = false;

        'procs: for u in engine.p.procs() {
            // Head per in-edge: smallest (stage contribution, arrival)
            // among unconsumed copies.
            s.plan.clear();
            s.heads.clear();
            for (i, &eid) in pred_edges.iter().enumerate() {
                let pred = g.edge(eid).src;
                let mut pick: Option<(u32, f64, u8)> = None;
                for k in 0..nrep {
                    let c = s.remaining[i * nrep + k];
                    if c == CONSUMED {
                        continue;
                    }
                    let src = ReplicaId::new(pred, c);
                    let key = (
                        engine.stage_contribution(src, u),
                        engine.arrival_estimate(eid, src, u),
                        c,
                    );
                    if pick.is_none_or(|p| key < p) {
                        pick = Some(key);
                    }
                }
                match pick {
                    Some((_, _, c)) => {
                        s.plan.push_single(eid, c);
                        s.heads.push(c);
                    }
                    // No heads left for some edge: no copy can pair (the
                    // consumption table is processor-independent).
                    None => break 'procs,
                }
            }

            // Downstream closure of the would-be replica, and the validity
            // checks (no two copies of one task downstream; host outside
            // every sibling's upstream hosts).
            s.cand_dset.clear();
            s.cand_dset.insert(rep_dense);
            for (i, &eid) in pred_edges.iter().enumerate() {
                let pred = g.edge(eid).src;
                let head = ReplicaId::new(pred, s.heads[i]).dense(nrep);
                s.cand_dset.union_with(&engine.state.down[head]);
            }
            if closure_has_copy_conflict(&s.cand_dset, nrep) {
                continue;
            }
            let forbid = forbidden_hosts(engine, &s.cand_dset, nrep);
            if forbid >> u.index() & 1 == 1 {
                continue;
            }

            if !engine.probe(t, u, &s.plan, &mut s.ws, &mut s.cand) {
                continue;
            }
            // Stage first; then prefer processors already in use — in
            // reverse time the finish value carries no latency meaning,
            // and spreading stage-tied replicas across fresh processors
            // would deny every upstream task a co-location target (its
            // consumers would sit on different processors, forcing a new
            // stage per level). Finish time breaks the remaining ties.
            let key = (s.cand.stage, cluster && !engine.proc_used(u), s.cand.finish);
            let better = !have_best
                || key
                    < (
                        s.best.stage,
                        cluster && !engine.proc_used(s.best.proc),
                        s.best.finish,
                    );
            if better {
                std::mem::swap(&mut s.cand, &mut s.best);
                std::mem::swap(&mut s.plan, &mut s.best_plan);
                std::mem::swap(&mut s.heads, &mut s.best_heads);
                std::mem::swap(&mut s.cand_dset, &mut s.best_dset);
                have_best = true;
            }
        }

        if !have_best {
            return None;
        }
        // Consume the heads (each copy value appears at most once per row).
        for (i, &c) in s.best_heads.iter().enumerate() {
            for k in 0..nrep {
                if s.remaining[i * nrep + k] == c {
                    s.remaining[i * nrep + k] = CONSUMED;
                    break;
                }
            }
        }
        max_stage = max_stage.max(s.best.stage);
        total_finish += s.best.finish;
        let host = s.best.proc.index();
        engine.commit(t, copy, &s.best, &s.best_plan);
        // Hand the incumbent closure to the engine, backfilling the slot
        // from the recycling pool.
        let dset = std::mem::replace(&mut s.best_dset, engine.take_set());
        engine.set_down(rep_dense, dset);
        engine.register_upstream_host(rep_dense, host);
    }

    Some(AttemptScore {
        max_stage: max_stage.max(engine.state.max_stage),
        total_finish,
    })
}

/// Attempt to place all copies of `t` receive-from-all, recording every
/// committed probe into the scratch's replay slots. Mutates the engine; on
/// failure the caller rolls back.
fn rltf_try_receive_from_all(
    engine: &mut Engine<'_>,
    t: TaskId,
    cluster: bool,
    s: &mut PlaceScratch,
) -> Option<AttemptScore> {
    let nrep = engine.nrep;
    s.plan.fill_receive_from_all(engine.g, t, nrep);
    let mut max_stage = 0u32;
    let mut total_finish = 0.0f64;

    for copy in 0..nrep as u8 {
        let rep_dense = ReplicaId::new(t, copy).dense(nrep);
        // Sibling upstream hosts are forbidden (their crash must not be
        // able to take out this copy as well).
        let forbid = engine.state.allush[t.index()];
        let mut have_best = false;
        for u in engine.p.procs() {
            if forbid >> u.index() & 1 == 1 {
                continue;
            }
            if !engine.probe(t, u, &s.plan, &mut s.ws, &mut s.cand) {
                continue;
            }
            // Same clustering tie-break as the one-to-one attempt.
            let key = (s.cand.stage, cluster && !engine.proc_used(u), s.cand.finish);
            let better = !have_best
                || key
                    < (
                        s.best.stage,
                        cluster && !engine.proc_used(s.best.proc),
                        s.best.finish,
                    );
            if better {
                std::mem::swap(&mut s.cand, &mut s.best);
                have_best = true;
            }
        }
        if !have_best {
            return None;
        }
        max_stage = max_stage.max(s.best.stage);
        total_finish += s.best.finish;
        let host = s.best.proc;
        engine.commit(t, copy, &s.best, &s.plan);
        let mut dset = engine.take_set();
        dset.insert(rep_dense);
        engine.set_down(rep_dense, dset);
        engine.register_upstream_host(rep_dense, host.index());

        // Record for replay (slots recycled across tasks).
        if s.rfa_len == s.rfa.len() {
            s.rfa.push(RfaCommit {
                copy,
                probe: ProbeBuf::new(),
            });
        }
        let rec = &mut s.rfa[s.rfa_len];
        rec.copy = copy;
        rec.probe.copy_from(&s.best);
        s.rfa_len += 1;
    }

    Some(AttemptScore {
        max_stage: max_stage.max(engine.state.max_stage),
        total_finish,
    })
}

/// `true` when the closure contains two distinct copies of some task.
fn closure_has_copy_conflict(dset: &ReplicaSet, nrep: usize) -> bool {
    let mut last_task = usize::MAX;
    for idx in dset.iter() {
        let task = idx / nrep;
        if task == last_task {
            return true; // dense indices of one task are contiguous
        }
        last_task = task;
    }
    false
}

/// Hosts that the new replica must avoid: for every replica `(y, j)` in
/// its downstream closure, the upstream hosts already registered for the
/// *sibling* copies of `y`.
fn forbidden_hosts(engine: &Engine<'_>, dset: &ReplicaSet, nrep: usize) -> ProcMask {
    let mut forbid: ProcMask = 0;
    for idx in dset.iter() {
        let task = idx / nrep;
        // Disjointness invariant lets us subtract this copy's own hosts.
        forbid |= engine.state.allush[task] & !engine.state.ushost[idx];
    }
    forbid
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc_probe::measure;
    use ltf_graph::GraphBuilder;
    use ltf_platform::Platform;

    /// Two entry tasks feeding one join, replicated twice.
    fn join_graph() -> (TaskGraph, [TaskId; 3]) {
        let mut b = GraphBuilder::new();
        let a = b.add_task(1.0);
        let c = b.add_task(1.0);
        let t = b.add_task(1.0);
        b.add_edge(a, t, 1.0);
        b.add_edge(c, t, 1.0);
        (b.build().unwrap(), [a, c, t])
    }

    /// The steady-state LTF placement sweep — plan building, probing every
    /// processor, incumbent promotion — performs zero heap allocations
    /// once the scratch arena is warm.
    #[test]
    fn ltf_placement_sweep_allocates_nothing_when_warm() {
        let (g, [a, c, t]) = join_graph();
        let p = Platform::homogeneous(4, 1.0, 1.0);
        let cfg = AlgoConfig::new(1, 100.0);
        let mut engine = Engine::new(&g, &p, &cfg);
        let mut s = PlaceScratch::default();
        let budget = p.num_procs().div_ceil(engine.nrep) as u32;

        // Place both copies of both entry tasks through the real path.
        for task in [a, c] {
            let mut ctx = LtfCtx::new(task);
            for copy in 0..engine.nrep as u8 {
                assert!(ltf_best_placement(
                    &engine, &ctx, copy, budget, true, &mut s
                ));
                ctx.used |= s.best.kill;
                engine.commit(task, copy, &s.best, &s.best_plan);
            }
        }

        // Warm the scratch on the join task, then measure an identical
        // (read-only) sweep.
        let ctx = LtfCtx::new(t);
        assert!(ltf_best_placement(&engine, &ctx, 0, budget, true, &mut s));
        let (allocs, found) =
            measure(|| ltf_best_placement(&engine, &ctx, 0, budget, true, &mut s));
        assert!(found);
        assert_eq!(allocs, 0, "steady-state LTF probe sweep hit the heap");
    }

    /// A full R-LTF run allocates a bounded (small-constant-per-replica)
    /// number of times: committed source lists, event-log growth and arena
    /// warm-up — never per-probe or per-candidate traffic. The snapshot
    /// era cloned the whole engine three times per task (hundreds of
    /// allocations each); this bound is far below one clone.
    #[test]
    fn rltf_run_allocations_bounded() {
        let mut b = GraphBuilder::new();
        let mut prev = b.add_task(1.0);
        for i in 0..40 {
            let t = b.add_task(1.0 + f64::from(i % 3));
            b.add_edge(prev, t, 1.0);
            prev = t;
        }
        let g = b.build().unwrap();
        let rev = g.reversed();
        let mut slots = vec![0u32; g.num_edges()];
        for y in g.tasks() {
            for (i, &e) in g.pred_edges(y).iter().enumerate() {
                slots[e.index()] = i as u32;
            }
        }
        let p = Platform::homogeneous(6, 1.0, 0.1);
        let cfg = AlgoConfig::new(1, 60.0);
        let cache = LevelCache::compute(&rev, &p);
        let mut engine = Engine::new_reversed(&rev, &g, &slots, &p, &cfg);
        let n = engine.num_replicas();

        let (allocs, res) = measure(|| run(&mut engine, &cfg, Policy::Rltf, &cache));
        res.unwrap();
        assert!(engine.all_placed());
        assert!(
            allocs <= 40 * n + 500,
            "R-LTF run made {allocs} allocations for {n} replicas"
        );
    }
}
