//! The chunked mapping loop shared by LTF (Algorithm 4.1) and R-LTF, with
//! the one-to-one mapping procedure (Algorithm 4.2).
//!
//! Each round selects a chunk `β` of up to `B` highest-priority ready tasks
//! (the paper sets `B = m`) and places the `ε+1` copies of every chunk
//! task.
//!
//! ### Replica-validity discipline (crash cones)
//!
//! The paper gates the one-to-one procedure on *singleton processors* and
//! locked sets. That test is a local proxy for the real invariant — no
//! single processor failure may silence two copies of the same task,
//! transitively through single-source feeding chains. We enforce the exact
//! invariant instead (`DESIGN.md` §2.4):
//!
//! * **LTF (forward)**: every replica carries its *crash cone* — the set
//!   of processors whose individual failure silences it: its host plus,
//!   per in-edge, the cone of its single source (one-to-one) or the
//!   intersection of all sources' cones (receive-from-all, which is empty
//!   once the predecessor's copies have disjoint cones). A new copy must
//!   keep its cone disjoint from its siblings' cones.
//! * **R-LTF (reverse)**: cones cannot be evaluated bottom-up (a replica's
//!   feeders are scheduled after it), so the engine tracks the dual
//!   objects: the *downstream closure* `D(r)` (replicas transitively fed
//!   by `r` through single-source pairings, fixed at placement) and the
//!   hosts of every replica known to feed each replica (`ushost`). A
//!   placement on processor `u` is admissible iff (a) its combined
//!   downstream closure never contains two copies of one task and (b) `u`
//!   does not appear among the upstream hosts of any *sibling copy* of a
//!   task in that closure. To keep the receive-from-all semantics exact,
//!   R-LTF decides per *task* (not per copy) between an all-one-to-one
//!   perfect matching and an all-receive-from-all placement.
//!
//! Both disciplines are verified by exhaustive crash enumeration in the
//! test suite.
//!
//! ### Incremental speculation
//!
//! R-LTF's two task-level attempts used to be compared by snapshotting the
//! whole engine (three `Engine::clone`s per task — the dominant cost at
//! scale). The production path now runs both attempts under an engine
//! checkpoint: the losing attempt is unwound through the undo journal and
//! the winning one-to-one attempt is *replayed* from its recorded
//! `(probe, plan, closure)` decisions, which is pure bookkeeping — no
//! placement logic re-runs. The snapshot-based speculation procedure is
//! retained as [`run_reference`] and the differential tests assert both
//! paths produce identical schedules; this isolates the
//! journal/rollback/replay machinery specifically (both paths share the
//! overlay probe and interval index, whose own equivalence with naive
//! recomputation is pinned by property tests in `ltf-schedule`).
//!
//! ### Placement policy
//!
//! * **LTF**: copy `N` of every chunk task before copy `N+1` of any
//!   (the paper's interleaved order); per copy, one-to-one placement
//!   (heads ranked by communication finish time, processor with minimum
//!   finish time) whenever a cone-disjoint single-source candidate exists,
//!   otherwise the receive-from-all fallback on the minimum-finish-time
//!   processor satisfying condition (1).
//! * **R-LTF**: per chunk task, both task-level modes are attempted;
//!   Rule 1 prefers the one yielding the smaller global stage count,
//!   Rule 2 breaks stage ties towards one-to-one spreading on linear chain
//!   sections, and remaining ties go to the earlier aggregate finish time.

use crate::config::{AlgoConfig, ScheduleError};
use crate::engine::{Engine, Probe, ProcMask, ReplicaSet, SourcePlan};
use crate::prio::{LevelCache, PrioTracker};
use ltf_graph::traversal::ReadyTracker;
use ltf_graph::{TaskGraph, TaskId};
use ltf_schedule::{ReplicaId, EPS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Placement policy: the only behavioural difference between the two
/// heuristics once the traversal direction is fixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Policy {
    Ltf,
    Rltf,
}

/// Run the chunked mapping loop to completion on the incremental
/// (undo-journal) path.
pub(crate) fn run(
    engine: &mut Engine<'_>,
    cfg: &AlgoConfig,
    policy: Policy,
    cache: &LevelCache,
) -> Result<(), ScheduleError> {
    run_impl(engine, cfg, policy, cache, false)
}

/// Run the chunked mapping loop on the snapshot-based reference path:
/// pre-incremental speculation control flow (engine clones instead of the
/// undo journal), kept for differential testing of the journal machinery.
pub(crate) fn run_reference(
    engine: &mut Engine<'_>,
    cfg: &AlgoConfig,
    policy: Policy,
    cache: &LevelCache,
) -> Result<(), ScheduleError> {
    run_impl(engine, cfg, policy, cache, true)
}

fn run_impl(
    engine: &mut Engine<'_>,
    cfg: &AlgoConfig,
    policy: Policy,
    cache: &LevelCache,
    snapshots: bool,
) -> Result<(), ScheduleError> {
    let g = engine.g;
    let p = engine.p;
    if p.num_procs() < cfg.replicas() {
        return Err(ScheduleError::TooFewProcessors {
            needed: cfg.replicas(),
            available: p.num_procs(),
        });
    }
    if !(cfg.period.is_finite() && cfg.period > 0.0) {
        return Err(ScheduleError::BadConfig(format!(
            "period must be positive, got {}",
            cfg.period
        )));
    }

    // Priorities tℓ + bℓ (§2) come precomputed in the level cache; tℓ is
    // refined online with actual finish times as the partial clustering
    // takes shape ("update priority values of its successors"), tracked
    // through a dirty set flushed once per chunk round.
    let mut prio = PrioTracker::new(cache);

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut tracker = ReadyTracker::new(g);
    let mut alpha: Vec<TaskId> = g.entries().to_vec();
    let chunk_cap = cfg.chunk_size.unwrap_or(p.num_procs()).max(1);

    while !alpha.is_empty() {
        // Select the chunk β of up to B highest-priority ready tasks.
        prio.flush(g);
        let mut beta = Vec::with_capacity(chunk_cap.min(alpha.len()));
        while beta.len() < chunk_cap && !alpha.is_empty() {
            let idx = head_index(&alpha, prio.values(), &mut rng);
            beta.push(alpha.swap_remove(idx));
        }

        match policy {
            Policy::Ltf => {
                let mut ctxs: Vec<LtfCtx> = beta.iter().map(|&t| LtfCtx::new(t)).collect();
                for copy in 0..engine.nrep as u8 {
                    for ctx in &mut ctxs {
                        ltf_place_copy(engine, cfg, ctx, copy)?;
                    }
                }
            }
            Policy::Rltf => {
                for &t in &beta {
                    if snapshots {
                        rltf_place_task_snapshot(engine, cfg, t, &tracker)?;
                    } else {
                        rltf_place_task(engine, cfg, t, &tracker)?;
                    }
                }
            }
        }

        for &t in &beta {
            for s in tracker.complete(g, t) {
                alpha.push(s);
            }
            // Dynamic top-level refinement: successors inherit the actual
            // task finish plus the averaged edge weight.
            prio.mark_finished(t, engine.task_finish(t));
        }
    }
    debug_assert!(engine.all_placed(), "ready loop ended early");
    debug_assert!(tracker.all_done(g), "tasks left unscheduled");
    Ok(())
}

/// The head function `H(ℓ)`: index of a maximum-priority task, ties broken
/// randomly (paper §2).
fn head_index(alpha: &[TaskId], prio: &[f64], rng: &mut StdRng) -> usize {
    debug_assert!(!alpha.is_empty());
    let best = alpha
        .iter()
        .map(|t| prio[t.index()])
        .fold(f64::NEG_INFINITY, f64::max);
    let tied: Vec<usize> = (0..alpha.len())
        .filter(|&i| prio[alpha[i].index()] >= best - EPS)
        .collect();
    tied[rng.gen_range(0..tied.len())]
}

// ---------------------------------------------------------------------------
// LTF (forward direction): per-copy crash-cone discipline.
// ---------------------------------------------------------------------------

/// Per-chunk-task state for LTF: the union of the crash cones of the
/// already placed copies (the exact form of the paper's locked set `P̄`).
struct LtfCtx {
    task: TaskId,
    used: ProcMask,
}

impl LtfCtx {
    fn new(task: TaskId) -> Self {
        Self { task, used: 0 }
    }
}

fn ltf_place_copy(
    engine: &mut Engine<'_>,
    cfg: &AlgoConfig,
    ctx: &mut LtfCtx,
    copy: u8,
) -> Result<(), ScheduleError> {
    let t = ctx.task;
    // Fair-share cone budget: with ε+1 lanes on m processors a copy whose
    // crash cone exceeds ⌈m/(ε+1)⌉ processors starves its later siblings
    // of cone-free hosts.
    let cone_budget = engine.p.num_procs().div_ceil(engine.nrep) as u32;
    let chosen = ltf_best_placement(engine, ctx, copy, cone_budget, cfg.use_one_to_one);
    let Some((probe, plan)) = chosen else {
        if std::env::var_os("LTF_DEBUG").is_some() {
            let m = engine.p.num_procs();
            let free = (0..m).filter(|&u| ctx.used >> u & 1 == 0).count();
            eprintln!(
                "LTF fail: task {t} copy {copy} in_deg {} | cone-free procs {free}/{m} used={:#x}",
                engine.g.in_degree(t),
                ctx.used
            );
        }
        return Err(ScheduleError::Infeasible { task: t, copy });
    };
    ctx.used |= probe.kill;
    engine.commit(t, copy, &probe, &plan);
    Ok(())
}

/// LTF placement for one copy: probe every processor outside the task's
/// used cone with a per-edge source plan, and keep the placement with the
/// earliest finish time (budget-respecting cones preferred).
///
/// The per-edge plan generalizes Algorithm 4.2: an edge uses the
/// cone-disjoint head with the earliest communication finish onto the
/// candidate (lane-aligned copies preferred — wandering lanes inflate the
/// crash cones until no cone-disjoint placement is left, matching the
/// copy-wise pairing of the paper's worked traces) as long as the
/// accumulated cone stays within the fair-share budget; otherwise the edge
/// falls back to receive-from-all, which contributes nothing to the cone
/// (the intersection of the predecessor's disjoint cones is empty) at the
/// price of `ε+1` messages. With `one_to_one` disabled every edge uses
/// receive-from-all (the `(ε+1)²` ablation).
fn ltf_best_placement(
    engine: &Engine<'_>,
    ctx: &LtfCtx,
    copy: u8,
    cone_budget: u32,
    one_to_one: bool,
) -> Option<(Probe, SourcePlan)> {
    let g = engine.g;
    let t = ctx.task;
    let pred_edges = g.pred_edges(t);
    let mut best: Option<(Probe, SourcePlan)> = None;

    for u in engine.p.procs() {
        if ctx.used >> u.index() & 1 == 1 {
            continue;
        }
        let mut plan = Vec::with_capacity(pred_edges.len());
        let mut acc_kill: ProcMask = 1u128 << u.index();
        for &eid in pred_edges.iter() {
            let pred = g.edge(eid).src;
            let mut pick: Option<(bool, f64, u8)> = None;
            if one_to_one {
                for c in 0..engine.nrep as u8 {
                    let k = engine.kill_of(pred, c);
                    if k & ctx.used != 0 {
                        continue;
                    }
                    if (acc_kill | k).count_ones() > cone_budget {
                        continue;
                    }
                    let src = ReplicaId::new(pred, c);
                    let key = (c != copy, engine.arrival_estimate(eid, src, u), c);
                    if pick.is_none_or(|p| key < p) {
                        pick = Some(key);
                    }
                }
            }
            match pick {
                Some((_, _, c)) => {
                    acc_kill |= engine.kill_of(pred, c);
                    plan.push((eid, vec![c]));
                }
                // No affordable single source: receive from every copy
                // (cone contribution: the empty intersection).
                None => plan.push((eid, (0..engine.nrep as u8).collect())),
            }
        }
        let plan = SourcePlan { per_edge: plan };
        let Some(probe) = engine.probe(t, copy, u, &plan) else {
            continue;
        };
        if probe.kill & ctx.used != 0 {
            continue;
        }
        if best
            .as_ref()
            .is_none_or(|(b, _)| probe.finish < b.finish - EPS)
        {
            best = Some((probe, plan));
        }
    }
    best
}

// ---------------------------------------------------------------------------
// R-LTF (reverse direction): task-level modes with downstream closures.
// ---------------------------------------------------------------------------

/// Outcome summary of a task-level placement attempt.
struct AttemptScore {
    max_stage: u32,
    total_finish: f64,
}

/// One committed copy of a winning one-to-one attempt, with everything
/// needed to re-apply it after a rollback without re-running placement.
struct RltfCommit {
    copy: u8,
    probe: Probe,
    plan: SourcePlan,
    dset: ReplicaSet,
    host: usize,
}

/// Decide between the two task-level modes given their scores.
fn pick_one_to_one(
    engine: &Engine<'_>,
    cfg: &AlgoConfig,
    t: TaskId,
    tracker: &ReadyTracker,
    o: &AttemptScore,
    r: &AttemptScore,
) -> bool {
    if cfg.rule1 && o.max_stage != r.max_stage {
        // Rule 1: the mode with the smaller global stage count.
        o.max_stage < r.max_stage
    } else if cfg.rule2 && rule2_condition(engine.g, t, tracker) {
        // Rule 2: linear chain sections spread one-to-one.
        true
    } else {
        // One-to-one also wins finish-time ties: it costs fewer messages.
        o.total_finish <= r.total_finish + EPS
    }
}

/// Incremental R-LTF task placement: both modes run under one engine
/// checkpoint; the loser is unwound through the undo journal and a winning
/// one-to-one attempt is replayed from its recorded decisions.
fn rltf_place_task(
    engine: &mut Engine<'_>,
    cfg: &AlgoConfig,
    t: TaskId,
    tracker: &ReadyTracker,
) -> Result<(), ScheduleError> {
    let mark = engine.checkpoint();

    let mut oto_commits: Vec<RltfCommit> = Vec::new();
    let oto_score = if cfg.use_one_to_one {
        rltf_try_one_to_one(engine, t, cfg.cluster_ties, Some(&mut oto_commits))
    } else {
        None
    };
    // A failed attempt leaves partial placements behind: always restart
    // the receive-from-all attempt from the checkpoint.
    engine.rollback_to(mark);
    let rfa_score = rltf_try_receive_from_all(engine, t, cfg.cluster_ties);

    let replay_oto = match (&oto_score, &rfa_score) {
        (None, None) => {
            // The engine stays in the (failed, partially mutated) RFA
            // state; the caller aborts anyway.
            engine.discard_journal();
            return Err(ScheduleError::Infeasible { task: t, copy: 0 });
        }
        (Some(_), None) => true,
        (None, Some(_)) => false, // engine already holds the RFA state
        (Some(o), Some(r)) => pick_one_to_one(engine, cfg, t, tracker, o, r),
    };
    if replay_oto {
        engine.rollback_to(mark);
        engine.discard_journal();
        for c in &oto_commits {
            engine.commit(t, c.copy, &c.probe, &c.plan);
            let rep = engine.dense(t, c.copy);
            engine.set_down(rep, c.dset.clone());
            engine.register_upstream_host(rep, c.host);
        }
    } else {
        engine.discard_journal();
    }
    Ok(())
}

/// Snapshot-based R-LTF task placement: the pre-incremental speculation
/// procedure (three engine clones per task), kept verbatim as the
/// reference the differential tests compare the journal path against.
fn rltf_place_task_snapshot(
    engine: &mut Engine<'_>,
    cfg: &AlgoConfig,
    t: TaskId,
    tracker: &ReadyTracker,
) -> Result<(), ScheduleError> {
    let before = engine.clone();

    let oto_score = if cfg.use_one_to_one {
        rltf_try_one_to_one(engine, t, cfg.cluster_ties, None)
    } else {
        None
    };
    let oto_state = oto_score.is_some().then(|| engine.clone());
    // A failed attempt leaves partial placements behind: always restart
    // the receive-from-all attempt from the snapshot.
    *engine = before;
    let rfa_score = rltf_try_receive_from_all(engine, t, cfg.cluster_ties);

    match (oto_score, rfa_score) {
        (None, None) => Err(ScheduleError::Infeasible { task: t, copy: 0 }),
        (Some(_), None) => {
            *engine = oto_state.expect("saved with score");
            Ok(())
        }
        (None, Some(_)) => Ok(()), // engine already holds the RFA state
        (Some(o), Some(r)) => {
            if pick_one_to_one(engine, cfg, t, tracker, &o, &r) {
                *engine = oto_state.expect("saved with score");
            }
            Ok(())
        }
    }
}

/// The paper's Rule 2 condition, evaluated on the scheduling-direction
/// graph: `t` has a single predecessor `t'` (its unique successor in the
/// application graph), and every successor of `t'` (sibling of `t` in the
/// application graph) has `t'` as its only predecessor and is already
/// scheduled or ready.
fn rule2_condition(g: &TaskGraph, t: TaskId, tracker: &ReadyTracker) -> bool {
    if g.in_degree(t) != 1 {
        return false;
    }
    let tp = g.preds(t).next().expect("in-degree 1");
    g.succs(tp)
        .all(|s| g.in_degree(s) == 1 && (tracker.is_done(s) || tracker.is_ready(s)))
}

/// Attempt to place all copies of `t` with one-to-one pairings forming a
/// perfect matching per in-edge. Mutates the engine; on failure the caller
/// rolls back. When `record` is given, every committed copy's decisions
/// are captured for replay.
fn rltf_try_one_to_one(
    engine: &mut Engine<'_>,
    t: TaskId,
    cluster: bool,
    mut record: Option<&mut Vec<RltfCommit>>,
) -> Option<AttemptScore> {
    let g = engine.g;
    let nrep = engine.nrep;
    let pred_edges: Vec<_> = g.pred_edges(t).to_vec();
    // Unconsumed head copies per in-edge (perfect matching across copies).
    let mut remaining: Vec<Vec<u8>> = pred_edges
        .iter()
        .map(|_| (0..nrep as u8).collect())
        .collect();

    let mut max_stage = 0u32;
    let mut total_finish = 0.0f64;
    // Scratch closure reused across candidate processors; cloned only when
    // a candidate becomes the incumbent.
    let mut scratch = ReplicaSet::with_capacity(engine.num_replicas());

    for copy in 0..nrep as u8 {
        let rep_dense = ReplicaId::new(t, copy).dense(nrep);
        let mut best: Option<(Probe, SourcePlan, Vec<u8>, ReplicaSet, ProcMask)> = None;

        for u in engine.p.procs() {
            // Head per in-edge: smallest (stage contribution, arrival)
            // among unconsumed copies.
            let mut plan = Vec::with_capacity(pred_edges.len());
            let mut heads = Vec::with_capacity(pred_edges.len());
            let mut ok = true;
            for (i, &eid) in pred_edges.iter().enumerate() {
                let pred = g.edge(eid).src;
                let mut pick: Option<(u32, f64, u8)> = None;
                for &c in &remaining[i] {
                    let src = ReplicaId::new(pred, c);
                    let key = (
                        engine.stage_contribution(src, u),
                        engine.arrival_estimate(eid, src, u),
                        c,
                    );
                    if pick.is_none_or(|p| key < p) {
                        pick = Some(key);
                    }
                }
                match pick {
                    Some((_, _, c)) => {
                        plan.push((eid, vec![c]));
                        heads.push(c);
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                break; // no heads left for some edge: no copy can pair
            }

            // Downstream closure of the would-be replica, and the validity
            // checks (no two copies of one task downstream; host outside
            // every sibling's upstream hosts).
            scratch.clear();
            scratch.insert(rep_dense);
            for (i, &eid) in pred_edges.iter().enumerate() {
                let pred = g.edge(eid).src;
                let head = ReplicaId::new(pred, heads[i]).dense(nrep);
                scratch.union_with(&engine.down[head]);
            }
            if closure_has_copy_conflict(&scratch, nrep) {
                continue;
            }
            let forbid = forbidden_hosts(engine, &scratch, nrep);
            if forbid >> u.index() & 1 == 1 {
                continue;
            }

            let plan = SourcePlan { per_edge: plan };
            let Some(probe) = engine.probe(t, copy, u, &plan) else {
                continue;
            };
            // Stage first; then prefer processors already in use — in
            // reverse time the finish value carries no latency meaning,
            // and spreading stage-tied replicas across fresh processors
            // would deny every upstream task a co-location target (its
            // consumers would sit on different processors, forcing a new
            // stage per level). Finish time breaks the remaining ties.
            let key = (probe.stage, cluster && !engine.proc_used(u), probe.finish);
            let better = best.as_ref().is_none_or(|(b, ..)| {
                key < (b.stage, cluster && !engine.proc_used(b.proc), b.finish)
            });
            if better {
                best = Some((probe, plan, heads, scratch.clone(), forbid));
            }
        }

        let (probe, plan, heads, dset, _) = best?;
        // Consume the heads.
        for (i, &c) in heads.iter().enumerate() {
            remaining[i].retain(|&x| x != c);
        }
        max_stage = max_stage.max(probe.stage);
        total_finish += probe.finish;
        let host = probe.proc.index();
        engine.commit(t, copy, &probe, &plan);
        if let Some(rec) = record.as_deref_mut() {
            engine.set_down(rep_dense, dset.clone());
            engine.register_upstream_host(rep_dense, host);
            rec.push(RltfCommit {
                copy,
                probe,
                plan,
                dset,
                host,
            });
        } else {
            engine.set_down(rep_dense, dset);
            engine.register_upstream_host(rep_dense, host);
        }
    }

    Some(AttemptScore {
        max_stage: max_stage.max(engine.max_stage),
        total_finish,
    })
}

/// Attempt to place all copies of `t` receive-from-all. Mutates the
/// engine; on failure the caller rolls back.
fn rltf_try_receive_from_all(
    engine: &mut Engine<'_>,
    t: TaskId,
    cluster: bool,
) -> Option<AttemptScore> {
    let nrep = engine.nrep;
    let plan = SourcePlan::receive_from_all(engine.g, t, nrep);
    let mut max_stage = 0u32;
    let mut total_finish = 0.0f64;

    for copy in 0..nrep as u8 {
        let rep_dense = ReplicaId::new(t, copy).dense(nrep);
        // Sibling upstream hosts are forbidden (their crash must not be
        // able to take out this copy as well).
        let forbid = engine.allush[t.index()];
        let mut best: Option<Probe> = None;
        for u in engine.p.procs() {
            if forbid >> u.index() & 1 == 1 {
                continue;
            }
            let Some(probe) = engine.probe(t, copy, u, &plan) else {
                continue;
            };
            // Same clustering tie-break as the one-to-one attempt.
            let key = (probe.stage, cluster && !engine.proc_used(u), probe.finish);
            let better = best
                .as_ref()
                .is_none_or(|b| key < (b.stage, cluster && !engine.proc_used(b.proc), b.finish));
            if better {
                best = Some(probe);
            }
        }
        let probe = best?;
        max_stage = max_stage.max(probe.stage);
        total_finish += probe.finish;
        let host = probe.proc;
        engine.commit(t, copy, &probe, &plan);
        let mut dset = ReplicaSet::with_capacity(engine.num_replicas());
        dset.insert(rep_dense);
        engine.set_down(rep_dense, dset);
        engine.register_upstream_host(rep_dense, host.index());
    }

    Some(AttemptScore {
        max_stage: max_stage.max(engine.max_stage),
        total_finish,
    })
}

/// `true` when the closure contains two distinct copies of some task.
fn closure_has_copy_conflict(dset: &ReplicaSet, nrep: usize) -> bool {
    let mut last_task = usize::MAX;
    for idx in dset.iter() {
        let task = idx / nrep;
        if task == last_task {
            return true; // dense indices of one task are contiguous
        }
        last_task = task;
    }
    false
}

/// Hosts that the new replica must avoid: for every replica `(y, j)` in
/// its downstream closure, the upstream hosts already registered for the
/// *sibling* copies of `y`.
fn forbidden_hosts(engine: &Engine<'_>, dset: &ReplicaSet, nrep: usize) -> ProcMask {
    let mut forbid: ProcMask = 0;
    for idx in dset.iter() {
        let task = idx / nrep;
        // Disjointness invariant lets us subtract this copy's own hosts.
        forbid |= engine.allush[task] & !engine.ushost[idx];
    }
    forbid
}
