//! A counting global allocator for the unit-test binary.
//!
//! The scratch-arena discipline in [`crate::driver`] and [`crate::engine`]
//! claims that steady-state placement loops never touch the heap. Claims
//! like that rot silently — a stray `to_vec()` in a hot loop compiles and
//! passes every functional test. This module makes the property testable:
//! the test binary's global allocator counts allocations on the current
//! thread while a measurement is armed, and the allocation tests in
//! `driver` assert exact-zero (warm LTF probe sweep) and bounded-per-task
//! (full R-LTF run) counts.
//!
//! Only compiled into `ltf-core`'s unit-test binary (`#[cfg(test)]` in
//! `lib.rs`); production builds keep the system allocator untouched.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static COUNT: Cell<usize> = const { Cell::new(0) };
}

struct CountingAlloc;

#[inline]
fn note() {
    ARMED.with(|a| {
        if a.get() {
            COUNT.with(|c| c.set(c.get() + 1));
        }
    });
}

// SAFETY: delegates verbatim to `System`; the counter has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Run `f` with allocation counting armed on this thread; returns the
/// number of heap allocations (including reallocations) it performed,
/// alongside its result.
pub(crate) fn measure<R>(f: impl FnOnce() -> R) -> (usize, R) {
    COUNT.with(|c| c.set(0));
    ARMED.with(|a| a.set(true));
    let r = f();
    ARMED.with(|a| a.set(false));
    (COUNT.with(|c| c.get()), r)
}

#[cfg(test)]
mod tests {
    use super::measure;

    #[test]
    fn counter_sees_allocations_and_disarms() {
        let (n, v) = measure(|| Vec::<u64>::with_capacity(8));
        assert_eq!(n, 1);
        drop(v);
        let (n, _) = measure(|| 1 + 1);
        assert_eq!(n, 0);
    }
}
