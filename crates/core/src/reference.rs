//! The frozen snapshot-based reference implementation.
//!
//! This module is a deliberate copy of the pre-arena placement engine: the
//! parallel-`Vec` engine layout, the clone-based R-LTF speculation (three
//! whole-`Engine` snapshots per task) and the batch reversal transposition
//! in the schedule conversion. It exists for one purpose: the differential
//! suite (`tests/differential_incremental.rs`) pins the production path —
//! struct-of-arrays state, scratch arenas, undo-journal speculation and the
//! incrementally maintained reversal — against this independent control
//! flow, schedule for schedule, bit for bit.
//!
//! Because its value *is* its independence, nothing here should be
//! "improved" towards the production engine: it shares only the layers
//! whose equivalence is pinned elsewhere (the overlay probe and interval
//! index by the `ltf-schedule` property tests, the priority tracker by
//! `prio`'s own tests, and the ready tracker, which is trivially shared).
//! It allocates freely and clones the engine per task — it is a test
//! oracle, not a production code path.

use crate::config::{AlgoConfig, AlgoKind, ScheduleError};
use crate::prio::{LevelCache, PrioTracker};
use ltf_graph::traversal::ReadyTracker;
use ltf_graph::{EdgeId, TaskGraph, TaskId};
use ltf_platform::{Platform, ProcId};
use ltf_schedule::intervals::earliest_common_fit;
use ltf_schedule::{
    CommEvent, IntervalIndex, OverlayDelta, ReplicaId, Schedule, ScheduleData, SourceChoice, EPS,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Schedule through the reference path. Must produce schedules identical
/// to the production heuristics on every input.
pub(crate) fn schedule(
    kind: AlgoKind,
    g: &TaskGraph,
    p: &Platform,
    cfg: &AlgoConfig,
) -> Result<Schedule, ScheduleError> {
    match kind {
        AlgoKind::Ltf => {
            let cache = LevelCache::compute(g, p);
            let mut engine = Engine::new(g, p, cfg);
            run(&mut engine, cfg, Policy::Ltf, &cache)?;
            Ok(forward_schedule(engine, g, p, cfg.epsilon, cfg.period))
        }
        AlgoKind::Rltf => {
            let rev = g.reversed();
            let cache = LevelCache::compute(&rev, p);
            let mut engine = Engine::new(&rev, p, cfg);
            run(&mut engine, cfg, Policy::Rltf, &cache)?;
            Ok(reversed_schedule(engine, g, p, cfg.epsilon, cfg.period))
        }
    }
}

// ---------------------------------------------------------------------------
// Engine (frozen parallel-Vec layout, no journal).
// ---------------------------------------------------------------------------

/// Which predecessor copies feed each in-edge of a replica being placed.
#[derive(Debug, Clone)]
struct SourcePlan {
    per_edge: Vec<(EdgeId, Vec<u8>)>,
}

impl SourcePlan {
    fn receive_from_all(g: &TaskGraph, t: TaskId, nrep: usize) -> Self {
        Self {
            per_edge: g
                .pred_edges(t)
                .iter()
                .map(|&e| (e, (0..nrep as u8).collect()))
                .collect(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PlannedComm {
    edge: EdgeId,
    src: ReplicaId,
    src_proc: ProcId,
    start: f64,
    dur: f64,
}

type ProcMask = u128;

/// Fixed-capacity replica bitset (the frozen pre-arena layout).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct ReplicaSet {
    words: Vec<u64>,
}

impl ReplicaSet {
    fn with_capacity(n: usize) -> Self {
        Self {
            words: vec![0; n.div_ceil(64)],
        }
    }

    #[inline]
    fn insert(&mut self, idx: usize) {
        self.words[idx / 64] |= 1u64 << (idx % 64);
    }

    fn union_with(&mut self, other: &ReplicaSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    fn clear(&mut self) {
        self.words.fill(0);
    }

    fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            let mut bits = bits;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(w * 64 + b)
                }
            })
        })
    }
}

#[derive(Debug, Clone)]
struct Probe {
    proc: ProcId,
    start: f64,
    finish: f64,
    stage: u32,
    kill: ProcMask,
    planned: Vec<PlannedComm>,
}

/// Partially-built schedule state, one parallel `Vec` per attribute; the
/// snapshot driver duplicates the whole struct to compare speculative
/// attempts.
#[derive(Clone)]
struct Engine<'a> {
    g: &'a TaskGraph,
    p: &'a Platform,
    period: f64,
    nrep: usize,
    placed: Vec<bool>,
    proc_of: Vec<ProcId>,
    start: Vec<f64>,
    finish: Vec<f64>,
    stage: Vec<u32>,
    sources: Vec<Vec<SourceChoice>>,
    comm_events: Vec<CommEvent>,
    sigma: Vec<f64>,
    cin: Vec<f64>,
    cout: Vec<f64>,
    cpu: IntervalIndex,
    send: IntervalIndex,
    recv: IntervalIndex,
    kill: Vec<ProcMask>,
    down: Vec<ReplicaSet>,
    ushost: Vec<ProcMask>,
    allush: Vec<ProcMask>,
    max_stage: u32,
}

impl<'a> Engine<'a> {
    fn new(g: &'a TaskGraph, p: &'a Platform, cfg: &AlgoConfig) -> Self {
        let nrep = cfg.replicas();
        let n = g.num_tasks() * nrep;
        let m = p.num_procs();
        assert!(m <= 128, "ProcMask supports up to 128 processors");
        Self {
            g,
            p,
            period: cfg.period,
            nrep,
            placed: vec![false; n],
            proc_of: vec![ProcId(0); n],
            start: vec![0.0; n],
            finish: vec![0.0; n],
            stage: vec![0; n],
            sources: vec![Vec::new(); n],
            comm_events: Vec::new(),
            sigma: vec![0.0; m],
            cin: vec![0.0; m],
            cout: vec![0.0; m],
            cpu: IntervalIndex::new(m),
            send: IntervalIndex::new(m),
            recv: IntervalIndex::new(m),
            kill: vec![0; n],
            down: vec![ReplicaSet::with_capacity(n); n],
            ushost: vec![0; n],
            allush: vec![0; g.num_tasks()],
            max_stage: 0,
        }
    }

    #[inline]
    fn num_replicas(&self) -> usize {
        self.placed.len()
    }

    #[inline]
    fn dense(&self, t: TaskId, copy: u8) -> usize {
        ReplicaId::new(t, copy).dense(self.nrep)
    }

    fn task_finish(&self, t: TaskId) -> f64 {
        (0..self.nrep)
            .map(|c| self.finish[self.dense(t, c as u8)])
            .fold(0.0, f64::max)
    }

    #[inline]
    fn kill_of(&self, t: TaskId, copy: u8) -> ProcMask {
        self.kill[self.dense(t, copy)]
    }

    #[inline]
    fn proc_used(&self, u: ProcId) -> bool {
        self.sigma[u.index()] > 0.0
    }

    fn arrival_estimate(&self, edge: EdgeId, src: ReplicaId, u: ProcId) -> f64 {
        let sidx = src.dense(self.nrep);
        debug_assert!(self.placed[sidx], "source not placed");
        let h = self.proc_of[sidx];
        let vol = self.g.edge(edge).volume;
        self.finish[sidx] + self.p.comm_time(vol, h, u)
    }

    fn stage_contribution(&self, src: ReplicaId, u: ProcId) -> u32 {
        let sidx = src.dense(self.nrep);
        self.stage[sidx] + u32::from(self.proc_of[sidx] != u)
    }

    fn probe(&self, t: TaskId, u: ProcId, plan: &SourcePlan) -> Option<Probe> {
        let ui = u.index();
        let exec = self.p.exec_time(self.g.exec(t), u);
        if self.sigma[ui] + exec > self.period + EPS {
            return None;
        }

        let mut items: Vec<(EdgeId, ReplicaId)> = Vec::new();
        for (edge, copies) in &plan.per_edge {
            let pred = self.g.edge(*edge).src;
            for &c in copies {
                items.push((*edge, ReplicaId::new(pred, c)));
            }
        }
        items.sort_by(|a, b| {
            let fa = self.finish[a.1.dense(self.nrep)];
            let fb = self.finish[b.1.dense(self.nrep)];
            fa.partial_cmp(&fb)
                .expect("finite times")
                .then(a.0.cmp(&b.0))
                .then(a.1.copy.cmp(&b.1.copy))
        });

        let mut send_deltas: Vec<(usize, OverlayDelta, f64)> = Vec::new();
        let mut recv_delta = OverlayDelta::new();
        let mut cin_add = 0.0f64;
        let mut ready = 0.0f64;
        let mut stage = 1u32;
        let mut planned = Vec::new();

        let mut kill: ProcMask = 1u128 << ui;
        for (edge, copies) in &plan.per_edge {
            let pred = self.g.edge(*edge).src;
            let mut edge_kill: ProcMask = !0;
            for &c in copies {
                edge_kill &= self.kill[self.dense(pred, c)];
            }
            if !copies.is_empty() {
                kill |= edge_kill;
            }
        }

        for (edge, src) in items {
            let sidx = src.dense(self.nrep);
            debug_assert!(self.placed[sidx], "predecessor replica not placed");
            let h = self.proc_of[sidx];
            if h == u {
                ready = ready.max(self.finish[sidx]);
                stage = stage.max(self.stage[sidx]);
                continue;
            }
            stage = stage.max(self.stage[sidx] + 1);
            let dur = self.p.comm_time(self.g.edge(edge).volume, h, u);
            if dur <= EPS {
                ready = ready.max(self.finish[sidx]);
                continue;
            }
            let hi = h.index();
            let slot = match send_deltas.iter().position(|(p, ..)| *p == hi) {
                Some(i) => i,
                None => {
                    send_deltas.push((hi, OverlayDelta::new(), 0.0));
                    send_deltas.len() - 1
                }
            };
            let st = {
                let sv = self.send.overlay(hi, &send_deltas[slot].1);
                let rv = self.recv.overlay(ui, &recv_delta);
                earliest_common_fit(&sv, &rv, self.finish[sidx], dur)
            };
            send_deltas[slot].1.insert(st, st + dur);
            recv_delta.insert(st, st + dur);
            cin_add += dur;
            send_deltas[slot].2 += dur;
            if self.cout[hi] + send_deltas[slot].2 > self.period + EPS {
                return None;
            }
            planned.push(PlannedComm {
                edge,
                src,
                src_proc: h,
                start: st,
                dur,
            });
            ready = ready.max(st + dur);
        }
        if self.cin[ui] + cin_add > self.period + EPS {
            return None;
        }

        let start = self.cpu.bucket(ui).next_fit(ready, exec);
        Some(Probe {
            proc: u,
            start,
            finish: start + exec,
            stage,
            kill,
            planned,
        })
    }

    fn commit(&mut self, t: TaskId, copy: u8, probe: &Probe, plan: &SourcePlan) {
        let r = self.dense(t, copy);
        assert!(!self.placed[r], "replica committed twice");
        let u = probe.proc;
        let ui = u.index();
        let rep = ReplicaId::new(t, copy);

        self.placed[r] = true;
        self.proc_of[r] = u;
        self.start[r] = probe.start;
        self.finish[r] = probe.finish;
        self.stage[r] = probe.stage;
        self.kill[r] = probe.kill;
        self.max_stage = self.max_stage.max(probe.stage);

        self.sigma[ui] += probe.finish - probe.start;
        self.cpu.insert(ui, probe.start, probe.finish);

        for pc in &probe.planned {
            self.send
                .insert(pc.src_proc.index(), pc.start, pc.start + pc.dur);
            self.recv.insert(ui, pc.start, pc.start + pc.dur);
            self.cout[pc.src_proc.index()] += pc.dur;
            self.cin[ui] += pc.dur;
            self.comm_events.push(CommEvent {
                edge: pc.edge,
                src: pc.src,
                dst: rep,
                src_proc: pc.src_proc,
                dst_proc: u,
                start: pc.start,
                finish: pc.start + pc.dur,
            });
        }

        self.sources[r] = plan
            .per_edge
            .iter()
            .map(|(edge, copies)| SourceChoice {
                edge: *edge,
                sources: copies.clone(),
            })
            .collect();
    }

    fn set_down(&mut self, r: usize, dset: ReplicaSet) {
        self.down[r] = dset;
    }

    fn register_upstream_host(&mut self, r: usize, host: usize) {
        let bit: ProcMask = 1 << host;
        let nrep = self.nrep;
        let dset = std::mem::take(&mut self.down[r]);
        for idx in dset.iter() {
            self.ushost[idx] |= bit;
            self.allush[idx / nrep] |= bit;
        }
        self.down[r] = dset;
    }

    fn all_placed(&self) -> bool {
        self.placed.iter().all(|&b| b)
    }
}

// ---------------------------------------------------------------------------
// Driver (frozen chunked loop with snapshot speculation).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Policy {
    Ltf,
    Rltf,
}

fn run(
    engine: &mut Engine<'_>,
    cfg: &AlgoConfig,
    policy: Policy,
    cache: &LevelCache,
) -> Result<(), ScheduleError> {
    let g = engine.g;
    let p = engine.p;
    if p.num_procs() < cfg.replicas() {
        return Err(ScheduleError::TooFewProcessors {
            needed: cfg.replicas(),
            available: p.num_procs(),
        });
    }
    if !(cfg.period.is_finite() && cfg.period > 0.0) {
        return Err(ScheduleError::BadConfig(format!(
            "period must be positive, got {}",
            cfg.period
        )));
    }

    let mut prio = PrioTracker::new(cache);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut tracker = ReadyTracker::new(g);
    let mut alpha: Vec<TaskId> = g.entries().to_vec();
    let chunk_cap = cfg.chunk_size.unwrap_or(p.num_procs()).max(1);

    while !alpha.is_empty() {
        prio.flush(g);
        let mut beta = Vec::with_capacity(chunk_cap.min(alpha.len()));
        while beta.len() < chunk_cap && !alpha.is_empty() {
            let idx = head_index(&alpha, prio.values(), &mut rng);
            beta.push(alpha.swap_remove(idx));
        }

        match policy {
            Policy::Ltf => {
                let mut ctxs: Vec<LtfCtx> = beta.iter().map(|&t| LtfCtx::new(t)).collect();
                for copy in 0..engine.nrep as u8 {
                    for ctx in &mut ctxs {
                        ltf_place_copy(engine, cfg, ctx, copy)?;
                    }
                }
            }
            Policy::Rltf => {
                for &t in &beta {
                    rltf_place_task_snapshot(engine, cfg, t, &tracker)?;
                }
            }
        }

        for &t in &beta {
            for s in tracker.complete(g, t) {
                alpha.push(s);
            }
            prio.mark_finished(t, engine.task_finish(t));
        }
    }
    debug_assert!(engine.all_placed(), "ready loop ended early");
    debug_assert!(tracker.all_done(g), "tasks left unscheduled");
    Ok(())
}

fn head_index(alpha: &[TaskId], prio: &[f64], rng: &mut StdRng) -> usize {
    debug_assert!(!alpha.is_empty());
    let best = alpha
        .iter()
        .map(|t| prio[t.index()])
        .fold(f64::NEG_INFINITY, f64::max);
    let tied: Vec<usize> = (0..alpha.len())
        .filter(|&i| prio[alpha[i].index()] >= best - EPS)
        .collect();
    tied[rng.gen_range(0..tied.len())]
}

struct LtfCtx {
    task: TaskId,
    used: ProcMask,
}

impl LtfCtx {
    fn new(task: TaskId) -> Self {
        Self { task, used: 0 }
    }
}

fn ltf_place_copy(
    engine: &mut Engine<'_>,
    cfg: &AlgoConfig,
    ctx: &mut LtfCtx,
    copy: u8,
) -> Result<(), ScheduleError> {
    let t = ctx.task;
    let cone_budget = engine.p.num_procs().div_ceil(engine.nrep) as u32;
    let chosen = ltf_best_placement(engine, ctx, copy, cone_budget, cfg.use_one_to_one);
    let Some((probe, plan)) = chosen else {
        return Err(ScheduleError::Infeasible { task: t, copy });
    };
    ctx.used |= probe.kill;
    engine.commit(t, copy, &probe, &plan);
    Ok(())
}

fn ltf_best_placement(
    engine: &Engine<'_>,
    ctx: &LtfCtx,
    copy: u8,
    cone_budget: u32,
    one_to_one: bool,
) -> Option<(Probe, SourcePlan)> {
    let g = engine.g;
    let t = ctx.task;
    let pred_edges = g.pred_edges(t);
    let mut best: Option<(Probe, SourcePlan)> = None;

    for u in engine.p.procs() {
        if ctx.used >> u.index() & 1 == 1 {
            continue;
        }
        let mut plan = Vec::with_capacity(pred_edges.len());
        let mut acc_kill: ProcMask = 1u128 << u.index();
        for &eid in pred_edges.iter() {
            let pred = g.edge(eid).src;
            let mut pick: Option<(bool, f64, u8)> = None;
            if one_to_one {
                for c in 0..engine.nrep as u8 {
                    let k = engine.kill_of(pred, c);
                    if k & ctx.used != 0 {
                        continue;
                    }
                    if (acc_kill | k).count_ones() > cone_budget {
                        continue;
                    }
                    let src = ReplicaId::new(pred, c);
                    let key = (c != copy, engine.arrival_estimate(eid, src, u), c);
                    if pick.is_none_or(|p| key < p) {
                        pick = Some(key);
                    }
                }
            }
            match pick {
                Some((_, _, c)) => {
                    acc_kill |= engine.kill_of(pred, c);
                    plan.push((eid, vec![c]));
                }
                None => plan.push((eid, (0..engine.nrep as u8).collect())),
            }
        }
        let plan = SourcePlan { per_edge: plan };
        let Some(probe) = engine.probe(t, u, &plan) else {
            continue;
        };
        if probe.kill & ctx.used != 0 {
            continue;
        }
        if best
            .as_ref()
            .is_none_or(|(b, _)| probe.finish < b.finish - EPS)
        {
            best = Some((probe, plan));
        }
    }
    best
}

struct AttemptScore {
    max_stage: u32,
    total_finish: f64,
}

fn pick_one_to_one(
    engine: &Engine<'_>,
    cfg: &AlgoConfig,
    t: TaskId,
    tracker: &ReadyTracker,
    o: &AttemptScore,
    r: &AttemptScore,
) -> bool {
    if cfg.rule1 && o.max_stage != r.max_stage {
        o.max_stage < r.max_stage
    } else if cfg.rule2 && rule2_condition(engine.g, t, tracker) {
        true
    } else {
        o.total_finish <= r.total_finish + EPS
    }
}

/// Snapshot-based R-LTF task placement: the two task-level modes are
/// compared via whole-engine clones.
fn rltf_place_task_snapshot(
    engine: &mut Engine<'_>,
    cfg: &AlgoConfig,
    t: TaskId,
    tracker: &ReadyTracker,
) -> Result<(), ScheduleError> {
    let before = engine.clone();

    let oto_score = if cfg.use_one_to_one {
        rltf_try_one_to_one(engine, t, cfg.cluster_ties)
    } else {
        None
    };
    let oto_state = oto_score.is_some().then(|| engine.clone());
    // A failed attempt leaves partial placements behind: always restart
    // the receive-from-all attempt from the snapshot.
    *engine = before;
    let rfa_score = rltf_try_receive_from_all(engine, t, cfg.cluster_ties);

    match (oto_score, rfa_score) {
        (None, None) => Err(ScheduleError::Infeasible { task: t, copy: 0 }),
        (Some(_), None) => {
            *engine = oto_state.expect("saved with score");
            Ok(())
        }
        (None, Some(_)) => Ok(()), // engine already holds the RFA state
        (Some(o), Some(r)) => {
            if pick_one_to_one(engine, cfg, t, tracker, &o, &r) {
                *engine = oto_state.expect("saved with score");
            }
            Ok(())
        }
    }
}

fn rule2_condition(g: &TaskGraph, t: TaskId, tracker: &ReadyTracker) -> bool {
    if g.in_degree(t) != 1 {
        return false;
    }
    let tp = g.preds(t).next().expect("in-degree 1");
    g.succs(tp)
        .all(|s| g.in_degree(s) == 1 && (tracker.is_done(s) || tracker.is_ready(s)))
}

fn rltf_try_one_to_one(engine: &mut Engine<'_>, t: TaskId, cluster: bool) -> Option<AttemptScore> {
    let g = engine.g;
    let nrep = engine.nrep;
    let pred_edges: Vec<_> = g.pred_edges(t).to_vec();
    let mut remaining: Vec<Vec<u8>> = pred_edges
        .iter()
        .map(|_| (0..nrep as u8).collect())
        .collect();

    let mut max_stage = 0u32;
    let mut total_finish = 0.0f64;
    let mut scratch = ReplicaSet::with_capacity(engine.num_replicas());

    for copy in 0..nrep as u8 {
        let rep_dense = ReplicaId::new(t, copy).dense(nrep);
        let mut best: Option<(Probe, SourcePlan, Vec<u8>, ReplicaSet)> = None;

        for u in engine.p.procs() {
            let mut plan = Vec::with_capacity(pred_edges.len());
            let mut heads = Vec::with_capacity(pred_edges.len());
            let mut ok = true;
            for (i, &eid) in pred_edges.iter().enumerate() {
                let pred = g.edge(eid).src;
                let mut pick: Option<(u32, f64, u8)> = None;
                for &c in &remaining[i] {
                    let src = ReplicaId::new(pred, c);
                    let key = (
                        engine.stage_contribution(src, u),
                        engine.arrival_estimate(eid, src, u),
                        c,
                    );
                    if pick.is_none_or(|p| key < p) {
                        pick = Some(key);
                    }
                }
                match pick {
                    Some((_, _, c)) => {
                        plan.push((eid, vec![c]));
                        heads.push(c);
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                break; // no heads left for some edge: no copy can pair
            }

            scratch.clear();
            scratch.insert(rep_dense);
            for (i, &eid) in pred_edges.iter().enumerate() {
                let pred = g.edge(eid).src;
                let head = ReplicaId::new(pred, heads[i]).dense(nrep);
                scratch.union_with(&engine.down[head]);
            }
            if closure_has_copy_conflict(&scratch, nrep) {
                continue;
            }
            let forbid = forbidden_hosts(engine, &scratch, nrep);
            if forbid >> u.index() & 1 == 1 {
                continue;
            }

            let plan = SourcePlan { per_edge: plan };
            let Some(probe) = engine.probe(t, u, &plan) else {
                continue;
            };
            let key = (probe.stage, cluster && !engine.proc_used(u), probe.finish);
            let better = best.as_ref().is_none_or(|(b, ..)| {
                key < (b.stage, cluster && !engine.proc_used(b.proc), b.finish)
            });
            if better {
                best = Some((probe, plan, heads, scratch.clone()));
            }
        }

        let (probe, plan, heads, dset) = best?;
        for (i, &c) in heads.iter().enumerate() {
            remaining[i].retain(|&x| x != c);
        }
        max_stage = max_stage.max(probe.stage);
        total_finish += probe.finish;
        let host = probe.proc.index();
        engine.commit(t, copy, &probe, &plan);
        engine.set_down(rep_dense, dset);
        engine.register_upstream_host(rep_dense, host);
    }

    Some(AttemptScore {
        max_stage: max_stage.max(engine.max_stage),
        total_finish,
    })
}

fn rltf_try_receive_from_all(
    engine: &mut Engine<'_>,
    t: TaskId,
    cluster: bool,
) -> Option<AttemptScore> {
    let nrep = engine.nrep;
    let plan = SourcePlan::receive_from_all(engine.g, t, nrep);
    let mut max_stage = 0u32;
    let mut total_finish = 0.0f64;

    for copy in 0..nrep as u8 {
        let rep_dense = ReplicaId::new(t, copy).dense(nrep);
        let forbid = engine.allush[t.index()];
        let mut best: Option<Probe> = None;
        for u in engine.p.procs() {
            if forbid >> u.index() & 1 == 1 {
                continue;
            }
            let Some(probe) = engine.probe(t, u, &plan) else {
                continue;
            };
            let key = (probe.stage, cluster && !engine.proc_used(u), probe.finish);
            let better = best
                .as_ref()
                .is_none_or(|b| key < (b.stage, cluster && !engine.proc_used(b.proc), b.finish));
            if better {
                best = Some(probe);
            }
        }
        let probe = best?;
        max_stage = max_stage.max(probe.stage);
        total_finish += probe.finish;
        let host = probe.proc;
        engine.commit(t, copy, &probe, &plan);
        let mut dset = ReplicaSet::with_capacity(engine.num_replicas());
        dset.insert(rep_dense);
        engine.set_down(rep_dense, dset);
        engine.register_upstream_host(rep_dense, host.index());
    }

    Some(AttemptScore {
        max_stage: max_stage.max(engine.max_stage),
        total_finish,
    })
}

fn closure_has_copy_conflict(dset: &ReplicaSet, nrep: usize) -> bool {
    let mut last_task = usize::MAX;
    for idx in dset.iter() {
        let task = idx / nrep;
        if task == last_task {
            return true;
        }
        last_task = task;
    }
    false
}

fn forbidden_hosts(engine: &Engine<'_>, dset: &ReplicaSet, nrep: usize) -> ProcMask {
    let mut forbid: ProcMask = 0;
    for idx in dset.iter() {
        let task = idx / nrep;
        forbid |= engine.allush[task] & !engine.ushost[idx];
    }
    forbid
}

// ---------------------------------------------------------------------------
// Conversion (frozen batch reversal transposition).
// ---------------------------------------------------------------------------

fn forward_schedule(
    engine: Engine<'_>,
    g: &TaskGraph,
    p: &Platform,
    epsilon: u8,
    period: f64,
) -> Schedule {
    Schedule::with_stages(
        g,
        p,
        ScheduleData {
            epsilon,
            period,
            proc_of: engine.proc_of,
            start: engine.start,
            finish: engine.finish,
            sources: engine.sources,
            comm_events: engine.comm_events,
        },
        engine.stage,
    )
}

fn reversed_schedule(
    engine: Engine<'_>,
    g: &TaskGraph,
    p: &Platform,
    epsilon: u8,
    period: f64,
) -> Schedule {
    let nrep = epsilon as usize + 1;
    let n = g.num_tasks() * nrep;
    let (proc_of, start_rev, finish_rev, sources_rev, events_rev) = (
        engine.proc_of,
        engine.start,
        engine.finish,
        engine.sources,
        engine.comm_events,
    );

    let t_ref = start_rev
        .iter()
        .chain(finish_rev.iter())
        .chain(events_rev.iter().flat_map(|e| [&e.start, &e.finish]))
        .fold(0.0f64, |a, &b| a.max(b));

    let start: Vec<f64> = finish_rev.iter().map(|&f| t_ref - f).collect();
    let finish: Vec<f64> = start_rev.iter().map(|&s| t_ref - s).collect();

    // Transpose the source relation batch-wise: replica (x, i) receiving
    // from (y, j) over Ĝ-edge e  ⇒  forward source of (y, j) on original
    // edge e is i.
    let mut fwd_sources: Vec<Vec<SourceChoice>> = (0..n).map(|_| Vec::new()).collect();
    for (ridx, choices) in sources_rev.iter().enumerate() {
        let x_rep = ReplicaId::from_dense(ridx, nrep);
        for choice in choices {
            let y = g.edge(choice.edge).dst;
            debug_assert_eq!(g.edge(choice.edge).src, x_rep.task);
            for &j in &choice.sources {
                let tgt = ReplicaId::new(y, j).dense(nrep);
                push_source(&mut fwd_sources[tgt], choice.edge, x_rep.copy);
            }
        }
    }
    for (ridx, list) in fwd_sources.iter_mut().enumerate() {
        let rep = ReplicaId::from_dense(ridx, nrep);
        let order = g.pred_edges(rep.task);
        list.sort_by_key(|c| {
            order
                .iter()
                .position(|&e| e == c.edge)
                .unwrap_or(usize::MAX)
        });
        for c in list.iter_mut() {
            c.sources.sort_unstable();
        }
    }

    let comm_events: Vec<CommEvent> = events_rev
        .iter()
        .map(|e| CommEvent {
            edge: e.edge,
            src: e.dst,
            dst: e.src,
            src_proc: e.dst_proc,
            dst_proc: e.src_proc,
            start: t_ref - e.finish,
            finish: t_ref - e.start,
        })
        .collect();

    Schedule::new(
        g,
        p,
        ScheduleData {
            epsilon,
            period,
            proc_of,
            start,
            finish,
            sources: fwd_sources,
            comm_events,
        },
    )
}

fn push_source(list: &mut Vec<SourceChoice>, edge: EdgeId, copy: u8) {
    match list.iter_mut().find(|c| c.edge == edge) {
        Some(c) => {
            if !c.sources.contains(&copy) {
                c.sources.push(copy);
            }
        }
        None => list.push(SourceChoice {
            edge,
            sources: vec![copy],
        }),
    }
}
