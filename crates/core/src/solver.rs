//! The unified scheduling API: pluggable [`Heuristic`] strategies behind a
//! [`Solver`] session with typed [`Solution`] / [`Diagnostics`] outcomes.
//!
//! The paper contributes a *family* of period/latency/replication
//! trade-offs — LTF, R-LTF, the fault-free reference, and the baseline
//! execution scenarios it compares against. This module exposes them (and
//! any user strategy) through one composable surface:
//!
//! * [`Heuristic`] — one mapping strategy: a name plus
//!   `schedule(&PreparedInstance, &AlgoConfig) -> Result<Schedule, _>`.
//!   [`Ltf`], [`Rltf`] and [`FaultFree`] implement it here; the
//!   `ltf-baselines` crate implements it for the comparison strategies.
//! * [`Solver`] — a session owning a [`PreparedInstance`] (the reversed
//!   graph and level caches are derived lazily, once) and a registry of
//!   heuristics addressable by name, so CLIs and experiment sweeps
//!   dispatch uniformly.
//! * [`Solution`] — a schedule bundled with its derived metrics and the
//!   name of the heuristic that produced it.
//! * [`Diagnostics`] — a [`ScheduleError`] bundled with the context it
//!   occurred in (heuristic, ε, period).
//!
//! ```
//! use ltf_core::{AlgoConfig, Solver};
//! use ltf_graph::generate::fig2_workflow_variant;
//! use ltf_platform::Platform;
//!
//! let g = fig2_workflow_variant();
//! let p = Platform::homogeneous(8, 1.0, 1.0);
//! let solver = Solver::builtin(&g, &p);
//! let cfg = AlgoConfig::with_throughput(1, 0.05); // ε = 1, T = 0.05
//! let sol = solver.solve("rltf", &cfg).unwrap();
//! assert!(sol.metrics.latency_upper_bound <= 140.0);
//! ```

use crate::api::{self, PreparedInstance};
use crate::config::{AlgoConfig, AlgoKind, ScheduleError};
use ltf_graph::TaskGraph;
use ltf_platform::Platform;
use ltf_schedule::Schedule;
use serde::{Deserialize, Serialize};

/// One mapping strategy: everything the [`Solver`], the objective-space
/// searches and the experiment harness need to drive an algorithm.
///
/// Implementations must be deterministic in `(instance, cfg)`: the
/// differential test suite holds every registered heuristic to
/// reproducing its legacy entry point bit for bit.
pub trait Heuristic: Send + Sync {
    /// Canonical registry name (lower-case, kebab-case), e.g. `"rltf"`.
    /// [`Solver`] lookup is case-insensitive over this name and
    /// [`Heuristic::aliases`].
    fn name(&self) -> &'static str;

    /// Alternative lookup names (e.g. `"r-ltf"`, `"ff"`).
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }

    /// Map the instance under `cfg`, producing a complete replicated
    /// pipelined [`Schedule`] or a typed [`ScheduleError`].
    fn schedule(
        &self,
        inst: &PreparedInstance<'_>,
        cfg: &AlgoConfig,
    ) -> Result<Schedule, ScheduleError>;
}

/// **LTF** (paper §4.1): forward chunked traversal by priority `tℓ + bℓ`,
/// one-to-one replica mapping while singleton processors remain,
/// minimum-finish-time placement.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ltf;

impl Heuristic for Ltf {
    fn name(&self) -> &'static str {
        "ltf"
    }

    fn schedule(
        &self,
        inst: &PreparedInstance<'_>,
        cfg: &AlgoConfig,
    ) -> Result<Schedule, ScheduleError> {
        api::ltf_cached(inst, cfg)
    }
}

/// **R-LTF** (paper §4.2): the same machinery driven bottom-up, with
/// Rule 1 (prefer placements that keep the pipeline stage count from
/// growing) and Rule 2 (one-to-one spreading across linear chain
/// sections). The paper's evaluation shows R-LTF dominating LTF.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rltf;

impl Heuristic for Rltf {
    fn name(&self) -> &'static str {
        "rltf"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["r-ltf"]
    }

    fn schedule(
        &self,
        inst: &PreparedInstance<'_>,
        cfg: &AlgoConfig,
    ) -> Result<Schedule, ScheduleError> {
        api::rltf_cached(inst, cfg)
    }
}

/// The **fault-free reference** of §5: R-LTF with the fault-tolerance
/// degree forced to `ε = 0` (a completely safe system). All other knobs of
/// the passed [`AlgoConfig`] (period, seed, ablation switches) are
/// honoured. The paper's overhead metric is `(L_algo − L_FF) / L_FF`
/// against this schedule's latency.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultFree;

impl Heuristic for FaultFree {
    fn name(&self) -> &'static str {
        "fault-free"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["ff", "fault_free"]
    }

    fn schedule(
        &self,
        inst: &PreparedInstance<'_>,
        cfg: &AlgoConfig,
    ) -> Result<Schedule, ScheduleError> {
        let mut cfg = cfg.clone();
        cfg.epsilon = 0;
        api::rltf_cached(inst, &cfg)
    }
}

impl AlgoKind {
    /// Registry name of the corresponding built-in heuristic.
    pub fn name(self) -> &'static str {
        match self {
            AlgoKind::Ltf => "ltf",
            AlgoKind::Rltf => "rltf",
        }
    }

    /// The corresponding built-in [`Heuristic`] as a trait object (handy
    /// for the objective-space searches and for migrating `AlgoKind`-based
    /// call sites).
    pub fn heuristic(self) -> &'static dyn Heuristic {
        match self {
            AlgoKind::Ltf => &Ltf,
            AlgoKind::Rltf => &Rltf,
        }
    }
}

/// Derived metrics of a [`Solution`], serializable for reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolutionMetrics {
    /// Fault-tolerance degree ε of the schedule.
    pub epsilon: u8,
    /// Iteration period `Δ` the schedule guarantees.
    pub period: f64,
    /// Requested throughput `T = 1/Δ`.
    pub throughput: f64,
    /// Throughput actually achievable by the mapping, `1 / max_u ∆_u`.
    pub achieved_throughput: f64,
    /// Pipeline stage count `S`.
    pub stages: u32,
    /// Guaranteed latency `L = (2S − 1)·Δ`.
    pub latency_upper_bound: f64,
    /// Distinct processors hosting at least one replica.
    pub procs_used: usize,
    /// Inter-processor messages per data set.
    pub comm_count: usize,
}

/// A successful [`Solver`] outcome: the [`Schedule`] bundled with its
/// derived metrics and the canonical name of the heuristic that produced
/// it.
///
/// Serializes (via the workspace `serde`) as a flat report of the
/// heuristic name and metrics; use
/// [`ltf_schedule::export::summarize`] on [`Solution::schedule`] for the
/// full placement detail.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Canonical name of the producing heuristic.
    pub heuristic: String,
    /// Metrics derived from the schedule at solve time.
    pub metrics: SolutionMetrics,
    /// The complete replicated pipelined schedule.
    pub schedule: Schedule,
}

impl Solution {
    /// Bundle a schedule produced by `heuristic` with its derived metrics.
    pub fn new(heuristic: &str, schedule: Schedule) -> Self {
        let metrics = SolutionMetrics {
            epsilon: schedule.epsilon(),
            period: schedule.period(),
            throughput: schedule.throughput(),
            achieved_throughput: schedule.achieved_throughput(),
            stages: schedule.num_stages(),
            latency_upper_bound: schedule.latency_upper_bound(),
            procs_used: schedule.procs_used(),
            comm_count: schedule.comm_count(),
        };
        Self {
            heuristic: heuristic.to_string(),
            metrics,
            schedule,
        }
    }

    /// Consume the report, keeping only the schedule.
    pub fn into_schedule(self) -> Schedule {
        self.schedule
    }
}

impl serde::Serialize for Solution {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![(
            "heuristic".to_string(),
            serde::Value::Str(self.heuristic.clone()),
        )];
        match self.metrics.to_value() {
            serde::Value::Map(m) => fields.extend(m),
            other => fields.push(("metrics".to_string(), other)),
        }
        serde::Value::Map(fields)
    }
}

impl std::fmt::Display for Solution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let m = &self.metrics;
        write!(
            f,
            "{}: ε={} Δ={:.3} S={} L≤{:.3} procs={} comms={} (achievable T {:.5})",
            self.heuristic,
            m.epsilon,
            m.period,
            m.stages,
            m.latency_upper_bound,
            m.procs_used,
            m.comm_count,
            m.achieved_throughput,
        )
    }
}

/// A failed [`Solver`] outcome: the underlying [`ScheduleError`] plus the
/// context it occurred in — which heuristic, at which fault-tolerance
/// degree and period. The error itself names the task/replica that failed
/// to place when one exists.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostics {
    /// Name the heuristic was addressed by (canonical when known).
    pub heuristic: String,
    /// Fault-tolerance degree ε of the failed request.
    pub epsilon: u8,
    /// Period `Δ` of the failed request.
    pub period: f64,
    /// The underlying typed error.
    pub error: ScheduleError,
}

impl Diagnostics {
    /// Attach request context to a [`ScheduleError`].
    pub fn new(heuristic: &str, cfg: &AlgoConfig, error: ScheduleError) -> Self {
        Self {
            heuristic: heuristic.to_string(),
            epsilon: cfg.epsilon,
            period: cfg.period,
            error,
        }
    }
}

impl std::fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} failed at ε={}, Δ={:.4}: {}",
            self.heuristic, self.epsilon, self.period, self.error
        )
    }
}

impl std::error::Error for Diagnostics {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// A scheduling session over one `(graph, platform)` instance: owns a
/// [`PreparedInstance`] (lazy, shared derivations) and a registry of
/// [`Heuristic`] strategies addressable by name.
///
/// ```
/// use ltf_core::{AlgoConfig, Solver};
/// use ltf_graph::generate::fig1_diamond;
/// use ltf_platform::Platform;
///
/// let g = fig1_diamond();
/// let p = Platform::fig1_platform();
/// let solver = Solver::builtin(&g, &p);
/// let sol = solver.solve("rltf", &AlgoConfig::new(1, 30.0)).unwrap();
/// assert_eq!(sol.metrics.stages, 2); // the paper's S = 2, L = 90
/// let err = solver.solve("rltf", &AlgoConfig::new(3, 4.0)).unwrap_err();
/// assert_eq!(err.epsilon, 3); // diagnostics carry the request context
/// ```
pub struct Solver<'a> {
    inst: PreparedInstance<'a>,
    registry: Vec<Box<dyn Heuristic>>,
}

impl<'a> Solver<'a> {
    /// A session with an empty registry.
    pub fn new(g: &'a TaskGraph, p: &'a Platform) -> Self {
        Self {
            inst: PreparedInstance::new(g, p),
            registry: Vec::new(),
        }
    }

    /// A session with the paper's own strategies registered: [`Ltf`],
    /// [`Rltf`] and [`FaultFree`]. The comparison baselines live in
    /// `ltf-baselines`; register them with [`Solver::with`] /
    /// [`Solver::register`] (or use `ltf_baselines::full_solver`).
    pub fn builtin(g: &'a TaskGraph, p: &'a Platform) -> Self {
        Self::new(g, p)
            .with(Box::new(Ltf))
            .with(Box::new(Rltf))
            .with(Box::new(FaultFree))
    }

    /// Register a heuristic, replacing any existing entry with the same
    /// canonical name (latest wins). The comparison is case-insensitive,
    /// matching [`Solver::heuristic`] lookup — otherwise a name differing
    /// only in case would leave the *old* entry first in the registry and
    /// the new one unreachable (lookup returns the first match).
    ///
    /// Alias collisions are **not** replaced: a new entry whose canonical
    /// name matches an existing entry's alias coexists with it, and
    /// lookup resolves the contested name to the canonical owner
    /// (canonical names take precedence over aliases).
    pub fn register(&mut self, h: Box<dyn Heuristic>) -> &mut Self {
        self.registry
            .retain(|e| !e.name().eq_ignore_ascii_case(h.name()));
        self.registry.push(h);
        self
    }

    /// Builder-style [`Solver::register`].
    pub fn with(mut self, h: Box<dyn Heuristic>) -> Self {
        self.register(h);
        self
    }

    /// The prepared instance this session solves over.
    pub fn instance(&self) -> &PreparedInstance<'a> {
        &self.inst
    }

    /// The application graph of the session.
    pub fn graph(&self) -> &TaskGraph {
        self.inst.graph()
    }

    /// The platform of the session.
    pub fn platform(&self) -> &Platform {
        self.inst.platform()
    }

    /// Canonical names of the registered heuristics, in registration
    /// order.
    pub fn names(&self) -> Vec<&'static str> {
        self.registry.iter().map(|h| h.name()).collect()
    }

    /// All registered heuristics, in registration order.
    pub fn heuristics(&self) -> impl Iterator<Item = &dyn Heuristic> {
        self.registry.iter().map(|h| h.as_ref())
    }

    /// Look a heuristic up by canonical name or alias (case-insensitive).
    /// Canonical names win over aliases, so a registered heuristic is
    /// always reachable by its own name even when an earlier entry
    /// carries that name as an alias.
    pub fn heuristic(&self, name: &str) -> Option<&dyn Heuristic> {
        self.registry
            .iter()
            .find(|h| h.name().eq_ignore_ascii_case(name))
            .or_else(|| {
                self.registry
                    .iter()
                    .find(|h| h.aliases().iter().any(|a| a.eq_ignore_ascii_case(name)))
            })
            .map(|h| h.as_ref())
    }

    /// Solve with the named heuristic. Unknown names yield
    /// [`ScheduleError::UnknownHeuristic`] diagnostics.
    pub fn solve(&self, name: &str, cfg: &AlgoConfig) -> Result<Solution, Diagnostics> {
        match self.heuristic(name) {
            Some(h) => self.solve_with(h, cfg),
            None => Err(Diagnostics::new(
                name,
                cfg,
                ScheduleError::UnknownHeuristic(name.to_string()),
            )),
        }
    }

    /// Solve with an explicit heuristic (it does not need to be
    /// registered), reusing the session's cached derivations.
    pub fn solve_with(&self, h: &dyn Heuristic, cfg: &AlgoConfig) -> Result<Solution, Diagnostics> {
        h.schedule(&self.inst, cfg)
            .map(|s| Solution::new(h.name(), s))
            .map_err(|e| Diagnostics::new(h.name(), cfg, e))
    }

    /// Solve with every registered heuristic, in registration order.
    /// Infeasibilities are per-heuristic outcomes, not a sweep failure.
    pub fn solve_all(&self, cfg: &AlgoConfig) -> Vec<Result<Solution, Diagnostics>> {
        self.registry
            .iter()
            .map(|h| self.solve_with(h.as_ref(), cfg))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltf_graph::generate::fig2_workflow_variant;

    fn fixture() -> (TaskGraph, Platform) {
        (fig2_workflow_variant(), Platform::homogeneous(8, 1.0, 1.0))
    }

    #[test]
    fn builtin_names_and_aliases_resolve() {
        let (g, p) = fixture();
        let solver = Solver::builtin(&g, &p);
        assert_eq!(solver.names(), vec!["ltf", "rltf", "fault-free"]);
        for name in ["ltf", "LTF", "rltf", "R-LTF", "fault-free", "FF"] {
            assert!(solver.heuristic(name).is_some(), "{name} should resolve");
        }
        assert!(solver.heuristic("nope").is_none());
    }

    #[test]
    fn solve_matches_direct_heuristic_call() {
        let (g, p) = fixture();
        let solver = Solver::builtin(&g, &p);
        let cfg = AlgoConfig::with_throughput(1, 0.05);
        let sol = solver.solve("rltf", &cfg).expect("feasible");
        let direct = Rltf.schedule(solver.instance(), &cfg).expect("feasible");
        assert_eq!(sol.metrics.stages, direct.num_stages());
        assert_eq!(
            sol.metrics.latency_upper_bound,
            direct.latency_upper_bound()
        );
        assert_eq!(sol.heuristic, "rltf");
    }

    #[test]
    fn fault_free_forces_epsilon_zero() {
        let (g, p) = fixture();
        let solver = Solver::builtin(&g, &p);
        let cfg = AlgoConfig::new(3, 20.0);
        let sol = solver.solve("ff", &cfg).expect("ε=0 feasible");
        assert_eq!(sol.metrics.epsilon, 0);
        assert_eq!(sol.heuristic, "fault-free");
    }

    #[test]
    fn unknown_heuristic_is_typed() {
        let (g, p) = fixture();
        let solver = Solver::builtin(&g, &p);
        let err = solver.solve("zeus", &AlgoConfig::new(0, 1.0)).unwrap_err();
        assert!(matches!(err.error, ScheduleError::UnknownHeuristic(_)));
        assert!(err.to_string().contains("zeus"));
    }

    #[test]
    fn diagnostics_carry_context() {
        // R-LTF fails on the text-pinned fig2 reconstruction with m = 8
        // (see tests/fig2_worked.rs): the diagnostics must say which
        // replica could not be placed, under which request.
        let g = ltf_graph::generate::fig2_workflow();
        let p = Platform::homogeneous(8, 1.0, 1.0);
        let solver = Solver::builtin(&g, &p);
        let cfg = AlgoConfig::with_throughput(1, 0.05);
        let err = solver.solve("rltf", &cfg).unwrap_err();
        assert_eq!(err.heuristic, "rltf");
        assert_eq!(err.epsilon, 1);
        assert!((err.period - 20.0).abs() < 1e-12);
        assert!(matches!(err.error, ScheduleError::Infeasible { .. }));
        assert!(err.to_string().contains("rltf failed at ε=1"));
    }

    #[test]
    fn register_replaces_same_name() {
        struct Custom;
        impl Heuristic for Custom {
            fn name(&self) -> &'static str {
                "ltf"
            }
            fn schedule(
                &self,
                _inst: &PreparedInstance<'_>,
                _cfg: &AlgoConfig,
            ) -> Result<Schedule, ScheduleError> {
                Err(ScheduleError::Unsupported("stub".into()))
            }
        }
        let (g, p) = fixture();
        let solver = Solver::builtin(&g, &p).with(Box::new(Custom));
        assert_eq!(solver.names(), vec!["rltf", "fault-free", "ltf"]);
        let err = solver.solve("ltf", &AlgoConfig::new(0, 100.0)).unwrap_err();
        assert!(matches!(err.error, ScheduleError::Unsupported(_)));
    }

    #[test]
    fn register_replaces_case_insensitively() {
        // Lookup is case-insensitive, so replacement must be too: a
        // canonical name differing only in case used to leave the old
        // entry first in the registry, making the new one unreachable.
        struct Loud;
        impl Heuristic for Loud {
            fn name(&self) -> &'static str {
                "LTF"
            }
            fn schedule(
                &self,
                _inst: &PreparedInstance<'_>,
                _cfg: &AlgoConfig,
            ) -> Result<Schedule, ScheduleError> {
                Err(ScheduleError::Unsupported("loud stub".into()))
            }
        }
        let (g, p) = fixture();
        let solver = Solver::builtin(&g, &p).with(Box::new(Loud));
        assert_eq!(solver.names(), vec!["rltf", "fault-free", "LTF"]);
        let err = solver.solve("ltf", &AlgoConfig::new(0, 100.0)).unwrap_err();
        assert!(
            matches!(err.error, ScheduleError::Unsupported(_)),
            "lookup must reach the latest registration, got {err}"
        );
    }

    #[test]
    fn canonical_name_wins_over_alias() {
        // A heuristic whose canonical name collides with an earlier
        // entry's alias must stay reachable by its own name.
        struct Ff;
        impl Heuristic for Ff {
            fn name(&self) -> &'static str {
                "ff"
            }
            fn schedule(
                &self,
                inst: &PreparedInstance<'_>,
                cfg: &AlgoConfig,
            ) -> Result<Schedule, ScheduleError> {
                Rltf.schedule(inst, cfg)
            }
        }
        let (g, p) = fixture();
        let solver = Solver::builtin(&g, &p).with(Box::new(Ff));
        // "ff" resolves to the new entry (canonical beats FaultFree's
        // alias); "fault-free" still reaches the built-in.
        assert_eq!(solver.heuristic("ff").unwrap().name(), "ff");
        assert_eq!(solver.heuristic("fault-free").unwrap().name(), "fault-free");
        let sol = solver
            .solve("ff", &AlgoConfig::with_throughput(1, 0.05))
            .expect("feasible");
        assert_eq!(sol.heuristic, "ff");
        assert_eq!(sol.metrics.epsilon, 1, "not FaultFree's forced ε = 0");
    }

    #[test]
    fn solve_all_covers_registry() {
        let (g, p) = fixture();
        let solver = Solver::builtin(&g, &p);
        let outcomes = solver.solve_all(&AlgoConfig::with_throughput(1, 0.05));
        assert_eq!(outcomes.len(), 3);
        for (out, name) in outcomes.iter().zip(["ltf", "rltf", "fault-free"]) {
            let sol = out.as_ref().expect("variant feasible for all built-ins");
            assert_eq!(sol.heuristic, name);
        }
    }

    #[test]
    fn solution_serializes_flat() {
        let (g, p) = fixture();
        let solver = Solver::builtin(&g, &p);
        let sol = solver
            .solve("rltf", &AlgoConfig::with_throughput(1, 0.05))
            .expect("feasible");
        let json = serde_json::to_string(&sol).unwrap();
        assert!(json.contains("\"heuristic\":\"rltf\""));
        assert!(json.contains("\"latency_upper_bound\""));
        assert!(json.contains("\"procs_used\""));
    }

    #[test]
    fn algokind_bridges() {
        assert_eq!(AlgoKind::Ltf.name(), "ltf");
        assert_eq!(AlgoKind::Rltf.heuristic().name(), "rltf");
    }
}
