//! Objective-space searches around any [`Heuristic`].
//!
//! The paper's conclusion lists "symmetric" problems: maximizing throughput
//! for a given latency and failure count, and maximizing the number of
//! supported failures for given latency/throughput. These searches drive
//! a heuristic as an oracle:
//!
//! * [`min_period`] — smallest feasible period (largest throughput),
//!   optionally under a latency budget, by exponential + binary search;
//! * [`max_epsilon`] — largest fault-tolerance degree schedulable at a
//!   given period (and optional latency budget);
//! * [`min_processors`] — smallest prefix of the platform that still
//!   schedules the workload.
//!
//! All three take `&dyn Heuristic`, so they sweep the paper's algorithms
//! and the `ltf-baselines` comparison strategies alike:
//!
//! ```
//! use ltf_core::search::{min_period, SearchOptions};
//! use ltf_core::{Ltf, Rltf};
//! use ltf_graph::generate::fig1_diamond;
//! use ltf_platform::Platform;
//!
//! let g = fig1_diamond();
//! let p = Platform::fig1_platform();
//! let opts = SearchOptions::default();
//! let (t_rltf, _) = min_period(&g, &p, &Rltf, &opts).unwrap();
//! let (t_ltf, _) = min_period(&g, &p, &Ltf, &opts).unwrap();
//! assert!(t_rltf > 0.0 && t_ltf > 0.0);
//! ```
//!
//! The heuristics are not monotone oracles in general, so the results are
//! best-effort (exact for the search points actually probed); this matches
//! how the binary-search-over-period technique is used in the literature
//! (Hoang & Rabaey).
//!
//! All searches probe one instance many times, so they run through
//! [`PreparedInstance`]: the reversed graph and the platform-averaged
//! level caches are derived once per `(graph, platform)` and shared by
//! every candidate probe instead of being rebuilt per schedule attempt.
//!
//! The [`pareto`] submodule composes these single-objective searches into
//! a multi-objective enumerator over (latency, period, ε, processor
//! count).

pub mod pareto;

use crate::api::PreparedInstance;
use crate::config::{AlgoConfig, AlgoKind};
use crate::solver::Heuristic;
use ltf_graph::TaskGraph;
use ltf_platform::Platform;
use ltf_schedule::Schedule;

/// Options shared by the objective-space searches.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Fault-tolerance degree.
    pub epsilon: u8,
    /// Optional latency budget: candidate schedules whose guaranteed
    /// latency exceeds it are treated as infeasible.
    pub max_latency: Option<f64>,
    /// Binary search iterations after bracketing (relative precision
    /// halves per iteration).
    pub iterations: u32,
    /// Tie-breaking seed passed to the heuristic.
    pub seed: u64,
}

impl Default for SearchOptions {
    fn default() -> Self {
        Self {
            epsilon: 0,
            max_latency: None,
            iterations: 40,
            seed: 0xC0FFEE,
        }
    }
}

/// Options for the deprecated [`AlgoKind`]-based search shims.
#[deprecated(since = "0.1.0", note = "use `SearchOptions` plus a `&dyn Heuristic`")]
#[derive(Debug, Clone)]
pub struct MinPeriodOptions {
    /// Which built-in heuristic to drive.
    pub kind: AlgoKind,
    /// Fault-tolerance degree.
    pub epsilon: u8,
    /// Optional latency budget.
    pub max_latency: Option<f64>,
    /// Binary search iterations after bracketing.
    pub iterations: u32,
    /// Tie-breaking seed passed to the heuristic.
    pub seed: u64,
}

#[allow(deprecated)]
impl Default for MinPeriodOptions {
    fn default() -> Self {
        Self {
            kind: AlgoKind::Rltf,
            epsilon: 0,
            max_latency: None,
            iterations: 40,
            seed: 0xC0FFEE,
        }
    }
}

#[allow(deprecated)]
impl MinPeriodOptions {
    fn split(&self) -> (&'static dyn Heuristic, SearchOptions) {
        (
            self.kind.heuristic(),
            SearchOptions {
                epsilon: self.epsilon,
                max_latency: self.max_latency,
                iterations: self.iterations,
                seed: self.seed,
            },
        )
    }
}

fn try_period(
    prep: &PreparedInstance<'_>,
    h: &dyn Heuristic,
    opts: &SearchOptions,
    period: f64,
) -> Option<Schedule> {
    let cfg = AlgoConfig::new(opts.epsilon, period).seeded(opts.seed);
    let sched = h.schedule(prep, &cfg).ok()?;
    if let Some(budget) = opts.max_latency {
        if sched.latency_upper_bound() > budget {
            return None;
        }
    }
    Some(sched)
}

/// Smallest feasible period (i.e. maximal throughput) for the workload
/// under heuristic `h`, as found by exponential bracketing plus binary
/// search. Returns the period and the witnessing schedule, or `None` when
/// even very long periods are infeasible (e.g. a latency budget that can
/// never be met).
pub fn min_period(
    g: &TaskGraph,
    p: &Platform,
    h: &dyn Heuristic,
    opts: &SearchOptions,
) -> Option<(f64, Schedule)> {
    let prep = PreparedInstance::new(g, p);
    min_period_prepared(&prep, h, opts)
}

/// [`min_period`] over an already-prepared instance, sharing its cached
/// derivations with the caller. The Pareto enumerator probes every
/// `(ε, prefix)` cell of one prefix platform through the same
/// [`PreparedInstance`], so the reversed graph and level caches are built
/// once per prefix rather than once per cell.
pub fn min_period_prepared(
    prep: &PreparedInstance<'_>,
    h: &dyn Heuristic,
    opts: &SearchOptions,
) -> Option<(f64, Schedule)> {
    let (g, p) = (prep.graph(), prep.platform());
    // Absolute lower bound: every task must fit on its fastest processor,
    // and the replicated total work must fit the aggregate capacity.
    let per_task = g
        .tasks()
        .map(|t| g.exec(t) / p.max_speed())
        .fold(0.0f64, f64::max);
    let total_speed: f64 = p.procs().map(|u| p.speed(u)).sum();
    let work_bound = (opts.epsilon as f64 + 1.0) * g.total_exec() / total_speed;
    let lower = per_task.max(work_bound).max(f64::MIN_POSITIVE);

    // Bracket a feasible period. Doubling from a large lower bound can
    // overflow to +inf well before the 60 attempts run out (e.g. huge
    // execution times, or a latency budget no period can meet); probing
    // the heuristic with a non-finite period is meaningless, so give up
    // cleanly instead.
    let mut hi = lower.max(1e-12);
    let mut witness = None;
    for _ in 0..60 {
        if !hi.is_finite() {
            return None;
        }
        if let Some(s) = try_period(prep, h, opts, hi) {
            witness = Some(s);
            break;
        }
        hi *= 2.0;
    }
    let mut best = witness?;
    let mut lo = lower;
    let mut hi_p = best.period();
    for _ in 0..opts.iterations {
        let mid = 0.5 * (lo + hi_p);
        if mid <= lo || mid >= hi_p {
            break;
        }
        match try_period(prep, h, opts, mid) {
            Some(s) => {
                hi_p = mid;
                best = s;
            }
            None => lo = mid,
        }
    }
    Some((best.period(), best))
}

/// Largest fault-tolerance degree ε for which heuristic `h` schedules the
/// workload at the given period.
///
/// Heuristic feasibility is **not** guaranteed monotone in ε (e.g. the
/// data-parallel baseline projects one replica group, so a larger ε can
/// succeed where a smaller one starved a processor), so the whole
/// `0..=m−1` range is scanned — it is at most `m` cheap probes — and the
/// largest success is returned rather than stopping at the first failure.
pub fn max_epsilon(
    g: &TaskGraph,
    p: &Platform,
    h: &dyn Heuristic,
    period: f64,
    max_latency: Option<f64>,
    seed: u64,
) -> Option<(u8, Schedule)> {
    let prep = PreparedInstance::new(g, p);
    let mut best = None;
    let cap = (p.num_procs() - 1).min(u8::MAX as usize) as u8;
    for eps in 0..=cap {
        let opts = SearchOptions {
            epsilon: eps,
            max_latency,
            seed,
            ..Default::default()
        };
        if let Some(s) = try_period(&prep, h, &opts, period) {
            best = Some((eps, s));
        }
    }
    best
}

/// Smallest processor-count prefix of `p` that heuristic `h` schedules
/// the workload on (binary search assuming monotonicity in the processor
/// count; exact at the probed points).
pub fn min_processors(
    g: &TaskGraph,
    p: &Platform,
    h: &dyn Heuristic,
    epsilon: u8,
    period: f64,
    seed: u64,
) -> Option<(usize, Schedule)> {
    let opts = SearchOptions {
        epsilon,
        max_latency: None,
        seed,
        ..Default::default()
    };
    // Each prefix is its own platform (different averaged weights), so a
    // fresh prepared instance per probed prefix; the binary search visits
    // every prefix size at most once.
    let feasible = |m: usize| -> Option<Schedule> {
        let sub = p.prefix(m);
        let prep = PreparedInstance::new(g, &sub);
        try_period(&prep, h, &opts, period)
    };
    let full = feasible(p.num_procs())?;
    let mut lo = epsilon as usize + 1; // need ε+1 distinct processors
    let mut hi = p.num_procs();
    let mut best = full;
    while lo < hi {
        let mid = (lo + hi) / 2;
        match feasible(mid) {
            Some(s) => {
                best = s;
                hi = mid;
            }
            None => lo = mid + 1,
        }
    }
    Some((hi, best))
}

/// Deprecated [`AlgoKind`]-based shim for [`min_period`].
#[deprecated(
    since = "0.1.0",
    note = "use `min_period(g, p, kind.heuristic(), &SearchOptions { .. })`"
)]
#[allow(deprecated)]
pub fn min_period_kind(
    g: &TaskGraph,
    p: &Platform,
    opts: &MinPeriodOptions,
) -> Option<(f64, Schedule)> {
    let (h, sopts) = opts.split();
    min_period(g, p, h, &sopts)
}

/// Deprecated [`AlgoKind`]-based shim for [`max_epsilon`].
#[deprecated(
    since = "0.1.0",
    note = "use `max_epsilon(g, p, kind.heuristic(), period, max_latency, seed)`"
)]
pub fn max_epsilon_kind(
    g: &TaskGraph,
    p: &Platform,
    kind: AlgoKind,
    period: f64,
    max_latency: Option<f64>,
    seed: u64,
) -> Option<(u8, Schedule)> {
    max_epsilon(g, p, kind.heuristic(), period, max_latency, seed)
}

/// Deprecated [`AlgoKind`]-based shim for [`min_processors`].
#[deprecated(
    since = "0.1.0",
    note = "use `min_processors(g, p, kind.heuristic(), epsilon, period, seed)`"
)]
pub fn min_processors_kind(
    g: &TaskGraph,
    p: &Platform,
    kind: AlgoKind,
    epsilon: u8,
    period: f64,
    seed: u64,
) -> Option<(usize, Schedule)> {
    min_processors(g, p, kind.heuristic(), epsilon, period, seed)
}
