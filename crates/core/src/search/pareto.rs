//! Pareto-front enumeration over (latency, period, ε, processor count).
//!
//! The paper's conclusion frames the mapping problem as a trade-off among
//! the pipeline latency `L`, the period `Δ = 1/T`, the fault-tolerance
//! degree ε and the platform size `m`; the single-objective searches of
//! the parent module each pin three of the four. [`pareto_front`]
//! enumerates the whole trade-off surface a heuristic can reach instead:
//!
//! * sweep ε from 0 to `m − 1` (capped by
//!   [`ParetoOptions::max_epsilon`]) and the processor-count **prefixes**
//!   of the platform (capped by [`ParetoOptions::max_procs`] — the
//!   processor-budget variant);
//! * per `(ε, prefix)` cell, drive the period bisection of
//!   [`min_period_prepared`] under the
//!   optional latency cap ([`ParetoOptions::max_latency`] — the
//!   latency-budget variant), then probe relaxed periods adaptively (a
//!   looser period can buy fewer pipeline stages, i.e. a lower latency —
//!   a genuine L/T trade the minimum-period point misses): a
//!   golden-section search minimizes `L(Δ)` over a geometric bracket
//!   above the minimum period, concentrating the probe budget around the
//!   latency minimum instead of blindly doubling;
//! * keep only the **non-dominated** set, where a point dominates another
//!   when its latency, period and processor count are no larger, its ε is
//!   no smaller, and at least one objective is strictly better.
//!
//! # Parallel enumeration
//!
//! The sweep is embarrassingly parallel over the platform prefixes: each
//! prefix owns its [`PreparedInstance`] (different averaged weights), and
//! no cell reads another cell's result. [`ParetoOptions::threads`] fans
//! the prefixes out over the scoped worker pool of
//! [`crate::par::parallel_map`]; per-prefix candidate lists are collected
//! back **in prefix order**, so the concatenated candidate sequence — and
//! therefore the pruned front — is bit-identical to the serial
//! enumeration no matter the thread count or scheduling interleaving.
//!
//! Every surviving [`ParetoPoint`] carries its witness schedule (as a
//! typed [`Solution`]), so callers can re-validate or deploy any point of
//! the front directly. [`pareto_front_all`] merges the fronts of every
//! heuristic registered in a [`Solver`] and prunes across them, labelling
//! each survivor with the heuristic that reached it.
//!
//! ```
//! use ltf_core::search::pareto::{pareto_front, ParetoOptions};
//! use ltf_core::Rltf;
//! use ltf_graph::generate::fig1_diamond;
//! use ltf_platform::Platform;
//!
//! let g = fig1_diamond();
//! let p = Platform::fig1_platform();
//! let front = pareto_front(&g, &p, &Rltf, &ParetoOptions::default());
//! assert!(!front.is_empty());
//! // No point of the front dominates another.
//! for a in &front {
//!     assert!(!front.iter().any(|b| b.objectives.dominates(&a.objectives)));
//! }
//! ```

use super::{min_period_prepared, try_period, SearchOptions};
use crate::api::PreparedInstance;
use crate::par;
use crate::solver::{Heuristic, Solution, Solver};
use ltf_graph::TaskGraph;
use ltf_platform::Platform;
use ltf_schedule::Schedule;
use serde::Serialize;

/// The four objective values of one point of the front. Latency, period
/// and processor count are minimized; ε is maximized.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ParetoObjectives {
    /// Guaranteed pipeline latency `L = (2S − 1)·Δ` of the witness.
    pub latency: f64,
    /// Iteration period `Δ` of the witness (inverse throughput).
    pub period: f64,
    /// Fault-tolerance degree ε of the witness.
    pub epsilon: u8,
    /// Distinct processors the witness actually uses.
    pub procs: usize,
}

impl ParetoObjectives {
    /// Read the objective vector off a witness schedule.
    pub fn of(sched: &Schedule) -> Self {
        Self {
            latency: sched.latency_upper_bound(),
            period: sched.period(),
            epsilon: sched.epsilon(),
            procs: sched.procs_used(),
        }
    }

    /// The throughput `T = 1/Δ` of the point.
    pub fn throughput(&self) -> f64 {
        1.0 / self.period
    }

    /// Strict Pareto dominance: `self` is at least as good on every
    /// objective (≤ latency, ≤ period, ≥ ε, ≤ processors) and strictly
    /// better on at least one. Equal objective vectors dominate in
    /// neither direction.
    pub fn dominates(&self, other: &Self) -> bool {
        let no_worse = self.latency <= other.latency
            && self.period <= other.period
            && self.epsilon >= other.epsilon
            && self.procs <= other.procs;
        let better = self.latency < other.latency
            || self.period < other.period
            || self.epsilon > other.epsilon
            || self.procs < other.procs;
        no_worse && better
    }
}

/// One non-dominated point of the enumerated front: the objective vector,
/// the heuristic that reached it, and the witness schedule (with derived
/// metrics) proving the point is achievable.
#[derive(Debug, Clone)]
pub struct ParetoPoint {
    /// The four objective values.
    pub objectives: ParetoObjectives,
    /// Canonical name of the heuristic that produced the witness.
    pub heuristic: String,
    /// Size of the platform prefix the witness was scheduled on. The
    /// `procs` objective counts the processors the witness actually uses
    /// (≤ this); re-validating the witness needs the platform it was built
    /// against, i.e. `platform.prefix(platform_procs)`.
    pub platform_procs: usize,
    /// The witness schedule bundled with its derived metrics.
    pub solution: Solution,
    /// Peak per-link utilization of the witness on the platform it was
    /// scheduled against ([`Schedule::max_link_utilization`]). `None` on
    /// matrix platforms, which keep no link identity. Reported alongside
    /// the objectives (and filtered by
    /// [`ParetoOptions::max_link_utilization`]) but not part of the
    /// dominance order, so routed platforms produce the same fronts as
    /// their flattened twins unless a cap is set.
    pub link_utilization: Option<f64>,
}

impl ParetoPoint {
    fn new(h: &dyn Heuristic, platform_procs: usize, sched: Schedule, p: &Platform) -> Self {
        Self {
            objectives: ParetoObjectives::of(&sched),
            heuristic: h.name().to_string(),
            platform_procs,
            link_utilization: sched.max_link_utilization(p),
            solution: Solution::new(h.name(), sched),
        }
    }
}

impl Serialize for ParetoPoint {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![(
            "heuristic".to_string(),
            serde::Value::Str(self.heuristic.clone()),
        )];
        match self.objectives.to_value() {
            serde::Value::Map(m) => fields.extend(m),
            other => fields.push(("objectives".to_string(), other)),
        }
        fields.push((
            "throughput".to_string(),
            serde::Value::Float(self.objectives.throughput()),
        ));
        fields.push((
            "platform_procs".to_string(),
            serde::Value::UInt(self.platform_procs as u64),
        ));
        // Only routed platforms measure link utilization; matrix-platform
        // output stays byte-identical to the pre-CommModel wire form.
        if let Some(u) = self.link_utilization {
            fields.push(("link_utilization".to_string(), serde::Value::Float(u)));
        }
        fields.push(("solution".to_string(), self.solution.to_value()));
        serde::Value::Map(fields)
    }
}

impl std::fmt::Display for ParetoPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let o = &self.objectives;
        write!(
            f,
            "ε={} m={} Δ={:.3} L≤{:.3} S={} [{}]",
            o.epsilon, o.procs, o.period, o.latency, self.solution.metrics.stages, self.heuristic
        )
    }
}

/// Options of the Pareto enumeration. The two `max_*` budgets double as
/// the conclusion's budget-constrained problem variants: a latency cap
/// rejects candidate schedules during the period bisection, a processor
/// budget truncates the prefix sweep.
#[derive(Debug, Clone)]
pub struct ParetoOptions {
    /// Cap on the swept fault-tolerance degree (default: `m − 1`, the
    /// largest ε any prefix can support).
    pub max_epsilon: Option<u8>,
    /// Floor on the swept fault-tolerance degree (default: 0). Together
    /// with [`max_epsilon`](Self::max_epsilon) this restricts the sweep to
    /// an ε band — campaign specs use it to split one enumeration into
    /// disjoint ε ranges whose fronts cover exactly the same cells as a
    /// single full sweep.
    pub min_epsilon: Option<u8>,
    /// Latency budget: candidate schedules whose guaranteed latency
    /// exceeds it never enter the front.
    pub max_latency: Option<f64>,
    /// Processor budget: only platform prefixes up to this size are swept.
    pub max_procs: Option<usize>,
    /// Link-utilization budget: on routed platforms, candidate schedules
    /// whose peak per-link utilization exceeds this never enter the front.
    /// The probe *trajectory* is unchanged (the same periods are tried, so
    /// capped and uncapped sweeps stay comparable); the cap only filters
    /// which candidates are kept. Vacuous on matrix platforms, which keep
    /// no link identity. Note the contended engine already guarantees
    /// utilization ≤ 1 by construction, so caps below 1.0 are the
    /// interesting ones there; on `Uniform`-mode routed platforms the cap
    /// is the only thing bounding link load at all.
    pub max_link_utilization: Option<f64>,
    /// Relaxed-period probe budget per cell after the bisection: the
    /// golden-section search over `[Δ_min, Δ_min · 2^relax_steps]`
    /// shrinks its bracket this many times (`relax_steps + 2` heuristic
    /// probes total), looking for lower-latency (fewer-stage) schedules
    /// at lower throughput. 0 keeps only the minimum-period point per
    /// cell.
    pub relax_steps: u32,
    /// Bisection iterations per cell (see [`SearchOptions::iterations`]).
    pub iterations: u32,
    /// Tie-breaking seed passed to the heuristic.
    pub seed: u64,
    /// Worker threads for the prefix sweep (`0` = all cores). The
    /// parallel front is **bit-identical** to the serial one — see the
    /// module docs — so this is purely a wall-clock knob.
    pub threads: usize,
}

impl Default for ParetoOptions {
    fn default() -> Self {
        Self {
            max_epsilon: None,
            min_epsilon: None,
            max_latency: None,
            max_procs: None,
            max_link_utilization: None,
            relax_steps: 3,
            iterations: 40,
            seed: 0xC0FFEE,
            threads: 1,
        }
    }
}

impl ParetoOptions {
    /// Default enumeration under a latency budget.
    pub fn with_latency_cap(cap: f64) -> Self {
        Self {
            max_latency: Some(cap),
            ..Self::default()
        }
    }

    /// Default enumeration under a processor budget.
    pub fn with_proc_budget(budget: usize) -> Self {
        Self {
            max_procs: Some(budget),
            ..Self::default()
        }
    }

    /// Default enumeration under a peak link-utilization budget (routed
    /// platforms only; vacuous on matrix platforms).
    pub fn with_link_utilization_cap(cap: f64) -> Self {
        Self {
            max_link_utilization: Some(cap),
            ..Self::default()
        }
    }

    /// Same enumeration on `threads` workers (`0` = all cores).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }
}

/// Enumerate the non-dominated (latency, period, ε, processors) front
/// heuristic `h` can reach on `(g, p)`. See the module docs for the sweep
/// structure. The front is exact over the probed cells (the heuristic is
/// not an exact oracle, so the true Pareto surface can only be
/// approximated — same caveat as the single-objective searches); it is
/// returned sorted by (ε, processors, period) for deterministic output.
///
/// ```
/// use ltf_core::search::pareto::{pareto_front, ParetoOptions};
/// use ltf_core::Ltf;
/// use ltf_graph::generate::fig1_diamond;
/// use ltf_platform::Platform;
///
/// let g = fig1_diamond();
/// let p = Platform::fig1_platform();
///
/// // Restrict the sweep to replicated schedules on at most 3 processors.
/// let opts = ParetoOptions {
///     min_epsilon: Some(1),
///     max_procs: Some(3),
///     ..ParetoOptions::default()
/// };
/// let front = pareto_front(&g, &p, &Ltf, &opts);
/// assert!(!front.is_empty());
/// assert!(front.iter().all(|pt| pt.objectives.epsilon >= 1));
/// assert!(front.iter().all(|pt| pt.platform_procs <= 3));
/// // Every point carries a witness schedule proving it is achievable.
/// assert!(front.iter().all(|pt| pt.solution.schedule.epsilon() == pt.objectives.epsilon));
/// ```
pub fn pareto_front(
    g: &TaskGraph,
    p: &Platform,
    h: &dyn Heuristic,
    opts: &ParetoOptions,
) -> Vec<ParetoPoint> {
    front_over(g, p, &[h], opts)
}

/// Merge the fronts of every heuristic registered in `solver` and prune
/// across them: the result is the non-dominated set of the union, each
/// point labelled with the heuristic that reached it. Exact objective
/// ties resolve to the smallest platform prefix, then to registration
/// order. The prefix loop is outermost so all heuristics share one
/// [`PreparedInstance`] (reversed graph, level caches) per prefix.
pub fn pareto_front_all(solver: &Solver<'_>, opts: &ParetoOptions) -> Vec<ParetoPoint> {
    let hs: Vec<&dyn Heuristic> = solver.heuristics().collect();
    front_over(solver.graph(), solver.platform(), &hs, opts)
}

/// The shared sweep: enumerate every `(ε, prefix)` cell for every
/// heuristic, prefixes fanned out over the worker pool, and prune the
/// concatenated candidates. Workers return their candidate lists indexed
/// by prefix, so the merged sequence — and hence the pruned front — is
/// identical to the serial `for m in 1..=max` loop.
fn front_over(
    g: &TaskGraph,
    p: &Platform,
    hs: &[&dyn Heuristic],
    opts: &ParetoOptions,
) -> Vec<ParetoPoint> {
    let prefixes: Vec<usize> = (1..=max_prefix(p, opts)).collect();
    let threads = par::resolve_threads(opts.threads);
    let per_prefix = par::parallel_map(&prefixes, threads, |&m| {
        let sub = p.prefix(m);
        let prep = PreparedInstance::new(g, &sub);
        let mut out = Vec::new();
        for h in hs {
            cell_sweep(&prep, m, *h, opts, &mut out);
        }
        out
    });
    prune(per_prefix.into_iter().flatten().collect())
}

/// Largest platform prefix the sweep visits.
fn max_prefix(p: &Platform, opts: &ParetoOptions) -> usize {
    opts.max_procs.unwrap_or(usize::MAX).min(p.num_procs())
}

/// Run the ε sweep of one `(heuristic, prefix)` pair, appending every
/// feasible candidate point (minimum-period plus relaxed-period probes)
/// to `out`. `prep` must be prepared on the `m`-processor prefix.
fn cell_sweep(
    prep: &PreparedInstance<'_>,
    m: usize,
    h: &dyn Heuristic,
    opts: &ParetoOptions,
    out: &mut Vec<ParetoPoint>,
) {
    let mut eps_cap = (m - 1).min(u8::MAX as usize) as u8;
    if let Some(cap) = opts.max_epsilon {
        eps_cap = eps_cap.min(cap);
    }
    let eps_lo = opts.min_epsilon.unwrap_or(0);
    if eps_lo > eps_cap {
        return;
    }
    for eps in eps_lo..=eps_cap {
        let sopts = SearchOptions {
            epsilon: eps,
            max_latency: opts.max_latency,
            iterations: opts.iterations,
            seed: opts.seed,
        };
        let Some((t_min, sched)) = min_period_prepared(prep, h, &sopts) else {
            continue;
        };
        push_within_link_cap(ParetoPoint::new(h, m, sched, prep.platform()), opts, out);
        // Even when the minimum-period point blows the link cap, keep
        // probing: utilization is busy/Δ, so relaxed periods only lower it.
        relaxed_probes(prep, m, h, &sopts, opts, t_min, out);
    }
}

/// Keep `pt` unless it violates [`ParetoOptions::max_link_utilization`].
/// Points without a measured utilization (matrix platforms) always pass.
fn push_within_link_cap(pt: ParetoPoint, opts: &ParetoOptions, out: &mut Vec<ParetoPoint>) {
    if let (Some(cap), Some(u)) = (opts.max_link_utilization, pt.link_utilization) {
        if u > cap + 1e-9 {
            return;
        }
    }
    out.push(pt);
}

/// Probe relaxed (larger) periods after the bisection: a looser period
/// can need fewer pipeline stages, and the guaranteed latency
/// `L = (2S − 1)·Δ` drops whenever `S` falls faster than `Δ` grows.
/// Instead of blindly doubling, run a golden-section search minimizing
/// `L(Δ)` over the bracket `[Δ_min, Δ_min · 2^relax_steps]` — the same
/// span the old doubling ladder covered, but the probes concentrate
/// adaptively around the latency minimum. Every feasible probe is pushed
/// (the caller prunes dominated ones), so the intermediate L/T trades
/// visited on the way survive too. `L(Δ)` is piecewise linear and not
/// unimodal in general, so the result is best-effort — exact at the
/// probed periods, like every heuristic-driven search in this module.
fn relaxed_probes(
    prep: &PreparedInstance<'_>,
    m: usize,
    h: &dyn Heuristic,
    sopts: &SearchOptions,
    opts: &ParetoOptions,
    t_min: f64,
    out: &mut Vec<ParetoPoint>,
) {
    if opts.relax_steps == 0 {
        return;
    }
    const INV_PHI: f64 = 0.618_033_988_749_894_9; // (√5 − 1) / 2
    let (mut lo, mut hi) = (t_min, t_min * 2f64.powi(opts.relax_steps.min(60) as i32));
    if !hi.is_finite() {
        return;
    }
    // An infeasible probe scores +inf, steering the bracket back toward
    // feasible periods without special-casing.
    let probe = |period: f64, out: &mut Vec<ParetoPoint>| -> f64 {
        match try_period(prep, h, sopts, period) {
            Some(s) => {
                let latency = s.latency_upper_bound();
                push_within_link_cap(ParetoPoint::new(h, m, s, prep.platform()), opts, out);
                latency
            }
            None => f64::INFINITY,
        }
    };
    let mut x1 = hi - INV_PHI * (hi - lo);
    let mut x2 = lo + INV_PHI * (hi - lo);
    let mut f1 = probe(x1, out);
    let mut f2 = probe(x2, out);
    for _ in 0..opts.relax_steps {
        if f1 <= f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - INV_PHI * (hi - lo);
            f1 = probe(x1, out);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + INV_PHI * (hi - lo);
            f2 = probe(x2, out);
        }
    }
}

/// Reduce `points` to its non-dominated subset: dominated points and
/// exact-duplicate objective vectors (first occurrence wins) are dropped,
/// points with non-finite objectives are discarded defensively, and the
/// survivors are sorted by (ε, processors, period, latency).
pub fn prune(mut points: Vec<ParetoPoint>) -> Vec<ParetoPoint> {
    points.retain(|pt| pt.objectives.latency.is_finite() && pt.objectives.period.is_finite());
    let mut keep = vec![true; points.len()];
    for i in 0..points.len() {
        for j in 0..points.len() {
            if i == j {
                continue;
            }
            // Transitivity makes it safe to test against already-dropped
            // points: whatever dominated them dominates `i` too.
            if points[j].objectives.dominates(&points[i].objectives)
                || (j < i && points[j].objectives == points[i].objectives)
            {
                keep[i] = false;
                break;
            }
        }
    }
    let mut front: Vec<ParetoPoint> = points
        .into_iter()
        .zip(keep)
        .filter_map(|(p, k)| k.then_some(p))
        .collect();
    front.sort_by(|a, b| {
        (a.objectives.epsilon, a.objectives.procs)
            .cmp(&(b.objectives.epsilon, b.objectives.procs))
            .then(a.objectives.period.total_cmp(&b.objectives.period))
            .then(a.objectives.latency.total_cmp(&b.objectives.latency))
    });
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ltf, Rltf};
    use ltf_graph::generate::fig1_diamond;

    fn fig1_front() -> Vec<ParetoPoint> {
        pareto_front(
            &fig1_diamond(),
            &Platform::fig1_platform(),
            &Rltf,
            &ParetoOptions::default(),
        )
    }

    #[test]
    fn dominance_relation() {
        let a = ParetoObjectives {
            latency: 10.0,
            period: 5.0,
            epsilon: 1,
            procs: 3,
        };
        let mut b = a;
        assert!(!a.dominates(&b), "equal points dominate neither way");
        b.latency = 11.0;
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        b.epsilon = 2; // b now trades latency for ε: incomparable
        assert!(!a.dominates(&b));
        assert!(!b.dominates(&a));
    }

    #[test]
    fn fig1_front_is_nonempty_and_nondominated() {
        let front = fig1_front();
        assert!(!front.is_empty());
        for (i, a) in front.iter().enumerate() {
            for (j, b) in front.iter().enumerate() {
                assert!(
                    i == j || !a.objectives.dominates(&b.objectives),
                    "{a} dominates {b}"
                );
                assert!(
                    i == j || a.objectives != b.objectives,
                    "duplicate objective vector {a}"
                );
            }
        }
        // The sweep spans ε = 0 and some replicated points on 4 processors.
        assert!(front.iter().any(|p| p.objectives.epsilon == 0));
        assert!(front.iter().any(|p| p.objectives.epsilon >= 1));
    }

    #[test]
    fn objectives_match_witness() {
        for pt in fig1_front() {
            let m = &pt.solution.metrics;
            assert_eq!(pt.objectives.latency, m.latency_upper_bound);
            assert_eq!(pt.objectives.period, m.period);
            assert_eq!(pt.objectives.epsilon, m.epsilon);
            assert_eq!(pt.objectives.procs, m.procs_used);
            assert_eq!(pt.heuristic, pt.solution.heuristic);
        }
    }

    #[test]
    fn latency_budget_filters_front() {
        let g = fig1_diamond();
        let p = Platform::fig1_platform();
        let full = pareto_front(&g, &p, &Rltf, &ParetoOptions::default());
        let cap = full
            .iter()
            .map(|pt| pt.objectives.latency)
            .fold(f64::NEG_INFINITY, f64::max)
            * 0.5;
        let capped = pareto_front(&g, &p, &Rltf, &ParetoOptions::with_latency_cap(cap));
        assert!(capped.iter().all(|pt| pt.objectives.latency <= cap + 1e-9));
    }

    #[test]
    fn epsilon_band_partitions_sweep() {
        // Splitting the ε axis into disjoint bands visits exactly the
        // cells of the full sweep, so pruning the union of the band
        // candidates must reproduce the full front (this is what lets a
        // campaign spec shard one enumeration into ε ranges).
        let g = fig1_diamond();
        let p = Platform::fig1_platform();
        let full = fig1_front();
        let band = |lo: u8, hi: u8| {
            pareto_front(
                &g,
                &p,
                &Rltf,
                &ParetoOptions {
                    min_epsilon: Some(lo),
                    max_epsilon: Some(hi),
                    ..Default::default()
                },
            )
        };
        let low = band(0, 1);
        let high = band(2, u8::MAX);
        assert!(low.iter().all(|pt| pt.objectives.epsilon <= 1));
        assert!(high.iter().all(|pt| pt.objectives.epsilon >= 2));
        let mut union: Vec<ParetoPoint> = low;
        union.extend(high);
        let merged = prune(union);
        assert_eq!(merged.len(), full.len());
        for (a, b) in merged.iter().zip(&full) {
            assert_eq!(a.objectives, b.objectives);
        }
        // An empty band (floor above every reachable ε) yields no points.
        assert!(band(200, u8::MAX).is_empty());
        // min_epsilon: None behaves exactly like Some(0).
        let explicit_zero = band(0, u8::MAX);
        assert_eq!(explicit_zero.len(), full.len());
    }

    #[test]
    fn proc_budget_truncates_sweep() {
        let g = fig1_diamond();
        let p = Platform::fig1_platform();
        let capped = pareto_front(&g, &p, &Rltf, &ParetoOptions::with_proc_budget(2));
        assert!(!capped.is_empty());
        assert!(capped.iter().all(|pt| pt.objectives.procs <= 2));
        assert!(capped.iter().all(|pt| pt.objectives.epsilon <= 1));
    }

    #[test]
    fn link_utilization_cap_filters_routed_front() {
        use ltf_platform::{CommMode, Topology};
        let g = fig1_diamond();
        let chain = || Topology::chain(vec![1.0; 4], 0.5);

        // Matrix platforms measure nothing; a cap there is vacuous.
        let flat = pareto_front(
            &g,
            &chain().into_platform().unwrap(),
            &Ltf,
            &ParetoOptions::with_link_utilization_cap(0.0),
        );
        assert!(!flat.is_empty());
        assert!(flat.iter().all(|pt| pt.link_utilization.is_none()));

        // A Uniform-mode routed platform schedules identically to its
        // flattened twin, but link identity is only kept by Contended —
        // the measurable front is the contended one.
        let p = chain().into_platform_with(CommMode::Contended).unwrap();
        let full = pareto_front(&g, &p, &Ltf, &ParetoOptions::default());
        assert!(!full.is_empty());
        assert!(full.iter().all(|pt| pt.link_utilization.is_some()));
        let peak = full
            .iter()
            .filter_map(|pt| pt.link_utilization)
            .fold(0.0f64, f64::max);
        assert!(peak > 0.0, "fig1 on a chain must cross some link");

        let cap = peak * 0.5;
        let capped = pareto_front(&g, &p, &Ltf, &ParetoOptions::with_link_utilization_cap(cap));
        assert!(capped
            .iter()
            .all(|pt| pt.link_utilization.unwrap() <= cap + 1e-9));
        // The cap only filters; it never invents points the free sweep
        // could not reach.
        for pt in &capped {
            assert!(
                full.iter().any(|f| !f.objectives.dominates(&pt.objectives)),
                "capped point {pt} dominated by the whole free front"
            );
        }
    }

    #[test]
    fn cross_heuristic_merge_is_nondominated_and_labelled() {
        let g = fig1_diamond();
        let p = Platform::fig1_platform();
        let solver = Solver::builtin(&g, &p);
        let front = pareto_front_all(&solver, &ParetoOptions::default());
        assert!(!front.is_empty());
        let names = solver.names();
        for (i, a) in front.iter().enumerate() {
            assert!(names.contains(&a.heuristic.as_str()), "{}", a.heuristic);
            for (j, b) in front.iter().enumerate() {
                assert!(i == j || !a.objectives.dominates(&b.objectives));
            }
        }
        // The merged front is no worse than any single heuristic's front:
        // every LTF point is matched or dominated by a merged point.
        for pt in pareto_front(&g, &p, &Ltf, &ParetoOptions::default()) {
            assert!(front.iter().any(|m| {
                m.objectives == pt.objectives || m.objectives.dominates(&pt.objectives)
            }));
        }
    }

    #[test]
    fn parallel_front_is_bit_identical_to_serial() {
        let g = fig1_diamond();
        let p = Platform::fig1_platform();
        let serial = pareto_front(&g, &p, &Rltf, &ParetoOptions::default());
        for threads in [2, 4, 8] {
            let par = pareto_front(&g, &p, &Rltf, &ParetoOptions::with_threads(threads));
            assert_eq!(par.len(), serial.len());
            for (a, b) in par.iter().zip(&serial) {
                assert_eq!(a.objectives, b.objectives);
                assert_eq!(a.heuristic, b.heuristic);
                assert_eq!(a.platform_procs, b.platform_procs);
            }
        }
    }

    #[test]
    fn relaxed_probes_can_lower_latency() {
        // With probes disabled every cell keeps only its minimum-period
        // point; the golden-section probes may only add points that are
        // incomparable (better latency at worse period), never lose the
        // min-period extremes.
        let g = fig1_diamond();
        let p = Platform::fig1_platform();
        let no_probe = pareto_front(
            &g,
            &p,
            &Rltf,
            &ParetoOptions {
                relax_steps: 0,
                ..Default::default()
            },
        );
        let probed = fig1_front();
        for pt in &no_probe {
            assert!(
                probed.iter().any(
                    |q| q.objectives == pt.objectives || q.objectives.dominates(&pt.objectives)
                ),
                "min-period point {pt} lost by probing"
            );
        }
        let best = |f: &[ParetoPoint]| {
            f.iter()
                .map(|p| p.objectives.latency)
                .fold(f64::INFINITY, f64::min)
        };
        assert!(best(&probed) <= best(&no_probe) + 1e-9);
    }

    #[test]
    fn prune_drops_nonfinite_and_duplicates() {
        let front = fig1_front();
        let mut doubled = front.clone();
        doubled.extend(front.iter().cloned());
        let mut nan = front[0].clone();
        nan.objectives.latency = f64::NAN;
        doubled.push(nan);
        let pruned = prune(doubled);
        assert_eq!(pruned.len(), front.len());
    }

    #[test]
    fn pareto_point_serializes_flat() {
        let front = fig1_front();
        let json = serde_json::to_string(&front[0]).unwrap();
        assert!(json.contains("\"heuristic\":\"rltf\""));
        assert!(json.contains("\"latency\""));
        assert!(json.contains("\"procs\""));
        assert!(json.contains("\"solution\""));
    }
}
