//! Algorithm configuration and errors.

use ltf_graph::TaskId;
use ltf_platform::ProcId;
use serde::{Deserialize, Serialize};

/// Configuration shared by LTF and R-LTF.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlgoConfig {
    /// Fault-tolerance degree ε: the schedule must survive any ε processor
    /// failures; every task is replicated ε+1 times.
    pub epsilon: u8,
    /// Iteration period `Δ = 1/T` (the inverse of the desired throughput).
    pub period: f64,
    /// Chunk size `B`: how many ready tasks are mapped per round. The paper
    /// sets `B = m` (working with a subset of critical ready tasks gives a
    /// better load balance than one-at-a-time list scheduling). `None`
    /// defaults to `m`.
    pub chunk_size: Option<usize>,
    /// Seed for the random tie-breaking of the head function `H(ℓ)`.
    pub seed: u64,
    /// Enable the one-to-one mapping procedure (Algorithm 4.2). Disabling
    /// it forces every replica through the receive-from-all fallback — the
    /// `(ε+1)²`-communications regime the paper's §4 warns about. Ablation
    /// knob; default `true`.
    pub use_one_to_one: bool,
    /// R-LTF only: enable Rule 1 (prefer placements that do not grow the
    /// pipeline stage count). Ablation knob; default `true`.
    pub rule1: bool,
    /// R-LTF only: enable Rule 2 (one-to-one mapping across linear chain
    /// sections). Ablation knob; default `true`.
    pub rule2: bool,
    /// R-LTF only: break stage ties towards processors already in use.
    /// In reverse time the finish value carries no latency meaning, so
    /// minimum-finish tie-breaking would scatter stage-tied replicas over
    /// fresh processors and destroy every upstream co-location
    /// opportunity. Ablation knob; default `true`.
    pub cluster_ties: bool,
}

impl AlgoConfig {
    /// Standard configuration for a period `Δ` and fault-tolerance `ε`.
    pub fn new(epsilon: u8, period: f64) -> Self {
        Self {
            epsilon,
            period,
            chunk_size: None,
            seed: 0xC0FFEE,
            use_one_to_one: true,
            rule1: true,
            rule2: true,
            cluster_ties: true,
        }
    }

    /// Configuration from a desired throughput `T` (period `1/T`).
    pub fn with_throughput(epsilon: u8, throughput: f64) -> Self {
        assert!(throughput > 0.0, "throughput must be positive");
        Self::new(epsilon, 1.0 / throughput)
    }

    /// Builder-style seed override.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of replicas per task, `ε + 1`.
    pub fn replicas(&self) -> usize {
        self.epsilon as usize + 1
    }
}

/// Why an algorithm could not produce a schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// No processor can host this replica without violating the throughput
    /// constraint (paper §4.1: "the algorithm fails if no processor can
    /// accommodate the task"). LTF genuinely fails this way on the worked
    /// example of Fig. 2 with m = 8.
    Infeasible {
        /// Task whose replica could not be placed.
        task: TaskId,
        /// Replica copy number (0-based).
        copy: u8,
    },
    /// Fewer processors than replicas: `m < ε + 1` makes distinct placement
    /// impossible.
    TooFewProcessors {
        /// Required processor count (`ε + 1`).
        needed: usize,
        /// Available processor count `m`.
        available: usize,
    },
    /// Invalid configuration (non-positive period, …).
    BadConfig(String),
    /// A whole-mapping strategy (one that places every task before
    /// checking the throughput constraint, like the makespan baselines)
    /// produced a mapping whose per-period load on `proc` exceeds the
    /// period. Unlike [`ScheduleError::Infeasible`] there is no single
    /// culprit replica: the processor's aggregate cycle time is the
    /// violation.
    Overloaded {
        /// The overloaded processor.
        proc: ProcId,
        /// Its cycle time `max(Σ_u, C^I_u, C^O_u)` under the mapping.
        load: f64,
        /// The period `Δ` the load had to fit into.
        capacity: f64,
    },
    /// The heuristic does not support the requested configuration (e.g. a
    /// non-replicating baseline asked for ε > 0). The payload names the
    /// unsupported feature.
    Unsupported(String),
    /// No heuristic with this name is registered in the
    /// [`Solver`](crate::Solver) the request went through.
    UnknownHeuristic(String),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::Infeasible { task, copy } => write!(
                f,
                "throughput constraint unsatisfiable: no processor can host copy {} of {task}",
                copy + 1
            ),
            ScheduleError::TooFewProcessors { needed, available } => write!(
                f,
                "need at least {needed} processors for ε+1 replicas, have {available}"
            ),
            ScheduleError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            ScheduleError::Overloaded {
                proc,
                load,
                capacity,
            } => write!(
                f,
                "{proc} cycle time {load:.4} exceeds the period {capacity:.4}"
            ),
            ScheduleError::Unsupported(what) => write!(f, "unsupported: {what}"),
            ScheduleError::UnknownHeuristic(name) => {
                write!(f, "no heuristic named {name:?} is registered")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Which of the paper's two heuristics to run (used by the searches and
/// the experiment harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgoKind {
    /// LTF (§4.1): forward traversal, minimum-finish-time placement.
    Ltf,
    /// R-LTF (§4.2): bottom-up traversal, stage-count-first placement.
    Rltf,
}

impl std::fmt::Display for AlgoKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlgoKind::Ltf => write!(f, "LTF"),
            AlgoKind::Rltf => write!(f, "R-LTF"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_conversion() {
        let c = AlgoConfig::with_throughput(1, 0.05);
        assert_eq!(c.period, 20.0);
        assert_eq!(c.replicas(), 2);
        assert!(c.use_one_to_one && c.rule1 && c.rule2);
    }

    #[test]
    fn seeded_builder() {
        let c = AlgoConfig::new(0, 1.0).seeded(7);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn error_display() {
        let e = ScheduleError::Infeasible {
            task: TaskId(6),
            copy: 0,
        };
        assert!(e.to_string().contains("t6"));
        let e = ScheduleError::TooFewProcessors {
            needed: 4,
            available: 2,
        };
        assert!(e.to_string().contains('4'));
        assert_eq!(AlgoKind::Ltf.to_string(), "LTF");
        assert_eq!(AlgoKind::Rltf.to_string(), "R-LTF");
    }
}
