//! Shared order-statistics helpers.
//!
//! One nearest-rank percentile implementation for the whole workspace:
//! `serve`'s service-time window, `sim`'s latency reports and `faultlab`'s
//! SLO digests all quote percentiles, and they must agree on what "p99"
//! means (and on the edge cases — empty windows, tiny windows, p0/p100)
//! for cross-layer numbers to be comparable.
//!
//! Nearest-rank is the textbook definition: the `p`-th percentile of a
//! sorted window is the smallest element with at least `p`% of the window
//! at or below it. It always returns an element of the window (no
//! interpolation), which keeps results exact for integer data and
//! bit-stable for floats.

/// Zero-based index of the nearest-rank `pct`-th percentile in a sorted
/// window of `len` elements; `None` when the window is empty.
///
/// `pct` is clamped to `[0, 100]`; a NaN percentile saturates to rank 1
/// (the minimum) rather than panicking.
pub fn nearest_rank(len: usize, pct: f64) -> Option<usize> {
    if len == 0 {
        return None;
    }
    let pct = pct.clamp(0.0, 100.0);
    // ceil(len · pct / 100): exact for integer quotients (IEEE division is
    // correctly rounded and every integer below 2^53 is representable).
    let rank = (len as f64 * pct / 100.0).ceil() as usize;
    Some(rank.clamp(1, len) - 1)
}

/// Nearest-rank percentile of an ascending-sorted `u64` window, `0` when
/// empty (the convention of the serve stats wire format).
pub fn percentile_sorted_u64(sorted: &[u64], pct: f64) -> u64 {
    nearest_rank(sorted.len(), pct).map_or(0, |i| sorted[i])
}

/// Nearest-rank percentile of a `f64` window sorted with [`sort_f64`];
/// `None` when empty.
pub fn percentile_sorted_f64(sorted: &[f64], pct: f64) -> Option<f64> {
    nearest_rank(sorted.len(), pct).map(|i| sorted[i])
}

/// Sort floats into the IEEE-754 total order ([`f64::total_cmp`]): never
/// panics, NaNs deterministically sort after `+∞`.
pub fn sort_f64(values: &mut [f64]) {
    values.sort_unstable_by(f64::total_cmp);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_definition() {
        // 1..=100: pct maps straight onto the value.
        assert_eq!(nearest_rank(100, 50.0), Some(49));
        assert_eq!(nearest_rank(100, 99.0), Some(98));
        assert_eq!(nearest_rank(100, 100.0), Some(99));
        assert_eq!(nearest_rank(100, 0.0), Some(0));
        // p99.9 of 100 needs the max; of 10_000 the 9_990th.
        assert_eq!(nearest_rank(100, 99.9), Some(99));
        assert_eq!(nearest_rank(10_000, 99.9), Some(9_989));
        assert_eq!(nearest_rank(0, 50.0), None);
        assert_eq!(nearest_rank(1, 50.0), Some(0));
        // Out-of-range and NaN percentiles are clamped, never panic.
        assert_eq!(nearest_rank(10, 200.0), Some(9));
        assert_eq!(nearest_rank(10, -5.0), Some(0));
        assert_eq!(nearest_rank(10, f64::NAN), Some(0));
    }

    #[test]
    fn u64_window() {
        let w: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_sorted_u64(&w, 50.0), 50);
        assert_eq!(percentile_sorted_u64(&w, 99.0), 99);
        assert_eq!(percentile_sorted_u64(&[7], 50.0), 7);
        assert_eq!(percentile_sorted_u64(&[], 99.0), 0);
        let w = [10, 20, 30];
        assert_eq!(percentile_sorted_u64(&w, 50.0), 20);
        assert_eq!(percentile_sorted_u64(&w, 99.0), 30);
    }

    #[test]
    fn f64_window_total_order() {
        let mut w = vec![3.0, f64::NAN, 1.0, 2.0, f64::INFINITY];
        sort_f64(&mut w);
        assert_eq!(w[0], 1.0);
        assert_eq!(w[2], 3.0);
        assert!(w[3].is_infinite());
        assert!(w[4].is_nan());
        assert_eq!(percentile_sorted_f64(&w, 50.0), Some(3.0));
        assert_eq!(percentile_sorted_f64(&[], 50.0), None);
    }
}
