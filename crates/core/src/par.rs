//! Scoped worker-pool parallel map shared by the Pareto enumerator and the
//! experiment harness.
//!
//! One pattern, one place: a fixed number of scoped threads pull item
//! indices off a shared atomic counter (work stealing over a static item
//! list), results are collected over a channel and re-ordered by index, so
//! the output order always matches the input order no matter which worker
//! computed which item. The pool is deterministic in its *results* —
//! callers that need bit-identical parallel/serial output only have to make
//! each per-item computation self-contained.
//!
//! A panicking worker does not poison the pool silently: the panic payload
//! is captured when the worker is joined and re-raised on the calling
//! thread via [`std::panic::resume_unwind`], so the root cause surfaces
//! instead of a misleading secondary panic in the collector ("all slots
//! filled") that used to mask it.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Map `f` over `items` on `threads` scoped workers (atomic work stealing
/// over the item indices); the output order matches `items`. With one
/// thread (or one item) the map runs inline on the caller's thread — no
/// pool is spun up, which keeps single-threaded callers allocation- and
/// synchronization-free.
///
/// # Panics
///
/// Re-raises the first worker panic on the caller's thread with its
/// original payload.
pub fn parallel_map<I, T, F>(items: &[I], threads: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let tx = tx.clone();
                let f = &f;
                let next = &next;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // The collector outlives every sender (it drains until
                    // all senders hang up), so a send can only fail after
                    // the scope is already unwinding.
                    let _ = tx.send((i, f(&items[i])));
                })
            })
            .collect();
        drop(tx);
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (i, v) in rx {
            out[i] = Some(v);
        }
        // Join before unwrapping: a worker that panicked dropped its
        // sender early, leaving holes in `out`. Propagating the worker's
        // own payload reports the root cause, not the hole.
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
        out.into_iter()
            .map(|v| v.expect("all slots filled"))
            .collect()
    })
}

/// The number of worker threads a `threads` knob with `0 = auto` resolves
/// to: `available_parallelism()`, falling back to 1 when the platform
/// cannot report it.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order() {
        let items: Vec<u64> = (0..97).collect();
        let out = parallel_map(&items, 8, |s| s * 2);
        assert_eq!(out, items.iter().map(|s| s * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_thread() {
        let out: Vec<u64> = parallel_map(&[], 4, |s: &u64| *s);
        assert!(out.is_empty());
        let out = parallel_map(&[7u64], 0, |s| s + 1);
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn worker_panic_propagates_with_payload() {
        // Regression: a panicking worker used to surface as the
        // collector's own `expect("all slots filled")`, losing the root
        // cause. The original payload must win.
        let items: Vec<u64> = (0..16).collect();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_map(&items, 4, |s| {
                if *s == 9 {
                    panic!("worker exploded on seed {s}");
                }
                *s
            })
        }))
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "wrong payload type".into());
        assert!(msg.contains("worker exploded on seed 9"), "{msg}");
    }

    #[test]
    fn resolve_threads_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
