//! The contention-aware scheduling engine shared by LTF and R-LTF.
//!
//! The engine holds the partially-built schedule in its *scheduling
//! direction*: LTF runs it directly on the application graph, R-LTF on the
//! reversed graph (a bottom-up traversal of `G` is a forward traversal of
//! `Ĝ`; edge ids are shared, so decisions map back one-to-one — see
//! [`crate::convert`]).
//!
//! Placement works in two phases: [`Engine::probe`] computes, without
//! mutating anything, where a replica would land on a candidate processor —
//! start/finish times under insertion-based compute scheduling, the
//! one-port link reservations for its incoming messages, the resulting
//! pipeline stage, and whether condition (1) (the throughput constraint)
//! holds. [`Engine::commit`] then applies the chosen probe.
//!
//! ### Incremental evaluation
//!
//! Both phases are engineered so the search loops in [`crate::driver`]
//! never copy or rebuild engine state per candidate:
//!
//! * **Probing** evaluates port contention against [`OverlayView`]s — the
//!   committed per-processor timelines from the bucketed [`IntervalIndex`]
//!   plus a small delta of the candidate's own planned messages. Rejected
//!   candidates leave nothing to clean up, and no `IntervalSet` is ever
//!   cloned on the probe path.
//! * **Committing** can be journaled: between [`Engine::checkpoint`] and
//!   [`Engine::rollback_to`] every mutation records its exact inverse
//!   (old float values, not deltas, so rollback is bit-exact), which is
//!   how R-LTF compares its two task-level placement modes without
//!   snapshotting the engine. The journal is dropped wholesale with
//!   [`Engine::discard_journal`] once a decision is final.

use crate::config::AlgoConfig;
use ltf_graph::{EdgeId, TaskGraph, TaskId};
use ltf_platform::{Platform, ProcId};
use ltf_schedule::intervals::earliest_common_fit;
use ltf_schedule::{CommEvent, IntervalIndex, OverlayDelta, ReplicaId, SourceChoice, EPS};

/// Which predecessor copies feed each in-edge of a replica being placed.
#[derive(Debug, Clone)]
pub(crate) struct SourcePlan {
    /// `(in-edge, copies of the predecessor task on that edge)`.
    pub per_edge: Vec<(EdgeId, Vec<u8>)>,
}

impl SourcePlan {
    /// Receive-from-all plan: every copy of every predecessor.
    pub fn receive_from_all(g: &TaskGraph, t: TaskId, nrep: usize) -> Self {
        Self {
            per_edge: g
                .pred_edges(t)
                .iter()
                .map(|&e| (e, (0..nrep as u8).collect()))
                .collect(),
        }
    }
}

/// One planned (not yet committed) incoming message.
#[derive(Debug, Clone, Copy)]
struct PlannedComm {
    edge: EdgeId,
    src: ReplicaId,
    src_proc: ProcId,
    start: f64,
    dur: f64,
}

/// Set of processors as a bitmask (the engine asserts `m ≤ 128`).
pub(crate) type ProcMask = u128;

/// A set of replicas (dense indices) as a growable bitset. Used to track
/// downstream closures through single-source feeding chains.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub(crate) struct ReplicaSet {
    words: Vec<u64>,
}

impl ReplicaSet {
    pub fn with_capacity(n: usize) -> Self {
        Self {
            words: vec![0; n.div_ceil(64)],
        }
    }

    #[inline]
    pub fn insert(&mut self, idx: usize) {
        self.words[idx / 64] |= 1u64 << (idx % 64);
    }

    pub fn union_with(&mut self, other: &ReplicaSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// Reset to the empty set, keeping the allocation (scratch reuse in
    /// the per-candidate loops).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Iterate the contained dense indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            let mut bits = bits;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(w * 64 + b)
                }
            })
        })
    }
}

/// Result of probing one `(replica, processor)` placement.
#[derive(Debug, Clone)]
pub(crate) struct Probe {
    /// Candidate processor.
    pub proc: ProcId,
    /// Computed start time (insertion-based).
    pub start: f64,
    /// Computed finish time `F_u(t)`.
    pub finish: f64,
    /// Pipeline stage the replica would get (scheduling-direction).
    pub stage: u32,
    /// Crash cone: processors whose single failure would silence this
    /// replica (its host, plus — through single-source edges — the cones
    /// of its designated producers).
    pub kill: ProcMask,
    planned: Vec<PlannedComm>,
}

/// Saved metadata of a replica slot, restored verbatim on rollback.
#[derive(Debug, Clone, Copy)]
struct ReplicaMeta {
    proc: ProcId,
    start: f64,
    finish: f64,
    stage: u32,
    kill: ProcMask,
}

/// Inverse of one committed message: where its port reservations and load
/// contributions went.
#[derive(Debug, Clone, Copy)]
struct CommUndo {
    src_proc: usize,
    start: f64,
    end: f64,
    old_cout: f64,
}

/// One journaled mutation with everything needed to revert it exactly.
/// Old values (not deltas) are recorded so floating-point state is
/// restored bit-for-bit.
#[derive(Debug, Clone)]
enum UndoRec {
    /// Inverse of [`Engine::commit`].
    Commit {
        r: usize,
        proc: ProcId,
        old_meta: ReplicaMeta,
        old_sigma: f64,
        old_cin: f64,
        old_max_stage: u32,
        cpu_iv: (f64, f64),
        comms: Vec<CommUndo>,
    },
    /// Inverse of [`Engine::set_down`].
    Down { r: usize, old: ReplicaSet },
    /// Inverse of [`Engine::register_upstream_host`]: per touched replica
    /// its old `ushost` and its task's old `allush`.
    Upstream {
        touched: Vec<(usize, ProcMask, ProcMask)>,
    },
}

/// Position in the undo journal returned by [`Engine::checkpoint`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct EngineMark(usize);

/// Partially-built schedule state.
pub(crate) struct Engine<'a> {
    pub g: &'a TaskGraph,
    pub p: &'a Platform,
    pub period: f64,
    pub nrep: usize,
    placed: Vec<bool>,
    proc_of: Vec<ProcId>,
    start: Vec<f64>,
    finish: Vec<f64>,
    stage: Vec<u32>,
    sources: Vec<Vec<SourceChoice>>,
    comm_events: Vec<CommEvent>,
    sigma: Vec<f64>,
    cin: Vec<f64>,
    cout: Vec<f64>,
    cpu: IntervalIndex,
    send: IntervalIndex,
    recv: IntervalIndex,
    /// Crash cone of each placed replica (see [`Probe::kill`]); meaningful
    /// in forward (LTF) mode, where predecessors are placed first.
    kill: Vec<ProcMask>,
    /// Reverse (R-LTF) mode: downstream closure of each replica — the set
    /// of replicas it transitively feeds through single-source edges
    /// (in application-graph direction). Fixed at placement time.
    pub down: Vec<ReplicaSet>,
    /// Reverse mode: hosts of the upstream closure gathered so far for
    /// each replica (its own host plus the hosts of every replica known to
    /// feed it through single-source chains).
    pub ushost: Vec<ProcMask>,
    /// Reverse mode: per task, the union of `ushost` over its copies.
    pub allush: Vec<ProcMask>,
    /// Largest stage assigned so far (scheduling-direction); drives R-LTF's
    /// Rule 1.
    pub max_stage: u32,
    /// Undo journal; mutations are recorded only while a checkpoint is
    /// outstanding (`Some`).
    journal: Option<Vec<UndoRec>>,
}

/// The journal never travels with a snapshot: a cloned engine starts with
/// journaling disabled (the clone-based reference path relies on whole
/// snapshots, not on undo records).
impl Clone for Engine<'_> {
    fn clone(&self) -> Self {
        Self {
            g: self.g,
            p: self.p,
            period: self.period,
            nrep: self.nrep,
            placed: self.placed.clone(),
            proc_of: self.proc_of.clone(),
            start: self.start.clone(),
            finish: self.finish.clone(),
            stage: self.stage.clone(),
            sources: self.sources.clone(),
            comm_events: self.comm_events.clone(),
            sigma: self.sigma.clone(),
            cin: self.cin.clone(),
            cout: self.cout.clone(),
            cpu: self.cpu.clone(),
            send: self.send.clone(),
            recv: self.recv.clone(),
            kill: self.kill.clone(),
            down: self.down.clone(),
            ushost: self.ushost.clone(),
            allush: self.allush.clone(),
            max_stage: self.max_stage,
            journal: None,
        }
    }
}

impl<'a> Engine<'a> {
    pub fn new(g: &'a TaskGraph, p: &'a Platform, cfg: &AlgoConfig) -> Self {
        let nrep = cfg.replicas();
        let n = g.num_tasks() * nrep;
        let m = p.num_procs();
        assert!(m <= 128, "ProcMask supports up to 128 processors");
        Self {
            g,
            p,
            period: cfg.period,
            nrep,
            placed: vec![false; n],
            proc_of: vec![ProcId(0); n],
            start: vec![0.0; n],
            finish: vec![0.0; n],
            stage: vec![0; n],
            sources: vec![Vec::new(); n],
            comm_events: Vec::new(),
            sigma: vec![0.0; m],
            cin: vec![0.0; m],
            cout: vec![0.0; m],
            cpu: IntervalIndex::new(m),
            send: IntervalIndex::new(m),
            recv: IntervalIndex::new(m),
            kill: vec![0; n],
            down: vec![ReplicaSet::with_capacity(n); n],
            ushost: vec![0; n],
            allush: vec![0; g.num_tasks()],
            max_stage: 0,
            journal: None,
        }
    }

    /// Total number of replicas (`v · (ε+1)`).
    #[inline]
    pub fn num_replicas(&self) -> usize {
        self.placed.len()
    }

    #[inline]
    pub fn dense(&self, t: TaskId, copy: u8) -> usize {
        ReplicaId::new(t, copy).dense(self.nrep)
    }

    /// Test helper: whether a replica has been committed.
    #[cfg(test)]
    pub fn is_placed(&self, t: TaskId, copy: u8) -> bool {
        self.placed[self.dense(t, copy)]
    }

    /// Test helper: host of a committed replica.
    #[cfg(test)]
    pub fn proc_of(&self, t: TaskId, copy: u8) -> ProcId {
        self.proc_of[self.dense(t, copy)]
    }

    /// Latest finish time over the copies of `t` (used for dynamic priority
    /// updates).
    pub fn task_finish(&self, t: TaskId) -> f64 {
        (0..self.nrep)
            .map(|c| self.finish[self.dense(t, c as u8)])
            .fold(0.0, f64::max)
    }

    /// Crash cone of a placed replica.
    #[inline]
    pub fn kill_of(&self, t: TaskId, copy: u8) -> ProcMask {
        self.kill[self.dense(t, copy)]
    }

    /// Whether any replica has been committed to `u` yet (drives R-LTF's
    /// clustering tie-break).
    #[inline]
    pub fn proc_used(&self, u: ProcId) -> bool {
        self.sigma[u.index()] > 0.0
    }

    /// Estimated arrival time of data from a placed source replica onto
    /// processor `u`, ignoring port queueing (used to rank one-to-one
    /// heads, the paper's sort of `B(t_i)` by communication finish times).
    pub fn arrival_estimate(&self, edge: EdgeId, src: ReplicaId, u: ProcId) -> f64 {
        let sidx = src.dense(self.nrep);
        debug_assert!(self.placed[sidx], "source not placed");
        let h = self.proc_of[sidx];
        let vol = self.g.edge(edge).volume;
        self.finish[sidx] + self.p.comm_time(vol, h, u)
    }

    /// Stage the replica would take from a single source over `edge` when
    /// hosted on `u`.
    pub fn stage_contribution(&self, src: ReplicaId, u: ProcId) -> u32 {
        let sidx = src.dense(self.nrep);
        self.stage[sidx] + u32::from(self.proc_of[sidx] != u)
    }

    /// Probe placing copy `copy` of `t` on `u` with the given sources.
    /// Returns `None` when condition (1) — the throughput constraint —
    /// would be violated. Does not mutate the engine.
    ///
    /// Port contention is evaluated against overlays of the committed
    /// timelines; no per-candidate `IntervalSet` clone takes place.
    pub fn probe(&self, t: TaskId, _copy: u8, u: ProcId, plan: &SourcePlan) -> Option<Probe> {
        let ui = u.index();
        let exec = self.p.exec_time(self.g.exec(t), u);
        if self.sigma[ui] + exec > self.period + EPS {
            return None;
        }

        // Flatten and order incoming transfers by producer finish time so
        // the port reservations are deterministic.
        let mut items: Vec<(EdgeId, ReplicaId)> = Vec::new();
        for (edge, copies) in &plan.per_edge {
            let pred = self.g.edge(*edge).src;
            for &c in copies {
                items.push((*edge, ReplicaId::new(pred, c)));
            }
        }
        items.sort_by(|a, b| {
            let fa = self.finish[a.1.dense(self.nrep)];
            let fb = self.finish[b.1.dense(self.nrep)];
            fa.partial_cmp(&fb)
                .expect("finite times")
                .then(a.0.cmp(&b.0))
                .then(a.1.copy.cmp(&b.1.copy))
        });

        // Tentative reservations per touched source processor (few per
        // probe: linear keying beats an m-sized scratch vector) and for the
        // candidate's receive port.
        let mut send_deltas: Vec<(usize, OverlayDelta, f64)> = Vec::new();
        let mut recv_delta = OverlayDelta::new();
        let mut cin_add = 0.0f64;
        let mut ready = 0.0f64;
        let mut stage = 1u32;
        let mut planned = Vec::new();

        // Crash cone: host plus, per in-edge, the intersection of the
        // sources' cones (a single crash starves the edge only when it is
        // in every source's cone; with a single source this is its cone).
        let mut kill: ProcMask = 1u128 << ui;
        for (edge, copies) in &plan.per_edge {
            let pred = self.g.edge(*edge).src;
            let mut edge_kill: ProcMask = !0;
            for &c in copies {
                edge_kill &= self.kill[self.dense(pred, c)];
            }
            if !copies.is_empty() {
                kill |= edge_kill;
            }
        }

        for (edge, src) in items {
            let sidx = src.dense(self.nrep);
            debug_assert!(self.placed[sidx], "predecessor replica not placed");
            let h = self.proc_of[sidx];
            if h == u {
                ready = ready.max(self.finish[sidx]);
                stage = stage.max(self.stage[sidx]);
                continue;
            }
            stage = stage.max(self.stage[sidx] + 1);
            let dur = self.p.comm_time(self.g.edge(edge).volume, h, u);
            if dur <= EPS {
                // Zero-volume transfer: crosses processors (η = 1) but
                // occupies no port time.
                ready = ready.max(self.finish[sidx]);
                continue;
            }
            let hi = h.index();
            let slot = match send_deltas.iter().position(|(p, ..)| *p == hi) {
                Some(i) => i,
                None => {
                    send_deltas.push((hi, OverlayDelta::new(), 0.0));
                    send_deltas.len() - 1
                }
            };
            let st = {
                let sv = self.send.overlay(hi, &send_deltas[slot].1);
                let rv = self.recv.overlay(ui, &recv_delta);
                earliest_common_fit(&sv, &rv, self.finish[sidx], dur)
            };
            send_deltas[slot].1.insert(st, st + dur);
            recv_delta.insert(st, st + dur);
            cin_add += dur;
            send_deltas[slot].2 += dur;
            if self.cout[hi] + send_deltas[slot].2 > self.period + EPS {
                return None;
            }
            planned.push(PlannedComm {
                edge,
                src,
                src_proc: h,
                start: st,
                dur,
            });
            ready = ready.max(st + dur);
        }
        if self.cin[ui] + cin_add > self.period + EPS {
            return None;
        }

        let start = self.cpu.bucket(ui).next_fit(ready, exec);
        Some(Probe {
            proc: u,
            start,
            finish: start + exec,
            stage,
            kill,
            planned,
        })
    }

    /// Apply a probe: place the replica, reserve ports and CPU, record the
    /// communication events and the source structure. Journaled when a
    /// checkpoint is outstanding.
    pub fn commit(&mut self, t: TaskId, copy: u8, probe: &Probe, plan: &SourcePlan) {
        let r = self.dense(t, copy);
        assert!(!self.placed[r], "replica committed twice");
        let u = probe.proc;
        let ui = u.index();
        let rep = ReplicaId::new(t, copy);

        let rec = self.journal.is_some().then(|| UndoRec::Commit {
            r,
            proc: u,
            old_meta: ReplicaMeta {
                proc: self.proc_of[r],
                start: self.start[r],
                finish: self.finish[r],
                stage: self.stage[r],
                kill: self.kill[r],
            },
            old_sigma: self.sigma[ui],
            old_cin: self.cin[ui],
            old_max_stage: self.max_stage,
            cpu_iv: (probe.start, probe.finish),
            comms: probe
                .planned
                .iter()
                .map(|pc| CommUndo {
                    src_proc: pc.src_proc.index(),
                    start: pc.start,
                    end: pc.start + pc.dur,
                    old_cout: self.cout[pc.src_proc.index()],
                })
                .collect(),
        });
        if let (Some(j), Some(rec)) = (self.journal.as_mut(), rec) {
            j.push(rec);
        }

        self.placed[r] = true;
        self.proc_of[r] = u;
        self.start[r] = probe.start;
        self.finish[r] = probe.finish;
        self.stage[r] = probe.stage;
        self.kill[r] = probe.kill;
        self.max_stage = self.max_stage.max(probe.stage);

        self.sigma[ui] += probe.finish - probe.start;
        self.cpu.insert(ui, probe.start, probe.finish);

        for pc in &probe.planned {
            self.send
                .insert(pc.src_proc.index(), pc.start, pc.start + pc.dur);
            self.recv.insert(ui, pc.start, pc.start + pc.dur);
            self.cout[pc.src_proc.index()] += pc.dur;
            self.cin[ui] += pc.dur;
            self.comm_events.push(CommEvent {
                edge: pc.edge,
                src: pc.src,
                dst: rep,
                src_proc: pc.src_proc,
                dst_proc: u,
                start: pc.start,
                finish: pc.start + pc.dur,
            });
        }

        self.sources[r] = plan
            .per_edge
            .iter()
            .map(|(edge, copies)| SourceChoice {
                edge: *edge,
                sources: copies.clone(),
            })
            .collect();
    }

    /// Record the downstream closure of a freshly committed replica
    /// (reverse mode). Journaled when a checkpoint is outstanding.
    pub fn set_down(&mut self, r: usize, dset: ReplicaSet) {
        let old = std::mem::replace(&mut self.down[r], dset);
        if let Some(j) = self.journal.as_mut() {
            j.push(UndoRec::Down { r, old });
        }
    }

    /// Register `host` as an upstream host of every replica fed by `r`
    /// (including itself), reverse mode. Journaled when a checkpoint is
    /// outstanding.
    pub fn register_upstream_host(&mut self, r: usize, host: usize) {
        let bit: ProcMask = 1 << host;
        let nrep = self.nrep;
        let dset = std::mem::take(&mut self.down[r]);
        let mut touched = Vec::new();
        let record = self.journal.is_some();
        for idx in dset.iter() {
            if record {
                touched.push((idx, self.ushost[idx], self.allush[idx / nrep]));
            }
            self.ushost[idx] |= bit;
            self.allush[idx / nrep] |= bit;
        }
        self.down[r] = dset;
        if let Some(j) = self.journal.as_mut() {
            j.push(UndoRec::Upstream { touched });
        }
    }

    /// Start (or extend) speculative execution: subsequent mutations are
    /// journaled and can be reverted with [`Engine::rollback_to`].
    pub fn checkpoint(&mut self) -> EngineMark {
        let j = self.journal.get_or_insert_with(Vec::new);
        EngineMark(j.len())
    }

    /// Revert every mutation journaled after `mark`, restoring the exact
    /// engine state (floats included) at checkpoint time. Journaling stays
    /// enabled so a second attempt can be rolled back to the same mark.
    pub fn rollback_to(&mut self, mark: EngineMark) {
        let mut j = self.journal.take().expect("rollback without checkpoint");
        while j.len() > mark.0 {
            match j.pop().expect("length checked") {
                UndoRec::Commit {
                    r,
                    proc,
                    old_meta,
                    old_sigma,
                    old_cin,
                    old_max_stage,
                    cpu_iv,
                    comms,
                } => {
                    let ui = proc.index();
                    for cu in comms.iter().rev() {
                        self.comm_events.pop();
                        self.send.remove(cu.src_proc, cu.start, cu.end);
                        self.recv.remove(ui, cu.start, cu.end);
                        self.cout[cu.src_proc] = cu.old_cout;
                    }
                    self.cpu.remove(ui, cpu_iv.0, cpu_iv.1);
                    self.sigma[ui] = old_sigma;
                    self.cin[ui] = old_cin;
                    self.max_stage = old_max_stage;
                    self.placed[r] = false;
                    self.proc_of[r] = old_meta.proc;
                    self.start[r] = old_meta.start;
                    self.finish[r] = old_meta.finish;
                    self.stage[r] = old_meta.stage;
                    self.kill[r] = old_meta.kill;
                    self.sources[r].clear();
                }
                UndoRec::Down { r, old } => {
                    self.down[r] = old;
                }
                UndoRec::Upstream { touched } => {
                    for &(idx, old_ushost, old_allush) in touched.iter().rev() {
                        self.ushost[idx] = old_ushost;
                        self.allush[idx / self.nrep] = old_allush;
                    }
                }
            }
        }
        self.journal = Some(j);
    }

    /// End speculative execution: drop all undo records and stop
    /// journaling. Call once the current decision is final.
    pub fn discard_journal(&mut self) {
        self.journal = None;
    }

    /// `true` once every replica of every task is placed.
    pub fn all_placed(&self) -> bool {
        self.placed.iter().all(|&b| b)
    }

    /// Consume the engine into its raw parts
    /// `(proc_of, start, finish, stage, sources, comm_events)`. The stage
    /// vector is the per-commit worst-source stage in scheduling
    /// direction; for a forward (LTF) engine it equals the guaranteed
    /// stages the schedule layer would recompute.
    #[allow(clippy::type_complexity)]
    pub fn into_parts(
        self,
    ) -> (
        Vec<ProcId>,
        Vec<f64>,
        Vec<f64>,
        Vec<u32>,
        Vec<Vec<SourceChoice>>,
        Vec<CommEvent>,
    ) {
        (
            self.proc_of,
            self.start,
            self.finish,
            self.stage,
            self.sources,
            self.comm_events,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltf_graph::GraphBuilder;

    fn chain2() -> TaskGraph {
        let mut b = GraphBuilder::new();
        let t0 = b.add_task(4.0);
        let t1 = b.add_task(2.0);
        b.add_edge(t0, t1, 3.0);
        b.build().unwrap()
    }

    #[test]
    fn probe_and_commit_entry_task() {
        let g = chain2();
        let p = Platform::homogeneous(2, 1.0, 1.0);
        let cfg = AlgoConfig::new(0, 10.0);
        let mut e = Engine::new(&g, &p, &cfg);
        let plan = SourcePlan { per_edge: vec![] };
        let probe = e.probe(TaskId(0), 0, ProcId(0), &plan).unwrap();
        assert_eq!(probe.start, 0.0);
        assert_eq!(probe.finish, 4.0);
        assert_eq!(probe.stage, 1);
        e.commit(TaskId(0), 0, &probe, &plan);
        assert!(e.is_placed(TaskId(0), 0));
        assert_eq!(e.proc_of(TaskId(0), 0), ProcId(0));
        assert_eq!(e.task_finish(TaskId(0)), 4.0);
    }

    #[test]
    fn probe_cross_processor_comm() {
        let g = chain2();
        let p = Platform::homogeneous(2, 1.0, 1.0);
        let cfg = AlgoConfig::new(0, 10.0);
        let mut e = Engine::new(&g, &p, &cfg);
        let empty = SourcePlan { per_edge: vec![] };
        let pr = e.probe(TaskId(0), 0, ProcId(0), &empty).unwrap();
        e.commit(TaskId(0), 0, &pr, &empty);

        let plan = SourcePlan::receive_from_all(&g, TaskId(1), 1);
        // Remote placement: message of duration 3 after t0 ends at 4.
        let pr = e.probe(TaskId(1), 0, ProcId(1), &plan).unwrap();
        assert_eq!(pr.start, 7.0);
        assert_eq!(pr.finish, 9.0);
        assert_eq!(pr.stage, 2);
        // Local placement: no message.
        let pr_local = e.probe(TaskId(1), 0, ProcId(0), &plan).unwrap();
        assert_eq!(pr_local.start, 4.0);
        assert_eq!(pr_local.stage, 1);
    }

    #[test]
    fn probe_rejects_compute_overload() {
        let g = chain2();
        let p = Platform::homogeneous(1, 1.0, 1.0);
        let cfg = AlgoConfig::new(0, 5.0);
        let mut e = Engine::new(&g, &p, &cfg);
        let empty = SourcePlan { per_edge: vec![] };
        let pr = e.probe(TaskId(0), 0, ProcId(0), &empty).unwrap();
        e.commit(TaskId(0), 0, &pr, &empty);
        // 4 + 2 = 6 > 5: infeasible.
        let plan = SourcePlan::receive_from_all(&g, TaskId(1), 1);
        assert!(e.probe(TaskId(1), 0, ProcId(0), &plan).is_none());
    }

    #[test]
    fn probe_rejects_io_overload() {
        let mut b = GraphBuilder::new();
        let t0 = b.add_task(1.0);
        let t1 = b.add_task(1.0);
        b.add_edge(t0, t1, 6.0);
        let g = b.build().unwrap();
        let p = Platform::homogeneous(2, 1.0, 1.0);
        let cfg = AlgoConfig::new(0, 5.0);
        let mut e = Engine::new(&g, &p, &cfg);
        let empty = SourcePlan { per_edge: vec![] };
        let pr = e.probe(TaskId(0), 0, ProcId(0), &empty).unwrap();
        e.commit(TaskId(0), 0, &pr, &empty);
        // Message of 6 > period 5 on both ports: remote infeasible,
        // local fine.
        let plan = SourcePlan::receive_from_all(&g, TaskId(1), 1);
        assert!(e.probe(TaskId(1), 0, ProcId(1), &plan).is_none());
        assert!(e.probe(TaskId(1), 0, ProcId(0), &plan).is_some());
    }

    #[test]
    fn one_port_serializes_probes() {
        // Two predecessors on distinct processors both send to u: the
        // receive port must serialize the two messages.
        let mut b = GraphBuilder::new();
        let a = b.add_task(2.0);
        let c = b.add_task(2.0);
        let t = b.add_task(1.0);
        b.add_edge(a, t, 4.0);
        b.add_edge(c, t, 4.0);
        let g = b.build().unwrap();
        let p = Platform::homogeneous(3, 1.0, 1.0);
        let cfg = AlgoConfig::new(0, 10.0);
        let mut e = Engine::new(&g, &p, &cfg);
        let empty = SourcePlan { per_edge: vec![] };
        for (task, proc) in [(a, ProcId(0)), (c, ProcId(1))] {
            let pr = e.probe(task, 0, proc, &empty).unwrap();
            e.commit(task, 0, &pr, &empty);
        }
        let plan = SourcePlan::receive_from_all(&g, t, 1);
        let pr = e.probe(t, 0, ProcId(2), &plan).unwrap();
        // Both messages ready at 2, each lasts 4; serialized on the
        // receive port: arrivals at 6 and 10.
        assert_eq!(pr.start, 10.0);
        assert_eq!(pr.planned.len(), 2);
        let (s0, s1) = (pr.planned[0].start, pr.planned[1].start);
        assert_eq!(s0.min(s1), 2.0);
        assert_eq!(s0.max(s1), 6.0);
    }

    #[test]
    fn arrival_estimate_and_stage_contribution() {
        let g = chain2();
        let p = Platform::homogeneous(2, 1.0, 2.0);
        let cfg = AlgoConfig::new(0, 20.0);
        let mut e = Engine::new(&g, &p, &cfg);
        let empty = SourcePlan { per_edge: vec![] };
        let pr = e.probe(TaskId(0), 0, ProcId(0), &empty).unwrap();
        e.commit(TaskId(0), 0, &pr, &empty);
        let src = ReplicaId::new(TaskId(0), 0);
        // Volume 3 × delay 2 = 6 after finish 4.
        assert_eq!(e.arrival_estimate(EdgeId(0), src, ProcId(1)), 10.0);
        assert_eq!(e.arrival_estimate(EdgeId(0), src, ProcId(0)), 4.0);
        assert_eq!(e.stage_contribution(src, ProcId(0)), 1);
        assert_eq!(e.stage_contribution(src, ProcId(1)), 2);
    }

    /// Commit under a checkpoint, roll back, and verify the engine state
    /// matches a pre-commit snapshot field by field (bit-exact floats).
    #[test]
    fn rollback_restores_snapshot_state() {
        let mut b = GraphBuilder::new();
        let a = b.add_task(2.0);
        let c = b.add_task(2.0);
        let t = b.add_task(1.0);
        b.add_edge(a, t, 4.0);
        b.add_edge(c, t, 4.0);
        let g = b.build().unwrap();
        let p = Platform::homogeneous(3, 1.0, 1.0);
        let cfg = AlgoConfig::new(0, 20.0);
        let mut e = Engine::new(&g, &p, &cfg);
        let empty = SourcePlan { per_edge: vec![] };
        for (task, proc) in [(a, ProcId(0)), (c, ProcId(1))] {
            let pr = e.probe(task, 0, proc, &empty).unwrap();
            e.commit(task, 0, &pr, &empty);
        }
        let snapshot = e.clone();

        let mark = e.checkpoint();
        let plan = SourcePlan::receive_from_all(&g, t, 1);
        let pr = e.probe(t, 0, ProcId(2), &plan).unwrap();
        e.commit(t, 0, &pr, &plan);
        let r = e.dense(t, 0);
        let mut dset = ReplicaSet::with_capacity(e.num_replicas());
        dset.insert(r);
        e.set_down(r, dset);
        e.register_upstream_host(r, 2);
        assert!(e.is_placed(t, 0));
        assert_ne!(e.ushost[r], snapshot.ushost[r]);

        e.rollback_to(mark);
        e.discard_journal();
        assert!(!e.is_placed(t, 0));
        assert_eq!(e.sigma, snapshot.sigma);
        assert_eq!(e.cin, snapshot.cin);
        assert_eq!(e.cout, snapshot.cout);
        assert_eq!(e.comm_events.len(), snapshot.comm_events.len());
        assert_eq!(e.max_stage, snapshot.max_stage);
        assert_eq!(e.ushost, snapshot.ushost);
        assert_eq!(e.allush, snapshot.allush);
        assert_eq!(e.down, snapshot.down);
        for u in 0..3 {
            assert_eq!(
                e.cpu.bucket(u).intervals(),
                snapshot.cpu.bucket(u).intervals()
            );
            assert_eq!(
                e.send.bucket(u).intervals(),
                snapshot.send.bucket(u).intervals()
            );
            assert_eq!(
                e.recv.bucket(u).intervals(),
                snapshot.recv.bucket(u).intervals()
            );
        }

        // The freed capacity is reusable: the same placement succeeds again.
        let pr2 = e.probe(t, 0, ProcId(2), &plan).unwrap();
        assert_eq!(pr2.start, pr.start);
        e.commit(t, 0, &pr2, &plan);
        assert!(e.is_placed(t, 0));
    }

    /// Two speculative attempts rolled back to the same mark leave the
    /// engine identical each time.
    #[test]
    fn double_rollback_to_same_mark() {
        let g = chain2();
        let p = Platform::homogeneous(2, 1.0, 1.0);
        let cfg = AlgoConfig::new(0, 10.0);
        let mut e = Engine::new(&g, &p, &cfg);
        let empty = SourcePlan { per_edge: vec![] };
        let pr = e.probe(TaskId(0), 0, ProcId(0), &empty).unwrap();
        e.commit(TaskId(0), 0, &pr, &empty);
        let snapshot = e.clone();

        let mark = e.checkpoint();
        let plan = SourcePlan::receive_from_all(&g, TaskId(1), 1);
        for u in [ProcId(1), ProcId(0)] {
            let pr = e.probe(TaskId(1), 0, u, &plan).unwrap();
            e.commit(TaskId(1), 0, &pr, &plan);
            e.rollback_to(mark);
            assert!(!e.is_placed(TaskId(1), 0));
            assert_eq!(e.sigma, snapshot.sigma);
            assert_eq!(e.comm_events.len(), snapshot.comm_events.len());
        }
        e.discard_journal();
    }
}
