//! The contention-aware scheduling engine shared by LTF and R-LTF.
//!
//! The engine holds the partially-built schedule in its *scheduling
//! direction*: LTF runs it directly on the application graph, R-LTF on the
//! reversed graph (a bottom-up traversal of `G` is a forward traversal of
//! `Ĝ`; edge ids are shared, so decisions map back one-to-one — see
//! [`crate::convert`]).
//!
//! Placement works in two phases: [`Engine::probe`] computes, without
//! mutating anything, where a replica would land on a candidate processor —
//! start/finish times under insertion-based compute scheduling, the
//! one-port link reservations for its incoming messages, the resulting
//! pipeline stage, and whether condition (1) (the throughput constraint)
//! holds. [`Engine::commit`] then applies the chosen probe.
//!
//! ### Memory layout
//!
//! The committed schedule lives in [`EngineState`], a struct-of-arrays
//! block indexed by dense replica id (`task.index() * nrep + copy`) on the
//! replica axis and by `ProcId::index()` on the processor axis. The probe
//! loops in [`crate::driver`] never touch the allocator in steady state:
//!
//! * Every per-probe buffer — the flattened transfer list, the per-port
//!   overlay deltas, the planned-message list — lives in a caller-owned
//!   [`ProbeWorkspace`] / [`ProbeBuf`] and is `clear()`ed, not rebuilt.
//!   Source plans are flat [`PlanBuf`] arenas (edge list + offset table +
//!   copy pool) instead of nested `Vec<(EdgeId, Vec<u8>)>`.
//! * Probing evaluates port contention against [`OverlayView`]s — the
//!   committed per-processor timelines from the bucketed [`IntervalIndex`]
//!   plus a small delta of the candidate's own planned messages. Rejected
//!   candidates leave nothing to clean up, and no `IntervalSet` is ever
//!   cloned on the probe path.
//! * Committing can be journaled: between [`Engine::checkpoint`] and
//!   [`Engine::rollback_to`] every mutation records its exact inverse
//!   (old float values, not deltas, so rollback is bit-exact). The journal
//!   itself is flat — fixed-size records plus two side stacks for the
//!   variable-length parts — and its buffers are retained across
//!   [`Engine::discard_journal`], so speculation allocates nothing once
//!   warm. Downstream-closure bitsets released by a rollback are recycled
//!   through a free pool ([`Engine::take_set`]).
//!
//! ### Incremental reversal (R-LTF)
//!
//! A reverse-mode engine ([`Engine::new_reversed`]) additionally maintains
//! the *forward* source relation while it schedules `Ĝ`: committing copy
//! `i` of `x` with source copies `J` of `y` over edge `e` records `i` as a
//! forward source of each `(y, j)` on `e`, into a slot pre-laid in the
//! original graph's in-edge order (the per-instance slot table comes from
//! [`crate::api::PreparedInstance`]). Rollback pops the same entries, so
//! after a complete run [`crate::convert::reversed_schedule`] takes the
//! transposed relation ready-made instead of re-deriving it per solve.
//! Copies commit in ascending order, so each slot's source list is sorted
//! by construction — bit-identical to the batch transposition it replaces.

use crate::config::AlgoConfig;
use ltf_graph::{EdgeId, TaskGraph, TaskId};
use ltf_platform::{Platform, ProcId};
use ltf_schedule::intervals::{earliest_common_fit, BusyTimeline};
use ltf_schedule::{CommEvent, IntervalIndex, OverlayDelta, ReplicaId, SourceChoice, EPS};

/// A flat source plan: which predecessor copies feed each in-edge of a
/// replica being placed. Replaces the nested `Vec<(EdgeId, Vec<u8>)>` so a
/// plan can be rebuilt per candidate without heap traffic: `edges[i]` is
/// fed by `copies[offs[i]..offs[i + 1]]`.
#[derive(Debug, Default)]
pub(crate) struct PlanBuf {
    edges: Vec<EdgeId>,
    offs: Vec<u32>,
    copies: Vec<u8>,
}

impl PlanBuf {
    pub fn new() -> Self {
        Self {
            edges: Vec::new(),
            offs: vec![0],
            copies: Vec::new(),
        }
    }

    /// Reset to the empty plan, keeping all three buffers.
    pub fn clear(&mut self) {
        self.edges.clear();
        self.copies.clear();
        self.offs.truncate(1);
        if self.offs.is_empty() {
            self.offs.push(0); // Default-constructed buffer.
        }
    }

    /// Append an edge fed by a single copy.
    pub fn push_single(&mut self, e: EdgeId, c: u8) {
        self.edges.push(e);
        self.copies.push(c);
        self.offs.push(self.copies.len() as u32);
    }

    /// Append an edge fed by every copy (receive-from-all).
    pub fn push_all(&mut self, e: EdgeId, nrep: usize) {
        self.edges.push(e);
        self.copies.extend(0..nrep as u8);
        self.offs.push(self.copies.len() as u32);
    }

    /// Rebuild as the full receive-from-all plan of `t`.
    pub fn fill_receive_from_all(&mut self, g: &TaskGraph, t: TaskId, nrep: usize) {
        self.clear();
        for &e in g.pred_edges(t) {
            self.push_all(e, nrep);
        }
    }

    /// Iterate `(edge, feeding copies)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (EdgeId, &[u8])> + '_ {
        self.edges.iter().enumerate().map(move |(i, &e)| {
            let lo = self.offs[i] as usize;
            let hi = self.offs[i + 1] as usize;
            (e, &self.copies[lo..hi])
        })
    }

    /// Number of edges in the plan.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }
}

/// One planned (not yet committed) incoming message.
#[derive(Debug, Clone, Copy)]
struct PlannedComm {
    edge: EdgeId,
    src: ReplicaId,
    src_proc: ProcId,
    start: f64,
    dur: f64,
}

/// Set of processors as a bitmask (the engine asserts `m ≤ 128`).
pub(crate) type ProcMask = u128;

/// A set of replicas (dense indices) as a growable bitset. Used to track
/// downstream closures through single-source feeding chains. Grows lazily
/// on insertion, so the engine's `n`-element closure table costs `O(n)`
/// empty sets up front instead of `O(n²)` words.
#[derive(Debug, Clone, Eq, Default)]
pub(crate) struct ReplicaSet {
    words: Vec<u64>,
}

/// Set equality (a lazily-grown set equals its fixed-capacity twin).
impl PartialEq for ReplicaSet {
    fn eq(&self, other: &Self) -> bool {
        let n = self.words.len().min(other.words.len());
        self.words[..n] == other.words[..n]
            && self.words[n..].iter().all(|&w| w == 0)
            && other.words[n..].iter().all(|&w| w == 0)
    }
}

impl ReplicaSet {
    #[inline]
    pub fn insert(&mut self, idx: usize) {
        let w = idx / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << (idx % 64);
    }

    pub fn union_with(&mut self, other: &ReplicaSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// Reset to the empty set, keeping the allocation (scratch reuse in
    /// the per-candidate loops).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Iterate the contained dense indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            let mut bits = bits;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(w * 64 + b)
                }
            })
        })
    }
}

/// Result of probing one `(replica, processor)` placement. Reusable: the
/// driver keeps a candidate and an incumbent buffer and swaps them, so the
/// planned-message list is never reallocated in steady state.
#[derive(Debug)]
pub(crate) struct ProbeBuf {
    /// Candidate processor.
    pub proc: ProcId,
    /// Computed start time (insertion-based).
    pub start: f64,
    /// Computed finish time `F_u(t)`.
    pub finish: f64,
    /// Pipeline stage the replica would get (scheduling-direction).
    pub stage: u32,
    /// Crash cone: processors whose single failure would silence this
    /// replica (its host, plus — through single-source edges — the cones
    /// of its designated producers).
    pub kill: ProcMask,
    planned: Vec<PlannedComm>,
}

impl Default for ProbeBuf {
    fn default() -> Self {
        Self {
            proc: ProcId(0),
            start: 0.0,
            finish: 0.0,
            stage: 0,
            kill: 0,
            planned: Vec::new(),
        }
    }
}

impl ProbeBuf {
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite with `other`'s contents, reusing the planned buffer.
    pub fn copy_from(&mut self, other: &ProbeBuf) {
        self.proc = other.proc;
        self.start = other.start;
        self.finish = other.finish;
        self.stage = other.stage;
        self.kill = other.kill;
        self.planned.clear();
        self.planned.extend_from_slice(&other.planned);
    }

    /// Number of planned (cross-processor, non-zero) incoming messages.
    #[cfg(test)]
    pub fn num_planned(&self) -> usize {
        self.planned.len()
    }

    /// Start times of the planned messages (test inspection).
    #[cfg(test)]
    pub fn planned_starts(&self) -> Vec<f64> {
        self.planned.iter().map(|pc| pc.start).collect()
    }
}

/// Per-probe working memory: the flattened transfer list and the one-port
/// overlay deltas. Owned by the driver's scratch arena and reused for
/// every candidate; a steady-state probe performs no heap allocation.
#[derive(Debug, Default)]
pub(crate) struct ProbeWorkspace {
    items: Vec<(EdgeId, ReplicaId)>,
    send: Vec<SendSlot>,
    send_len: usize,
    recv: OverlayDelta,
    /// Tentative per-link reservations (contended comm model only; stays
    /// untouched — and unallocated — under the uniform model).
    links: Vec<LinkSlot>,
    links_len: usize,
    /// Slot indices of the current message's route links (cleared per
    /// message, capacity retained).
    route_slots: Vec<usize>,
}

/// Tentative reservations on one touched source processor's send port.
/// Few per probe: linear keying beats an `m`-sized scratch vector.
#[derive(Debug)]
struct SendSlot {
    proc: usize,
    delta: OverlayDelta,
    load: f64,
}

/// Tentative reservations on one touched physical link (contended comm
/// model). Linear-keyed and recycled exactly like [`SendSlot`].
#[derive(Debug)]
struct LinkSlot {
    link: usize,
    delta: OverlayDelta,
    load: f64,
}

impl ProbeWorkspace {
    /// Index of the slot for `proc`, reusing retired slots before growing.
    fn send_slot(&mut self, proc: usize) -> usize {
        for i in 0..self.send_len {
            if self.send[i].proc == proc {
                return i;
            }
        }
        let i = self.send_len;
        if i == self.send.len() {
            self.send.push(SendSlot {
                proc,
                delta: OverlayDelta::new(),
                load: 0.0,
            });
        } else {
            let s = &mut self.send[i];
            s.proc = proc;
            s.delta.clear();
            s.load = 0.0;
        }
        self.send_len += 1;
        i
    }

    /// Index of the slot for physical link `link`, reusing retired slots
    /// before growing.
    fn link_slot(&mut self, link: usize) -> usize {
        for i in 0..self.links_len {
            if self.links[i].link == link {
                return i;
            }
        }
        let i = self.links_len;
        if i == self.links.len() {
            self.links.push(LinkSlot {
                link,
                delta: OverlayDelta::new(),
                load: 0.0,
            });
        } else {
            let s = &mut self.links[i];
            s.link = link;
            s.delta.clear();
            s.load = 0.0;
        }
        self.links_len += 1;
        i
    }
}

/// Saved metadata of a replica slot, restored verbatim on rollback.
#[derive(Debug, Clone, Copy)]
struct ReplicaMeta {
    proc: ProcId,
    start: f64,
    finish: f64,
    stage: u32,
    kill: ProcMask,
}

/// Inverse of one committed message: where its port reservations and load
/// contributions went. Lives on the journal's flat side stack.
#[derive(Debug, Clone, Copy)]
struct CommUndo {
    src_proc: usize,
    start: f64,
    end: f64,
    old_cout: f64,
    /// Number of link-undo entries this message pushed (0 under the
    /// uniform comm model).
    n_links: u32,
}

/// One journaled mutation with everything needed to revert it exactly.
/// Old values (not deltas) are recorded so floating-point state is
/// restored bit-for-bit. Variable-length payloads (message undos, touched
/// upstream entries) live on the journal's side stacks; the records here
/// only carry counts, so pushing and popping them never allocates.
#[derive(Debug)]
enum UndoRec {
    /// Inverse of [`Engine::commit`]; pops `n_comms` entries off the
    /// comm-undo stack.
    Commit {
        r: u32,
        proc: ProcId,
        old_meta: ReplicaMeta,
        old_sigma: f64,
        old_cin: f64,
        old_max_stage: u32,
        cpu_iv: (f64, f64),
        n_comms: u32,
    },
    /// Inverse of [`Engine::set_down`]; the displaced set is recycled into
    /// the free pool on rollback or discard.
    Down { r: u32, old: ReplicaSet },
    /// Inverse of [`Engine::register_upstream_host`]; pops `n` entries off
    /// the upstream-undo stack.
    Upstream { n: u32 },
}

/// Flat undo journal. All buffers are retained across
/// [`Engine::discard_journal`], so a warm speculation cycle is
/// allocation-free.
#[derive(Debug, Default)]
struct Journal {
    active: bool,
    recs: Vec<UndoRec>,
    comms: Vec<CommUndo>,
    /// Per-link inverses `(link, old_load)` of committed messages; popped
    /// `CommUndo::n_links` at a time.
    links: Vec<(u32, f64)>,
    upstream: Vec<(u32, ProcMask, ProcMask)>,
}

/// Position in the undo journal returned by [`Engine::checkpoint`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct EngineMark(usize);

/// The committed schedule, struct-of-arrays. Replica attributes are dense
/// vectors over `task.index() * nrep + copy`; processor attributes over
/// `ProcId::index()`. Read-mostly: only [`Engine::commit`] and the
/// closure/upstream trackers write to it, every probe merely reads.
#[derive(Debug, Clone)]
pub(crate) struct EngineState {
    // Per replica.
    pub placed: Vec<bool>,
    pub proc_of: Vec<ProcId>,
    pub start: Vec<f64>,
    pub finish: Vec<f64>,
    pub stage: Vec<u32>,
    /// Crash cone of each placed replica (see [`ProbeBuf::kill`]);
    /// meaningful in forward (LTF) mode, where predecessors are placed
    /// first.
    pub kill: Vec<ProcMask>,
    /// Committed source structure (scheduling-direction).
    pub sources: Vec<Vec<SourceChoice>>,
    /// Reverse (R-LTF) mode: downstream closure of each replica — the set
    /// of replicas it transitively feeds through single-source edges
    /// (in application-graph direction). Fixed at placement time.
    pub down: Vec<ReplicaSet>,
    /// Reverse mode: hosts of the upstream closure gathered so far for
    /// each replica (its own host plus the hosts of every replica known to
    /// feed it through single-source chains).
    pub ushost: Vec<ProcMask>,
    // Per task.
    /// Reverse mode: per task, the union of `ushost` over its copies.
    pub allush: Vec<ProcMask>,
    // Per processor.
    pub sigma: Vec<f64>,
    pub cin: Vec<f64>,
    pub cout: Vec<f64>,
    pub cpu: IntervalIndex,
    pub send: IntervalIndex,
    pub recv: IntervalIndex,
    // Per physical link (contended comm model; both empty under uniform).
    /// Busy timeline of each physical link.
    pub link: IntervalIndex,
    /// Committed transfer load per physical link (the link-capacity side
    /// of condition (1): each must stay ≤ the period).
    pub lload: Vec<f64>,
    // Scalars / event log.
    pub comm_events: Vec<CommEvent>,
    /// Largest stage assigned so far (scheduling-direction); drives
    /// R-LTF's Rule 1.
    pub max_stage: u32,
}

impl EngineState {
    fn new(n: usize, num_tasks: usize, m: usize, nlinks: usize) -> Self {
        Self {
            placed: vec![false; n],
            proc_of: vec![ProcId(0); n],
            start: vec![0.0; n],
            finish: vec![0.0; n],
            stage: vec![0; n],
            kill: vec![0; n],
            sources: vec![Vec::new(); n],
            down: vec![ReplicaSet::default(); n],
            ushost: vec![0; n],
            allush: vec![0; num_tasks],
            sigma: vec![0.0; m],
            cin: vec![0.0; m],
            cout: vec![0.0; m],
            cpu: IntervalIndex::new(m),
            send: IntervalIndex::new(m),
            recv: IntervalIndex::new(m),
            link: IntervalIndex::new(nlinks),
            lload: vec![0.0; nlinks],
            comm_events: Vec::new(),
            max_stage: 0,
        }
    }
}

/// Reverse-mode companion state: the forward source relation, maintained
/// incrementally as `Ĝ` commits happen (see the module docs).
struct RevView<'a> {
    /// The ORIGINAL application graph `G`.
    orig: &'a TaskGraph,
    /// `edge_slot[e]` = position of `e` in `G.pred_edges(dst_G(e))`; comes
    /// from the prepared instance, computed once per `(G, P)` pair.
    edge_slot: &'a [u32],
    /// Forward sources per original-direction replica, pre-laid with one
    /// (initially empty) [`SourceChoice`] per in-edge of the task in `G`.
    fwd_sources: Vec<Vec<SourceChoice>>,
}

/// Partially-built schedule state.
pub(crate) struct Engine<'a> {
    pub g: &'a TaskGraph,
    pub p: &'a Platform,
    pub period: f64,
    pub nrep: usize,
    pub state: EngineState,
    rev: Option<RevView<'a>>,
    journal: Journal,
    /// Recycled closure bitsets: rollbacks and discards return the sets
    /// they displace, [`Engine::take_set`] hands them back out.
    free_sets: Vec<ReplicaSet>,
}

impl<'a> Engine<'a> {
    pub fn new(g: &'a TaskGraph, p: &'a Platform, cfg: &AlgoConfig) -> Self {
        let nrep = cfg.replicas();
        let n = g.num_tasks() * nrep;
        let m = p.num_procs();
        assert!(m <= 128, "ProcMask supports up to 128 processors");
        Self {
            g,
            p,
            period: cfg.period,
            nrep,
            state: EngineState::new(n, g.num_tasks(), m, p.num_links()),
            rev: None,
            journal: Journal::default(),
            free_sets: Vec::new(),
        }
    }

    /// Reverse-mode engine: schedules `rev` (`= orig.reversed()`) while
    /// maintaining the forward source relation for
    /// [`crate::convert::reversed_schedule`]. `edge_slot` is the
    /// per-instance slot table (see [`RevView::edge_slot`]).
    pub fn new_reversed(
        rev: &'a TaskGraph,
        orig: &'a TaskGraph,
        edge_slot: &'a [u32],
        p: &'a Platform,
        cfg: &AlgoConfig,
    ) -> Self {
        let mut e = Self::new(rev, p, cfg);
        let nrep = e.nrep;
        let mut fwd_sources: Vec<Vec<SourceChoice>> = vec![Vec::new(); e.num_replicas()];
        for y in orig.tasks() {
            let pe = orig.pred_edges(y);
            for j in 0..nrep as u8 {
                fwd_sources[ReplicaId::new(y, j).dense(nrep)].extend(pe.iter().map(|&edge| {
                    SourceChoice {
                        edge,
                        sources: Vec::new(),
                    }
                }));
            }
        }
        e.rev = Some(RevView {
            orig,
            edge_slot,
            fwd_sources,
        });
        e
    }

    /// Total number of replicas (`v · (ε+1)`).
    #[inline]
    pub fn num_replicas(&self) -> usize {
        self.state.placed.len()
    }

    #[inline]
    pub fn dense(&self, t: TaskId, copy: u8) -> usize {
        ReplicaId::new(t, copy).dense(self.nrep)
    }

    /// Test helper: whether a replica has been committed.
    #[cfg(test)]
    pub fn is_placed(&self, t: TaskId, copy: u8) -> bool {
        self.state.placed[self.dense(t, copy)]
    }

    /// Test helper: host of a committed replica.
    #[cfg(test)]
    pub fn proc_of(&self, t: TaskId, copy: u8) -> ProcId {
        self.state.proc_of[self.dense(t, copy)]
    }

    /// Latest finish time over the copies of `t` (used for dynamic priority
    /// updates).
    pub fn task_finish(&self, t: TaskId) -> f64 {
        (0..self.nrep)
            .map(|c| self.state.finish[self.dense(t, c as u8)])
            .fold(0.0, f64::max)
    }

    /// Crash cone of a placed replica.
    #[inline]
    pub fn kill_of(&self, t: TaskId, copy: u8) -> ProcMask {
        self.state.kill[self.dense(t, copy)]
    }

    /// Whether any replica has been committed to `u` yet (drives R-LTF's
    /// clustering tie-break).
    #[inline]
    pub fn proc_used(&self, u: ProcId) -> bool {
        self.state.sigma[u.index()] > 0.0
    }

    /// A cleared closure bitset from the recycling pool (or a fresh one).
    pub fn take_set(&mut self) -> ReplicaSet {
        match self.free_sets.pop() {
            Some(mut s) => {
                s.clear();
                s
            }
            None => ReplicaSet::default(),
        }
    }

    /// Estimated arrival time of data from a placed source replica onto
    /// processor `u`, ignoring port queueing (used to rank one-to-one
    /// heads, the paper's sort of `B(t_i)` by communication finish times).
    pub fn arrival_estimate(&self, edge: EdgeId, src: ReplicaId, u: ProcId) -> f64 {
        let sidx = src.dense(self.nrep);
        debug_assert!(self.state.placed[sidx], "source not placed");
        let h = self.state.proc_of[sidx];
        let vol = self.g.edge(edge).volume;
        self.state.finish[sidx] + self.p.comm_time(vol, h, u)
    }

    /// Stage the replica would take from a single source over `edge` when
    /// hosted on `u`.
    pub fn stage_contribution(&self, src: ReplicaId, u: ProcId) -> u32 {
        let sidx = src.dense(self.nrep);
        self.state.stage[sidx] + u32::from(self.state.proc_of[sidx] != u)
    }

    /// Probe placing a copy of `t` on `u` with the given sources, writing
    /// the outcome into `out`. Returns `false` when condition (1) — the
    /// throughput constraint — would be violated. Does not mutate the
    /// engine, and performs no heap allocation once `ws`/`out` are warm.
    ///
    /// Port contention is evaluated against overlays of the committed
    /// timelines; no per-candidate `IntervalSet` clone takes place.
    pub fn probe(
        &self,
        t: TaskId,
        u: ProcId,
        plan: &PlanBuf,
        ws: &mut ProbeWorkspace,
        out: &mut ProbeBuf,
    ) -> bool {
        let st = &self.state;
        let ui = u.index();
        let exec = self.p.exec_time(self.g.exec(t), u);
        if st.sigma[ui] + exec > self.period + EPS {
            return false;
        }

        // Flatten and order incoming transfers by producer finish time so
        // the port reservations are deterministic. The comparator is a
        // strict total order over the (distinct) items, so the unstable
        // sort is deterministic too.
        ws.items.clear();
        for (edge, copies) in plan.iter() {
            let pred = self.g.edge(edge).src;
            for &c in copies {
                ws.items.push((edge, ReplicaId::new(pred, c)));
            }
        }
        ws.items.sort_unstable_by(|a, b| {
            let fa = st.finish[a.1.dense(self.nrep)];
            let fb = st.finish[b.1.dense(self.nrep)];
            fa.partial_cmp(&fb)
                .expect("finite times")
                .then(a.0.cmp(&b.0))
                .then(a.1.copy.cmp(&b.1.copy))
        });

        ws.send_len = 0;
        ws.links_len = 0;
        ws.recv.clear();
        let mut cin_add = 0.0f64;
        let mut ready = 0.0f64;
        let mut stage = 1u32;
        out.planned.clear();

        // Crash cone: host plus, per in-edge, the intersection of the
        // sources' cones (a single crash starves the edge only when it is
        // in every source's cone; with a single source this is its cone).
        let mut kill: ProcMask = 1u128 << ui;
        for (edge, copies) in plan.iter() {
            let pred = self.g.edge(edge).src;
            let mut edge_kill: ProcMask = !0;
            for &c in copies {
                edge_kill &= st.kill[self.dense(pred, c)];
            }
            if !copies.is_empty() {
                kill |= edge_kill;
            }
        }

        for k in 0..ws.items.len() {
            let (edge, src) = ws.items[k];
            let sidx = src.dense(self.nrep);
            debug_assert!(st.placed[sidx], "predecessor replica not placed");
            let h = st.proc_of[sidx];
            if h == u {
                ready = ready.max(st.finish[sidx]);
                stage = stage.max(st.stage[sidx]);
                continue;
            }
            stage = stage.max(st.stage[sidx] + 1);
            let dur = self.p.comm_time(self.g.edge(edge).volume, h, u);
            if dur <= EPS {
                // Zero-volume transfer: crosses processors (η = 1) but
                // occupies no port time.
                ready = ready.max(st.finish[sidx]);
                continue;
            }
            let hi = h.index();
            let slot = ws.send_slot(hi);
            let route = self.p.route(h, u);
            let start = if route.is_empty() {
                // Uniform comm model (or a routed pair with no links —
                // impossible for distinct processors of a connected
                // topology): the original two-timeline fit, bit-identical
                // to the pre-`CommModel` engine.
                let sv = st.send.overlay(hi, &ws.send[slot].delta);
                let rv = st.recv.overlay(ui, &ws.recv);
                earliest_common_fit(&sv, &rv, st.finish[sidx], dur)
            } else {
                // Contended: the message must hold the send port, the
                // receive port and every link on its route for one common
                // window. Generalizes `earliest_common_fit`'s fixpoint to
                // n timelines: sweep all of them until a full pass leaves
                // the candidate unchanged — each `next_fit` is monotone,
                // so the first stationary point is the least common fit.
                ws.route_slots.clear();
                for &l in route {
                    let li = ws.link_slot(l.index());
                    ws.route_slots.push(li);
                }
                let sv = st.send.overlay(hi, &ws.send[slot].delta);
                let rv = st.recv.overlay(ui, &ws.recv);
                let mut t = st.finish[sidx];
                loop {
                    let t_pass = t;
                    t = sv.next_fit(t, dur);
                    t = rv.next_fit(t, dur);
                    for &li in &ws.route_slots {
                        let lv = st.link.overlay(ws.links[li].link, &ws.links[li].delta);
                        t = lv.next_fit(t, dur);
                    }
                    if t - t_pass <= EPS {
                        break t;
                    }
                }
            };
            ws.send[slot].delta.insert(start, start + dur);
            ws.recv.insert(start, start + dur);
            for i in 0..route.len() {
                let li = ws.route_slots[i];
                let ls = &mut ws.links[li];
                ls.delta.insert(start, start + dur);
                ls.load += dur;
                // Link capacity: total traffic over a physical link must
                // fit the period, like the endpoint IO loads.
                if st.lload[ls.link] + ls.load > self.period + EPS {
                    return false;
                }
            }
            cin_add += dur;
            ws.send[slot].load += dur;
            if st.cout[hi] + ws.send[slot].load > self.period + EPS {
                return false;
            }
            out.planned.push(PlannedComm {
                edge,
                src,
                src_proc: h,
                start,
                dur,
            });
            ready = ready.max(start + dur);
        }
        if st.cin[ui] + cin_add > self.period + EPS {
            return false;
        }

        let start = st.cpu.bucket(ui).next_fit(ready, exec);
        out.proc = u;
        out.start = start;
        out.finish = start + exec;
        out.stage = stage;
        out.kill = kill;
        true
    }

    /// Apply a probe: place the replica, reserve ports and CPU, record the
    /// communication events and the source structure (and, in reverse
    /// mode, the transposed forward sources). Journaled when a checkpoint
    /// is outstanding.
    pub fn commit(&mut self, t: TaskId, copy: u8, probe: &ProbeBuf, plan: &PlanBuf) {
        let st = &mut self.state;
        let r = self.nrep * t.index() + copy as usize;
        debug_assert_eq!(r, ReplicaId::new(t, copy).dense(self.nrep));
        assert!(!st.placed[r], "replica committed twice");
        let u = probe.proc;
        let ui = u.index();
        let rep = ReplicaId::new(t, copy);

        if self.journal.active {
            for pc in &probe.planned {
                let route = self.p.route(pc.src_proc, u);
                for &l in route {
                    self.journal.links.push((l.0, st.lload[l.index()]));
                }
                self.journal.comms.push(CommUndo {
                    src_proc: pc.src_proc.index(),
                    start: pc.start,
                    end: pc.start + pc.dur,
                    old_cout: st.cout[pc.src_proc.index()],
                    n_links: route.len() as u32,
                });
            }
            self.journal.recs.push(UndoRec::Commit {
                r: r as u32,
                proc: u,
                old_meta: ReplicaMeta {
                    proc: st.proc_of[r],
                    start: st.start[r],
                    finish: st.finish[r],
                    stage: st.stage[r],
                    kill: st.kill[r],
                },
                old_sigma: st.sigma[ui],
                old_cin: st.cin[ui],
                old_max_stage: st.max_stage,
                cpu_iv: (probe.start, probe.finish),
                n_comms: probe.planned.len() as u32,
            });
        }

        st.placed[r] = true;
        st.proc_of[r] = u;
        st.start[r] = probe.start;
        st.finish[r] = probe.finish;
        st.stage[r] = probe.stage;
        st.kill[r] = probe.kill;
        st.max_stage = st.max_stage.max(probe.stage);

        st.sigma[ui] += probe.finish - probe.start;
        st.cpu.insert(ui, probe.start, probe.finish);

        for pc in &probe.planned {
            st.send
                .insert(pc.src_proc.index(), pc.start, pc.start + pc.dur);
            st.recv.insert(ui, pc.start, pc.start + pc.dur);
            for &l in self.p.route(pc.src_proc, u) {
                st.link.insert(l.index(), pc.start, pc.start + pc.dur);
                st.lload[l.index()] += pc.dur;
            }
            st.cout[pc.src_proc.index()] += pc.dur;
            st.cin[ui] += pc.dur;
            st.comm_events.push(CommEvent {
                edge: pc.edge,
                src: pc.src,
                dst: rep,
                src_proc: pc.src_proc,
                dst_proc: u,
                start: pc.start,
                finish: pc.start + pc.dur,
            });
        }

        debug_assert!(st.sources[r].is_empty());
        st.sources[r].reserve(plan.num_edges());
        for (edge, copies) in plan.iter() {
            st.sources[r].push(SourceChoice {
                edge,
                sources: copies.to_vec(),
            });
        }

        // Reverse mode: record the transposed forward sources. Copies
        // commit in ascending order, so each slot stays sorted.
        if let Some(rev) = self.rev.as_mut() {
            let nrep = self.nrep;
            for (edge, copies) in plan.iter() {
                let y = rev.orig.edge(edge).dst;
                let slot = rev.edge_slot[edge.index()] as usize;
                for &j in copies {
                    rev.fwd_sources[ReplicaId::new(y, j).dense(nrep)][slot]
                        .sources
                        .push(copy);
                }
            }
        }
    }

    /// Record the downstream closure of a freshly committed replica
    /// (reverse mode). Journaled when a checkpoint is outstanding.
    pub fn set_down(&mut self, r: usize, dset: ReplicaSet) {
        let old = std::mem::replace(&mut self.state.down[r], dset);
        if self.journal.active {
            self.journal.recs.push(UndoRec::Down { r: r as u32, old });
        } else {
            self.free_sets.push(old);
        }
    }

    /// Register `host` as an upstream host of every replica fed by `r`
    /// (including itself), reverse mode. Journaled when a checkpoint is
    /// outstanding.
    pub fn register_upstream_host(&mut self, r: usize, host: usize) {
        let bit: ProcMask = 1 << host;
        let nrep = self.nrep;
        let record = self.journal.active;
        let dset = std::mem::take(&mut self.state.down[r]);
        let mut n = 0u32;
        for idx in dset.iter() {
            if record {
                self.journal.upstream.push((
                    idx as u32,
                    self.state.ushost[idx],
                    self.state.allush[idx / nrep],
                ));
                n += 1;
            }
            self.state.ushost[idx] |= bit;
            self.state.allush[idx / nrep] |= bit;
        }
        self.state.down[r] = dset;
        if record {
            self.journal.recs.push(UndoRec::Upstream { n });
        }
    }

    /// Start (or extend) speculative execution: subsequent mutations are
    /// journaled and can be reverted with [`Engine::rollback_to`].
    pub fn checkpoint(&mut self) -> EngineMark {
        self.journal.active = true;
        EngineMark(self.journal.recs.len())
    }

    /// Revert every mutation journaled after `mark`, restoring the exact
    /// engine state (floats included) at checkpoint time. Journaling stays
    /// enabled so a second attempt can be rolled back to the same mark.
    pub fn rollback_to(&mut self, mark: EngineMark) {
        debug_assert!(self.journal.active, "rollback without checkpoint");
        while self.journal.recs.len() > mark.0 {
            match self.journal.recs.pop().expect("length checked") {
                UndoRec::Commit {
                    r,
                    proc,
                    old_meta,
                    old_sigma,
                    old_cin,
                    old_max_stage,
                    cpu_iv,
                    n_comms,
                } => {
                    let r = r as usize;
                    let st = &mut self.state;
                    let ui = proc.index();
                    for _ in 0..n_comms {
                        let cu = self.journal.comms.pop().expect("comm undo underflow");
                        st.comm_events.pop();
                        st.send.remove(cu.src_proc, cu.start, cu.end);
                        st.recv.remove(ui, cu.start, cu.end);
                        st.cout[cu.src_proc] = cu.old_cout;
                        for _ in 0..cu.n_links {
                            let (l, old_load) =
                                self.journal.links.pop().expect("link undo underflow");
                            st.link.remove(l as usize, cu.start, cu.end);
                            st.lload[l as usize] = old_load;
                        }
                    }
                    st.cpu.remove(ui, cpu_iv.0, cpu_iv.1);
                    st.sigma[ui] = old_sigma;
                    st.cin[ui] = old_cin;
                    st.max_stage = old_max_stage;
                    st.placed[r] = false;
                    st.proc_of[r] = old_meta.proc;
                    st.start[r] = old_meta.start;
                    st.finish[r] = old_meta.finish;
                    st.stage[r] = old_meta.stage;
                    st.kill[r] = old_meta.kill;
                    // Reverse mode: pop the transposed entries this commit
                    // pushed (strictly LIFO across commits, so each slot's
                    // last element is ours).
                    if let Some(rev) = self.rev.as_mut() {
                        let nrep = self.nrep;
                        let copy = (r % nrep) as u8;
                        for choice in self.state.sources[r].iter().rev() {
                            let y = rev.orig.edge(choice.edge).dst;
                            let slot = rev.edge_slot[choice.edge.index()] as usize;
                            for &j in choice.sources.iter().rev() {
                                let popped = rev.fwd_sources[ReplicaId::new(y, j).dense(nrep)]
                                    [slot]
                                    .sources
                                    .pop();
                                debug_assert_eq!(popped, Some(copy));
                            }
                        }
                    }
                    self.state.sources[r].clear();
                }
                UndoRec::Down { r, old } => {
                    let cur = std::mem::replace(&mut self.state.down[r as usize], old);
                    self.free_sets.push(cur);
                }
                UndoRec::Upstream { n } => {
                    for _ in 0..n {
                        let (idx, old_ushost, old_allush) = self
                            .journal
                            .upstream
                            .pop()
                            .expect("upstream undo underflow");
                        self.state.ushost[idx as usize] = old_ushost;
                        self.state.allush[idx as usize / self.nrep] = old_allush;
                    }
                }
            }
        }
    }

    /// End speculative execution: drop all undo records and stop
    /// journaling. Call once the current decision is final. Buffers (and
    /// the closure sets held by `Down` records) are retained for reuse.
    pub fn discard_journal(&mut self) {
        self.journal.active = false;
        for rec in self.journal.recs.drain(..) {
            if let UndoRec::Down { old, .. } = rec {
                self.free_sets.push(old);
            }
        }
        self.journal.comms.clear();
        self.journal.links.clear();
        self.journal.upstream.clear();
    }

    /// `true` once every replica of every task is placed.
    pub fn all_placed(&self) -> bool {
        self.state.placed.iter().all(|&b| b)
    }

    /// Reverse mode: take the incrementally maintained forward source
    /// relation (one entry per in-edge of each task in the original graph,
    /// in `pred_edges` order, sources ascending).
    pub fn take_fwd_sources(&mut self) -> Vec<Vec<SourceChoice>> {
        std::mem::take(
            &mut self
                .rev
                .as_mut()
                .expect("forward sources on a reverse-mode engine")
                .fwd_sources,
        )
    }

    /// Consume the engine into its raw parts
    /// `(proc_of, start, finish, stage, sources, comm_events)`. The stage
    /// vector is the per-commit worst-source stage in scheduling
    /// direction; for a forward (LTF) engine it equals the guaranteed
    /// stages the schedule layer would recompute.
    #[allow(clippy::type_complexity)]
    pub fn into_parts(
        self,
    ) -> (
        Vec<ProcId>,
        Vec<f64>,
        Vec<f64>,
        Vec<u32>,
        Vec<Vec<SourceChoice>>,
        Vec<CommEvent>,
    ) {
        (
            self.state.proc_of,
            self.state.start,
            self.state.finish,
            self.state.stage,
            self.state.sources,
            self.state.comm_events,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltf_graph::GraphBuilder;

    fn chain2() -> TaskGraph {
        let mut b = GraphBuilder::new();
        let t0 = b.add_task(4.0);
        let t1 = b.add_task(2.0);
        b.add_edge(t0, t1, 3.0);
        b.build().unwrap()
    }

    /// Convenience wrapper around the buffer-based probe for tests.
    fn probe(e: &Engine<'_>, t: TaskId, u: ProcId, plan: &PlanBuf) -> Option<ProbeBuf> {
        let mut ws = ProbeWorkspace::default();
        let mut out = ProbeBuf::new();
        e.probe(t, u, plan, &mut ws, &mut out).then_some(out)
    }

    fn rfa_plan(g: &TaskGraph, t: TaskId, nrep: usize) -> PlanBuf {
        let mut plan = PlanBuf::new();
        plan.fill_receive_from_all(g, t, nrep);
        plan
    }

    #[test]
    fn probe_and_commit_entry_task() {
        let g = chain2();
        let p = Platform::homogeneous(2, 1.0, 1.0);
        let cfg = AlgoConfig::new(0, 10.0);
        let mut e = Engine::new(&g, &p, &cfg);
        let plan = PlanBuf::new();
        let pr = probe(&e, TaskId(0), ProcId(0), &plan).unwrap();
        assert_eq!(pr.start, 0.0);
        assert_eq!(pr.finish, 4.0);
        assert_eq!(pr.stage, 1);
        e.commit(TaskId(0), 0, &pr, &plan);
        assert!(e.is_placed(TaskId(0), 0));
        assert_eq!(e.proc_of(TaskId(0), 0), ProcId(0));
        assert_eq!(e.task_finish(TaskId(0)), 4.0);
    }

    #[test]
    fn probe_cross_processor_comm() {
        let g = chain2();
        let p = Platform::homogeneous(2, 1.0, 1.0);
        let cfg = AlgoConfig::new(0, 10.0);
        let mut e = Engine::new(&g, &p, &cfg);
        let empty = PlanBuf::new();
        let pr = probe(&e, TaskId(0), ProcId(0), &empty).unwrap();
        e.commit(TaskId(0), 0, &pr, &empty);

        let plan = rfa_plan(&g, TaskId(1), 1);
        // Remote placement: message of duration 3 after t0 ends at 4.
        let pr = probe(&e, TaskId(1), ProcId(1), &plan).unwrap();
        assert_eq!(pr.start, 7.0);
        assert_eq!(pr.finish, 9.0);
        assert_eq!(pr.stage, 2);
        // Local placement: no message.
        let pr_local = probe(&e, TaskId(1), ProcId(0), &plan).unwrap();
        assert_eq!(pr_local.start, 4.0);
        assert_eq!(pr_local.stage, 1);
    }

    #[test]
    fn probe_rejects_compute_overload() {
        let g = chain2();
        let p = Platform::homogeneous(1, 1.0, 1.0);
        let cfg = AlgoConfig::new(0, 5.0);
        let mut e = Engine::new(&g, &p, &cfg);
        let empty = PlanBuf::new();
        let pr = probe(&e, TaskId(0), ProcId(0), &empty).unwrap();
        e.commit(TaskId(0), 0, &pr, &empty);
        // 4 + 2 = 6 > 5: infeasible.
        let plan = rfa_plan(&g, TaskId(1), 1);
        assert!(probe(&e, TaskId(1), ProcId(0), &plan).is_none());
    }

    #[test]
    fn probe_rejects_io_overload() {
        let mut b = GraphBuilder::new();
        let t0 = b.add_task(1.0);
        let t1 = b.add_task(1.0);
        b.add_edge(t0, t1, 6.0);
        let g = b.build().unwrap();
        let p = Platform::homogeneous(2, 1.0, 1.0);
        let cfg = AlgoConfig::new(0, 5.0);
        let mut e = Engine::new(&g, &p, &cfg);
        let empty = PlanBuf::new();
        let pr = probe(&e, TaskId(0), ProcId(0), &empty).unwrap();
        e.commit(TaskId(0), 0, &pr, &empty);
        // Message of 6 > period 5 on both ports: remote infeasible,
        // local fine.
        let plan = rfa_plan(&g, TaskId(1), 1);
        assert!(probe(&e, TaskId(1), ProcId(1), &plan).is_none());
        assert!(probe(&e, TaskId(1), ProcId(0), &plan).is_some());
    }

    #[test]
    fn one_port_serializes_probes() {
        // Two predecessors on distinct processors both send to u: the
        // receive port must serialize the two messages.
        let mut b = GraphBuilder::new();
        let a = b.add_task(2.0);
        let c = b.add_task(2.0);
        let t = b.add_task(1.0);
        b.add_edge(a, t, 4.0);
        b.add_edge(c, t, 4.0);
        let g = b.build().unwrap();
        let p = Platform::homogeneous(3, 1.0, 1.0);
        let cfg = AlgoConfig::new(0, 10.0);
        let mut e = Engine::new(&g, &p, &cfg);
        let empty = PlanBuf::new();
        for (task, proc) in [(a, ProcId(0)), (c, ProcId(1))] {
            let pr = probe(&e, task, proc, &empty).unwrap();
            e.commit(task, 0, &pr, &empty);
        }
        let plan = rfa_plan(&g, t, 1);
        let pr = probe(&e, t, ProcId(2), &plan).unwrap();
        // Both messages ready at 2, each lasts 4; serialized on the
        // receive port: arrivals at 6 and 10.
        assert_eq!(pr.start, 10.0);
        assert_eq!(pr.num_planned(), 2);
        let starts = pr.planned_starts();
        let (s0, s1) = (starts[0], starts[1]);
        assert_eq!(s0.min(s1), 2.0);
        assert_eq!(s0.max(s1), 6.0);
    }

    #[test]
    fn arrival_estimate_and_stage_contribution() {
        let g = chain2();
        let p = Platform::homogeneous(2, 1.0, 2.0);
        let cfg = AlgoConfig::new(0, 20.0);
        let mut e = Engine::new(&g, &p, &cfg);
        let empty = PlanBuf::new();
        let pr = probe(&e, TaskId(0), ProcId(0), &empty).unwrap();
        e.commit(TaskId(0), 0, &pr, &empty);
        let src = ReplicaId::new(TaskId(0), 0);
        // Volume 3 × delay 2 = 6 after finish 4.
        assert_eq!(e.arrival_estimate(EdgeId(0), src, ProcId(1)), 10.0);
        assert_eq!(e.arrival_estimate(EdgeId(0), src, ProcId(0)), 4.0);
        assert_eq!(e.stage_contribution(src, ProcId(0)), 1);
        assert_eq!(e.stage_contribution(src, ProcId(1)), 2);
    }

    /// Commit under a checkpoint, roll back, and verify the engine state
    /// matches a pre-commit snapshot field by field (bit-exact floats).
    #[test]
    fn rollback_restores_snapshot_state() {
        let mut b = GraphBuilder::new();
        let a = b.add_task(2.0);
        let c = b.add_task(2.0);
        let t = b.add_task(1.0);
        b.add_edge(a, t, 4.0);
        b.add_edge(c, t, 4.0);
        let g = b.build().unwrap();
        let p = Platform::homogeneous(3, 1.0, 1.0);
        let cfg = AlgoConfig::new(0, 20.0);
        let mut e = Engine::new(&g, &p, &cfg);
        let empty = PlanBuf::new();
        for (task, proc) in [(a, ProcId(0)), (c, ProcId(1))] {
            let pr = probe(&e, task, proc, &empty).unwrap();
            e.commit(task, 0, &pr, &empty);
        }
        let snapshot = e.state.clone();

        let mark = e.checkpoint();
        let plan = rfa_plan(&g, t, 1);
        let pr = probe(&e, t, ProcId(2), &plan).unwrap();
        e.commit(t, 0, &pr, &plan);
        let r = e.dense(t, 0);
        let mut dset = e.take_set();
        dset.insert(r);
        e.set_down(r, dset);
        e.register_upstream_host(r, 2);
        assert!(e.is_placed(t, 0));
        assert_ne!(e.state.ushost[r], snapshot.ushost[r]);

        e.rollback_to(mark);
        e.discard_journal();
        assert!(!e.is_placed(t, 0));
        assert_eq!(e.state.sigma, snapshot.sigma);
        assert_eq!(e.state.cin, snapshot.cin);
        assert_eq!(e.state.cout, snapshot.cout);
        assert_eq!(e.state.comm_events.len(), snapshot.comm_events.len());
        assert_eq!(e.state.max_stage, snapshot.max_stage);
        assert_eq!(e.state.ushost, snapshot.ushost);
        assert_eq!(e.state.allush, snapshot.allush);
        assert_eq!(e.state.down, snapshot.down);
        for u in 0..3 {
            assert_eq!(
                e.state.cpu.bucket(u).intervals(),
                snapshot.cpu.bucket(u).intervals()
            );
            assert_eq!(
                e.state.send.bucket(u).intervals(),
                snapshot.send.bucket(u).intervals()
            );
            assert_eq!(
                e.state.recv.bucket(u).intervals(),
                snapshot.recv.bucket(u).intervals()
            );
        }

        // The freed capacity is reusable: the same placement succeeds again.
        let pr2 = probe(&e, t, ProcId(2), &plan).unwrap();
        assert_eq!(pr2.start, pr.start);
        e.commit(t, 0, &pr2, &plan);
        assert!(e.is_placed(t, 0));
    }

    /// Two speculative attempts rolled back to the same mark leave the
    /// engine identical each time — and the displaced closure sets flow
    /// through the recycling pool instead of the allocator.
    #[test]
    fn double_rollback_to_same_mark() {
        let g = chain2();
        let p = Platform::homogeneous(2, 1.0, 1.0);
        let cfg = AlgoConfig::new(0, 10.0);
        let mut e = Engine::new(&g, &p, &cfg);
        let empty = PlanBuf::new();
        let pr = probe(&e, TaskId(0), ProcId(0), &empty).unwrap();
        e.commit(TaskId(0), 0, &pr, &empty);
        let snapshot = e.state.clone();

        let mark = e.checkpoint();
        let plan = rfa_plan(&g, TaskId(1), 1);
        for u in [ProcId(1), ProcId(0)] {
            let pr = probe(&e, TaskId(1), u, &plan).unwrap();
            e.commit(TaskId(1), 0, &pr, &plan);
            let r = e.dense(TaskId(1), 0);
            let mut dset = e.take_set();
            dset.insert(r);
            e.set_down(r, dset);
            e.rollback_to(mark);
            assert!(!e.is_placed(TaskId(1), 0));
            assert_eq!(e.state.sigma, snapshot.sigma);
            assert_eq!(e.state.comm_events.len(), snapshot.comm_events.len());
        }
        e.discard_journal();
        // Both rollbacks and the discard recycled their sets.
        assert!(!e.free_sets.is_empty());
    }

    /// Two tasks on distinct processors feed two consumers on two other
    /// distinct processors: every endpoint port is free, but on a chain
    /// the two messages share a middle link — the contended model
    /// serializes them, the uniform model does not.
    #[test]
    fn contended_shared_link_serializes() {
        let mut b = GraphBuilder::new();
        let a = b.add_task(2.0);
        let c = b.add_task(2.0);
        let x = b.add_task(1.0);
        let y = b.add_task(1.0);
        b.add_edge(a, x, 4.0);
        b.add_edge(c, y, 4.0);
        let g = b.build().unwrap();
        let cfg = AlgoConfig::new(0, 20.0);

        let run = |p: &Platform| {
            let mut e = Engine::new(&g, p, &cfg);
            let empty = PlanBuf::new();
            for (task, proc) in [(a, ProcId(0)), (c, ProcId(1))] {
                let pr = probe(&e, task, proc, &empty).unwrap();
                e.commit(task, 0, &pr, &empty);
            }
            let plan_x = rfa_plan(&g, x, 1);
            let pr = probe(&e, x, ProcId(2), &plan_x).unwrap();
            e.commit(x, 0, &pr, &plan_x);
            let plan_y = rfa_plan(&g, y, 1);
            probe(&e, y, ProcId(3), &plan_y).unwrap().start
        };

        // Uniform: message P1 → P3 starts at 2 (all ports free), y at 6.
        let uniform = Platform::homogeneous(4, 1.0, 1.0);
        assert_eq!(run(&uniform), 6.0);
        // Contended chain: both routes cross link P2 – P3, busy [2, 6)
        // from x's message, so y's message waits and y starts at 10.
        let contended = ltf_platform::Topology::chain(vec![1.0; 4], 1.0)
            .into_contended_platform()
            .unwrap();
        assert_eq!(run(&contended), 10.0);
    }

    /// Link capacity extends condition (1): traffic over one physical
    /// link must fit the period even when every endpoint port has room.
    #[test]
    fn contended_link_capacity_rejects() {
        let mut b = GraphBuilder::new();
        let a = b.add_task(1.0);
        let c = b.add_task(1.0);
        let x = b.add_task(1.0);
        let y = b.add_task(1.0);
        b.add_edge(a, x, 4.0);
        b.add_edge(c, y, 4.0);
        let g = b.build().unwrap();
        // Period 7: each endpoint port carries 4 ≤ 7, but the shared
        // middle link would carry 8 > 7.
        let cfg = AlgoConfig::new(0, 7.0);
        let contended = ltf_platform::Topology::chain(vec![1.0; 4], 1.0)
            .into_contended_platform()
            .unwrap();
        let uniform = Platform::homogeneous(4, 1.0, 1.0);

        let run = |p: &Platform| {
            let mut e = Engine::new(&g, p, &cfg);
            let empty = PlanBuf::new();
            for (task, proc) in [(a, ProcId(0)), (c, ProcId(1))] {
                let pr = probe(&e, task, proc, &empty).unwrap();
                e.commit(task, 0, &pr, &empty);
            }
            let plan_x = rfa_plan(&g, x, 1);
            let pr = probe(&e, x, ProcId(2), &plan_x).unwrap();
            e.commit(x, 0, &pr, &plan_x);
            probe(&e, y, ProcId(3), &rfa_plan(&g, y, 1)).is_some()
        };
        assert!(run(&uniform));
        assert!(!run(&contended));
    }

    /// Probe-level monotonicity: with identical committed state, the
    /// contended model never places a message (hence a replica) earlier
    /// than the uniform model — extra timelines only delay the fit.
    #[test]
    fn contended_probe_never_beats_uniform() {
        let mut b = GraphBuilder::new();
        let a = b.add_task(2.0);
        let c = b.add_task(3.0);
        let t = b.add_task(1.0);
        b.add_edge(a, t, 2.0);
        b.add_edge(c, t, 5.0);
        let g = b.build().unwrap();
        let cfg = AlgoConfig::new(0, 50.0);
        let uniform = Platform::homogeneous(5, 1.0, 1.0);
        let contended = ltf_platform::Topology::star(vec![1.0; 5], 1.0)
            .into_contended_platform()
            .unwrap();
        for (pa, pc) in [(1, 2), (1, 1), (0, 3), (4, 2)] {
            let place = |p: &Platform| {
                let mut e = Engine::new(&g, p, &cfg);
                let empty = PlanBuf::new();
                let pr = probe(&e, a, ProcId(pa), &empty).unwrap();
                e.commit(a, 0, &pr, &empty);
                let pr = probe(&e, c, ProcId(pc), &empty).unwrap();
                e.commit(c, 0, &pr, &empty);
                let plan = rfa_plan(&g, t, 1);
                probe(&e, t, ProcId(3), &plan).map(|pr| pr.start)
            };
            let (u, k) = (place(&uniform), place(&contended));
            let (u, k) = (u.unwrap(), k.unwrap());
            assert!(k >= u, "contended start {k} beats uniform {u}");
        }
    }

    /// Rollback restores link timelines and loads bit-exactly on a
    /// contended platform.
    #[test]
    fn contended_rollback_restores_link_state() {
        let mut b = GraphBuilder::new();
        let a = b.add_task(2.0);
        let t = b.add_task(1.0);
        b.add_edge(a, t, 3.0);
        let g = b.build().unwrap();
        let p = ltf_platform::Topology::chain(vec![1.0; 3], 1.0)
            .into_contended_platform()
            .unwrap();
        let cfg = AlgoConfig::new(0, 20.0);
        let mut e = Engine::new(&g, &p, &cfg);
        let empty = PlanBuf::new();
        let pr = probe(&e, a, ProcId(0), &empty).unwrap();
        e.commit(a, 0, &pr, &empty);
        let snapshot = e.state.clone();

        let mark = e.checkpoint();
        let plan = rfa_plan(&g, t, 1);
        // P1 → P3 crosses both chain links.
        let pr = probe(&e, t, ProcId(2), &plan).unwrap();
        e.commit(t, 0, &pr, &plan);
        assert_eq!(e.state.lload, vec![3.0, 3.0]);
        assert_eq!(e.state.link.bucket(0).len(), 1);

        e.rollback_to(mark);
        e.discard_journal();
        assert_eq!(e.state.lload, snapshot.lload);
        for l in 0..2 {
            assert_eq!(
                e.state.link.bucket(l).intervals(),
                snapshot.link.bucket(l).intervals()
            );
        }
        // The freed link capacity is reusable bit-for-bit.
        let pr2 = probe(&e, t, ProcId(2), &plan).unwrap();
        assert_eq!(pr2.start, pr.start);
        e.commit(t, 0, &pr2, &plan);
        assert_eq!(e.state.lload, vec![3.0, 3.0]);
    }

    /// The lazily-grown replica set equals its eagerly-sized twin, and
    /// clearing keeps capacity.
    #[test]
    fn replica_set_grows_and_compares() {
        let mut lazy = ReplicaSet::default();
        let mut sized = ReplicaSet::default();
        sized.insert(200);
        sized.clear();
        assert_eq!(lazy, sized); // both empty, different word lengths
        lazy.insert(130);
        assert_ne!(lazy, sized);
        sized.insert(130);
        assert_eq!(lazy, sized);
        let mut other = ReplicaSet::default();
        other.insert(5);
        lazy.union_with(&other);
        assert_eq!(lazy.iter().collect::<Vec<_>>(), vec![5, 130]);
    }

    /// Reverse-mode bookkeeping: commits push transposed forward sources,
    /// rollback pops them exactly.
    #[test]
    fn reverse_mode_maintains_fwd_sources() {
        // G: 0 -> 1 (edge 0). Reverse-mode engine schedules Ĝ: 1 -> 0.
        let g = chain2();
        let rev = g.reversed();
        // edge_slot[e] = position of e in G.pred_edges(dst(e)).
        let edge_slot = vec![0u32];
        let p = Platform::homogeneous(2, 1.0, 1.0);
        let cfg = AlgoConfig::new(0, 20.0);
        let mut e = Engine::new_reversed(&rev, &g, &edge_slot, &p, &cfg);

        // Place task 1 (entry of Ĝ), then task 0 receiving from it.
        let empty = PlanBuf::new();
        let pr = probe(&e, TaskId(1), ProcId(0), &empty).unwrap();
        e.commit(TaskId(1), 0, &pr, &empty);

        let plan = rfa_plan(&rev, TaskId(0), 1);
        let mark = e.checkpoint();
        let pr = probe(&e, TaskId(0), ProcId(1), &plan).unwrap();
        e.commit(TaskId(0), 0, &pr, &plan);
        {
            let fwd = &e.rev.as_ref().unwrap().fwd_sources;
            // Forward: replica (1, 0) is fed on edge 0 by copy 0 of task 0.
            let tgt = ReplicaId::new(TaskId(1), 0).dense(1);
            assert_eq!(fwd[tgt].len(), 1);
            assert_eq!(fwd[tgt][0].edge, EdgeId(0));
            assert_eq!(fwd[tgt][0].sources, vec![0]);
        }
        e.rollback_to(mark);
        {
            let fwd = &e.rev.as_ref().unwrap().fwd_sources;
            let tgt = ReplicaId::new(TaskId(1), 0).dense(1);
            assert!(fwd[tgt][0].sources.is_empty());
        }
        e.discard_journal();

        let pr = probe(&e, TaskId(0), ProcId(1), &plan).unwrap();
        e.commit(TaskId(0), 0, &pr, &plan);
        let fwd = e.take_fwd_sources();
        let tgt = ReplicaId::new(TaskId(1), 0).dense(1);
        assert_eq!(fwd[tgt][0].sources, vec![0]);
    }
}
