//! Differential tests of the parallel Pareto enumeration: for every
//! thread count, the parallel front must be **bit-identical** to the
//! serial front — same points, same order, same witness schedules — on
//! the worked examples and on random layered instances. This is the
//! contract that makes `ParetoOptions::threads` a pure wall-clock knob.

use ltf_core::search::pareto::{pareto_front, pareto_front_all, ParetoOptions, ParetoPoint};
use ltf_core::{Rltf, Solver};
use ltf_graph::generate::{fig1_diamond, fig2_workflow_variant, layered, LayeredConfig};
use ltf_graph::TaskGraph;
use ltf_platform::Platform;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_instance(seed: u64) -> (TaskGraph, Platform) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = layered(
        &LayeredConfig {
            tasks: 16,
            exec_range: (0.5, 2.0),
            volume_range: (0.2, 1.0),
            ..Default::default()
        },
        &mut rng,
    );
    (g, Platform::homogeneous(6, 1.0, 0.1))
}

/// Bit-identical comparison through the serialized representation: the
/// JSON rendering covers the objectives, the heuristic label, the
/// platform prefix and the entire witness solution (schedule assignments
/// included), so any divergence — even one placement in one witness —
/// fails loudly.
fn assert_identical(serial: &[ParetoPoint], parallel: &[ParetoPoint], label: &str) {
    assert_eq!(serial.len(), parallel.len(), "{label}: front sizes differ");
    for (i, (a, b)) in serial.iter().zip(parallel).enumerate() {
        let sa = serde_json::to_string(a).unwrap();
        let sb = serde_json::to_string(b).unwrap();
        assert_eq!(sa, sb, "{label}: point {i} differs");
    }
}

#[test]
fn worked_examples_parallel_equals_serial() {
    for (name, g, p) in [
        ("fig1", fig1_diamond(), Platform::fig1_platform()),
        (
            "fig2-variant",
            fig2_workflow_variant(),
            Platform::homogeneous(8, 1.0, 1.0),
        ),
    ] {
        let serial = pareto_front(&g, &p, &Rltf, &ParetoOptions::default());
        for threads in [0, 2, 3, 8] {
            let par = pareto_front(&g, &p, &Rltf, &ParetoOptions::with_threads(threads));
            assert_identical(&serial, &par, &format!("{name} threads={threads}"));
        }
    }
}

#[test]
fn random_instances_parallel_equals_serial() {
    for seed in [1u64, 7, 42] {
        let (g, p) = random_instance(seed);
        let serial = pareto_front(&g, &p, &Rltf, &ParetoOptions::default());
        let par = pareto_front(&g, &p, &Rltf, &ParetoOptions::with_threads(8));
        assert_identical(&serial, &par, &format!("seed={seed} threads=8"));
    }
}

#[test]
fn cross_heuristic_merge_parallel_equals_serial() {
    let g = fig1_diamond();
    let p = Platform::fig1_platform();
    let solver = Solver::builtin(&g, &p);
    let serial = pareto_front_all(&solver, &ParetoOptions::default());
    for threads in [2, 8] {
        let par = pareto_front_all(&solver, &ParetoOptions::with_threads(threads));
        assert_identical(&serial, &par, &format!("merge threads={threads}"));
    }
}

#[test]
fn budget_variants_parallel_equals_serial() {
    let (g, p) = random_instance(3);
    for opts in [
        ParetoOptions::with_latency_cap(40.0),
        ParetoOptions::with_proc_budget(3),
        ParetoOptions {
            max_epsilon: Some(1),
            relax_steps: 5,
            ..Default::default()
        },
    ] {
        let serial = pareto_front(&g, &p, &Rltf, &opts);
        let par = pareto_front(
            &g,
            &p,
            &Rltf,
            &ParetoOptions {
                threads: 8,
                ..opts.clone()
            },
        );
        assert_identical(&serial, &par, "budget variant");
    }
}
