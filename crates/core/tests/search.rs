//! Tests for the objective-space searches (the conclusion's "symmetric
//! problems").

use ltf_core::search::{max_epsilon, min_period, min_processors, SearchOptions};
use ltf_core::{AlgoConfig, Heuristic, PreparedInstance, Rltf, ScheduleError};
use ltf_graph::generate::{fork_join, layered, pipeline, LayeredConfig};
use ltf_platform::Platform;
use ltf_schedule::{validate, Schedule};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn min_period_chain_no_replication() {
    // 6 tasks of exec 2 on 3 unit-speed processors: the aggregate-work
    // lower bound is 12/3 = 4; the heuristic should get close.
    let g = pipeline(6, 2.0, 0.1);
    let p = Platform::homogeneous(3, 1.0, 0.1);
    let opts = SearchOptions::default();
    let (period, sched) = min_period(&g, &p, &Rltf, &opts).expect("feasible");
    assert!(period >= 4.0 - 1e-9, "below the work bound: {period}");
    assert!(period <= 8.0, "far from the work bound: {period}");
    assert!(sched.achieved_throughput() + 1e-9 >= 1.0 / period);
}

#[test]
fn min_period_result_is_schedulable_and_tight() {
    let mut rng = StdRng::seed_from_u64(4);
    let g = layered(
        &LayeredConfig {
            tasks: 20,
            exec_range: (0.5, 2.0),
            volume_range: (0.5, 2.0),
            ..Default::default()
        },
        &mut rng,
    );
    let p = Platform::homogeneous(6, 1.0, 0.1);
    let opts = SearchOptions {
        epsilon: 1,
        seed: 3,
        ..Default::default()
    };
    let (period, sched) = min_period(&g, &p, &Rltf, &opts).expect("feasible");
    validate(&g, &p, &sched).expect("valid witness");
    // Tightness: 2% below the found period must be infeasible (the search
    // bisected to convergence).
    let cfg = AlgoConfig::new(1, period * 0.98).seeded(3);
    assert!(
        Rltf.schedule(&PreparedInstance::new(&g, &p), &cfg).is_err(),
        "period not tight"
    );
}

#[test]
fn min_period_latency_budget_respected() {
    let g = fork_join(4, 2.0, 1.0);
    let p = Platform::homogeneous(6, 1.0, 0.1);
    let unconstrained = SearchOptions {
        epsilon: 1,
        ..Default::default()
    };
    let (base_period, base) = min_period(&g, &p, &Rltf, &unconstrained).expect("feasible");
    let budget = base.latency_upper_bound() * 0.75;
    let constrained = SearchOptions {
        max_latency: Some(budget),
        ..unconstrained
    };
    if let Some((period, sched)) = min_period(&g, &p, &Rltf, &constrained) {
        assert!(sched.latency_upper_bound() <= budget + 1e-9);
        assert!(
            period + 1e-9 >= base_period,
            "budget cannot speed things up"
        );
    }
}

#[test]
fn max_epsilon_monotone_wrt_period() {
    let g = pipeline(5, 1.0, 0.2);
    let p = Platform::homogeneous(8, 1.0, 0.1);
    let tight = max_epsilon(&g, &p, &Rltf, 2.0, None, 1).map(|(e, _)| e);
    let loose = max_epsilon(&g, &p, &Rltf, 20.0, None, 1).map(|(e, _)| e);
    let (tight, loose) = (tight.unwrap_or(0), loose.expect("loose period feasible"));
    assert!(loose >= tight, "looser period supports no fewer failures");
    // With 8 processors, ε can never exceed 7.
    assert!(loose <= 7);
    // A generous period on 8 processors should tolerate several failures.
    assert!(loose >= 3, "expected ≥3 supported failures, got {loose}");
}

#[test]
fn max_epsilon_witness_tolerates_its_degree() {
    let g = pipeline(4, 1.0, 0.1);
    let p = Platform::homogeneous(6, 1.0, 0.05);
    let (eps, sched) = max_epsilon(&g, &p, &Rltf, 30.0, None, 2).expect("feasible");
    assert!(eps >= 1);
    assert!(ltf_schedule::failures::tolerates_all_crashes(
        &g,
        &sched,
        6,
        (eps as usize).min(2) // keep the enumeration bounded
    ));
}

/// Feasible only at even ε (delegating to R-LTF there): models heuristics
/// whose feasibility is not monotone in ε, like the data-parallel
/// baseline's replica-group projection.
struct EvenEpsOnly;

impl Heuristic for EvenEpsOnly {
    fn name(&self) -> &'static str {
        "even-eps-only"
    }
    // `% 2` rather than `u8::is_multiple_of` (1.87+): the toolchain pin
    // promises the workspace builds on much older stables.
    #[allow(clippy::manual_is_multiple_of)]
    fn schedule(
        &self,
        inst: &PreparedInstance<'_>,
        cfg: &AlgoConfig,
    ) -> Result<Schedule, ScheduleError> {
        if cfg.epsilon % 2 != 0 {
            return Err(ScheduleError::Unsupported("odd ε".into()));
        }
        Rltf.schedule(inst, cfg)
    }
}

#[test]
fn max_epsilon_scans_past_infeasible_degrees() {
    // ε = 1 fails for EvenEpsOnly, but ε = 2 succeeds: stopping at the
    // first failure (the old behaviour) would report ε = 0.
    let g = pipeline(4, 1.0, 0.1);
    let p = Platform::homogeneous(6, 1.0, 0.05);
    let (eps, sched) = max_epsilon(&g, &p, &EvenEpsOnly, 30.0, None, 2).expect("ε = 0 feasible");
    assert!(
        eps >= 2,
        "scan stopped at the first infeasible ε: got {eps}"
    );
    assert_eq!(eps % 2, 0);
    assert_eq!(sched.epsilon(), eps);
    // Same instance through R-LTF reaches at least as far.
    let (eps_rltf, _) = max_epsilon(&g, &p, &Rltf, 30.0, None, 2).expect("feasible");
    assert!(eps_rltf >= eps);
}

#[test]
fn min_period_unschedulable_returns_none_without_overflow() {
    // A latency budget no period can meet: the exponential bracketing
    // would double `hi` to +inf (execution times near f64::MAX overflow
    // after one doubling) and used to probe the heuristic with a
    // non-finite period. It must give up cleanly instead.
    let g = pipeline(3, 1e308, 0.0);
    let p = Platform::homogeneous(3, 1.0, 0.1);
    let opts = SearchOptions {
        max_latency: Some(1.0),
        ..Default::default()
    };
    assert!(min_period(&g, &p, &Rltf, &opts).is_none());
}

#[test]
fn min_processors_prefix_works_and_is_minimal_at_probe_points() {
    let g = pipeline(6, 2.0, 0.1);
    let p = Platform::homogeneous(8, 1.0, 0.1);
    // Period 4 forces ≥ 12/4 = 3 processors (ε = 0).
    let (m, sched) = min_processors(&g, &p, &Rltf, 0, 4.0, 1).expect("feasible");
    assert!(m >= 3, "below the aggregate-work bound");
    assert!(m <= 8);
    assert!(sched.procs_used() <= m);
    // The witness really lives on the prefix.
    for r in sched.replicas() {
        assert!(sched.proc(r).index() < m);
    }
}

#[test]
fn min_processors_accounts_for_replication() {
    let g = pipeline(3, 1.0, 0.1);
    let p = Platform::homogeneous(8, 1.0, 0.05);
    let (m0, _) = min_processors(&g, &p, &Rltf, 0, 10.0, 1).expect("ε=0");
    let (m2, _) = min_processors(&g, &p, &Rltf, 2, 10.0, 1).expect("ε=2");
    assert!(m2 >= 3, "ε = 2 needs at least 3 processors");
    assert!(m2 >= m0);
}
