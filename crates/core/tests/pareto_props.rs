//! Properties of the Pareto-front enumerator: every returned point is
//! non-dominated within its front, its witness schedule passes the full
//! structural validation on the platform prefix it was computed for, and
//! the budget-constrained variants only ever shrink the reachable set.

use ltf_core::search::pareto::{pareto_front, pareto_front_all, ParetoOptions};
use ltf_core::{Ltf, Rltf, Solver};
use ltf_graph::generate::{fig1_diamond, fig2_workflow_variant, layered, LayeredConfig};
use ltf_graph::TaskGraph;
use ltf_platform::Platform;
use ltf_schedule::validate;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_instance(seed: u64) -> (TaskGraph, Platform) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = layered(
        &LayeredConfig {
            tasks: 14,
            exec_range: (0.5, 2.0),
            volume_range: (0.2, 1.0),
            ..Default::default()
        },
        &mut rng,
    );
    (g, Platform::homogeneous(5, 1.0, 0.1))
}

fn assert_front_invariants(g: &TaskGraph, p: &Platform, opts: &ParetoOptions, label: &str) {
    let front = pareto_front(g, p, &Rltf, opts);
    assert!(!front.is_empty(), "{label}: empty front");
    for (i, a) in front.iter().enumerate() {
        // Witness validates on the platform prefix it was scheduled on.
        assert!(a.platform_procs <= p.num_procs());
        assert!(a.objectives.procs <= a.platform_procs);
        let prefix = p.prefix(a.platform_procs);
        if let Err(viol) = validate(g, &prefix, &a.solution.schedule) {
            panic!("{label}: witness of {a} invalid: {:?}", viol);
        }
        // Objectives are read off the witness, not invented.
        assert_eq!(a.objectives.latency, a.solution.metrics.latency_upper_bound);
        assert_eq!(a.objectives.period, a.solution.metrics.period);
        assert_eq!(a.objectives.epsilon, a.solution.metrics.epsilon);
        assert_eq!(a.objectives.procs, a.solution.metrics.procs_used);
        // Non-domination, pairwise.
        for (j, b) in front.iter().enumerate() {
            if i != j {
                assert!(
                    !a.objectives.dominates(&b.objectives),
                    "{label}: {a} dominates {b}"
                );
                assert!(a.objectives != b.objectives, "{label}: duplicate {a}");
            }
        }
        // Budgets hold pointwise.
        if let Some(cap) = opts.max_latency {
            assert!(a.objectives.latency <= cap + 1e-9, "{label}: over budget");
        }
        if let Some(budget) = opts.max_procs {
            assert!(a.platform_procs <= budget, "{label}: over proc budget");
        }
        if let Some(cap) = opts.max_epsilon {
            assert!(a.objectives.epsilon <= cap, "{label}: over ε cap");
        }
    }
}

#[test]
fn worked_examples_fronts_hold_invariants() {
    let opts = ParetoOptions::default();
    assert_front_invariants(&fig1_diamond(), &Platform::fig1_platform(), &opts, "fig1");
    assert_front_invariants(
        &fig2_workflow_variant(),
        &Platform::homogeneous(8, 1.0, 1.0),
        &opts,
        "fig2-variant",
    );
}

#[test]
fn random_instances_fronts_hold_invariants() {
    for seed in 0..6u64 {
        let (g, p) = random_instance(seed);
        assert_front_invariants(&g, &p, &ParetoOptions::default(), &format!("seed {seed}"));
    }
}

#[test]
fn budget_variants_hold_invariants() {
    let (g, p) = random_instance(11);
    assert_front_invariants(&g, &p, &ParetoOptions::with_proc_budget(3), "proc budget");
    let full = pareto_front(&g, &p, &Rltf, &ParetoOptions::default());
    let max_l = full
        .iter()
        .map(|pt| pt.objectives.latency)
        .fold(f64::NEG_INFINITY, f64::max);
    assert_front_invariants(
        &g,
        &p,
        &ParetoOptions::with_latency_cap(max_l * 0.6),
        "latency cap",
    );
    let eps_capped = ParetoOptions {
        max_epsilon: Some(1),
        ..Default::default()
    };
    assert_front_invariants(&g, &p, &eps_capped, "ε cap");
}

#[test]
fn budgets_only_shrink_the_reachable_set() {
    // Every point of a budget-constrained front is matched or dominated
    // by a point of the unconstrained front: budgets filter, they cannot
    // create otherwise-unreachable quality.
    let (g, p) = random_instance(3);
    let full = pareto_front(&g, &p, &Rltf, &ParetoOptions::default());
    for opts in [
        ParetoOptions::with_proc_budget(3),
        ParetoOptions::with_latency_cap(60.0),
    ] {
        for pt in pareto_front(&g, &p, &Rltf, &opts) {
            assert!(
                full.iter().any(
                    |f| f.objectives == pt.objectives || f.objectives.dominates(&pt.objectives)
                ),
                "budget front reached {pt} beyond the unconstrained front"
            );
        }
    }
}

#[test]
fn cross_heuristic_front_validates_and_improves_on_members() {
    let g = fig2_workflow_variant();
    let p = Platform::homogeneous(8, 1.0, 1.0);
    let solver = Solver::builtin(&g, &p);
    let opts = ParetoOptions::default();
    let merged = pareto_front_all(&solver, &opts);
    assert!(!merged.is_empty());
    for pt in &merged {
        let prefix = p.prefix(pt.platform_procs);
        assert!(validate(&g, &prefix, &pt.solution.schedule).is_ok(), "{pt}");
    }
    // Each member heuristic's front is covered by the merge.
    for h_front in [
        pareto_front(&g, &p, &Rltf, &opts),
        pareto_front(&g, &p, &Ltf, &opts),
    ] {
        for pt in h_front {
            assert!(merged
                .iter()
                .any(|m| m.objectives == pt.objectives || m.objectives.dominates(&pt.objectives)));
        }
    }
}
