//! Property-based tests on the scheduling algorithms: every schedule the
//! heuristics emit must be structurally valid, respect the throughput
//! constraint, stay within communication budgets, and honour the
//! ε-crash guarantee.

use ltf_core::{AlgoConfig, AlgoKind, PreparedInstance};
use ltf_graph::generate::{layered, series_parallel, LayeredConfig, SeriesParallelConfig};
use ltf_graph::TaskGraph;
use ltf_platform::{HeterogeneousConfig, Platform};
use ltf_schedule::{failures, validate};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Debug, Clone)]
struct Case {
    graph: TaskGraph,
    platform: Platform,
    epsilon: u8,
    period: f64,
    seed: u64,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (
        6usize..28,    // tasks
        4usize..12,    // processors
        0u8..3,        // epsilon
        any::<u64>(),  // seed
        any::<bool>(), // graph family
        1.0f64..3.0,   // period slack multiplier
    )
        .prop_map(|(v, m, epsilon, seed, sp, slack)| {
            let mut rng = StdRng::seed_from_u64(seed);
            let graph = if sp {
                series_parallel(
                    &SeriesParallelConfig {
                        tasks: v.max(2),
                        exec_range: (0.5, 2.0),
                        volume_range: (0.5, 2.0),
                        ..Default::default()
                    },
                    &mut rng,
                )
            } else {
                layered(
                    &LayeredConfig {
                        tasks: v,
                        exec_range: (0.5, 2.0),
                        volume_range: (0.5, 2.0),
                        ..Default::default()
                    },
                    &mut rng,
                )
            };
            let platform = HeterogeneousConfig {
                procs: m,
                speed_range: (0.5, 1.0),
                delay_range: (0.05, 0.2),
                symmetric: true,
            }
            .build(&mut rng);
            // Period sized from the replicated work so most cases are
            // feasible without being trivial.
            let nrep = epsilon as f64 + 1.0;
            let base =
                nrep * graph.total_exec() * platform.mean_inv_speed() / platform.num_procs() as f64;
            let per_task = graph
                .tasks()
                .map(|t| graph.exec(t) / platform.max_speed())
                .fold(0.0f64, f64::max);
            let period = (base * 2.0 * slack).max(per_task * 1.5);
            Case {
                graph,
                platform,
                epsilon: epsilon.min((m - 1) as u8),
                period,
                seed,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_emitted_schedule_is_valid(case in arb_case()) {
        for kind in [AlgoKind::Ltf, AlgoKind::Rltf] {
            let cfg = AlgoConfig::new(case.epsilon, case.period).seeded(case.seed);
            let Ok(s) = kind.heuristic().schedule(&PreparedInstance::new(&case.graph, &case.platform), &cfg) else {
                continue;
            };
            if let Err(v) = validate(&case.graph, &case.platform, &s) {
                prop_assert!(false, "{kind} produced invalid schedule: {v:?}");
            }
            prop_assert!(s.achieved_throughput() + 1e-9 >= 1.0 / case.period);
            // Hard communication bound: (ε+1)² per edge.
            let nrep = case.epsilon as usize + 1;
            prop_assert!(
                s.comm_count() <= case.graph.num_edges() * nrep * nrep
            );
            prop_assert!(s.num_stages() >= 1);
        }
    }

    #[test]
    fn epsilon_guarantee_holds_exhaustively(case in arb_case()) {
        // Bounded cost: only check ε ≤ 2 exhaustively.
        let eps = case.epsilon.min(2);
        for kind in [AlgoKind::Ltf, AlgoKind::Rltf] {
            let cfg = AlgoConfig::new(eps, case.period).seeded(case.seed);
            let Ok(s) = kind.heuristic().schedule(&PreparedInstance::new(&case.graph, &case.platform), &cfg) else {
                continue;
            };
            prop_assert!(
                failures::tolerates_all_crashes(
                    &case.graph,
                    &s,
                    case.platform.num_procs(),
                    eps as usize
                ),
                "{kind} schedule loses an output under some {eps}-crash set"
            );
        }
    }

    #[test]
    fn determinism(case in arb_case()) {
        for kind in [AlgoKind::Ltf, AlgoKind::Rltf] {
            let cfg = AlgoConfig::new(case.epsilon, case.period).seeded(case.seed);
            let a = kind.heuristic().schedule(&PreparedInstance::new(&case.graph, &case.platform), &cfg);
            let b = kind.heuristic().schedule(&PreparedInstance::new(&case.graph, &case.platform), &cfg);
            match (a, b) {
                (Ok(x), Ok(y)) => {
                    prop_assert_eq!(x.num_stages(), y.num_stages());
                    prop_assert_eq!(x.comm_count(), y.comm_count());
                    for r in x.replicas() {
                        prop_assert_eq!(x.proc(r), y.proc(r));
                    }
                }
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "feasibility differed across runs"),
            }
        }
    }

    #[test]
    fn more_replication_never_free(case in arb_case()) {
        // ε+1 copies at least match the ε = 0 schedule's stage count is NOT
        // guaranteed in general, but the latency bound must stay finite and
        // the copies distinct; check resource accounting consistency.
        let cfg = AlgoConfig::new(case.epsilon, case.period).seeded(case.seed);
        let Ok(s) = AlgoKind::Rltf.heuristic().schedule(&PreparedInstance::new(&case.graph, &case.platform), &cfg) else {
            return Ok(());
        };
        let mut total_exec = 0.0f64;
        for u in case.platform.procs() {
            total_exec += s.sigma(u) ;
        }
        // Σ over processors of compute time = Σ over replicas exec/s.
        let mut expect = 0.0;
        for r in s.replicas() {
            expect += case.platform.exec_time(case.graph.exec(r.task), s.proc(r));
        }
        prop_assert!((total_exec - expect).abs() < 1e-6 * (1.0 + expect));
    }
}
