//! Exploratory smoke tests: run both heuristics on the paper's example
//! graphs and on random workloads, validate the schedules structurally,
//! and check the headline claims.

use ltf_core::{AlgoConfig, FaultFree, Heuristic, Ltf, PreparedInstance, Rltf};
use ltf_graph::generate::{fig2_workflow, fig2_workflow_variant, layered, LayeredConfig};
use ltf_platform::Platform;
use ltf_schedule::{failures, validate, CrashSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn fig2_variant_rltf_three_stages_on_8_procs() {
    let g = fig2_workflow_variant();
    let p = Platform::homogeneous(8, 1.0, 1.0);
    let cfg = AlgoConfig::with_throughput(1, 0.05);
    let s = Rltf
        .schedule(&PreparedInstance::new(&g, &p), &cfg)
        .expect("R-LTF schedules the variant on 8 procs");
    validate(&g, &p, &s)
        .unwrap_or_else(|v| panic!("invalid R-LTF schedule: {:?}\n{}", v, s.describe(&g, &p)));
    eprintln!("R-LTF fig2-variant m=8:\n{}", s.describe(&g, &p));
    assert!(
        s.num_stages() <= 3,
        "expected ≤3 stages, got {}\n{}",
        s.num_stages(),
        s.describe(&g, &p)
    );
    assert!(s.latency_upper_bound() <= 100.0 + 1e-9);
}

#[test]
fn fig2_original_behaviour() {
    let g = fig2_workflow();
    let p8 = Platform::homogeneous(8, 1.0, 1.0);
    let p10 = Platform::homogeneous(10, 1.0, 1.0);
    let cfg = AlgoConfig::with_throughput(1, 0.05);

    match Ltf.schedule(&PreparedInstance::new(&g, &p8), &cfg) {
        Ok(s) => eprintln!(
            "LTF fig2 m=8 SUCCEEDED: S={} L={}\n{}",
            s.num_stages(),
            s.latency_upper_bound(),
            s.describe(&g, &p8)
        ),
        Err(e) => eprintln!("LTF fig2 m=8 failed as in the paper: {e}"),
    }
    match Ltf.schedule(&PreparedInstance::new(&g, &p10), &cfg) {
        Ok(s) => {
            validate(&g, &p10, &s).expect("valid LTF schedule");
            eprintln!(
                "LTF fig2 m=10: S={} L={}\n{}",
                s.num_stages(),
                s.latency_upper_bound(),
                s.describe(&g, &p10)
            );
        }
        Err(e) => panic!("LTF should schedule fig2 with 10 procs: {e}"),
    }
    match Rltf.schedule(&PreparedInstance::new(&g, &p8), &cfg) {
        Ok(s) => {
            validate(&g, &p8, &s).expect("valid R-LTF schedule");
            eprintln!(
                "R-LTF fig2 m=8: S={} L={}\n{}",
                s.num_stages(),
                s.latency_upper_bound(),
                s.describe(&g, &p8)
            );
        }
        Err(e) => eprintln!("R-LTF fig2 m=8 failed: {e}"),
    }
}

#[test]
fn random_workloads_validate_and_tolerate_crashes() {
    let mut rng = StdRng::seed_from_u64(42);
    let p = Platform::homogeneous(12, 1.0, 0.02);
    for seed in 0..5u64 {
        let gcfg = LayeredConfig {
            tasks: 30,
            exec_range: (1.0, 3.0),
            volume_range: (10.0, 30.0),
            ..Default::default()
        };
        let g = layered(&gcfg, &mut rng);
        let period = 12.0;
        let cfg = AlgoConfig::new(1, period).seeded(seed);

        for (name, res) in [
            ("LTF", Ltf.schedule(&PreparedInstance::new(&g, &p), &cfg)),
            ("R-LTF", Rltf.schedule(&PreparedInstance::new(&g, &p), &cfg)),
        ] {
            let s = match res {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{name} seed {seed}: infeasible ({e})");
                    continue;
                }
            };
            validate(&g, &p, &s).unwrap_or_else(|v| {
                panic!("{name} seed {seed} invalid: {v:?}");
            });
            // Every single crash must be survivable (ε = 1).
            assert!(
                failures::tolerates_all_crashes(&g, &s, p.num_procs(), 1),
                "{name} seed {seed} not 1-crash tolerant"
            );
            let l0 = failures::effective_latency(&g, &s, &CrashSet::empty(12)).unwrap();
            assert!(l0 <= s.latency_upper_bound() + 1e-9);
            eprintln!(
                "{name} seed {seed}: S={} L_ub={} L_0={} comms={}",
                s.num_stages(),
                s.latency_upper_bound(),
                l0,
                s.comm_count()
            );
        }
    }
}

#[test]
fn fault_free_reference_has_no_replication() {
    let mut rng = StdRng::seed_from_u64(7);
    let gcfg = LayeredConfig {
        tasks: 20,
        exec_range: (1.0, 2.0),
        volume_range: (5.0, 10.0),
        ..Default::default()
    };
    let g = layered(&gcfg, &mut rng);
    let p = Platform::homogeneous(8, 1.0, 0.05);
    let cfg = AlgoConfig::new(0, 8.0).seeded(1);
    let s = FaultFree
        .schedule(&PreparedInstance::new(&g, &p), &cfg)
        .expect("FF schedules");
    validate(&g, &p, &s).expect("valid FF schedule");
    assert_eq!(s.replicas_per_task(), 1);
    assert_eq!(s.epsilon(), 0);
}
