//! Behavioural tests for the algorithm configuration knobs.

use ltf_core::{AlgoConfig, AlgoKind, Heuristic, Ltf, PreparedInstance, Rltf};
use ltf_graph::generate::{layered, pipeline, LayeredConfig};
use ltf_platform::Platform;
use ltf_schedule::{failures, validate};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload() -> (ltf_graph::TaskGraph, Platform) {
    let mut rng = StdRng::seed_from_u64(77);
    let g = layered(
        &LayeredConfig {
            tasks: 24,
            exec_range: (0.5, 1.5),
            volume_range: (0.5, 1.5),
            ..Default::default()
        },
        &mut rng,
    );
    (g, Platform::homogeneous(10, 1.0, 0.1))
}

#[test]
fn disabling_one_to_one_multiplies_messages() {
    let (g, p) = workload();
    let base = AlgoConfig::new(1, 25.0).seeded(1);
    let mut rfa = base.clone();
    rfa.use_one_to_one = false;
    let with = Ltf
        .schedule(&PreparedInstance::new(&g, &p), &base)
        .expect("one-to-one feasible");
    let without = Ltf
        .schedule(&PreparedInstance::new(&g, &p), &rfa)
        .expect("rfa feasible at this load");
    validate(&g, &p, &without).expect("valid");
    assert!(
        without.comm_count() > with.comm_count(),
        "receive-from-all must cost more messages ({} vs {})",
        without.comm_count(),
        with.comm_count()
    );
    // And it still honours the crash guarantee.
    assert!(failures::tolerates_all_crashes(&g, &without, 10, 1));
}

#[test]
fn disabling_cluster_ties_costs_stages() {
    let (g, p) = workload();
    let base = AlgoConfig::new(1, 25.0).seeded(1);
    let mut scatter = base.clone();
    scatter.cluster_ties = false;
    let clustered = Rltf
        .schedule(&PreparedInstance::new(&g, &p), &base)
        .expect("feasible");
    let scattered = Rltf
        .schedule(&PreparedInstance::new(&g, &p), &scatter)
        .expect("feasible");
    validate(&g, &p, &scattered).expect("valid");
    assert!(
        clustered.num_stages() <= scattered.num_stages(),
        "clustering should never yield more stages ({} vs {})",
        clustered.num_stages(),
        scattered.num_stages()
    );
    assert!(failures::tolerates_all_crashes(&g, &scattered, 10, 1));
}

#[test]
fn disabling_rule1_never_improves_stage_count() {
    let (g, p) = workload();
    let base = AlgoConfig::new(1, 25.0).seeded(1);
    let mut no_r1 = base.clone();
    no_r1.rule1 = false;
    let with = Rltf
        .schedule(&PreparedInstance::new(&g, &p), &base)
        .expect("feasible");
    let without = Rltf
        .schedule(&PreparedInstance::new(&g, &p), &no_r1)
        .expect("feasible");
    validate(&g, &p, &without).expect("valid");
    // Rule 1 is a stage-count heuristic: removing it can only tie or hurt
    // on average; on this fixed workload it must not win.
    assert!(with.num_stages() <= without.num_stages() + 1);
}

#[test]
fn chunk_size_one_still_valid() {
    let (g, p) = workload();
    let mut cfg = AlgoConfig::new(1, 25.0).seeded(1);
    cfg.chunk_size = Some(1);
    for kind in [AlgoKind::Ltf, AlgoKind::Rltf] {
        let s = kind
            .heuristic()
            .schedule(&PreparedInstance::new(&g, &p), &cfg)
            .expect("feasible");
        validate(&g, &p, &s).expect("valid");
        assert!(failures::tolerates_all_crashes(&g, &s, 10, 1));
    }
}

#[test]
fn seeds_change_tie_breaking_not_validity() {
    let (g, p) = workload();
    for seed in 0..6u64 {
        let cfg = AlgoConfig::new(1, 25.0).seeded(seed);
        let s = Rltf
            .schedule(&PreparedInstance::new(&g, &p), &cfg)
            .expect("feasible");
        validate(&g, &p, &s).expect("valid");
    }
}

#[test]
fn epsilon_zero_equals_single_copy() {
    let g = pipeline(6, 1.0, 0.5);
    let p = Platform::homogeneous(4, 1.0, 0.2);
    let cfg = AlgoConfig::new(0, 10.0);
    let s = Rltf
        .schedule(&PreparedInstance::new(&g, &p), &cfg)
        .expect("feasible");
    assert_eq!(s.replicas_per_task(), 1);
    // A chain with everything co-locatable: single stage, no messages.
    assert_eq!(s.num_stages(), 1);
    assert_eq!(s.comm_count(), 0);
}

#[test]
fn higher_epsilon_never_cheaper() {
    let (g, p) = workload();
    let mut prev_comms = 0usize;
    for eps in [0u8, 1, 2] {
        let cfg = AlgoConfig::new(eps, 30.0).seeded(5);
        let s = Rltf
            .schedule(&PreparedInstance::new(&g, &p), &cfg)
            .expect("feasible");
        let total_work: f64 = p.procs().map(|u| s.sigma(u)).sum();
        let expect = (eps as f64 + 1.0) * g.total_exec(); // unit speeds
        assert!((total_work - expect).abs() < 1e-6);
        assert!(
            s.comm_count() >= prev_comms,
            "replication cannot reduce messages"
        );
        prev_comms = s.comm_count();
    }
}
