//! Property tests for the dirty-set priority maintenance: after arbitrary
//! commit/flush interleavings over random DAGs, the tracked priorities
//! must agree with the naive from-scratch recomputation.

use ltf_core::prio::{LevelCache, PrioTracker};
use ltf_graph::generate::{layered, LayeredConfig};
use ltf_graph::TaskId;
use ltf_platform::{HeterogeneousConfig, Platform};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random graph, random (heterogeneous) platform, tasks committed in
    /// topological order with arbitrary finish times, flushes interleaved
    /// at arbitrary points: tracked == naive at every flush point.
    #[test]
    fn dirty_set_agrees_with_naive_recompute(
        seed in any::<u64>(),
        tasks in 5usize..40,
        finishes in prop::collection::vec(0.0f64..5000.0, 40..41),
        flush_mask in prop::collection::vec(any::<bool>(), 40..41),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = layered(&LayeredConfig::with_tasks(tasks), &mut rng);
        let p = HeterogeneousConfig {
            procs: 6,
            speed_range: (0.5, 1.0),
            delay_range: (0.5, 1.0),
            symmetric: true,
        }
        .build(&mut rng);
        let cache = LevelCache::compute(&g, &p);

        let mut tracker = PrioTracker::new(&cache);
        let mut committed: Vec<(TaskId, f64)> = Vec::new();
        for (i, &t) in g.topo_order().iter().enumerate() {
            let fin = finishes[i % finishes.len()];
            tracker.mark_finished(t, fin);
            committed.push((t, fin));
            if flush_mask[i % flush_mask.len()] {
                tracker.flush(&g);
                prop_assert_eq!(
                    tracker.values(),
                    &PrioTracker::naive(&cache, &g, &committed)[..]
                );
            }
        }
        tracker.flush(&g);
        prop_assert_eq!(
            tracker.values(),
            &PrioTracker::naive(&cache, &g, &committed)[..]
        );
    }

    /// The naive specification is order-independent (max-accumulation), so
    /// the tracker result cannot depend on commit order either.
    #[test]
    fn naive_spec_is_order_independent(
        seed in any::<u64>(),
        tasks in 5usize..30,
        finishes in prop::collection::vec(0.0f64..5000.0, 30..31),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = layered(&LayeredConfig::with_tasks(tasks), &mut rng);
        let p = Platform::homogeneous(5, 1.0, 1.0);
        let cache = LevelCache::compute(&g, &p);

        let committed: Vec<(TaskId, f64)> = g
            .topo_order()
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, finishes[i % finishes.len()]))
            .collect();
        let mut reversed = committed.clone();
        reversed.reverse();
        prop_assert_eq!(
            PrioTracker::naive(&cache, &g, &committed),
            PrioTracker::naive(&cache, &g, &reversed)
        );
    }
}
