//! Pareto-front enumeration cost: the (latency, period, ε, processors)
//! sweep over the worked examples, single-heuristic and cross-registry,
//! serial and parallel (8-thread prefix fan-out; the parallel front is
//! bit-identical to the serial one, so the `-par8` rows measure pure
//! wall-clock — on a single-core runner they sit at parity with the
//! serial rows and the speedup materializes with the hardware).
//! The front for each configuration is printed to stderr before timing
//! starts, continuing the reproduction-first bench convention.

use criterion::{black_box, Criterion};
use ltf_bench::quick_criterion;
use ltf_core::search::pareto::{pareto_front, pareto_front_all, ParetoOptions};
use ltf_core::{Rltf, Solver};
use ltf_graph::generate::{fig1_diamond, fig2_workflow_variant};
use ltf_platform::Platform;

fn main() {
    let mut c: Criterion = quick_criterion();
    let opts = ParetoOptions::default();
    let opts_par8 = ParetoOptions::with_threads(8);

    let g1 = fig1_diamond();
    let p1 = Platform::fig1_platform();
    let g2 = fig2_workflow_variant();
    let p2 = Platform::homogeneous(8, 1.0, 1.0);

    for pt in pareto_front(&g1, &p1, &Rltf, &opts) {
        eprintln!("fig1/rltf: {pt}");
    }
    for pt in pareto_front(&g2, &p2, &Rltf, &opts) {
        eprintln!("fig2-variant/rltf: {pt}");
    }

    let mut group = c.benchmark_group("pareto");
    group.bench_function("fig1/rltf", |b| {
        b.iter(|| pareto_front(black_box(&g1), black_box(&p1), &Rltf, black_box(&opts)))
    });
    group.bench_function("fig2-variant/rltf", |b| {
        b.iter(|| pareto_front(black_box(&g2), black_box(&p2), &Rltf, black_box(&opts)))
    });
    group.bench_function("fig2-variant/rltf-par8", |b| {
        b.iter(|| pareto_front(black_box(&g2), black_box(&p2), &Rltf, black_box(&opts_par8)))
    });
    group.bench_function("fig1/builtin-merge", |b| {
        b.iter(|| {
            let solver = Solver::builtin(black_box(&g1), black_box(&p1));
            pareto_front_all(&solver, black_box(&opts))
        })
    });
    group.bench_function("fig1/builtin-merge-par8", |b| {
        b.iter(|| {
            let solver = Solver::builtin(black_box(&g1), black_box(&p1));
            pareto_front_all(&solver, black_box(&opts_par8))
        })
    });
    group.finish();
    c.final_summary();
}
