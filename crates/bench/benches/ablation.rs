//! Design ablations: what Rule 1, Rule 2, the one-to-one procedure, the
//! clustering tie-break, and the chunked selection each buy. Prints the
//! full ablation tables (ε = 1 and ε = 3), then times representative
//! variants.

use criterion::{black_box, Criterion};
use ltf_bench::quick_criterion;
use ltf_core::{AlgoConfig, AlgoKind, PreparedInstance};
use ltf_experiments::ablation::{ablation, table, AblationConfig};
use ltf_experiments::workload::{gen_instance, PaperWorkload};

fn print_reproduction() {
    for eps in [1u8, 3] {
        let cfg = AblationConfig {
            epsilon: eps,
            instances: 12,
            ..Default::default()
        };
        eprintln!("\n=== ablation (ε = {eps}, 12 instances) ===");
        eprint!("{}", table(&ablation(&cfg)));
    }
    eprintln!();
}

fn main() {
    print_reproduction();
    let mut c: Criterion = quick_criterion();
    let wl = PaperWorkload::paper(1, 1.0);
    let inst = gen_instance(&wl, 7);

    let mut group = c.benchmark_group("ablation");
    type Tweak = fn(&mut AlgoConfig);
    let variants: Vec<(&str, AlgoKind, Tweak)> = vec![
        ("rltf_full", AlgoKind::Rltf, |_| {}),
        ("rltf_no_rule1", AlgoKind::Rltf, |c| c.rule1 = false),
        ("rltf_no_cluster", AlgoKind::Rltf, |c| {
            c.cluster_ties = false
        }),
        ("ltf_full", AlgoKind::Ltf, |_| {}),
        ("ltf_chunk1", AlgoKind::Ltf, |c| c.chunk_size = Some(1)),
    ];
    for (name, kind, tweak) in variants {
        let mut cfg = AlgoConfig::new(1, inst.period).seeded(7);
        tweak(&mut cfg);
        group.bench_function(name, |b| {
            b.iter(|| {
                let prep = PreparedInstance::new(black_box(&inst.graph), black_box(&inst.platform));
                kind.heuristic().schedule(&prep, black_box(&cfg)).ok()
            })
        });
    }
    group.finish();
    c.final_summary();
}
