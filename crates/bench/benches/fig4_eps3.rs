//! Fig. 4 (paper §5, ε = 3): the granularity sweep with quadruple
//! replication and two-crash executions. Prints a reduced sweep's three
//! panels, then times one sweep point.

use criterion::{black_box, Criterion};
use ltf_bench::quick_criterion;
use ltf_experiments::figures::{panel, sweep, Panel, SweepConfig};
use ltf_experiments::runner::measure_instance;
use ltf_experiments::workload::PaperWorkload;

fn print_reproduction() {
    let cfg = SweepConfig {
        graphs_per_point: 8,
        granularities: vec![0.2, 0.6, 1.0, 1.4, 2.0],
        crash_draws: 5,
        ..Default::default()
    };
    let data = sweep(3, 2, &cfg);
    eprintln!("\n=== fig4 reproduction (reduced: 8 graphs/point) ===");
    for p in [Panel::Bounds, Panel::Crashes, Panel::Overhead] {
        let fig = panel(&data, p);
        eprintln!("--- {} — {}", fig.id, fig.title);
        eprint!("{}", fig.to_csv());
    }
    eprintln!();
}

fn main() {
    print_reproduction();
    let mut c: Criterion = quick_criterion();
    let wl = PaperWorkload::paper(3, 1.0);
    let mut group = c.benchmark_group("fig4");
    group.bench_function("sweep_point_eps3", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            measure_instance(black_box(&wl), seed, 2, 5)
        })
    });
    group.finish();
    c.final_summary();
}
