//! Algorithm-runtime scaling (Theorem 1): scheduling time against the task
//! count `v` (with `e ≈ 2v`), the processor count `m`, and the replication
//! degree `ε`. The paper bounds LTF by
//! `O(e·m·(ε+1)²·log(ε+1) + v·log ω)`.

use criterion::{black_box, BenchmarkId, Criterion};
use ltf_bench::quick_criterion;
use ltf_core::{AlgoConfig, AlgoKind, PreparedInstance};
use ltf_experiments::workload::{gen_instance, PaperWorkload};

fn bench_axis<F: Fn(u64) -> PaperWorkload>(
    c: &mut Criterion,
    group_name: &str,
    params: &[u64],
    make: F,
) {
    let mut group = c.benchmark_group(group_name);
    for &param in params {
        let wl = make(param);
        let inst = gen_instance(&wl, 0xBEEF ^ param);
        for kind in [AlgoKind::Ltf, AlgoKind::Rltf] {
            let cfg = AlgoConfig::new(wl.epsilon, inst.period).seeded(1);
            group.bench_with_input(BenchmarkId::new(kind.to_string(), param), &param, |b, _| {
                b.iter(|| {
                    // Lazy instance: the level caches (and, for R-LTF, the
                    // reversal) are derived inside the timed region, as the
                    // legacy free functions did.
                    let prep =
                        PreparedInstance::new(black_box(&inst.graph), black_box(&inst.platform));
                    kind.heuristic().schedule(&prep, black_box(&cfg)).ok()
                })
            });
        }
    }
    group.finish();
}

fn main() {
    let mut c: Criterion = quick_criterion();
    bench_axis(&mut c, "scaling_tasks", &[50, 100, 200, 500, 1000], |v| {
        PaperWorkload {
            tasks: (v as usize, v as usize),
            epsilon: 1,
            granularity: 1.0,
            ..Default::default()
        }
    });
    bench_axis(&mut c, "scaling_procs", &[10, 20, 40], |m| PaperWorkload {
        tasks: (100, 100),
        procs: m as usize,
        epsilon: 1,
        granularity: 1.0,
        ..Default::default()
    });
    bench_axis(&mut c, "scaling_epsilon", &[0, 1, 2, 3], |e| {
        PaperWorkload {
            tasks: (100, 100),
            epsilon: e as u8,
            granularity: 1.0,
            ..Default::default()
        }
    });
    c.final_summary();
}
