//! Fig. 1 (paper §1): the motivating comparison of task parallelism, data
//! parallelism, and pipelined execution on the 4-task diamond. Prints the
//! reproduced values, then times each strategy.

use criterion::{black_box, Criterion};
use ltf_baselines::{data_parallel, task_parallel};
use ltf_bench::quick_criterion;
use ltf_core::{AlgoConfig, Heuristic, PreparedInstance, Rltf};
use ltf_graph::generate::fig1_diamond;
use ltf_platform::Platform;

fn print_reproduction() {
    let g = fig1_diamond();
    let p = Platform::fig1_platform();
    let tp = task_parallel(&g, &p, 1);
    let dp = data_parallel(&g, &p, 1);
    let s = Rltf
        .schedule(&PreparedInstance::new(&g, &p), &AlgoConfig::new(1, 30.0))
        .expect("pipelined");
    eprintln!("\n=== fig1 reproduction (paper values in parentheses) ===");
    eprintln!(
        "task parallelism : L = {:.0} (39), T = 1/{:.0} (1/39)",
        tp.latency,
        1.0 / tp.throughput
    );
    eprintln!(
        "data parallelism : T = 1/{:.0} (1/20) optimistic",
        1.0 / dp.throughput_optimistic
    );
    eprintln!(
        "pipelined        : L = {:.0} (90), T = 1/{:.0} (1/30), S = {} (2)\n",
        s.latency_upper_bound(),
        s.period(),
        s.num_stages()
    );
}

fn main() {
    print_reproduction();
    let mut c: Criterion = quick_criterion();
    let g = fig1_diamond();
    let p = Platform::fig1_platform();

    let mut group = c.benchmark_group("fig1");
    group.bench_function("task_parallel", |b| {
        b.iter(|| task_parallel(black_box(&g), black_box(&p), 1))
    });
    group.bench_function("data_parallel", |b| {
        b.iter(|| data_parallel(black_box(&g), black_box(&p), 1))
    });
    let cfg = AlgoConfig::new(1, 30.0);
    group.bench_function("pipelined_rltf", |b| {
        b.iter(|| {
            let prep = PreparedInstance::new(black_box(&g), black_box(&p));
            Rltf.schedule(&prep, black_box(&cfg)).unwrap()
        })
    });
    group.finish();
    c.final_summary();
}
