//! Fig. 2 (paper §4.3): the worked LTF vs R-LTF example. Prints the
//! outcomes on the reconstruction and the variant, then times both
//! heuristics on the variant instance.

use criterion::{black_box, Criterion};
use ltf_bench::quick_criterion;
use ltf_core::{AlgoConfig, Heuristic, Ltf, PreparedInstance, Rltf};
use ltf_graph::generate::{fig2_workflow, fig2_workflow_variant};
use ltf_platform::Platform;

fn print_reproduction() {
    let cfg = AlgoConfig::with_throughput(1, 0.05);
    eprintln!("\n=== fig2 reproduction ===");
    for (name, g) in [
        ("reconstruction", fig2_workflow()),
        ("variant E(t2)=3", fig2_workflow_variant()),
    ] {
        for m in [8usize, 10] {
            let p = Platform::homogeneous(m, 1.0, 1.0);
            let fmt = |r: Result<ltf_schedule::Schedule, ltf_core::ScheduleError>| match r {
                Ok(s) => format!("S={} L={:.0}", s.num_stages(), s.latency_upper_bound()),
                Err(_) => "fails".into(),
            };
            eprintln!(
                "{name:<16} m={m:<2}: LTF {:<12} R-LTF {}",
                fmt(Ltf.schedule(&PreparedInstance::new(&g, &p), &cfg)),
                fmt(Rltf.schedule(&PreparedInstance::new(&g, &p), &cfg))
            );
        }
    }
    eprintln!("(paper: R-LTF m=8 S=3 L=100; LTF m=8 fails; LTF m=10 S=4 L=140)\n");
}

fn main() {
    print_reproduction();
    let mut c: Criterion = quick_criterion();
    let g = fig2_workflow_variant();
    let p = Platform::homogeneous(8, 1.0, 1.0);
    let cfg = AlgoConfig::with_throughput(1, 0.05);

    let mut group = c.benchmark_group("fig2");
    group.bench_function("ltf_variant_m8", |b| {
        b.iter(|| {
            let prep = PreparedInstance::new(black_box(&g), black_box(&p));
            Ltf.schedule(&prep, black_box(&cfg)).unwrap()
        })
    });
    group.bench_function("rltf_variant_m8", |b| {
        b.iter(|| {
            let prep = PreparedInstance::new(black_box(&g), black_box(&p));
            Rltf.schedule(&prep, black_box(&cfg)).unwrap()
        })
    });
    group.finish();
    c.final_summary();
}
