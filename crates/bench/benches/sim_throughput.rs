//! Simulator throughput: items pushed through the discrete-event ASAP
//! engine and the synchronous window model per second, plus the failure
//! analysis used by the crash experiments.

use criterion::{black_box, Criterion};
use ltf_bench::quick_criterion;
use ltf_core::{AlgoConfig, Heuristic, PreparedInstance, Rltf};
use ltf_experiments::workload::{gen_instance, PaperWorkload};
use ltf_schedule::{failures, CrashSet};
use ltf_sim::{asap, synchronous, AsapConfig, SynchronousConfig};

fn main() {
    let mut c: Criterion = quick_criterion();
    let wl = PaperWorkload::paper(1, 1.0);
    let inst = gen_instance(&wl, 3);
    let cfg = AlgoConfig::new(1, inst.period).seeded(3);
    let prep = PreparedInstance::new(&inst.graph, &inst.platform);
    let sched = Rltf.schedule(&prep, &cfg).expect("feasible");
    eprintln!(
        "\nsim bench schedule: v={} S={} comms={}\n",
        inst.graph.num_tasks(),
        sched.num_stages(),
        sched.comm_count()
    );

    let mut group = c.benchmark_group("sim");
    group.bench_function("asap_100_items", |b| {
        let cfg = AsapConfig::new(100);
        b.iter(|| asap(black_box(&inst.graph), black_box(&sched), black_box(&cfg)))
    });
    group.bench_function("synchronous_100_items", |b| {
        let cfg = SynchronousConfig::new(100);
        b.iter(|| synchronous(black_box(&inst.graph), black_box(&sched), black_box(&cfg)))
    });
    group.bench_function("crash_analysis_single", |b| {
        let crash = CrashSet::from_procs(&[ltf_platform::ProcId(3)], 20);
        b.iter(|| failures::effective_latency(black_box(&inst.graph), black_box(&sched), &crash))
    });
    group.bench_function("crash_analysis_all_pairs", |b| {
        b.iter(|| failures::tolerates_all_crashes(black_box(&inst.graph), &sched, 20, 1))
    });
    group.finish();
    c.final_summary();
}
