//! Shared helpers for the Criterion benches (see `benches/`).
//!
//! Every bench regenerates the data behind one of the paper's figures (the
//! series are printed to stderr before timing starts) and then times the
//! computational kernel involved, so `cargo bench` doubles as the
//! reproduction harness at reduced sample counts. The full-scale figures
//! come from the `ltf-experiments` CLI.

use criterion::Criterion;

/// Criterion configuration shared by all benches: small samples, short
/// measurement windows — the kernels are deterministic and the suite has
/// many of them.
pub fn quick_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .configure_from_args()
}
