//! Shared helpers for the Criterion benches (see `benches/`).
//!
//! Every bench regenerates the data behind one of the paper's figures (the
//! series are printed to stderr before timing starts) and then times the
//! computational kernel involved, so `cargo bench` doubles as the
//! reproduction harness at reduced sample counts. The full-scale figures
//! come from the `ltf-experiments` CLI.
//!
//! Two environment variables drive the CI integration:
//!
//! * `LTF_BENCH_QUICK=1` shrinks sampling further (5 samples, ~0.5 s per
//!   benchmark) for the smoke-test job;
//! * `CRITERION_JSON=<path>` (handled by the criterion shim) writes the
//!   results as JSON for the `bench-gate` regression check. Use it with a
//!   single `--bench` target: each bench target is its own process and
//!   overwrites the file, so a bare `cargo bench` would keep only the
//!   last target's results.

use criterion::Criterion;

pub mod gate;

/// Criterion configuration shared by all benches: small samples, short
/// measurement windows — the kernels are deterministic and the suite has
/// many of them. `LTF_BENCH_QUICK=1` shrinks the windows further for CI
/// smoke runs.
pub fn quick_criterion() -> Criterion {
    let c = if std::env::var_os("LTF_BENCH_QUICK").is_some() {
        Criterion::default()
            .sample_size(5)
            .warm_up_time(std::time::Duration::from_millis(100))
            .measurement_time(std::time::Duration::from_millis(500))
    } else {
        Criterion::default()
            .sample_size(10)
            .warm_up_time(std::time::Duration::from_millis(300))
            .measurement_time(std::time::Duration::from_millis(1200))
    };
    c.configure_from_args()
}

/// One parsed benchmark entry: name, median, and (when present) the
/// minimum of the per-sample means.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Benchmark id, e.g. `scaling_tasks/LTF/200`.
    pub name: String,
    /// Median ns/iter.
    pub median_ns: f64,
    /// Minimum ns/iter (best sample); `None` for hand-written baselines
    /// that omit it.
    pub min_ns: Option<f64>,
}

/// Parse the `{"entries": [{"name": ..., "median_ns": ...}]}` documents
/// written by the criterion shim (and the checked-in `BENCH_*.json`
/// baselines) without a JSON dependency: the format is fixed, so a scan
/// for `"name"` keys with field lookups *bounded to each entry's segment*
/// (the text before the next `"name"`) suffices. An entry without a
/// parsable `median_ns` in its segment is dropped rather than paired with
/// a later entry's value.
///
/// Used by the `bench-gate` binary; lives in the library so it is unit-
/// and doc-testable.
///
/// ```
/// let doc = r#"{"entries": [{"name": "g/A/1", "median_ns": 42.0}]}"#;
/// let entries = ltf_bench::parse_bench_json(doc);
/// assert_eq!(entries[0].name, "g/A/1");
/// assert_eq!(entries[0].median_ns, 42.0);
/// assert_eq!(entries[0].min_ns, None);
/// ```
pub fn parse_bench_json(text: &str) -> Vec<BenchEntry> {
    /// Number following `"key":` within `segment`, if any. The leading
    /// quote in the needle guards against suffix keys (`pre_pr_median_ns`
    /// does not match `"median_ns"`).
    fn field(segment: &str, key: &str) -> Option<f64> {
        let needle = format!("\"{key}\"");
        let after = &segment[segment.find(&needle)? + needle.len()..];
        let after = &after[after.find(':')? + 1..];
        let num: String = after
            .chars()
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
            .collect();
        num.parse().ok()
    }

    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("\"name\"") {
        rest = &rest[pos + "\"name\"".len()..];
        let Some(q1) = rest.find('"') else { break };
        let Some(q2) = rest[q1 + 1..].find('"') else {
            break;
        };
        let name = rest[q1 + 1..q1 + 1 + q2].to_string();
        rest = &rest[q1 + 1 + q2 + 1..];
        // Bound all field lookups to this entry's segment.
        let segment = match rest.find("\"name\"") {
            Some(next) => &rest[..next],
            None => rest,
        };
        if let Some(median_ns) = field(segment, "median_ns") {
            out.push(BenchEntry {
                name,
                median_ns,
                min_ns: field(segment, "min_ns"),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_shim_output_shape() {
        let doc = r#"{
  "schema": "ltf-bench-v1",
  "entries": [
    {"name": "scaling_tasks/LTF/50", "median_ns": 1437331.3, "min_ns": 1265887.0, "max_ns": 1699975.3},
    {"name": "scaling_tasks/R-LTF/50", "median_ns": 4505392.0, "min_ns": 4025046.0, "max_ns": 4940126.0}
  ]
}"#;
        let entries = parse_bench_json(doc);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "scaling_tasks/LTF/50");
        assert_eq!(entries[0].median_ns, 1437331.3);
        assert_eq!(entries[0].min_ns, Some(1265887.0));
        assert_eq!(entries[1].name, "scaling_tasks/R-LTF/50");
    }

    #[test]
    fn tolerates_extra_fields_and_order() {
        let doc = r#"{"entries": [
            {"pre_pr_median_ns": 9.0, "name": "a/b", "median_ns": 1.5e3}
        ]}"#;
        let entries = parse_bench_json(doc);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "a/b");
        assert_eq!(entries[0].median_ns, 1500.0);
        assert_eq!(entries[0].min_ns, None);
    }

    #[test]
    fn entry_without_median_is_dropped_not_mispaired() {
        // "A" has no median in its own segment; it must not steal B's.
        let doc = r#"{"entries": [
            {"name": "A"},
            {"name": "B", "median_ns": 5.0, "min_ns": 4.0}
        ]}"#;
        let entries = parse_bench_json(doc);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "B");
        assert_eq!(entries[0].median_ns, 5.0);
    }

    #[test]
    fn empty_and_garbage_inputs() {
        assert!(parse_bench_json("").is_empty());
        assert!(parse_bench_json("{\"entries\": []}").is_empty());
        assert!(parse_bench_json("\"name\": truncated").is_empty());
    }
}
