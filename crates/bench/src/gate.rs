//! The benchmark regression-gate comparison, as a testable library.
//!
//! The `bench-gate` binary is a thin shell around [`compare`]: parse the
//! two JSON documents, run the comparison, render [`GateReport`] and exit
//! with its [`GateReport::failed`] flag. Keeping the policy here makes the
//! gate's semantics unit-testable — in particular the rule that
//! **benchmarks present in the current run but absent from the baseline
//! warn and are skipped, never fail**, so landing a new bench never
//! requires landing its baseline in the same change.

use crate::BenchEntry;

/// Gate policy knobs (the binary's command-line flags).
#[derive(Debug, Clone)]
pub struct GateOptions {
    /// Relative regression tolerance (0.25 = fail beyond +25%).
    pub tolerance: f64,
    /// Divide current values by the median current/baseline ratio before
    /// applying the tolerance, factoring out a uniformly faster or slower
    /// machine.
    pub normalize: bool,
    /// Gate on the best observed sample (`min_ns`) instead of the median;
    /// entries lacking `min_ns` fall back to the median.
    pub use_min: bool,
}

impl Default for GateOptions {
    fn default() -> Self {
        Self {
            tolerance: 0.25,
            normalize: false,
            use_min: false,
        }
    }
}

/// Verdict for one benchmark name appearing in either document.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Within tolerance of the baseline.
    Ok,
    /// Faster than the baseline beyond the tolerance.
    Improved,
    /// Slower than the baseline beyond the tolerance — fails the gate.
    Regressed,
    /// In the baseline but not in the current run — fails the gate (a
    /// bench silently disappearing is a coverage loss).
    MissingFromRun,
    /// In the current run but not in the baseline — warn-and-skip, never
    /// fails (new benches land before their baseline does).
    NewNoBaseline,
}

/// One row of the gate report.
#[derive(Debug, Clone)]
pub struct GateLine {
    /// Benchmark id.
    pub name: String,
    /// Baseline statistic (ns/iter), when the baseline has the entry.
    pub baseline_ns: Option<f64>,
    /// Current statistic (ns/iter), when the run has the entry.
    pub current_ns: Option<f64>,
    /// Relative delta after normalization (`current/baseline - 1`), when
    /// both sides exist.
    pub delta: Option<f64>,
    /// The verdict for this row.
    pub verdict: Verdict,
}

/// Outcome of a gate comparison.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// One line per benchmark, baseline entries first (baseline order),
    /// then current-only entries (run order).
    pub lines: Vec<GateLine>,
    /// Machine-speed factor divided out of current values (1.0 when
    /// normalization is off or no entries are shared).
    pub scale: f64,
    /// Whether the gate fails: some benchmark [`Verdict::Regressed`] or
    /// went [`Verdict::MissingFromRun`]. [`Verdict::NewNoBaseline`]
    /// entries never set this.
    pub failed: bool,
}

fn stat(e: &BenchEntry, use_min: bool) -> f64 {
    if use_min {
        e.min_ns.unwrap_or(e.median_ns)
    } else {
        e.median_ns
    }
}

/// Compare a current run against a baseline under the gate policy.
pub fn compare(current: &[BenchEntry], baseline: &[BenchEntry], opts: &GateOptions) -> GateReport {
    let value = |e: &BenchEntry| stat(e, opts.use_min);

    // Machine-speed normalization: the median current/baseline ratio over
    // the shared entries estimates the uniform hardware factor.
    let scale = if opts.normalize {
        let mut ratios: Vec<f64> = baseline
            .iter()
            .filter_map(|base| {
                current
                    .iter()
                    .find(|c| c.name == base.name)
                    .map(|c| value(c) / value(base))
            })
            .collect();
        if ratios.is_empty() {
            1.0
        } else {
            ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
            ratios[ratios.len() / 2]
        }
    } else {
        1.0
    };

    let mut lines = Vec::new();
    let mut failed = false;
    for base in baseline {
        let base_ns = value(base);
        match current.iter().find(|c| c.name == base.name) {
            Some(cur) => {
                let cur_ns = value(cur);
                let delta = cur_ns / (base_ns * scale) - 1.0;
                let verdict = if delta > opts.tolerance {
                    failed = true;
                    Verdict::Regressed
                } else if delta < -opts.tolerance {
                    Verdict::Improved
                } else {
                    Verdict::Ok
                };
                lines.push(GateLine {
                    name: base.name.clone(),
                    baseline_ns: Some(base_ns),
                    current_ns: Some(cur_ns),
                    delta: Some(delta),
                    verdict,
                });
            }
            None => {
                failed = true;
                lines.push(GateLine {
                    name: base.name.clone(),
                    baseline_ns: Some(base_ns),
                    current_ns: None,
                    delta: None,
                    verdict: Verdict::MissingFromRun,
                });
            }
        }
    }
    for cur in current {
        if !baseline.iter().any(|b| b.name == cur.name) {
            lines.push(GateLine {
                name: cur.name.clone(),
                baseline_ns: None,
                current_ns: Some(value(cur)),
                delta: None,
                verdict: Verdict::NewNoBaseline,
            });
        }
    }

    GateReport {
        lines,
        scale,
        failed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, median: f64, min: Option<f64>) -> BenchEntry {
        BenchEntry {
            name: name.to_string(),
            median_ns: median,
            min_ns: min,
        }
    }

    #[test]
    fn within_tolerance_passes() {
        let base = vec![entry("a", 100.0, None), entry("b", 200.0, None)];
        let cur = vec![entry("a", 110.0, None), entry("b", 180.0, None)];
        let rep = compare(&cur, &base, &GateOptions::default());
        assert!(!rep.failed);
        assert!(rep.lines.iter().all(|l| l.verdict == Verdict::Ok));
    }

    #[test]
    fn regression_fails() {
        let base = vec![entry("a", 100.0, None)];
        let cur = vec![entry("a", 140.0, None)];
        let rep = compare(&cur, &base, &GateOptions::default());
        assert!(rep.failed);
        assert_eq!(rep.lines[0].verdict, Verdict::Regressed);
        assert!((rep.lines[0].delta.unwrap() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn new_bench_warns_and_skips_without_failing() {
        // The satellite guarantee: adding a bench to the run never breaks
        // the gate against an older baseline.
        let base = vec![entry("a", 100.0, None)];
        let cur = vec![
            entry("a", 100.0, None),
            entry("brand_new/bench", 1.0e9, None), // arbitrarily slow
        ];
        let rep = compare(&cur, &base, &GateOptions::default());
        assert!(!rep.failed, "a new bench must not fail the gate");
        let new = rep
            .lines
            .iter()
            .find(|l| l.name == "brand_new/bench")
            .unwrap();
        assert_eq!(new.verdict, Verdict::NewNoBaseline);
        assert_eq!(new.baseline_ns, None);
    }

    #[test]
    fn new_bench_does_not_skew_normalization() {
        // The normalization ratio is computed over shared entries only, so
        // a current-only bench cannot shift the scale.
        let base = vec![entry("a", 100.0, None), entry("b", 100.0, None)];
        let cur = vec![
            entry("a", 200.0, None),
            entry("b", 200.0, None),
            entry("new", 1.0, None),
        ];
        let opts = GateOptions {
            normalize: true,
            ..Default::default()
        };
        let rep = compare(&cur, &base, &opts);
        assert!((rep.scale - 2.0).abs() < 1e-12);
        assert!(!rep.failed);
    }

    #[test]
    fn missing_from_run_fails() {
        let base = vec![entry("a", 100.0, None), entry("gone", 50.0, None)];
        let cur = vec![entry("a", 100.0, None)];
        let rep = compare(&cur, &base, &GateOptions::default());
        assert!(rep.failed);
        assert!(rep
            .lines
            .iter()
            .any(|l| l.verdict == Verdict::MissingFromRun));
    }

    #[test]
    fn min_stat_falls_back_to_median() {
        let base = vec![entry("a", 100.0, Some(90.0))];
        let cur = vec![entry("a", 130.0, None)]; // no min: falls back to 130
        let opts = GateOptions {
            use_min: true,
            ..Default::default()
        };
        let rep = compare(&cur, &base, &opts);
        // 130 / 90 - 1 ≈ 0.44 > 0.25.
        assert!(rep.failed);
    }

    #[test]
    fn uniform_slowdown_normalizes_away() {
        let base = vec![
            entry("a", 100.0, None),
            entry("b", 200.0, None),
            entry("c", 300.0, None),
        ];
        let cur = vec![
            entry("a", 300.0, None),
            entry("b", 600.0, None),
            entry("c", 900.0, None),
        ];
        let strict = compare(&cur, &base, &GateOptions::default());
        assert!(strict.failed);
        let opts = GateOptions {
            normalize: true,
            ..Default::default()
        };
        let rep = compare(&cur, &base, &opts);
        assert!(!rep.failed);
        assert!((rep.scale - 3.0).abs() < 1e-12);
    }
}
