//! Benchmark regression gate for CI.
//!
//! Compares a fresh `CRITERION_JSON` run against a checked-in baseline
//! (`BENCH_scaling.json`) and fails when any shared benchmark regressed
//! beyond the tolerance:
//!
//! ```text
//! bench-gate <current.json> <baseline.json>
//!            [--tolerance 0.25] [--normalize] [--stat median|min]
//! ```
//!
//! Two flags tame cross-machine and sampling noise for CI smoke runs:
//!
//! * `--normalize` divides every current value by the median of the
//!   current/baseline ratios before applying the tolerance. A uniformly
//!   faster or slower machine shifts all ratios equally and is factored
//!   out; the cost is that a change slowing *every* benchmark by the same
//!   factor is invisible — acceptable on shared CI virtual machines whose
//!   absolute timings are incomparable to the baseline hardware anyway.
//! * `--stat min` gates on the best observed sample instead of the
//!   median. For deterministic CPU-bound kernels the minimum is far more
//!   stable across noisy runs (scheduling interference only ever adds
//!   time), which keeps a tight tolerance meaningful at the smoke job's
//!   small sample counts. Entries lacking `min_ns` fall back to the
//!   median.
//!
//! Exit codes: 0 all within tolerance, 1 regression (or baseline entry
//! missing from the current run), 2 usage/IO error. Benchmarks present
//! only in the current run are reported but never fail the gate, so new
//! benches can land before their baseline does.

use ltf_bench::{parse_bench_json, BenchEntry};
use std::process::ExitCode;

const USAGE: &str = "usage: bench-gate <current.json> <baseline.json> \
                     [--tolerance 0.25] [--normalize] [--stat median|min]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut tolerance = 0.25f64;
    let mut normalize = false;
    let mut use_min = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => {
                let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("bench-gate: --tolerance needs a numeric argument");
                    return ExitCode::from(2);
                };
                tolerance = v;
            }
            "--normalize" => normalize = true,
            "--stat" => match it.next().map(String::as_str) {
                Some("median") => use_min = false,
                Some("min") => use_min = true,
                _ => {
                    eprintln!("bench-gate: --stat needs 'median' or 'min'");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => files.push(a.clone()),
        }
    }
    let [current_path, baseline_path] = files.as_slice() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };

    let read = |p: &str| -> Option<Vec<BenchEntry>> {
        match std::fs::read_to_string(p) {
            Ok(text) => Some(parse_bench_json(&text)),
            Err(e) => {
                eprintln!("bench-gate: cannot read {p}: {e}");
                None
            }
        }
    };
    let Some(current) = read(current_path) else {
        return ExitCode::from(2);
    };
    let Some(baseline) = read(baseline_path) else {
        return ExitCode::from(2);
    };
    if baseline.is_empty() {
        eprintln!("bench-gate: no entries parsed from baseline {baseline_path}");
        return ExitCode::from(2);
    }

    let stat = |e: &BenchEntry| -> f64 {
        if use_min {
            e.min_ns.unwrap_or(e.median_ns)
        } else {
            e.median_ns
        }
    };
    let stat_name = if use_min { "min" } else { "median" };

    // Machine-speed normalization: the median current/baseline ratio over
    // the shared entries estimates the uniform hardware factor.
    let scale = if normalize {
        let mut ratios: Vec<f64> = baseline
            .iter()
            .filter_map(|base| {
                current
                    .iter()
                    .find(|c| c.name == base.name)
                    .map(|c| stat(c) / stat(base))
            })
            .collect();
        if ratios.is_empty() {
            1.0
        } else {
            ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
            let s = ratios[ratios.len() / 2];
            println!("machine-speed normalization: x{s:.3} (median current/baseline ratio)");
            s
        }
    } else {
        1.0
    };

    let mut failed = false;
    println!(
        "{:<28} {:>14} {:>14} {:>9}  verdict  ({stat_name} ns/iter)",
        "benchmark", "baseline", "current", "delta"
    );
    for base in &baseline {
        let base_ns = stat(base);
        match current.iter().find(|c| c.name == base.name) {
            Some(cur) => {
                let cur_ns = stat(cur);
                let delta = cur_ns / (base_ns * scale) - 1.0;
                let verdict = if delta > tolerance {
                    failed = true;
                    "REGRESSED"
                } else if delta < -tolerance {
                    "improved"
                } else {
                    "ok"
                };
                println!(
                    "{:<28} {base_ns:>14.0} {cur_ns:>14.0} {:>+8.1}%  {verdict}",
                    base.name,
                    delta * 100.0
                );
            }
            None => {
                failed = true;
                println!(
                    "{:<28} {base_ns:>14.0} {:>14} {:>9}  MISSING",
                    base.name, "-", "-"
                );
            }
        }
    }
    for cur in &current {
        if !baseline.iter().any(|b| b.name == cur.name) {
            println!(
                "{:<28} {:>14} {:>14.0} {:>9}  new (no baseline)",
                cur.name,
                "-",
                stat(cur),
                "-"
            );
        }
    }

    if failed {
        eprintln!(
            "bench-gate: FAILED — at least one benchmark regressed more than {:.0}% \
             (or disappeared) vs {baseline_path}",
            tolerance * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!(
            "bench-gate: ok — all {} baseline benchmarks within {:.0}%",
            baseline.len(),
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    }
}
