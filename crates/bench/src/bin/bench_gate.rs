//! Benchmark regression gate for CI.
//!
//! Compares a fresh `CRITERION_JSON` run against a checked-in baseline
//! (`BENCH_scaling.json`) and fails when any shared benchmark regressed
//! beyond the tolerance:
//!
//! ```text
//! bench-gate <current.json> <baseline.json>
//!            [--tolerance 0.25] [--normalize] [--stat median|min]
//! ```
//!
//! Two flags tame cross-machine and sampling noise for CI smoke runs:
//!
//! * `--normalize` divides every current value by the median of the
//!   current/baseline ratios before applying the tolerance. A uniformly
//!   faster or slower machine shifts all ratios equally and is factored
//!   out; the cost is that a change slowing *every* benchmark by the same
//!   factor is invisible — acceptable on shared CI virtual machines whose
//!   absolute timings are incomparable to the baseline hardware anyway.
//! * `--stat min` gates on the best observed sample instead of the
//!   median. For deterministic CPU-bound kernels the minimum is far more
//!   stable across noisy runs (scheduling interference only ever adds
//!   time), which keeps a tight tolerance meaningful at the smoke job's
//!   small sample counts. Entries lacking `min_ns` fall back to the
//!   median.
//!
//! Exit codes: 0 all within tolerance, 1 regression (or baseline entry
//! missing from the current run), 2 usage/IO error. Benchmarks present
//! only in the current run warn and are skipped — never a failure — so
//! new benches can land before their baseline does (the policy lives in
//! [`ltf_bench::gate`], where it is unit-tested).

use ltf_bench::gate::{compare, GateOptions, Verdict};
use ltf_bench::{parse_bench_json, BenchEntry};
use std::process::ExitCode;

const USAGE: &str = "usage: bench-gate <current.json> <baseline.json> \
                     [--tolerance 0.25] [--normalize] [--stat median|min]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut opts = GateOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => {
                let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("bench-gate: --tolerance needs a numeric argument");
                    return ExitCode::from(2);
                };
                opts.tolerance = v;
            }
            "--normalize" => opts.normalize = true,
            "--stat" => match it.next().map(String::as_str) {
                Some("median") => opts.use_min = false,
                Some("min") => opts.use_min = true,
                _ => {
                    eprintln!("bench-gate: --stat needs 'median' or 'min'");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => files.push(a.clone()),
        }
    }
    let [current_path, baseline_path] = files.as_slice() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };

    let read = |p: &str| -> Option<Vec<BenchEntry>> {
        match std::fs::read_to_string(p) {
            Ok(text) => Some(parse_bench_json(&text)),
            Err(e) => {
                eprintln!("bench-gate: cannot read {p}: {e}");
                None
            }
        }
    };
    let Some(current) = read(current_path) else {
        return ExitCode::from(2);
    };
    let Some(baseline) = read(baseline_path) else {
        return ExitCode::from(2);
    };
    if baseline.is_empty() {
        eprintln!("bench-gate: no entries parsed from baseline {baseline_path}");
        return ExitCode::from(2);
    }

    let report = compare(&current, &baseline, &opts);
    let stat_name = if opts.use_min { "min" } else { "median" };
    if opts.normalize {
        println!(
            "machine-speed normalization: x{:.3} (median current/baseline ratio)",
            report.scale
        );
    }
    println!(
        "{:<28} {:>14} {:>14} {:>9}  verdict  ({stat_name} ns/iter)",
        "benchmark", "baseline", "current", "delta"
    );
    let num = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |n| format!("{n:.0}"));
    for line in &report.lines {
        let delta = line
            .delta
            .map_or_else(|| "-".to_string(), |d| format!("{:>+8.1}%", d * 100.0));
        let verdict = match line.verdict {
            Verdict::Ok => "ok",
            Verdict::Improved => "improved",
            Verdict::Regressed => "REGRESSED",
            Verdict::MissingFromRun => "MISSING",
            Verdict::NewNoBaseline => "new: skipped (no baseline)",
        };
        println!(
            "{:<28} {:>14} {:>14} {:>9}  {verdict}",
            line.name,
            num(line.baseline_ns),
            num(line.current_ns),
            delta
        );
    }

    if report.failed {
        eprintln!(
            "bench-gate: FAILED — at least one benchmark regressed more than {:.0}% \
             (or disappeared) vs {baseline_path}",
            opts.tolerance * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!(
            "bench-gate: ok — all {} baseline benchmarks within {:.0}%",
            baseline.len(),
            opts.tolerance * 100.0
        );
        ExitCode::SUCCESS
    }
}
