//! Exact graph width `ω`: the maximum number of pairwise-independent tasks.
//!
//! §2 of the paper bounds the ready-list size by the width `ω` of the task
//! graph (the maximum antichain). By Dilworth's theorem the maximum
//! antichain of a DAG equals `v − M`, where `M` is a maximum matching in the
//! bipartite *reachability* graph (left copy of every task, right copy of
//! every task, an arc `i → j` whenever `j` is reachable from `i`). We build
//! the transitive closure with bitsets and run Hopcroft–Karp.

use crate::graph::TaskGraph;
use crate::ids::TaskId;

/// Transitive closure as row bitsets: bit `j` of row `i` is set iff `j` is
/// reachable from `i` by a non-empty path.
pub fn transitive_closure(g: &TaskGraph) -> Vec<Vec<u64>> {
    let v = g.num_tasks();
    let words = v.div_ceil(64);
    let mut reach = vec![vec![0u64; words]; v];
    for &t in g.topo_order().iter().rev() {
        // Collect successors first to avoid borrowing `reach[t]` while
        // reading `reach[s]`.
        let ti = t.index();
        for s in g.succs(t).collect::<Vec<_>>() {
            let si = s.index();
            reach[ti][si / 64] |= 1u64 << (si % 64);
            // reach[t] |= reach[s]
            let (a, b) = if ti < si {
                let (lo, hi) = reach.split_at_mut(si);
                (&mut lo[ti], &hi[0])
            } else {
                let (lo, hi) = reach.split_at_mut(ti);
                (&mut hi[0], &lo[si])
            };
            for (x, y) in a.iter_mut().zip(b.iter()) {
                *x |= *y;
            }
        }
    }
    reach
}

/// Maximum-cardinality matching in a bipartite graph given as adjacency
/// bitset rows (`adj[l]` = bitset of right vertices adjacent to left `l`).
/// Returns the matching size. Hopcroft–Karp, `O(E √V)`.
fn hopcroft_karp(adj: &[Vec<u64>], n_right: usize) -> usize {
    const NIL: u32 = u32::MAX;
    let n_left = adj.len();
    let mut match_l = vec![NIL; n_left];
    let mut match_r = vec![NIL; n_right];
    let mut dist = vec![u32::MAX; n_left];
    let mut queue = std::collections::VecDeque::new();
    let mut matching = 0usize;

    let right_iter = |row: &[u64]| {
        let row = row.to_vec();
        (0..n_right).filter(move |&j| row[j / 64] >> (j % 64) & 1 == 1)
    };

    loop {
        // BFS phase: layer free left vertices.
        queue.clear();
        for l in 0..n_left {
            if match_l[l] == NIL {
                dist[l] = 0;
                queue.push_back(l as u32);
            } else {
                dist[l] = u32::MAX;
            }
        }
        let mut found_augmenting = false;
        while let Some(l) = queue.pop_front() {
            for r in right_iter(&adj[l as usize]) {
                let ml = match_r[r];
                if ml == NIL {
                    found_augmenting = true;
                } else if dist[ml as usize] == u32::MAX {
                    dist[ml as usize] = dist[l as usize] + 1;
                    queue.push_back(ml);
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS phase: find vertex-disjoint augmenting paths.
        fn try_augment(
            l: usize,
            adj: &[Vec<u64>],
            n_right: usize,
            match_l: &mut [u32],
            match_r: &mut [u32],
            dist: &mut [u32],
        ) -> bool {
            for r in 0..n_right {
                if adj[l][r / 64] >> (r % 64) & 1 == 0 {
                    continue;
                }
                let ml = match_r[r];
                if ml == u32::MAX
                    || (dist[ml as usize] == dist[l].wrapping_add(1)
                        && try_augment(ml as usize, adj, n_right, match_l, match_r, dist))
                {
                    match_l[l] = r as u32;
                    match_r[r] = l as u32;
                    return true;
                }
            }
            dist[l] = u32::MAX;
            false
        }
        for l in 0..n_left {
            if match_l[l] == NIL
                && try_augment(l, adj, n_right, &mut match_l, &mut match_r, &mut dist)
            {
                matching += 1;
            }
        }
    }
    matching
}

/// Exact width `ω` of the DAG: the size of a maximum antichain
/// (largest set of pairwise-independent tasks).
///
/// ```
/// use ltf_graph::{GraphBuilder, width};
/// let mut b = GraphBuilder::new();
/// let s = b.add_task(1.0);
/// let a = b.add_task(1.0);
/// let b2 = b.add_task(1.0);
/// let t = b.add_task(1.0);
/// b.add_edge(s, a, 1.0);
/// b.add_edge(s, b2, 1.0);
/// b.add_edge(a, t, 1.0);
/// b.add_edge(b2, t, 1.0);
/// assert_eq!(width(&b.build().unwrap()), 2);
/// ```
pub fn width(g: &TaskGraph) -> usize {
    let v = g.num_tasks();
    let closure = transitive_closure(g);
    let matching = hopcroft_karp(&closure, v);
    v - matching
}

/// `true` iff `a` and `b` are independent (neither reaches the other).
pub fn independent(closure: &[Vec<u64>], a: TaskId, b: TaskId) -> bool {
    let get = |i: usize, j: usize| closure[i][j / 64] >> (j % 64) & 1 == 1;
    a != b && !get(a.index(), b.index()) && !get(b.index(), a.index())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn chain(n: usize) -> TaskGraph {
        let mut b = GraphBuilder::new();
        let ts: Vec<_> = (0..n).map(|_| b.add_task(1.0)).collect();
        for w in ts.windows(2) {
            b.add_edge(w[0], w[1], 1.0);
        }
        b.build().unwrap()
    }

    fn independent_set(n: usize) -> TaskGraph {
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            b.add_task(1.0);
        }
        b.build().unwrap()
    }

    #[test]
    fn chain_width_is_one() {
        assert_eq!(width(&chain(1)), 1);
        assert_eq!(width(&chain(7)), 1);
    }

    #[test]
    fn antichain_width_is_v() {
        assert_eq!(width(&independent_set(5)), 5);
    }

    #[test]
    fn fork_join_width() {
        // s -> {a1..a4} -> t : width 4.
        let mut b = GraphBuilder::new();
        let s = b.add_task(1.0);
        let mids: Vec<_> = (0..4).map(|_| b.add_task(1.0)).collect();
        let t = b.add_task(1.0);
        for &m in &mids {
            b.add_edge(s, m, 1.0);
            b.add_edge(m, t, 1.0);
        }
        assert_eq!(width(&b.build().unwrap()), 4);
    }

    #[test]
    fn two_chains_width_two() {
        // Two disjoint chains of length 3.
        let mut b = GraphBuilder::new();
        let a: Vec<_> = (0..3).map(|_| b.add_task(1.0)).collect();
        let c: Vec<_> = (0..3).map(|_| b.add_task(1.0)).collect();
        for w in a.windows(2) {
            b.add_edge(w[0], w[1], 1.0);
        }
        for w in c.windows(2) {
            b.add_edge(w[0], w[1], 1.0);
        }
        assert_eq!(width(&b.build().unwrap()), 2);
    }

    #[test]
    fn closure_and_independence() {
        let mut b = GraphBuilder::new();
        let t0 = b.add_task(1.0);
        let t1 = b.add_task(1.0);
        let t2 = b.add_task(1.0);
        b.add_edge(t0, t1, 1.0);
        b.add_edge(t1, t2, 1.0);
        let g = b.build().unwrap();
        let c = transitive_closure(&g);
        // t2 reachable from t0 transitively.
        assert!(c[0][0] >> 2 & 1 == 1);
        assert!(!independent(&c, TaskId(0), TaskId(2)));
        assert!(!independent(&c, TaskId(0), TaskId(0)));
    }

    #[test]
    fn layered_grid_width() {
        // 3 layers x 3 tasks, fully connected between consecutive layers:
        // width is the layer size.
        let mut b = GraphBuilder::new();
        let layers: Vec<Vec<_>> = (0..3)
            .map(|_| (0..3).map(|_| b.add_task(1.0)).collect())
            .collect();
        for k in 0..2 {
            for &x in &layers[k] {
                for &y in &layers[k + 1] {
                    b.add_edge(x, y, 1.0);
                }
            }
        }
        assert_eq!(width(&b.build().unwrap()), 3);
    }
}
