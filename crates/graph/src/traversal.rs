//! Traversal utilities: ready-set tracking for list scheduling.
//!
//! The LTF/R-LTF algorithms maintain a list `α` of *ready* tasks — tasks
//! whose predecessors have all been scheduled (§2). [`ReadyTracker`]
//! encapsulates the in-degree bookkeeping; bottom-up traversals simply run a
//! tracker over [`crate::TaskGraph::reversed`].

use crate::graph::TaskGraph;
use crate::ids::TaskId;

/// Incremental ready-set tracker over a DAG.
///
/// Starts with all entry tasks ready; [`ReadyTracker::complete`] marks a
/// task scheduled and returns the successors that became ready.
#[derive(Debug, Clone)]
pub struct ReadyTracker {
    remaining_preds: Vec<u32>,
    done: Vec<bool>,
    n_done: usize,
}

impl ReadyTracker {
    /// Create a tracker; the initial ready set is `g.entries()`.
    pub fn new(g: &TaskGraph) -> Self {
        let remaining_preds = g.tasks().map(|t| g.in_degree(t) as u32).collect();
        Self {
            remaining_preds,
            done: vec![false; g.num_tasks()],
            n_done: 0,
        }
    }

    /// Tasks that are ready right now (unscheduled, all preds scheduled).
    /// `O(v)`; prefer consuming the return value of [`ReadyTracker::complete`]
    /// in hot loops.
    pub fn ready_tasks(&self, g: &TaskGraph) -> Vec<TaskId> {
        g.tasks()
            .filter(|t| !self.done[t.index()] && self.remaining_preds[t.index()] == 0)
            .collect()
    }

    /// `true` if `t` is ready (unscheduled with no unscheduled predecessor).
    pub fn is_ready(&self, t: TaskId) -> bool {
        !self.done[t.index()] && self.remaining_preds[t.index()] == 0
    }

    /// `true` if `t` has been completed.
    pub fn is_done(&self, t: TaskId) -> bool {
        self.done[t.index()]
    }

    /// Mark `t` scheduled; returns the successors that just became ready.
    ///
    /// # Panics
    /// If `t` is not currently ready (double-scheduling or missing preds).
    pub fn complete(&mut self, g: &TaskGraph, t: TaskId) -> Vec<TaskId> {
        let mut newly = Vec::new();
        self.complete_into(g, t, &mut newly);
        newly
    }

    /// Allocation-free [`ReadyTracker::complete`]: `newly` is cleared and
    /// filled with the successors that just became ready, reusing its
    /// capacity (for hot loops that call this once per scheduled task).
    ///
    /// # Panics
    /// If `t` is not currently ready (double-scheduling or missing preds).
    pub fn complete_into(&mut self, g: &TaskGraph, t: TaskId, newly: &mut Vec<TaskId>) {
        assert!(self.is_ready(t), "task {t} completed while not ready");
        self.done[t.index()] = true;
        self.n_done += 1;
        newly.clear();
        for s in g.succs(t) {
            let r = &mut self.remaining_preds[s.index()];
            *r -= 1;
            if *r == 0 {
                newly.push(s);
            }
        }
    }

    /// Number of completed tasks.
    pub fn num_done(&self) -> usize {
        self.n_done
    }

    /// `true` when every task has been completed.
    pub fn all_done(&self, g: &TaskGraph) -> bool {
        self.n_done == g.num_tasks()
    }
}

/// Ancestors of `t` (every task that can reach `t`), in topological order.
pub fn ancestors(g: &TaskGraph, t: TaskId) -> Vec<TaskId> {
    let mut mark = vec![false; g.num_tasks()];
    mark[t.index()] = true;
    for &u in g.topo_order().iter().rev() {
        if g.succs(u).any(|s| mark[s.index()]) {
            mark[u.index()] = true;
        }
    }
    mark[t.index()] = false;
    g.topo_order()
        .iter()
        .copied()
        .filter(|u| mark[u.index()])
        .collect()
}

/// Descendants of `t` (every task reachable from `t`), in topological order.
pub fn descendants(g: &TaskGraph, t: TaskId) -> Vec<TaskId> {
    let mut mark = vec![false; g.num_tasks()];
    mark[t.index()] = true;
    for &u in g.topo_order() {
        if g.preds(u).any(|p| mark[p.index()]) {
            mark[u.index()] = true;
        }
    }
    mark[t.index()] = false;
    g.topo_order()
        .iter()
        .copied()
        .filter(|u| mark[u.index()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn diamond() -> (TaskGraph, [TaskId; 4]) {
        let mut b = GraphBuilder::new();
        let t0 = b.add_task(1.0);
        let t1 = b.add_task(1.0);
        let t2 = b.add_task(1.0);
        let t3 = b.add_task(1.0);
        b.add_edge(t0, t1, 1.0);
        b.add_edge(t0, t2, 1.0);
        b.add_edge(t1, t3, 1.0);
        b.add_edge(t2, t3, 1.0);
        (b.build().unwrap(), [t0, t1, t2, t3])
    }

    #[test]
    fn ready_progression() {
        let (g, [t0, t1, t2, t3]) = diamond();
        let mut rt = ReadyTracker::new(&g);
        assert_eq!(rt.ready_tasks(&g), vec![t0]);
        assert!(!rt.is_ready(t3));

        let newly = rt.complete(&g, t0);
        assert_eq!(newly, vec![t1, t2]);
        assert!(rt.is_ready(t1) && rt.is_ready(t2));

        assert_eq!(rt.complete(&g, t1), vec![]);
        assert_eq!(rt.complete(&g, t2), vec![t3]);
        assert_eq!(rt.complete(&g, t3), vec![]);
        assert!(rt.all_done(&g));
        assert_eq!(rt.num_done(), 4);
    }

    #[test]
    #[should_panic(expected = "not ready")]
    fn premature_complete_panics() {
        let (g, [_, _, _, t3]) = diamond();
        let mut rt = ReadyTracker::new(&g);
        rt.complete(&g, t3);
    }

    #[test]
    fn reverse_traversal_via_reversed_graph() {
        let (g, [t0, t1, t2, t3]) = diamond();
        let r = g.reversed();
        let mut rt = ReadyTracker::new(&r);
        assert_eq!(rt.ready_tasks(&r), vec![t3]);
        let newly = rt.complete(&r, t3);
        assert_eq!(newly, vec![t1, t2]);
        rt.complete(&r, t1);
        assert_eq!(rt.complete(&r, t2), vec![t0]);
    }

    #[test]
    fn ancestors_descendants() {
        let (g, [t0, t1, t2, t3]) = diamond();
        assert_eq!(ancestors(&g, t3), vec![t0, t1, t2]);
        assert_eq!(descendants(&g, t0), vec![t1, t2, t3]);
        assert_eq!(ancestors(&g, t0), vec![]);
        assert_eq!(descendants(&g, t3), vec![]);
        assert_eq!(descendants(&g, t1), vec![t3]);
    }
}
