use serde::{Deserialize, Serialize};

/// Dense identifier of a task (node) in a [`crate::TaskGraph`].
///
/// Task ids are indices in `0..v` assigned in insertion order by
/// [`crate::GraphBuilder::add_task`]; they index directly into the per-task
/// arrays of every downstream structure (schedules, level vectors, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The task id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Dense identifier of a directed edge (FIFO channel) in a
/// [`crate::TaskGraph`].
///
/// Edge ids are indices in `0..e` assigned in insertion order by
/// [`crate::GraphBuilder::add_edge`]. Reversing a graph with
/// [`crate::TaskGraph::reversed`] preserves edge ids, which lets bottom-up
/// schedulers map their decisions back onto the original graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for EdgeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_id_display_and_index() {
        let t = TaskId(7);
        assert_eq!(t.index(), 7);
        assert_eq!(t.to_string(), "t7");
    }

    #[test]
    fn edge_id_display_and_index() {
        let e = EdgeId(3);
        assert_eq!(e.index(), 3);
        assert_eq!(e.to_string(), "e3");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(TaskId(1) < TaskId(2));
        assert!(EdgeId(0) < EdgeId(9));
    }
}
