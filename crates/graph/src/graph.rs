//! The task graph structure and its builder.

use crate::ids::{EdgeId, TaskId};

/// A directed edge of the workflow: a FIFO channel from `src` to `dst`
/// carrying `volume` units of data per stream item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Producing task.
    pub src: TaskId,
    /// Consuming task.
    pub dst: TaskId,
    /// Data volume transferred per data set (divided by link bandwidth to
    /// obtain a communication time).
    pub volume: f64,
}

/// Errors detected while building a [`TaskGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The edge set contains a cycle; the offending strongly-connected
    /// remainder is reported by size only.
    Cyclic {
        /// Number of tasks involved in (or downstream of) cycles.
        tasks_in_cycles: usize,
    },
    /// An edge references a task id that was never added.
    UnknownTask(TaskId),
    /// `src == dst`.
    SelfLoop(TaskId),
    /// The same `(src, dst)` pair was added twice.
    DuplicateEdge(TaskId, TaskId),
    /// A task execution time or edge volume is negative, NaN or infinite.
    InvalidWeight(String),
    /// The graph has no tasks.
    Empty,
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::Cyclic { tasks_in_cycles } => {
                write!(f, "graph is cyclic ({tasks_in_cycles} tasks on cycles)")
            }
            GraphError::UnknownTask(t) => write!(f, "edge references unknown task {t}"),
            GraphError::SelfLoop(t) => write!(f, "self loop on task {t}"),
            GraphError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            GraphError::InvalidWeight(msg) => write!(f, "invalid weight: {msg}"),
            GraphError::Empty => write!(f, "graph has no tasks"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Incremental builder for [`TaskGraph`].
///
/// ```
/// use ltf_graph::GraphBuilder;
/// let mut b = GraphBuilder::new();
/// let t0 = b.add_task(15.0);
/// let t1 = b.add_task(20.0);
/// b.add_edge(t0, t1, 2.0);
/// let g = b.build().unwrap();
/// assert_eq!(g.num_tasks(), 2);
/// assert_eq!(g.num_edges(), 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    exec: Vec<f64>,
    names: Vec<String>,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a builder with capacity for `v` tasks and `e` edges.
    pub fn with_capacity(v: usize, e: usize) -> Self {
        Self {
            exec: Vec::with_capacity(v),
            names: Vec::with_capacity(v),
            edges: Vec::with_capacity(e),
        }
    }

    /// Add a task with execution time `exec` (reference time at unit speed);
    /// returns its dense id. The default display name is `t<i>`.
    pub fn add_task(&mut self, exec: f64) -> TaskId {
        let id = TaskId(self.exec.len() as u32);
        self.exec.push(exec);
        self.names.push(format!("t{}", id.0));
        id
    }

    /// Add a task with an explicit display name.
    pub fn add_named_task(&mut self, name: impl Into<String>, exec: f64) -> TaskId {
        let id = self.add_task(exec);
        self.names[id.index()] = name.into();
        id
    }

    /// Add a FIFO edge carrying `volume` data units per stream item.
    pub fn add_edge(&mut self, src: TaskId, dst: TaskId, volume: f64) -> EdgeId {
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { src, dst, volume });
        id
    }

    /// Number of tasks added so far.
    pub fn num_tasks(&self) -> usize {
        self.exec.len()
    }

    /// Validate and freeze into a [`TaskGraph`].
    pub fn build(self) -> Result<TaskGraph, GraphError> {
        TaskGraph::from_parts(self.exec, self.names, self.edges)
    }
}

/// An immutable weighted DAG describing a streaming application.
///
/// Tasks are identified by dense [`TaskId`]s, edges by dense [`EdgeId`]s.
/// Adjacency is stored in CSR form for cache-friendly traversal; a
/// topological order is computed once at construction.
#[derive(Debug, Clone)]
pub struct TaskGraph {
    exec: Vec<f64>,
    names: Vec<String>,
    edges: Vec<Edge>,
    /// CSR offsets into `succ_edges`, length `v + 1`.
    succ_off: Vec<u32>,
    /// Edge ids grouped by source task.
    succ_edges: Vec<EdgeId>,
    /// CSR offsets into `pred_edges`, length `v + 1`.
    pred_off: Vec<u32>,
    /// Edge ids grouped by destination task.
    pred_edges: Vec<EdgeId>,
    /// A topological order of all tasks.
    topo: Vec<TaskId>,
    /// `topo_pos[t] =` position of `t` in `topo`.
    topo_pos: Vec<u32>,
    entries: Vec<TaskId>,
    exits: Vec<TaskId>,
}

impl TaskGraph {
    /// Build a graph from raw parts, validating weights and acyclicity.
    pub fn from_parts(
        exec: Vec<f64>,
        names: Vec<String>,
        edges: Vec<Edge>,
    ) -> Result<Self, GraphError> {
        let v = exec.len();
        if v == 0 {
            return Err(GraphError::Empty);
        }
        for (i, &x) in exec.iter().enumerate() {
            if !x.is_finite() || x < 0.0 {
                return Err(GraphError::InvalidWeight(format!(
                    "exec time of t{i} is {x}"
                )));
            }
        }
        let mut seen = std::collections::HashSet::with_capacity(edges.len());
        for e in &edges {
            if e.src.index() >= v {
                return Err(GraphError::UnknownTask(e.src));
            }
            if e.dst.index() >= v {
                return Err(GraphError::UnknownTask(e.dst));
            }
            if e.src == e.dst {
                return Err(GraphError::SelfLoop(e.src));
            }
            if !e.volume.is_finite() || e.volume < 0.0 {
                return Err(GraphError::InvalidWeight(format!(
                    "volume of {} -> {} is {}",
                    e.src, e.dst, e.volume
                )));
            }
            if !seen.insert((e.src, e.dst)) {
                return Err(GraphError::DuplicateEdge(e.src, e.dst));
            }
        }

        // CSR construction (counting sort by src, then by dst).
        let mut succ_off = vec![0u32; v + 1];
        let mut pred_off = vec![0u32; v + 1];
        for e in &edges {
            succ_off[e.src.index() + 1] += 1;
            pred_off[e.dst.index() + 1] += 1;
        }
        for i in 0..v {
            succ_off[i + 1] += succ_off[i];
            pred_off[i + 1] += pred_off[i];
        }
        let mut succ_edges = vec![EdgeId(0); edges.len()];
        let mut pred_edges = vec![EdgeId(0); edges.len()];
        let mut succ_fill = succ_off.clone();
        let mut pred_fill = pred_off.clone();
        for (i, e) in edges.iter().enumerate() {
            let id = EdgeId(i as u32);
            succ_edges[succ_fill[e.src.index()] as usize] = id;
            succ_fill[e.src.index()] += 1;
            pred_edges[pred_fill[e.dst.index()] as usize] = id;
            pred_fill[e.dst.index()] += 1;
        }

        // Kahn topological sort.
        let mut indeg: Vec<u32> = vec![0; v];
        for e in &edges {
            indeg[e.dst.index()] += 1;
        }
        let mut queue: std::collections::VecDeque<TaskId> = (0..v as u32)
            .map(TaskId)
            .filter(|t| indeg[t.index()] == 0)
            .collect();
        let mut topo = Vec::with_capacity(v);
        while let Some(t) = queue.pop_front() {
            topo.push(t);
            let lo = succ_off[t.index()] as usize;
            let hi = succ_off[t.index() + 1] as usize;
            for &eid in &succ_edges[lo..hi] {
                let d = edges[eid.index()].dst;
                indeg[d.index()] -= 1;
                if indeg[d.index()] == 0 {
                    queue.push_back(d);
                }
            }
        }
        if topo.len() != v {
            return Err(GraphError::Cyclic {
                tasks_in_cycles: v - topo.len(),
            });
        }
        let mut topo_pos = vec![0u32; v];
        for (pos, &t) in topo.iter().enumerate() {
            topo_pos[t.index()] = pos as u32;
        }

        let entries = (0..v as u32)
            .map(TaskId)
            .filter(|t| pred_off[t.index()] == pred_off[t.index() + 1])
            .collect();
        let exits = (0..v as u32)
            .map(TaskId)
            .filter(|t| succ_off[t.index()] == succ_off[t.index() + 1])
            .collect();

        Ok(Self {
            exec,
            names,
            edges,
            succ_off,
            succ_edges,
            pred_off,
            pred_edges,
            topo,
            topo_pos,
            entries,
            exits,
        })
    }

    /// Number of tasks `v = |V|`.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.exec.len()
    }

    /// Number of edges `e = |E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all task ids in increasing order.
    pub fn tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.num_tasks() as u32).map(TaskId)
    }

    /// Iterator over all edge ids in increasing order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.num_edges() as u32).map(EdgeId)
    }

    /// Execution time `E(t)` of `t` at unit processor speed.
    #[inline]
    pub fn exec(&self, t: TaskId) -> f64 {
        self.exec[t.index()]
    }

    /// Display name of `t`.
    #[inline]
    pub fn name(&self, t: TaskId) -> &str {
        &self.names[t.index()]
    }

    /// The edge record for `id`.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id.index()]
    }

    /// Edge ids leaving `t` (the channels to `Γ⁺(t)`).
    #[inline]
    pub fn succ_edges(&self, t: TaskId) -> &[EdgeId] {
        let lo = self.succ_off[t.index()] as usize;
        let hi = self.succ_off[t.index() + 1] as usize;
        &self.succ_edges[lo..hi]
    }

    /// Edge ids entering `t` (the channels from `Γ⁻(t)`).
    #[inline]
    pub fn pred_edges(&self, t: TaskId) -> &[EdgeId] {
        let lo = self.pred_off[t.index()] as usize;
        let hi = self.pred_off[t.index() + 1] as usize;
        &self.pred_edges[lo..hi]
    }

    /// Immediate successors `Γ⁺(t)`.
    pub fn succs(&self, t: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.succ_edges(t).iter().map(|e| self.edges[e.index()].dst)
    }

    /// Immediate predecessors `Γ⁻(t)`.
    pub fn preds(&self, t: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.pred_edges(t).iter().map(|e| self.edges[e.index()].src)
    }

    /// Out-degree `|Γ⁺(t)|`.
    #[inline]
    pub fn out_degree(&self, t: TaskId) -> usize {
        self.succ_edges(t).len()
    }

    /// In-degree `|Γ⁻(t)|`.
    #[inline]
    pub fn in_degree(&self, t: TaskId) -> usize {
        self.pred_edges(t).len()
    }

    /// Entry nodes (no predecessors).
    #[inline]
    pub fn entries(&self) -> &[TaskId] {
        &self.entries
    }

    /// Exit nodes (no successors).
    #[inline]
    pub fn exits(&self) -> &[TaskId] {
        &self.exits
    }

    /// A topological order over all tasks (stable across calls).
    #[inline]
    pub fn topo_order(&self) -> &[TaskId] {
        &self.topo
    }

    /// Position of `t` within [`TaskGraph::topo_order`].
    #[inline]
    pub fn topo_position(&self, t: TaskId) -> usize {
        self.topo_pos[t.index()] as usize
    }

    /// Total execution time `Σ_t E(t)` at unit speed.
    pub fn total_exec(&self) -> f64 {
        self.exec.iter().sum()
    }

    /// Total communication volume `Σ_e vol(e)`.
    pub fn total_volume(&self) -> f64 {
        self.edges.iter().map(|e| e.volume).sum()
    }

    /// The graph with every edge reversed. Task ids, edge ids, execution
    /// times and volumes are preserved, so decisions made on the reversed
    /// graph (bottom-up traversals, as in R-LTF) can be mapped back
    /// one-to-one onto `self`.
    pub fn reversed(&self) -> TaskGraph {
        let edges = self
            .edges
            .iter()
            .map(|e| Edge {
                src: e.dst,
                dst: e.src,
                volume: e.volume,
            })
            .collect();
        TaskGraph::from_parts(self.exec.clone(), self.names.clone(), edges)
            .expect("reversal of a DAG is a DAG")
    }

    /// Multiply every execution time by `factor` (> 0). Used by the
    /// experiment harness for granularity/utilization calibration.
    pub fn scale_exec_times(&mut self, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0, "bad scale factor");
        for x in &mut self.exec {
            *x *= factor;
        }
    }

    /// Multiply every edge volume by `factor` (> 0).
    pub fn scale_volumes(&mut self, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0, "bad scale factor");
        for e in &mut self.edges {
            e.volume *= factor;
        }
    }

    /// `true` if there is an edge `src -> dst`.
    pub fn has_edge(&self, src: TaskId, dst: TaskId) -> bool {
        self.succ_edges(src)
            .iter()
            .any(|e| self.edges[e.index()].dst == dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> TaskGraph {
        let mut b = GraphBuilder::new();
        let t0 = b.add_task(1.0);
        let t1 = b.add_task(2.0);
        let t2 = b.add_task(3.0);
        let t3 = b.add_task(4.0);
        b.add_edge(t0, t1, 1.0);
        b.add_edge(t0, t2, 2.0);
        b.add_edge(t1, t3, 3.0);
        b.add_edge(t2, t3, 4.0);
        b.build().unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = diamond();
        assert_eq!(g.num_tasks(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.entries(), &[TaskId(0)]);
        assert_eq!(g.exits(), &[TaskId(3)]);
        assert_eq!(g.total_exec(), 10.0);
        assert_eq!(g.total_volume(), 10.0);
    }

    #[test]
    fn adjacency() {
        let g = diamond();
        let succs: Vec<_> = g.succs(TaskId(0)).collect();
        assert_eq!(succs, vec![TaskId(1), TaskId(2)]);
        let preds: Vec<_> = g.preds(TaskId(3)).collect();
        assert_eq!(preds, vec![TaskId(1), TaskId(2)]);
        assert_eq!(g.out_degree(TaskId(0)), 2);
        assert_eq!(g.in_degree(TaskId(0)), 0);
        assert!(g.has_edge(TaskId(0), TaskId(1)));
        assert!(!g.has_edge(TaskId(1), TaskId(0)));
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = diamond();
        for eid in g.edge_ids() {
            let e = g.edge(eid);
            assert!(g.topo_position(e.src) < g.topo_position(e.dst));
        }
    }

    #[test]
    fn cycle_rejected() {
        let mut b = GraphBuilder::new();
        let t0 = b.add_task(1.0);
        let t1 = b.add_task(1.0);
        b.add_edge(t0, t1, 1.0);
        b.add_edge(t1, t0, 1.0);
        assert!(matches!(b.build(), Err(GraphError::Cyclic { .. })));
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = GraphBuilder::new();
        let t0 = b.add_task(1.0);
        b.add_edge(t0, t0, 1.0);
        assert!(matches!(b.build(), Err(GraphError::SelfLoop(_))));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut b = GraphBuilder::new();
        let t0 = b.add_task(1.0);
        let t1 = b.add_task(1.0);
        b.add_edge(t0, t1, 1.0);
        b.add_edge(t0, t1, 2.0);
        assert!(matches!(b.build(), Err(GraphError::DuplicateEdge(_, _))));
    }

    #[test]
    fn bad_weights_rejected() {
        let mut b = GraphBuilder::new();
        b.add_task(f64::NAN);
        assert!(matches!(b.build(), Err(GraphError::InvalidWeight(_))));

        let mut b = GraphBuilder::new();
        let t0 = b.add_task(1.0);
        let t1 = b.add_task(1.0);
        b.add_edge(t0, t1, -3.0);
        assert!(matches!(b.build(), Err(GraphError::InvalidWeight(_))));
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(
            GraphBuilder::new().build(),
            Err(GraphError::Empty)
        ));
    }

    #[test]
    fn reversal_preserves_ids_and_weights() {
        let g = diamond();
        let r = g.reversed();
        assert_eq!(r.num_tasks(), g.num_tasks());
        assert_eq!(r.num_edges(), g.num_edges());
        for eid in g.edge_ids() {
            let e = g.edge(eid);
            let re = r.edge(eid);
            assert_eq!(re.src, e.dst);
            assert_eq!(re.dst, e.src);
            assert_eq!(re.volume, e.volume);
        }
        assert_eq!(r.entries(), g.exits());
        assert_eq!(r.exits(), g.entries());
    }

    #[test]
    fn scaling() {
        let mut g = diamond();
        g.scale_exec_times(2.0);
        g.scale_volumes(0.5);
        assert_eq!(g.total_exec(), 20.0);
        assert_eq!(g.total_volume(), 5.0);
    }

    #[test]
    fn named_tasks() {
        let mut b = GraphBuilder::new();
        let t = b.add_named_task("decode", 5.0);
        let u = b.add_task(1.0);
        b.add_edge(t, u, 1.0);
        let g = b.build().unwrap();
        assert_eq!(g.name(t), "decode");
        assert_eq!(g.name(u), "t1");
    }
}
