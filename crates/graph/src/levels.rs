//! Top levels, bottom levels, and scheduling priorities.
//!
//! Following §2 of the paper: the *top level* `tℓ(t)` is the length of the
//! longest path from an entry node to `t`, **excluding** `E(t)`; the *bottom
//! level* `bℓ(t)` is the length of the longest path from `t` to an exit node,
//! **including** `E(t)`. Task priorities are `tℓ(t) + bℓ(t)`. Path lengths
//! sum node and edge weights; on a heterogeneous platform the weights are
//! the platform-averaged execution and communication times (reference \[9\],
//! HEFT-style averaging — see `ltf-platform::Platform::average_weights`).

use crate::graph::TaskGraph;
use crate::ids::TaskId;

/// Node and edge weights used for path-length computations.
///
/// `node[t]` is the (typically platform-averaged) execution time of task `t`
/// and `edge[e]` the (typically platform-averaged) communication time of
/// edge `e`. Construct with [`Weights::new`] or
/// [`Weights::from_unit_speeds`].
#[derive(Debug, Clone)]
pub struct Weights {
    /// Per-task weight, indexed by `TaskId`.
    pub node: Vec<f64>,
    /// Per-edge weight, indexed by `EdgeId`.
    pub edge: Vec<f64>,
}

impl Weights {
    /// Bundle explicit node/edge weight vectors (must match graph sizes).
    pub fn new(node: Vec<f64>, edge: Vec<f64>) -> Self {
        Self { node, edge }
    }

    /// Weights for a fully homogeneous reading of the graph: node weights
    /// are the raw execution times and edge weights the raw volumes
    /// (unit speed, unit bandwidth).
    pub fn from_unit_speeds(g: &TaskGraph) -> Self {
        Self {
            node: g.tasks().map(|t| g.exec(t)).collect(),
            edge: g.edge_ids().map(|e| g.edge(e).volume).collect(),
        }
    }

    fn check(&self, g: &TaskGraph) {
        assert_eq!(self.node.len(), g.num_tasks(), "node weight count");
        assert_eq!(self.edge.len(), g.num_edges(), "edge weight count");
    }
}

/// Top level `tℓ(t)` of every task: longest weighted path from an entry node
/// to `t`, excluding `E(t)` itself. Entry nodes have `tℓ = 0`.
pub fn top_levels(g: &TaskGraph, w: &Weights) -> Vec<f64> {
    w.check(g);
    let mut tl = vec![0.0f64; g.num_tasks()];
    for &t in g.topo_order() {
        for &eid in g.succ_edges(t) {
            let e = g.edge(eid);
            let cand = tl[t.index()] + w.node[t.index()] + w.edge[eid.index()];
            if cand > tl[e.dst.index()] {
                tl[e.dst.index()] = cand;
            }
        }
    }
    tl
}

/// Bottom level `bℓ(t)` of every task: longest weighted path from `t` to an
/// exit node, including `E(t)`. Exit nodes have `bℓ = E(t)`.
pub fn bottom_levels(g: &TaskGraph, w: &Weights) -> Vec<f64> {
    w.check(g);
    let mut bl = vec![0.0f64; g.num_tasks()];
    for &t in g.topo_order().iter().rev() {
        let mut best = 0.0f64;
        for &eid in g.succ_edges(t) {
            let e = g.edge(eid);
            let cand = w.edge[eid.index()] + bl[e.dst.index()];
            if cand > best {
                best = cand;
            }
        }
        bl[t.index()] = w.node[t.index()] + best;
    }
    bl
}

/// Task priorities `tℓ(t) + bℓ(t)` (larger = more critical).
pub fn priorities(g: &TaskGraph, w: &Weights) -> Vec<f64> {
    let tl = top_levels(g, w);
    let bl = bottom_levels(g, w);
    tl.iter().zip(&bl).map(|(a, b)| a + b).collect()
}

/// Length of the critical path (the maximum `bℓ` over entry nodes, which
/// equals the maximum priority value).
pub fn critical_path_length(g: &TaskGraph, w: &Weights) -> f64 {
    let bl = bottom_levels(g, w);
    g.entries()
        .iter()
        .map(|t| bl[t.index()])
        .fold(0.0, f64::max)
}

/// Unweighted depth of the graph: the number of tasks on the longest chain.
pub fn depth(g: &TaskGraph) -> usize {
    let mut d = vec![1usize; g.num_tasks()];
    let mut best = 1;
    for &t in g.topo_order() {
        for s in g.succs(t) {
            if d[t.index()] + 1 > d[s.index()] {
                d[s.index()] = d[t.index()] + 1;
                best = best.max(d[s.index()]);
            }
        }
    }
    best.max(1)
}

/// Longest-path layering: `layer[t]` = unweighted longest distance (in
/// edges) from any entry node. Entry nodes are at layer 0.
pub fn layering(g: &TaskGraph) -> Vec<usize> {
    let mut layer = vec![0usize; g.num_tasks()];
    for &t in g.topo_order() {
        for s in g.succs(t) {
            layer[s.index()] = layer[s.index()].max(layer[t.index()] + 1);
        }
    }
    layer
}

/// The tasks of each critical path bucket: `tasks_by_layer[k]` holds the
/// tasks whose [`layering`] value is `k`.
pub fn tasks_by_layer(g: &TaskGraph) -> Vec<Vec<TaskId>> {
    let layer = layering(g);
    let depth = layer.iter().copied().max().unwrap_or(0);
    let mut out = vec![Vec::new(); depth + 1];
    for t in g.tasks() {
        out[layer[t.index()]].push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// The Fig. 2-style chain t0 -> t1 -> t2 with uniform weights.
    fn chain() -> TaskGraph {
        let mut b = GraphBuilder::new();
        let t0 = b.add_task(10.0);
        let t1 = b.add_task(20.0);
        let t2 = b.add_task(30.0);
        b.add_edge(t0, t1, 5.0);
        b.add_edge(t1, t2, 5.0);
        b.build().unwrap()
    }

    fn diamond() -> TaskGraph {
        let mut b = GraphBuilder::new();
        let t0 = b.add_task(15.0);
        let t1 = b.add_task(15.0);
        let t2 = b.add_task(15.0);
        let t3 = b.add_task(15.0);
        b.add_edge(t0, t1, 2.0);
        b.add_edge(t0, t2, 2.0);
        b.add_edge(t1, t3, 2.0);
        b.add_edge(t2, t3, 2.0);
        b.build().unwrap()
    }

    #[test]
    fn chain_levels() {
        let g = chain();
        let w = Weights::from_unit_speeds(&g);
        let tl = top_levels(&g, &w);
        assert_eq!(tl, vec![0.0, 15.0, 40.0]);
        let bl = bottom_levels(&g, &w);
        assert_eq!(bl, vec![70.0, 55.0, 30.0]);
        let pr = priorities(&g, &w);
        // Every node of a chain lies on the critical path.
        assert_eq!(pr, vec![70.0, 70.0, 70.0]);
        assert_eq!(critical_path_length(&g, &w), 70.0);
    }

    #[test]
    fn diamond_levels() {
        let g = diamond();
        let w = Weights::from_unit_speeds(&g);
        let tl = top_levels(&g, &w);
        assert_eq!(tl, vec![0.0, 17.0, 17.0, 34.0]);
        let bl = bottom_levels(&g, &w);
        assert_eq!(bl, vec![49.0, 32.0, 32.0, 15.0]);
        assert_eq!(critical_path_length(&g, &w), 49.0);
    }

    #[test]
    fn depth_and_layering() {
        let g = diamond();
        assert_eq!(depth(&g), 3);
        assert_eq!(layering(&g), vec![0, 1, 1, 2]);
        let by_layer = tasks_by_layer(&g);
        assert_eq!(by_layer.len(), 3);
        assert_eq!(by_layer[0], vec![TaskId(0)]);
        assert_eq!(by_layer[1], vec![TaskId(1), TaskId(2)]);
        assert_eq!(by_layer[2], vec![TaskId(3)]);
    }

    #[test]
    fn single_node() {
        let mut b = GraphBuilder::new();
        b.add_task(7.0);
        let g = b.build().unwrap();
        let w = Weights::from_unit_speeds(&g);
        assert_eq!(top_levels(&g, &w), vec![0.0]);
        assert_eq!(bottom_levels(&g, &w), vec![7.0]);
        assert_eq!(depth(&g), 1);
        assert_eq!(critical_path_length(&g, &w), 7.0);
    }

    #[test]
    fn priority_peaks_on_critical_path() {
        // Two parallel branches of different lengths: priorities on the long
        // branch strictly dominate.
        let mut b = GraphBuilder::new();
        let s = b.add_task(1.0);
        let long = b.add_task(100.0);
        let short = b.add_task(1.0);
        let t = b.add_task(1.0);
        b.add_edge(s, long, 1.0);
        b.add_edge(s, short, 1.0);
        b.add_edge(long, t, 1.0);
        b.add_edge(short, t, 1.0);
        let g = b.build().unwrap();
        let w = Weights::from_unit_speeds(&g);
        let pr = priorities(&g, &w);
        assert!(pr[long.index()] > pr[short.index()]);
        assert_eq!(pr[s.index()], pr[long.index()]);
        assert_eq!(pr[t.index()], pr[long.index()]);
    }
}
