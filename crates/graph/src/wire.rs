//! JSON wire format for [`TaskGraph`].
//!
//! A graph travels as
//!
//! ```json
//! {"tasks":[{"name":"t0","exec":15.0}],
//!  "edges":[{"src":0,"dst":1,"volume":2.0}]}
//! ```
//!
//! where `src`/`dst` are indices into `tasks`. Decoding goes through
//! [`TaskGraph::from_parts`], so every structural invariant (non-empty,
//! acyclic, finite non-negative weights, no self loops or duplicate edges)
//! is re-checked and reported as a typed error — a hostile document can
//! never construct an invalid graph or panic the decoder.

use crate::graph::{Edge, TaskGraph};
use crate::ids::TaskId;
use serde::{DeError, Deserialize, Serialize, Value};

/// One task of the wire form: display name plus execution weight `E(t)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct TaskSpec {
    name: String,
    exec: f64,
}

/// One edge of the wire form, endpoints as task indices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct EdgeSpec {
    src: u32,
    dst: u32,
    volume: f64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GraphSpec {
    tasks: Vec<TaskSpec>,
    edges: Vec<EdgeSpec>,
}

impl Serialize for TaskGraph {
    fn to_value(&self) -> Value {
        let spec = GraphSpec {
            tasks: self
                .tasks()
                .map(|t| TaskSpec {
                    name: self.name(t).to_string(),
                    exec: self.exec(t),
                })
                .collect(),
            edges: self
                .edge_ids()
                .map(|id| {
                    let e = self.edge(id);
                    EdgeSpec {
                        src: e.src.0,
                        dst: e.dst.0,
                        volume: e.volume,
                    }
                })
                .collect(),
        };
        spec.to_value()
    }
}

impl Deserialize for TaskGraph {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let spec = GraphSpec::from_value(v)?;
        let (names, exec): (Vec<String>, Vec<f64>) =
            spec.tasks.into_iter().map(|t| (t.name, t.exec)).unzip();
        let edges = spec
            .edges
            .into_iter()
            .map(|e| Edge {
                src: TaskId(e.src),
                dst: TaskId(e.dst),
                volume: e.volume,
            })
            .collect();
        TaskGraph::from_parts(exec, names, edges).map_err(|e| DeError::custom(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::fig1_diamond;

    fn roundtrip(g: &TaskGraph) -> TaskGraph {
        TaskGraph::from_value(&g.to_value()).expect("wire round-trip")
    }

    #[test]
    fn fig1_roundtrips_losslessly() {
        let g = fig1_diamond();
        let h = roundtrip(&g);
        assert_eq!(h.num_tasks(), g.num_tasks());
        assert_eq!(h.num_edges(), g.num_edges());
        for t in g.tasks() {
            assert_eq!(h.name(t), g.name(t));
            assert_eq!(h.exec(t), g.exec(t));
        }
        for id in g.edge_ids() {
            assert_eq!(h.edge(id), g.edge(id));
        }
    }

    #[test]
    fn invalid_documents_are_typed_errors() {
        let err = |s: &str| {
            serde_json::from_str::<TaskGraph>(s)
                .unwrap_err()
                .to_string()
        };
        // Structural violations caught by `from_parts`, not panics.
        assert!(err(r#"{"tasks":[],"edges":[]}"#).contains("no tasks"));
        assert!(err(
            r#"{"tasks":[{"name":"a","exec":1.0}],"edges":[{"src":0,"dst":5,"volume":1.0}]}"#
        )
        .contains("unknown task"));
        assert!(err(
            r#"{"tasks":[{"name":"a","exec":1.0}],"edges":[{"src":0,"dst":0,"volume":1.0}]}"#
        )
        .contains("self loop"));
        let cyclic = r#"{"tasks":[{"name":"a","exec":1.0},{"name":"b","exec":1.0}],
            "edges":[{"src":0,"dst":1,"volume":1.0},{"src":1,"dst":0,"volume":1.0}]}"#;
        assert!(err(cyclic).contains("cyclic"));
        // Shape violations caught by the strict derive.
        assert!(err(r#"{"tasks":[{"name":"a"}],"edges":[]}"#).contains("missing field `exec`"));
        assert!(
            err(r#"{"tasks":[{"name":"a","exec":1.0,"prio":2}],"edges":[]}"#)
                .contains("unknown field `prio`")
        );
    }
}
