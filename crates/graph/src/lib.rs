//! Weighted DAG application model for streaming workflows.
//!
//! This crate implements the application-side framework of
//! *"Optimizing the Latency of Streaming Applications under Throughput and
//! Reliability Constraints"* (Benoit, Hakem, Robert, 2009), §2:
//!
//! * [`TaskGraph`] — a weighted directed acyclic graph `G = (V, E)` whose
//!   nodes carry execution times `E(t)` and whose edges carry the data volume
//!   transferred between tasks over FIFO channels,
//! * [`levels`] — top levels `tℓ(t)`, bottom levels `bℓ(t)` and the task
//!   priorities `tℓ(t) + bℓ(t)` used by the scheduling heuristics,
//! * [`width()`](width()) — the exact graph width `ω` (maximum antichain), computed via
//!   Dilworth's theorem and Hopcroft–Karp matching,
//! * [`generate`] — workload generators: the random layered DAGs used by the
//!   paper's evaluation, series-parallel graphs, and the worked examples of
//!   the paper's §1 (Fig. 1) and §4.3 (Fig. 2).
//!
//! Graphs are immutable after construction through [`GraphBuilder`] except
//! for uniform weight re-scaling, which the experiment harness uses to pin
//! the granularity `g(G, P)` of an instance (see `ltf-experiments`).

pub mod dot;
pub mod generate;
pub mod graph;
pub mod levels;
pub mod traversal;
pub mod width;
pub mod wire;

mod ids;

pub use crate::graph::{Edge, GraphBuilder, GraphError, TaskGraph};
pub use crate::ids::{EdgeId, TaskId};
pub use crate::levels::{bottom_levels, critical_path_length, priorities, top_levels, Weights};
pub use crate::width::width;
