//! Graphviz (DOT) export for inspection and documentation.

use crate::graph::TaskGraph;

/// Render the graph in Graphviz DOT syntax. Node labels show the task name
/// and execution time; edge labels show the data volume.
pub fn to_dot(g: &TaskGraph) -> String {
    use std::fmt::Write;
    let mut s = String::with_capacity(64 * g.num_tasks());
    s.push_str("digraph workflow {\n  rankdir=TB;\n  node [shape=box];\n");
    for t in g.tasks() {
        writeln!(s, "  {} [label=\"{} ({:.3})\"];", t.0, g.name(t), g.exec(t)).unwrap();
    }
    for eid in g.edge_ids() {
        let e = g.edge(eid);
        writeln!(
            s,
            "  {} -> {} [label=\"{:.3}\"];",
            e.src.0, e.dst.0, e.volume
        )
        .unwrap();
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut b = GraphBuilder::new();
        let a = b.add_named_task("grab", 1.5);
        let c = b.add_named_task("encode", 2.5);
        b.add_edge(a, c, 3.0);
        let g = b.build().unwrap();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph workflow {"));
        assert!(dot.contains("grab (1.500)"));
        assert!(dot.contains("encode (2.500)"));
        assert!(dot.contains("0 -> 1 [label=\"3.000\"]"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
